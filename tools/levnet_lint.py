#!/usr/bin/env python3
"""levnet-lint: machine-checkable determinism invariants for this repo.

The emulation's headline guarantee is bit-identical reports across thread
counts, refactors, and spec-vs-hand-built machines. Most of what protects
that guarantee is convention — conventions rot. This checker turns the
prose invariants into CI-enforced rules:

  unordered-iteration    no iteration over std::unordered_map/set (point
                         lookups are fine; iteration order is unspecified
                         and must never feed a report, fingerprint, dump,
                         or JSON). Includes range-fors over the raw
                         SharedMemory::cells() accessor — deterministic
                         consumers use sorted_cells().
  nondeterministic-source no rand()/srand()/std::random_device/time()/
                         std::chrono::*_clock::now() inside src/ — every
                         random draw must derive from the run seed.
  pointer-key-order      no std::map/std::set keyed by a raw pointer:
                         pointer values vary run to run, so their order is
                         nondeterministic.
  raw-new-delete         no raw new/delete in the src/sim + src/support
                         hot paths (pools, arenas, and containers only —
                         the steady-state step loop is allocation-free and
                         perf_alloc_test proves it).
  threadpool-shard-ordered
                         ThreadPool / parallel_for inside src/sim/ only on
                         lines covered by a
                         // levnet-lint: shard-ordered(<how results stay
                         ordered>) marker — the engine promises bit-
                         identical results across thread counts, so any
                         parallelism in the step path must document its
                         deterministic (shard-ordered) aggregation.
  endpoint-liveness      calls that turn a processor/module index into a
                         network node (.proc_node(...) / .module_node(...))
                         inside src/ only on lines covered by a
                         // levnet-lint: endpoint-liveness(<why the index
                         is live>) marker — processor endpoints can be
                         dead under faults:procs=, so every such indexing
                         must document why it cannot name a dead endpoint
                         (e.g. the index came through adopt_proc or the
                         module survivor remap).
  wall-clock-confined    std::chrono::*_clock::now() anywhere outside
                         src/analysis/ — wall-clock is timing metadata and
                         lives in the analysis layer only; observability
                         timestamps are virtual (simulation steps), so a
                         clock read in src/obs, tools, tests or bench is a
                         determinism leak.
  blocking-io-confined   blocking I/O primitives (std::cin, std::getline,
                         fgets/fread/scanf, POSIX ::read, socket calls)
                         inside src/ outside src/serve/ — the serving
                         layer and the tools/ front ends own all blocking
                         reads; src/sim, src/emulation and src/machine
                         stay pure string/stream transformations so every
                         library call is replayable.
  packet-layout-assert   src/sim/packet.hpp must keep its
                         static_assert(sizeof(Packet) == 56) layout pin.
  registry-sorted        tables bracketed by
                         // levnet-lint: sorted-table(<name>) ...
                         // levnet-lint: end-table
                         must list their entries in ascending key order.
  pragma-once            every .hpp must open with #pragma once.

Any rule is suppressible per line with an audited escape hatch:

    // levnet-lint: allow(<rule>): <reason>

on the offending line or the comment line(s) immediately above it. The
reason is mandatory; an allow() without one is itself a finding.

Usage:
    levnet_lint.py [--root DIR]     scan the tree (exit 1 on findings)
    levnet_lint.py --self-test      prove every rule fires on a synthetic
                                    violation and is silenced by allow()

Run as a ctest entry (`levnet_lint`, `levnet_lint_selftest`) and a CI job.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from dataclasses import dataclass
from typing import Callable

RULES = (
    "unordered-iteration",
    "nondeterministic-source",
    "pointer-key-order",
    "raw-new-delete",
    "threadpool-shard-ordered",
    "endpoint-liveness",
    "wall-clock-confined",
    "blocking-io-confined",
    "packet-layout-assert",
    "registry-sorted",
    "pragma-once",
)

# Directories scanned relative to the root; build trees never qualify.
SCAN_DIRS = ("src", "tools", "tests", "bench", "examples")

# File-level allowlist: rule -> set of root-relative paths exempt from it.
# PR 6 shrank the unordered-iteration list to empty by migrating the golden
# final-memory fingerprint from raw cells() iteration onto the
# address-ordered SharedMemory::sorted_cells(); keep it empty — prefer the
# line-level `// levnet-lint: allow(...)` with a written reason.
ALLOWLIST: dict[str, set[str]] = {rule: set() for rule in RULES}


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------- lexing

_ALLOW_RE = re.compile(r"levnet-lint:\s*allow\(([a-z-]+)\)(\s*:\s*(\S.*))?")
_DIRECTIVE_RE = re.compile(r"levnet-lint:\s*([a-z-]+(?:\([^)]*\))?)")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Comment text is replaced with spaces so column/line numbers survive;
    string contents become empty literals so patterns never match inside
    quoted text.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            elif c == "\n":  # unterminated; bail to code to stay line-true
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            elif c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


class Suppressions:
    """Line-level allow() directives, including multi-line comment blocks.

    An allow on line K suppresses its rule on K itself and on the next
    non-comment line after the comment block it sits in.
    """

    def __init__(self, raw_lines: list[str], path: str,
                 findings: list[Finding]):
        self.own: list[set[str]] = [set() for _ in raw_lines]
        self.carried: list[set[str]] = [set() for _ in raw_lines]
        pending: set[str] = set()
        for idx, line in enumerate(raw_lines):
            stripped = line.strip()
            is_comment = stripped.startswith("//")
            for match in _ALLOW_RE.finditer(line):
                rule, reason = match.group(1), match.group(3)
                if rule not in RULES:
                    findings.append(Finding(
                        path, idx + 1, "bad-suppression",
                        f"allow() names unknown rule '{rule}' "
                        f"(valid: {', '.join(RULES)})"))
                    continue
                if not reason:
                    findings.append(Finding(
                        path, idx + 1, "bad-suppression",
                        f"allow({rule}) needs a reason: "
                        f"`// levnet-lint: allow({rule}): <why>`"))
                    continue
                self.own[idx].add(rule)
                if is_comment:
                    pending.add(rule)
            if is_comment or not stripped:
                self.carried[idx] |= pending
            else:
                self.carried[idx] |= pending
                pending = set()

    def active(self, line_1based: int) -> set[str]:
        idx = line_1based - 1
        if 0 <= idx < len(self.own):
            return self.own[idx] | self.carried[idx]
        return set()


_SHARD_MARKER_RE = re.compile(r"levnet-lint:\s*shard-ordered\(([^)]+)\)")
_ENDPOINT_MARKER_RE = re.compile(
    r"levnet-lint:\s*endpoint-liveness\(([^)]+)\)")


class MarkerCoverage:
    """<marker>(<desc>) coverage, with the same carry semantics as allow():
    a marker on line K covers K itself and the first non-comment line after
    the comment block it sits in. Shared by the shard-ordered and
    endpoint-liveness rules."""

    def __init__(self, raw_lines: list[str], marker_re: re.Pattern):
        self.covered = [False] * len(raw_lines)
        pending = False
        for idx, line in enumerate(raw_lines):
            stripped = line.strip()
            is_comment = stripped.startswith("//")
            if marker_re.search(line):
                self.covered[idx] = True
                if is_comment:
                    pending = True
            if is_comment or not stripped:
                self.covered[idx] = self.covered[idx] or pending
            else:
                self.covered[idx] = self.covered[idx] or pending
                pending = False


# --------------------------------------------------------------- rules

_UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}]*?>[&\s]*\b(\w+)\s*[;,=({)]")
_RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*?):([^;]*)\)")
_NONDET_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|std::random_device|\btime\s*\(|"
    r"(?:steady_clock|system_clock|high_resolution_clock)::now\s*\(")
_PTR_KEY_RE = re.compile(r"std::(?:map|set)\s*<\s*[^,>]*\*")
_WALLCLOCK_RE = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock)::now\s*\(")
_NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` is still new: see below
_RAW_NEW_RE = re.compile(r"\bnew\b")
_RAW_DELETE_RE = re.compile(r"\bdelete\b(?!\s*;)")  # skips `= delete;`


def rel(path: str, root: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def check_unordered_iteration(path: str, code_lines: list[str],
                              emit: Callable[[int, str, str], None]) -> None:
    code = "\n".join(code_lines)
    unordered_names = set(_UNORDERED_DECL_RE.findall(code))
    for idx, line in enumerate(code_lines):
        for match in _RANGE_FOR_RE.finditer(line):
            range_expr = match.group(2)
            for name in unordered_names:
                if re.search(rf"\b{re.escape(name)}\b", range_expr):
                    emit(idx + 1, "unordered-iteration",
                         f"range-for over unordered container '{name}' — "
                         "iteration order is unspecified; use an "
                         "insertion-ordered FlatMap or sort first")
            if re.search(r"\.\s*cells\s*\(\s*\)", range_expr):
                emit(idx + 1, "unordered-iteration",
                     "range-for over SharedMemory::cells() — use "
                     "sorted_cells() for deterministic order")
        for name in unordered_names:
            # `.end()` alone is a find()-sentinel comparison, not a walk;
            # every genuine iteration needs a begin().
            if re.search(rf"\b{re.escape(name)}\s*\.\s*c?begin\s*\(", line):
                emit(idx + 1, "unordered-iteration",
                     f"iterator walk of unordered container '{name}' — "
                     "iteration order is unspecified")
        if re.search(r"\.\s*cells\s*\(\s*\)\s*\.\s*(?:begin|cbegin)\s*\(",
                     line):
            emit(idx + 1, "unordered-iteration",
                 "iterator walk of SharedMemory::cells() — use "
                 "sorted_cells() for deterministic order")


def check_nondeterministic_source(path: str, code_lines: list[str],
                                  emit: Callable[[int, str, str],
                                                 None]) -> None:
    for idx, line in enumerate(code_lines):
        if _NONDET_RE.search(line):
            emit(idx + 1, "nondeterministic-source",
                 "nondeterministic source in src/ — derive every draw and "
                 "timestamp from the run seed (support::Rng / SplitMix64)")


def check_pointer_key_order(path: str, code_lines: list[str],
                            emit: Callable[[int, str, str], None]) -> None:
    for idx, line in enumerate(code_lines):
        if _PTR_KEY_RE.search(line):
            emit(idx + 1, "pointer-key-order",
                 "ordered container keyed by raw pointer — pointer values "
                 "(and thus iteration order) vary run to run; key by a "
                 "stable id instead")


def check_raw_new_delete(path: str, code_lines: list[str],
                         emit: Callable[[int, str, str], None]) -> None:
    for idx, line in enumerate(code_lines):
        if _RAW_NEW_RE.search(line):
            emit(idx + 1, "raw-new-delete",
                 "raw `new` in a hot-path directory — allocate through "
                 "ObjectPool/Arena or a container")
        if _RAW_DELETE_RE.search(line):
            emit(idx + 1, "raw-new-delete",
                 "raw `delete` in a hot-path directory — pooled storage is "
                 "recycled, never freed mid-run")


_THREADPOOL_USE_RE = re.compile(r"\bThreadPool\b|\bparallel_for\s*\(")


def check_threadpool_shard_ordered(path: str, raw_lines: list[str],
                                   code_lines: list[str],
                                   emit: Callable[[int, str, str],
                                                  None]) -> None:
    """ThreadPool inside the engine only under a shard-ordered marker.

    src/sim promises bit-identical results across step_threads values, so
    every pooled fan-out (and every member holding a pool) must carry a
    // levnet-lint: shard-ordered(<how the results stay deterministic>)
    marker naming its ordered-aggregation strategy. The include line does
    not trigger (thread_pool.hpp never matches \\bThreadPool\\b); comments
    are stripped before matching, so prose mentions are free too.
    """
    markers = MarkerCoverage(raw_lines, _SHARD_MARKER_RE)
    for idx, line in enumerate(code_lines):
        if _THREADPOOL_USE_RE.search(line) and not markers.covered[idx]:
            emit(idx + 1, "threadpool-shard-ordered",
                 "ThreadPool/parallel_for in src/sim without a "
                 "shard-ordered marker — document the deterministic "
                 "aggregation with `// levnet-lint: shard-ordered(<how>)` "
                 "on or above this line")


# Member calls that turn a processor/module index into a network node. The
# [.>] prefix keeps declarations/definitions (`NodeId proc_node(...)`)
# out of scope — only call sites index endpoints.
_ENDPOINT_INDEX_RE = re.compile(r"[.>]\s*(?:proc_node|module_node)\s*\(")


def check_endpoint_liveness(path: str, raw_lines: list[str],
                            code_lines: list[str],
                            emit: Callable[[int, str, str], None]) -> None:
    """Endpoint indexing in src/ only under an endpoint-liveness marker.

    faults:procs= can kill processor endpoints, so a bare proc_node(p) /
    module_node(m) call may aim packets at a dead node. Every call site
    must state why its index is live (adopt_proc output, survivor remap
    output, fault-free context, ...) in a
    // levnet-lint: endpoint-liveness(<why>) marker.
    """
    markers = MarkerCoverage(raw_lines, _ENDPOINT_MARKER_RE)
    for idx, line in enumerate(code_lines):
        if _ENDPOINT_INDEX_RE.search(line) and not markers.covered[idx]:
            emit(idx + 1, "endpoint-liveness",
                 "endpoint indexed without a liveness argument — processor "
                 "endpoints can be dead under faults:procs=; document why "
                 "this index cannot name a dead endpoint with "
                 "`// levnet-lint: endpoint-liveness(<why>)` on or above "
                 "this line")


def check_wall_clock_confined(path: str, code_lines: list[str],
                              emit: Callable[[int, str, str], None]) -> None:
    """Wall-clock reads only in the analysis layer.

    The observability subsystem timestamps everything in virtual steps;
    src/analysis owns the one sanctioned wall-clock use (the informational
    wall_ms column). A clock read anywhere else — recorder, trace export,
    tools, tests, benches — would smuggle host time into artifacts that
    are pinned byte-identical across machines and thread counts.
    """
    for idx, line in enumerate(code_lines):
        if _WALLCLOCK_RE.search(line):
            emit(idx + 1, "wall-clock-confined",
                 "wall-clock read outside src/analysis — observability "
                 "timestamps are virtual (simulation steps); keep host "
                 "time in the analysis layer's wall_ms column")


# Blocking read primitives: C++ stdin handles, C stdio reads, and the
# POSIX file/socket calls. `(?<![\w)])::read` keeps member/static calls
# like MemOp::read() out of scope — only the global-namespace POSIX read
# qualifies. std::getline is blocking on any istream whose source is a
# pipe/socket, so it is confined wholesale; pure string splitting in the
# library uses find()/substr (see machine/run_io.cpp).
_BLOCKING_IO_RE = re.compile(
    r"std::cin\b|std::getline\s*\(|"
    r"\b(?:fgets|fread|fscanf|scanf|getchar|getc|fgetc)\s*\(|"
    r"(?<![\w)])::read\s*\(|"
    r"\b(?:recv|recvfrom|recvmsg|accept|socket|connect|listen|poll|select)"
    r"\s*\(")


def check_blocking_io_confined(path: str, code_lines: list[str],
                               emit: Callable[[int, str, str], None]) -> None:
    """Blocking I/O stays in src/serve/ (and tools/, which is not scanned).

    The library below the serving layer is a pure function of its inputs:
    src/machine parses strings it is handed, src/sim and src/emulation
    never touch the outside world. A blocking read in those layers would
    make library behavior depend on process context (tty vs pipe, socket
    state), which is both untestable and a determinism leak.
    """
    for idx, line in enumerate(code_lines):
        if _BLOCKING_IO_RE.search(line):
            emit(idx + 1, "blocking-io-confined",
                 "blocking I/O primitive in the library outside src/serve — "
                 "keep stdin/socket reads in the serving layer or tools/; "
                 "the library transforms strings it is handed")


def check_registry_sorted(path: str, raw_text: str, code_text: str,
                          emit: Callable[[int, str, str], None]) -> None:
    """Entries between sorted-table markers must be in ascending key order.

    The key of an entry is the first string literal after the entry's
    opening brace at nesting depth 1 relative to the table initializer.
    """
    raw_lines = raw_text.split("\n")
    table_name = None
    table_start = None
    for idx, line in enumerate(raw_lines):
        open_match = re.search(r"levnet-lint:\s*sorted-table\(([\w-]+)\)",
                               line)
        if open_match:
            if table_name is not None:
                emit(idx + 1, "registry-sorted",
                     f"sorted-table({open_match.group(1)}) opened inside "
                     f"unclosed table '{table_name}'")
            table_name = open_match.group(1)
            table_start = idx + 1
            continue
        if re.search(r"levnet-lint:\s*end-table", line):
            if table_name is None:
                emit(idx + 1, "registry-sorted",
                     "end-table with no open sorted-table marker")
                continue
            _check_table_block(path, raw_lines, table_start, idx, table_name,
                               emit)
            table_name = None
            table_start = None
    if table_name is not None:
        emit(len(raw_lines), "registry-sorted",
             f"sorted-table({table_name}) never closed with "
             "`// levnet-lint: end-table`")


def _check_table_block(path: str, raw_lines: list[str], start: int, end: int,
                       name: str,
                       emit: Callable[[int, str, str], None]) -> None:
    block = "\n".join(raw_lines[start:end])
    clean = strip_comments_and_strings(block)
    # Re-scan the *raw* block for string literals, but walk depth on the
    # cleaned text so braces in comments/strings don't confuse nesting.
    depth = 0
    awaiting_key = False
    keys: list[tuple[str, int]] = []  # (key, 1-based line in file)
    line_no = start + 1
    i = 0
    raw_block = "\n".join(raw_lines[start:end])
    while i < len(clean):
        c = clean[i]
        if c == "\n":
            line_no += 1
        elif c == "{":
            depth += 1
            if depth == 2:
                awaiting_key = True
        elif c == "}":
            depth -= 1
        elif c == '"' and awaiting_key:
            # The cleaned text keeps only the quotes; read the literal's
            # contents from the raw block at the same offset.
            j = raw_block.index('"', i)
            k = raw_block.index('"', j + 1)
            keys.append((raw_block[j + 1:k], line_no))
            awaiting_key = False
            i = k + 1
            continue
        i += 1
    if not keys:
        emit(start, "registry-sorted",
             f"sorted-table({name}) contains no keyed entries")
        return
    for (prev, _), (cur, cur_line) in zip(keys, keys[1:]):
        if cur < prev:
            emit(cur_line, "registry-sorted",
                 f"table '{name}' not name-sorted: '{cur}' after '{prev}'")


def check_pragma_once(path: str, raw_text: str,
                      emit: Callable[[int, str, str], None]) -> None:
    head = raw_text.split("\n")[:10]
    if not any(re.match(r"\s*#\s*pragma\s+once\b", line) for line in head):
        emit(1, "pragma-once",
             "header missing #pragma once in its first 10 lines")


# --------------------------------------------------------------- driver

def in_dir(rel_path: str, *dirs: str) -> bool:
    return any(rel_path == d or rel_path.startswith(d + "/") for d in dirs)


def scan_file(path: str, root: str, findings: list[Finding]) -> None:
    rel_path = rel(path, root)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_text = f.read()
    except OSError as error:
        findings.append(Finding(rel_path, 1, "io-error", str(error)))
        return
    raw_lines = raw_text.split("\n")
    code_text = strip_comments_and_strings(raw_text)
    code_lines = code_text.split("\n")

    pre_existing = len(findings)
    suppressions = Suppressions(raw_lines, rel_path, findings)
    del pre_existing

    staged: list[Finding] = []

    def emit(line: int, rule: str, message: str) -> None:
        if rel_path in ALLOWLIST.get(rule, set()):
            return
        if rule in suppressions.active(line):
            return
        staged.append(Finding(rel_path, line, rule, message))

    if in_dir(rel_path, "src", "tools", "tests", "bench", "examples"):
        check_unordered_iteration(rel_path, code_lines, emit)
        check_pointer_key_order(rel_path, code_lines, emit)
    if in_dir(rel_path, "src"):
        check_nondeterministic_source(rel_path, code_lines, emit)
    if in_dir(rel_path, "src/sim", "src/support"):
        check_raw_new_delete(rel_path, code_lines, emit)
    if in_dir(rel_path, "src/sim"):
        check_threadpool_shard_ordered(rel_path, raw_lines, code_lines, emit)
    if in_dir(rel_path, "src"):
        check_endpoint_liveness(rel_path, raw_lines, code_lines, emit)
    if not in_dir(rel_path, "src/analysis"):
        check_wall_clock_confined(rel_path, code_lines, emit)
    if in_dir(rel_path, "src") and not in_dir(rel_path, "src/serve"):
        check_blocking_io_confined(rel_path, code_lines, emit)
    check_registry_sorted(rel_path, raw_text, code_text, emit)
    if rel_path.endswith(".hpp"):
        check_pragma_once(rel_path, raw_text, emit)
    if rel_path == "src/sim/packet.hpp":
        if not re.search(r"static_assert\s*\(\s*sizeof\s*\(\s*Packet\s*\)"
                         r"\s*==\s*56", raw_text):
            emit(1, "packet-layout-assert",
                 "packet.hpp lost its static_assert(sizeof(Packet) == 56) "
                 "layout pin")

    findings.extend(staged)


def scan_tree(root: str) -> list[Finding]:
    findings: list[Finding] = []
    paths: list[str] = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith("build")
                                 and d != "__pycache__")
            for filename in sorted(filenames):
                if filename.endswith((".hpp", ".cpp", ".h", ".cc")):
                    paths.append(os.path.join(dirpath, filename))
    for path in sorted(paths):
        scan_file(path, root, findings)
    return findings


# ------------------------------------------------------------ self-test

_SELFTEST_CASES: list[tuple[str, str, str, bool]] = [
    # (relative path, source text, expected rule, suppressed?)
    ("src/pram/viol_iter.cpp",
     "#include <unordered_map>\n"
     "void f() {\n"
     "  std::unordered_map<int, int> table;\n"
     "  for (const auto& [k, v] : table) { (void)k; (void)v; }\n"
     "}\n",
     "unordered-iteration", False),
    ("src/pram/ok_iter.cpp",
     "#include <unordered_map>\n"
     "void f() {\n"
     "  std::unordered_map<int, int> table;\n"
     "  // levnet-lint: allow(unordered-iteration): self-test reason\n"
     "  for (const auto& [k, v] : table) { (void)k; (void)v; }\n"
     "}\n",
     "unordered-iteration", True),
    ("src/pram/viol_cells.cpp",
     "void f(const levnet::pram::SharedMemory& m) {\n"
     "  for (const auto& kv : m.cells()) { (void)kv; }\n"
     "}\n",
     "unordered-iteration", False),
    ("src/sim/viol_rand.cpp",
     "#include <cstdlib>\n"
     "int f() { return rand(); }\n",
     "nondeterministic-source", False),
    ("src/sim/viol_clock.cpp",
     "#include <chrono>\n"
     "auto f() { return std::chrono::steady_clock::now(); }\n",
     "nondeterministic-source", False),
    ("src/sim/ok_clock.cpp",
     "#include <chrono>\n"
     "// levnet-lint: allow(nondeterministic-source): self-test reason\n"
     "auto f() { return std::chrono::steady_clock::now(); }\n",
     "nondeterministic-source", True),
    ("src/routing/viol_ptrkey.cpp",
     "#include <map>\n"
     "struct Router;\n"
     "std::map<Router*, int> g_ranks;\n",
     "pointer-key-order", False),
    ("src/support/viol_new.cpp",
     "int* f() { return new int(7); }\n",
     "raw-new-delete", False),
    ("src/support/ok_deleted_fn.cpp",
     "struct NoCopy { NoCopy(const NoCopy&) = delete; };\n",
     "raw-new-delete", True),  # `= delete;` is not a deallocation
    ("src/sim/viol_pool.cpp",
     "#include \"support/thread_pool.hpp\"\n"
     "void f(levnet::support::ThreadPool& pool) {\n"
     "  pool.parallel_for(4, [](std::size_t) {});\n"
     "}\n",
     "threadpool-shard-ordered", False),
    ("src/sim/ok_pool_marker.cpp",
     "#include \"support/thread_pool.hpp\"\n"
     "// levnet-lint: shard-ordered(self-test: results merged in shard order)\n"
     "void f(levnet::support::ThreadPool& pool) {\n"
     "  // levnet-lint: shard-ordered(self-test: worker writes are disjoint)\n"
     "  pool.parallel_for(4, [](std::size_t) {});\n"
     "}\n",
     "threadpool-shard-ordered", True),
    ("src/sim/ok_pool_allow.cpp",
     "#include \"support/thread_pool.hpp\"\n"
     "// levnet-lint: allow(threadpool-shard-ordered): self-test reason\n"
     "void f(levnet::support::ThreadPool&) {}\n",
     "threadpool-shard-ordered", True),
    ("src/emulation/viol_endpoint.cpp",
     "void f(const Fabric& fabric, unsigned p, Engine& engine) {\n"
     "  engine.inject(fabric.proc_node(p));\n"
     "}\n",
     "endpoint-liveness", False),
    ("src/emulation/ok_endpoint_marker.cpp",
     "void f(const Fabric& fabric, unsigned p, Engine& engine) {\n"
     "  // levnet-lint: endpoint-liveness(self-test: p is adopt_proc output)\n"
     "  engine.inject(fabric.proc_node(p));\n"
     "}\n",
     "endpoint-liveness", True),
    ("src/emulation/ok_endpoint_decl.hpp",
     "#pragma once\n"
     "struct Fabric {\n"
     "  unsigned proc_node(unsigned p) const noexcept;\n"
     "  unsigned module_node(unsigned m) const noexcept;\n"
     "};\n",
     "endpoint-liveness", True),  # declarations are not call sites
    ("tools/viol_wallclock.cpp",
     "#include <chrono>\n"
     "auto f() { return std::chrono::steady_clock::now(); }\n",
     "wall-clock-confined", False),
    ("bench/ok_wallclock_allow.cpp",
     "#include <chrono>\n"
     "// levnet-lint: allow(wall-clock-confined): self-test reason\n"
     "auto f() { return std::chrono::high_resolution_clock::now(); }\n",
     "wall-clock-confined", True),
    ("src/analysis/ok_wallclock_dir.cpp",
     "#include <chrono>\n"
     "// levnet-lint: allow(nondeterministic-source): self-test reason\n"
     "auto f() { return std::chrono::steady_clock::now(); }\n",
     "wall-clock-confined", True),  # the analysis layer owns wall_ms
    ("src/machine/viol_stdin.cpp",
     "#include <iostream>\n"
     "#include <string>\n"
     "void f(std::string& line) { std::getline(std::cin, line); }\n",
     "blocking-io-confined", False),
    ("src/emulation/viol_socket.cpp",
     "#include <sys/socket.h>\n"
     "int f() { return socket(1, 1, 0); }\n",
     "blocking-io-confined", False),
    ("src/machine/ok_blocking_allow.cpp",
     "#include <unistd.h>\n"
     "// levnet-lint: allow(blocking-io-confined): self-test reason\n"
     "long f(int fd, char* buf) { return ::read(fd, buf, 1); }\n",
     "blocking-io-confined", True),
    ("src/serve/ok_serve_dir.cpp",
     "#include <iostream>\n"
     "#include <string>\n"
     "void f(std::string& line) { std::getline(std::cin, line); }\n",
     "blocking-io-confined", True),  # the serving layer owns blocking reads
    ("src/pram/ok_memop_read.cpp",
     "struct MemOp { static MemOp read(unsigned); };\n"
     "MemOp f(unsigned c) { return MemOp::read(c); }\n",
     "blocking-io-confined", True),  # member/static read() is not POSIX read
    ("src/machine/viol_table.cpp",
     "// levnet-lint: sorted-table(selftest)\n"
     "static const char* kTable[][2] = {\n"
     "    {\"zebra\", \"last\"},\n"
     "    {\"aardvark\", \"first\"},\n"
     "};\n"
     "// levnet-lint: end-table\n",
     "registry-sorted", False),
    ("src/machine/ok_table.cpp",
     "// levnet-lint: sorted-table(selftest-ok)\n"
     "static const char* kTable[][2] = {\n"
     "    {\"aardvark\", \"first\"},\n"
     "    {\"zebra\", \"last\"},\n"
     "};\n"
     "// levnet-lint: end-table\n",
     "registry-sorted", True),
    ("src/support/viol_header.hpp",
     "// a header without the pragma\n"
     "namespace levnet {}\n",
     "pragma-once", False),
    ("src/sim/packet.hpp",
     "#pragma once\n"
     "struct Packet { int x; };\n"
     "// static_assert intentionally absent\n",
     "packet-layout-assert", False),
]


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="levnet_lint_selftest_") as tmp:
        for rel_path, source, rule, _ in _SELFTEST_CASES:
            full = os.path.join(tmp, rel_path)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(source)
        findings = scan_tree(tmp)
        by_file: dict[str, list[Finding]] = {}
        for finding in findings:
            by_file.setdefault(finding.path, []).append(finding)
        for rel_path, _, rule, suppressed in _SELFTEST_CASES:
            fired = [f for f in by_file.get(rel_path, [])
                     if f.rule == rule]
            if suppressed and fired:
                print(f"SELF-TEST FAIL: {rel_path}: allow() did not "
                      f"silence [{rule}]: {fired[0].render()}")
                failures += 1
            elif not suppressed and not fired:
                print(f"SELF-TEST FAIL: {rel_path}: expected [{rule}] "
                      "to fire, got "
                      f"{[f.rule for f in by_file.get(rel_path, [])]}")
                failures += 1
        # A reasonless allow() must itself be reported.
        reasonless = os.path.join(tmp, "src", "support", "reasonless.cpp")
        with open(reasonless, "w", encoding="utf-8") as f:
            f.write("// levnet-lint: allow(raw-new-delete)\n"
                    "int* f() { return new int; }\n")
        bad = [f for f in scan_tree(tmp) if f.path.endswith("reasonless.cpp")]
        if not any(f.rule == "bad-suppression" for f in bad):
            print("SELF-TEST FAIL: reasonless allow() was not reported")
            failures += 1
        if not any(f.rule == "raw-new-delete" for f in bad):
            print("SELF-TEST FAIL: reasonless allow() suppressed the rule")
            failures += 1
    rules_covered = {rule for _, _, rule, _ in _SELFTEST_CASES}
    missing = set(RULES) - rules_covered
    if missing:
        print(f"SELF-TEST FAIL: no case covers: {', '.join(sorted(missing))}")
        failures += 1
    if failures:
        print(f"levnet-lint self-test: {failures} failure(s)")
        return 1
    print(f"levnet-lint self-test: all {len(RULES)} rules fire and "
          "suppress correctly")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="levnet_lint",
        description="determinism invariant checker for the levnet tree")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the checkout containing "
                             "this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on synthetic "
                             "violations")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print(f"levnet-lint: no such root: {root}", file=sys.stderr)
        return 2
    findings = scan_tree(root)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"levnet-lint: {len(findings)} finding(s)")
        return 1
    print("levnet-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
