// levnet_serve — a resident run service over the Machine API.
//
// Reads JSONL run requests (see src/serve/request.hpp for the grammar),
// resolves each against an LRU cache of warm Machine instances, fans
// batches out across a thread pool, and streams one JSON response line
// per request in request order. By default the transport is stdin/stdout:
//
//   printf '{"spec": "star:5/two-phase/crcw/fifo", "seed": 7}\n' |
//     levnet_serve
//
// With --socket PATH the server listens on a local (AF_UNIX) stream
// socket instead, serving one connection at a time; the machine cache is
// shared across connections, so a reconnecting client keeps its warm
// machines. SIGTERM/SIGINT drain the in-flight batch, emit the final
// stats line, and exit 0.

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "machine/run_io.hpp"
#include "serve/farm.hpp"
#include "serve/session.hpp"

// POSIX fd streambufs: the session reads std::istream, the socket hands us
// fds. A minimal unbuffered-write / block-buffered-read pair is all the
// JSONL protocol needs.
#include <cstring>
#include <streambuf>
#include <vector>

namespace {

constexpr const char kUsage[] =
    "usage: levnet_serve [options]\n"
    "  --socket PATH      listen on a local stream socket instead of stdin\n"
    "  --cache N          warm-machine LRU capacity (default 8; 0 = off)\n"
    "  --queue-depth N    max requests per batch / in flight (default 64)\n"
    "  --workers N        run parallelism (default 0 = hardware threads)\n"
    "  --help             this text\n"
    "\n"
    "protocol: one JSON object per input line, e.g.\n"
    "  {\"spec\": \"star:5/two-phase/crcw/fifo\", \"program\": "
    "\"histogram\", \"seed\": 7}\n"
    "one response line per request, in request order, then a final stats\n"
    "line on EOF/SIGTERM.\n";

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

/// Installs the handler WITHOUT SA_RESTART so a signal interrupts the
/// blocking read and the session drains instead of blocking forever.
void install_signal_handlers() {
  struct sigaction action = {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

struct Options {
  std::string socket_path;
  unsigned long cache = 8;
  unsigned long queue_depth = 64;
  unsigned long workers = 0;
};

bool parse_args(int argc, char** argv, Options& options, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string& out) {
      if (i + 1 >= argc) {
        error = arg + " needs a value";
        return false;
      }
      out = argv[++i];
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--socket") {
      if (!value(options.socket_path)) return false;
    } else if (arg == "--cache" || arg == "--queue-depth" ||
               arg == "--workers") {
      std::string text;
      if (!value(text)) return false;
      unsigned long parsed = 0;
      if (!levnet::machine::parse_count(text, parsed)) {
        error = "bad number '" + text + "' for " + arg +
                " (expected an unsigned integer)";
        return false;
      }
      if (arg == "--cache") options.cache = parsed;
      if (arg == "--queue-depth") options.queue_depth = parsed;
      if (arg == "--workers") options.workers = parsed;
    } else {
      error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  return true;
}

/// Read-side streambuf over a connected socket fd; EINTR (the stop
/// signal) reads as EOF so the session drains.
class FdInBuf : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd), buffer_(1 << 16) {}

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, buffer_.data(), buffer_.size());
    if (n <= 0) return traits_type::eof();
    setg(buffer_.data(), buffer_.data(), buffer_.data() + n);
    return traits_type::to_int_type(*gptr());
  }

  /// The session's batch bound peeks at in_avail(); report only what is
  /// already in our buffer (showmanyc's default of 0), never block.

 private:
  int fd_;
  std::vector<char> buffer_;
};

/// Write-side streambuf over a connected socket fd.
class FdOutBuf : public std::streambuf {
 public:
  explicit FdOutBuf(int fd) : fd_(fd) {}

 protected:
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return ch;
    const char byte = traits_type::to_char_type(ch);
    return write_all(&byte, 1) ? ch : traits_type::eof();
  }
  std::streamsize xsputn(const char* data, std::streamsize count) override {
    return write_all(data, static_cast<std::size_t>(count))
               ? count
               : std::streamsize{0};
  }

 private:
  bool write_all(const char* data, std::size_t count) {
    while (count > 0) {
      const ssize_t n = ::write(fd_, data, count);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      data += n;
      count -= static_cast<std::size_t>(n);
    }
    return true;
  }

  int fd_;
};

int serve_stdio(levnet::serve::Farm& farm,
                const levnet::serve::SessionConfig& config) {
  levnet::serve::Session session(farm, config);
  session.serve(std::cin, std::cout);
  return 0;
}

int serve_socket(levnet::serve::Farm& farm,
                 const levnet::serve::SessionConfig& config,
                 const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "levnet_serve: cannot create socket\n";
    return 1;
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "levnet_serve: socket path too long '" << path << "'\n";
    ::close(listener);
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::cerr << "levnet_serve: cannot listen on '" << path << "'\n";
    ::close(listener);
    return 1;
  }
  std::cerr << "levnet_serve: listening on " << path << "\n";

  // One connection at a time; the shared farm keeps the cache warm across
  // connections. A stop signal interrupts accept() and we exit cleanly.
  while (g_stop == 0) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;
    }
    FdInBuf in_buf(conn);
    FdOutBuf out_buf(conn);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    levnet::serve::Session session(farm, config);
    session.serve(in, out);
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string error;
  if (!parse_args(argc, argv, options, error)) {
    std::cerr << "levnet_serve: " << error << "\n" << kUsage;
    return 2;
  }
  install_signal_handlers();

  levnet::serve::Farm farm(
      levnet::serve::FarmConfig{static_cast<std::size_t>(options.cache)});
  levnet::serve::SessionConfig config;
  config.queue_depth = static_cast<std::size_t>(options.queue_depth);
  config.workers = static_cast<unsigned>(options.workers);
  config.should_stop = [] { return g_stop != 0; };

  if (!options.socket_path.empty()) {
    return serve_socket(farm, config, options.socket_path);
  }
  return serve_stdio(farm, config);
}
