#!/usr/bin/env python3
"""Validates levnet observability exports.

Checks a Chrome/Perfetto trace produced by `levnet_run --trace` (and,
optionally, the matching `--metrics` JSONL) for structural soundness:

  * the trace parses, carries a traceEvents list, and every event has the
    fields the trace-event format requires (ph, name, pid, tid; complete
    "X" events also ts/dur/cat);
  * span names and categories come from the recorder's fixed vocabulary
    (engine: phaseA/phaseB/phaseC/landing; packet: data/request/reply);
  * timestamps are virtual (non-negative integers) — wall-clock leakage
    into the trace would show up as huge epoch offsets;
  * metrics lines are well-formed run/sample records whose counter keys
    match the probe registry, with per-seed monotone sample steps;
  * when the metrics report consumed packets and the trace was recorded
    with packet spans, the two agree that packet spans exist.

Usage:
  levnet_trace_check.py TRACE.json [--metrics FILE.jsonl]
  levnet_trace_check.py --self-test

Exit status 0 when every check passes, 1 otherwise (failures listed on
stderr). No dependencies outside the standard library.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

# Mirrors src/obs/probes.hpp (kProbeInfo); keep sorted and in sync.
PROBE_NAMES = (
    "cache_evictions",
    "cache_hits",
    "cache_misses",
    "combining_merges",
    "consumptions",
    "detours",
    "injections",
    "rehash_attempts",
    "transmissions",
)

ENGINE_SPANS = {"phaseA", "phaseB", "phaseC", "landing"}
PACKET_SPANS = {"data", "request", "reply"}
QUANTILE_KEYS = {"p50", "p95", "p99", "samples", "sum"}


def _is_count(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_trace(text: str, errors: List[str]) -> dict:
    """Validates trace JSON text; returns {'engine': n, 'packet': n} span
    counts (zeros when the trace was unreadable)."""
    counts = {"engine": 0, "packet": 0}
    try:
        root = json.loads(text)
    except json.JSONDecodeError as exc:
        errors.append(f"trace: not valid JSON: {exc}")
        return counts
    if not isinstance(root, dict):
        errors.append("trace: top level must be an object")
        return counts
    events = root.get("traceEvents")
    if not isinstance(events, list):
        errors.append("trace: missing traceEvents list")
        return counts
    for index, event in enumerate(events):
        where = f"trace: traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            errors.append(f"{where}: ph must be 'X' or 'M', got {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing event name")
            continue
        if not _is_count(event.get("pid")) or not _is_count(event.get("tid")):
            errors.append(f"{where}: pid/tid must be non-negative integers")
            continue
        if ph == "M":
            continue
        if not _is_count(event.get("ts")):
            errors.append(f"{where}: ts must be a non-negative integer "
                          "(virtual steps, not wall clock)")
            continue
        dur = event.get("dur")
        if not _is_count(dur) or dur == 0:
            errors.append(f"{where}: dur must be a positive integer")
            continue
        cat = event.get("cat")
        name = event["name"]
        if cat == "engine":
            if name not in ENGINE_SPANS:
                errors.append(f"{where}: unknown engine span '{name}'")
                continue
        elif cat == "packet":
            if name not in PACKET_SPANS:
                errors.append(f"{where}: unknown packet span '{name}'")
                continue
        else:
            errors.append(f"{where}: cat must be 'engine' or 'packet', "
                          f"got {cat!r}")
            continue
        counts[cat] += 1
    if not errors and counts["engine"] == 0:
        errors.append("trace: no engine phase spans (empty or truncated "
                      "recording)")
    return counts


def _check_counters(obj: object, where: str, errors: List[str]) -> None:
    if not isinstance(obj, dict) or tuple(obj.keys()) != PROBE_NAMES:
        errors.append(f"{where}: counters keys must be exactly "
                      f"{list(PROBE_NAMES)} in order")
        return
    for key, value in obj.items():
        if not _is_count(value):
            errors.append(f"{where}: counter '{key}' must be a "
                          "non-negative integer")


def _check_quantiles(obj: object, where: str, errors: List[str]) -> None:
    if not isinstance(obj, dict) or set(obj.keys()) != QUANTILE_KEYS:
        errors.append(f"{where}: quantile keys must be "
                      f"{sorted(QUANTILE_KEYS)}")
        return
    for key, value in obj.items():
        if not _is_count(value):
            errors.append(f"{where}: quantile field '{key}' must be a "
                          "non-negative integer")


def check_metrics(text: str, errors: List[str]) -> int:
    """Validates metrics JSONL text; returns total consumptions reported
    by run lines."""
    consumptions = 0
    last_step = {}  # seed -> last sample step
    seen_run = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"metrics:{lineno}"
        if not line.strip():
            errors.append(f"{where}: blank line (JSONL must be dense)")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: not valid JSON: {exc}")
            continue
        if not isinstance(record, dict):
            errors.append(f"{where}: line must be a JSON object")
            continue
        kind = record.get("type")
        seed = record.get("seed")
        if not _is_count(seed):
            errors.append(f"{where}: seed must be a non-negative integer")
            continue
        if kind == "run":
            if seed in seen_run:
                errors.append(f"{where}: duplicate run line for seed {seed}")
                continue
            seen_run.add(seed)
            if not _is_count(record.get("virtual_steps")):
                errors.append(f"{where}: virtual_steps must be a "
                              "non-negative integer")
            levels = record.get("levels")
            if not _is_count(levels) or levels == 0:
                errors.append(f"{where}: levels must be a positive integer")
            _check_counters(record.get("counters"), where, errors)
            _check_quantiles(record.get("latency"), where, errors)
            _check_quantiles(record.get("queue_delay"), where, errors)
            counters = record.get("counters")
            if isinstance(counters, dict):
                value = counters.get("consumptions")
                if _is_count(value):
                    consumptions += value
        elif kind == "sample":
            if seed not in seen_run:
                errors.append(f"{where}: sample before the run line for "
                              f"seed {seed}")
                continue
            step = record.get("step")
            if not _is_count(step):
                errors.append(f"{where}: step must be a non-negative integer")
                continue
            if step <= last_step.get(seed, -1):
                errors.append(f"{where}: sample steps must be strictly "
                              f"increasing per seed (step {step} after "
                              f"{last_step[seed]})")
            last_step[seed] = step
            if not _is_count(record.get("in_flight")):
                errors.append(f"{where}: in_flight must be a non-negative "
                              "integer")
            _check_counters(record.get("counters"), where, errors)
            queue = record.get("level_queue")
            if (not isinstance(queue, list) or not queue
                    or not all(_is_count(q) for q in queue)):
                errors.append(f"{where}: level_queue must be a non-empty "
                              "list of non-negative integers")
        else:
            errors.append(f"{where}: type must be 'run' or 'sample', "
                          f"got {kind!r}")
    if not seen_run:
        errors.append("metrics: no run lines")
    return consumptions


def check_files(trace_path: str, metrics_path: Optional[str]) -> List[str]:
    errors: List[str] = []
    try:
        with open(trace_path, "r", encoding="utf-8") as handle:
            trace_text = handle.read()
    except OSError as exc:
        return [f"trace: cannot read {trace_path}: {exc}"]
    span_counts = check_trace(trace_text, errors)
    if metrics_path is not None:
        try:
            with open(metrics_path, "r", encoding="utf-8") as handle:
                metrics_text = handle.read()
        except OSError as exc:
            errors.append(f"metrics: cannot read {metrics_path}: {exc}")
            return errors
        consumptions = check_metrics(metrics_text, errors)
        if (not errors and consumptions > 0
                and span_counts["packet"] == 0):
            errors.append("metrics report consumed packets but the trace "
                          "has no packet spans (trace recorded without the "
                          "'trace' token?)")
    return errors


# ----------------------------------------------------------------- self-test

_GOOD_TRACE = json.dumps({
    "displayTimeUnit": "ms",
    "traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "seed 0"}},
        {"name": "phaseA", "cat": "engine", "ph": "X", "ts": 4, "dur": 1,
         "pid": 0, "tid": 0},
        {"name": "data", "cat": "packet", "ph": "X", "ts": 4, "dur": 8,
         "pid": 0, "tid": 3},
    ],
})

_GOOD_METRICS = "\n".join([
    json.dumps({"type": "run", "seed": 0, "virtual_steps": 9,
                "counters": {name: 1 for name in PROBE_NAMES},
                "latency": {"p50": 1, "p95": 2, "p99": 2, "samples": 3,
                            "sum": 4},
                "queue_delay": {"p50": 0, "p95": 1, "p99": 1, "samples": 3,
                                "sum": 1},
                "levels": 2}),
    json.dumps({"type": "sample", "seed": 0, "step": 1, "in_flight": 2,
                "counters": {name: 0 for name in PROBE_NAMES},
                "level_queue": [1, 1]}),
    json.dumps({"type": "sample", "seed": 0, "step": 2, "in_flight": 1,
                "counters": {name: 0 for name in PROBE_NAMES},
                "level_queue": [0, 1]}),
])

# (description, mutate_trace, mutate_metrics, expected_error_fragment)
_SELFTEST_CASES = [
    ("valid pair accepted", None, None, None),
    ("broken JSON rejected", lambda t: t[:-2], None, "not valid JSON"),
    ("unknown span rejected",
     lambda t: t.replace('"phaseA"', '"phaseZ"'), None,
     "unknown engine span"),
    ("negative ts rejected",
     lambda t: t.replace('"ts": 4, "dur": 1', '"ts": -4, "dur": 1'), None,
     "ts must be a non-negative integer"),
    ("zero dur rejected",
     lambda t: t.replace('"dur": 1', '"dur": 0'), None,
     "dur must be a positive integer"),
    ("bad ph rejected",
     lambda t: t.replace('"ph": "M"', '"ph": "B"'), None,
     "ph must be 'X' or 'M'"),
    ("engine-free trace rejected",
     lambda t: t.replace('"cat": "engine"', '"cat": "packet"').replace(
         '"phaseA"', '"data"'), None,
     "no engine phase spans"),
    ("counter drift rejected", None,
     lambda m: m.replace('"detours"', '"detour"'),
     "counters keys must be exactly"),
    ("non-monotone samples rejected", None,
     lambda m: m.replace('"step": 2', '"step": 1'),
     "strictly increasing"),
    ("sample before run rejected", None,
     lambda m: "\n".join(m.splitlines()[1:]),
     "sample before the run line"),
    ("missing quantile key rejected", None,
     lambda m: m.replace('"p99": 2, ', ""),
     "quantile keys must be"),
    # mutate_trace is None here: self_test() rebuilds a packet-free trace
    # from the parsed good trace for this case.
    ("consumptions without packet spans rejected", None, None,
     "no packet spans"),
]


def self_test() -> int:
    failures = []
    for description, mutate_trace, mutate_metrics, expected in _SELFTEST_CASES:
        trace = mutate_trace(_GOOD_TRACE) if mutate_trace else _GOOD_TRACE
        metrics = (mutate_metrics(_GOOD_METRICS) if mutate_metrics
                   else _GOOD_METRICS)
        if expected == "no packet spans":
            # Drop the packet spans from the parsed good trace.
            root = json.loads(_GOOD_TRACE)
            root["traceEvents"] = [e for e in root["traceEvents"]
                                   if e.get("cat") != "packet"]
            trace = json.dumps(root)
        errors: List[str] = []
        span_counts = check_trace(trace, errors)
        consumptions = check_metrics(metrics, errors)
        if not errors and consumptions > 0 and span_counts["packet"] == 0:
            errors.append("metrics report consumed packets but the trace "
                          "has no packet spans")
        if expected is None:
            if errors:
                failures.append(f"{description}: unexpected errors {errors}")
        elif not any(expected in e for e in errors):
            failures.append(f"{description}: expected '{expected}' in "
                            f"{errors}")
    for failure in failures:
        print(f"levnet_trace_check self-test FAILED: {failure}",
              file=sys.stderr)
    if not failures:
        print(f"levnet_trace_check self-test OK "
              f"({len(_SELFTEST_CASES)} cases)")
    return 1 if failures else 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description="validate levnet trace/metrics exports")
    parser.add_argument("trace", nargs="?", help="trace JSON from --trace")
    parser.add_argument("--metrics", help="metrics JSONL from --metrics")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded good/bad cases")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if args.trace is None:
        parser.error("a trace file is required (or --self-test)")
    errors = check_files(args.trace, args.metrics)
    for error in errors:
        print(f"levnet_trace_check: {error}", file=sys.stderr)
    if not errors:
        checked = args.trace if args.metrics is None else (
            f"{args.trace} + {args.metrics}")
        print(f"levnet_trace_check: OK ({checked})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
