#!/usr/bin/env python3
"""Load generator + response validator for levnet_serve.

Drives a levnet_serve process with N interleaved client streams over M
distinct machine specs (mixing in malformed requests), then validates the
response stream:

  * exactly one response line per request, in request order (seq 0..n-1),
  * each response echoes the id of the request with that seq,
  * valid requests come back status=ok, malformed ones status=error
    (and the process survives them),
  * responses for identical (spec, program, seed, steps) requests are
    byte-identical past the seq/id prefix (the determinism contract),
  * the final stats line accounts for every request, and its cache
    counters satisfy hits + misses + uncacheable == ok.

Transports: by default the server is spawned and driven over stdin/stdout;
with --socket PATH the server is spawned with --socket and driven over the
Unix socket. Exits nonzero with a diagnostic on any validation failure.

Used by the CI bench-smoke and TSan jobs; also handy interactively:

  python3 tools/levnet_client.py --server build/tools/levnet_serve \
      --clients 4 --requests 32
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time

DEFAULT_SPECS = [
    "star:5/two-phase/crcw-combining/fifo",
    "shuffle:3/two-phase/crcw/fifo",
]

PROGRAMS = ["permutation", "histogram", "prefix-sum"]

INVALID_LINES = [
    '{"spec": "nope:3/greedy"}',
    '{"bad json',
    '{"spec": "star:5/two-phase/crcw/fifo", "frobnicate": 1}',
    '{"program": "histogram"}',
]


def build_requests(args):
    """Returns the interleaved request list: (line, id_tag, expect_ok, key).

    `key` identifies runs that must be byte-identical: (spec, program,
    seed, steps) for valid requests, None for invalid ones.
    """
    requests = []
    invalid_used = 0
    for j in range(args.requests):
        client = j % args.clients
        tag = "c%d-r%d" % (client, j // args.clients)
        if args.invalid_every > 0 and j % args.invalid_every == args.invalid_every - 1:
            line = INVALID_LINES[invalid_used % len(INVALID_LINES)]
            invalid_used += 1
            requests.append((line, None, False, None))
            continue
        # Cycle specs by request index, not (client + j): client is
        # j % clients, so for even client counts their sum is always
        # even and a 2-spec list would never rotate.
        spec = args.specs[j % len(args.specs)]
        program = PROGRAMS[j % len(PROGRAMS)]
        seed = 100 + (j % 3)  # deliberate repeats: exercises byte-identity
        body = {"spec": spec, "program": program, "seed": seed, "id": tag}
        requests.append((json.dumps(body), tag, True, (spec, program, seed)))
    return requests


def run_stdio(server_cmd, payload):
    proc = subprocess.run(
        server_cmd, input=payload, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, timeout=600)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr.decode(errors="replace"))
        raise SystemExit("FAIL: server exited %d" % proc.returncode)
    return proc.stdout.decode()


def run_socket(server_cmd, payload, socket_path):
    proc = subprocess.Popen(server_cmd + ["--socket", socket_path],
                            stderr=subprocess.PIPE)
    try:
        deadline = time.time() + 30
        while not os.path.exists(socket_path):
            if time.time() > deadline or proc.poll() is not None:
                raise SystemExit("FAIL: server never opened %s" % socket_path)
            time.sleep(0.05)
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
            conn.connect(socket_path)
            conn.sendall(payload)
            conn.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = conn.recv(1 << 16)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks).decode()
    finally:
        proc.terminate()
        proc.wait(timeout=30)


def validate(requests, output):
    lines = [line for line in output.splitlines() if line]
    if len(lines) != len(requests) + 1:
        raise SystemExit("FAIL: %d requests but %d response lines (want +1 "
                         "stats line)" % (len(requests), len(lines)))
    stats = json.loads(lines[-1])
    if stats.get("status") != "stats":
        raise SystemExit("FAIL: last line is not the stats line: %s"
                         % lines[-1])

    ok = errors = 0
    by_key = {}
    for seq, ((_, tag, expect_ok, key), line) in enumerate(
            zip(requests, lines[:-1])):
        response = json.loads(line)
        if response.get("seq") != seq:
            raise SystemExit("FAIL: response %d carries seq %r (out of "
                             "order?)" % (seq, response.get("seq")))
        if tag is not None and response.get("id") != tag:
            raise SystemExit("FAIL: seq %d echoes id %r, want %r"
                             % (seq, response.get("id"), tag))
        status = response.get("status")
        if expect_ok and status != "ok":
            raise SystemExit("FAIL: seq %d should be ok, got: %s"
                             % (seq, line))
        if not expect_ok and status != "error":
            raise SystemExit("FAIL: seq %d should be an error line, got: %s"
                             % (seq, line))
        if status == "ok":
            ok += 1
            # The run payload ("report" onward) must be byte-identical for
            # identical requests; seq/id/cache legitimately differ.
            body = line[line.index('"report"'):]
            previous = by_key.setdefault(key, (seq, body))
            if previous[1] != body:
                raise SystemExit(
                    "FAIL: seq %d and seq %d ran identical requests but "
                    "differ:\n  %s\n  %s" % (previous[0], seq, previous[1],
                                             body))
        else:
            errors += 1

    for field, want in [("requests", len(requests)), ("ok", ok),
                        ("errors", errors)]:
        if stats.get(field) != want:
            raise SystemExit("FAIL: stats %s = %r, want %d"
                             % (field, stats.get(field), want))
    resolved = (stats.get("cache_hits", 0) + stats.get("cache_misses", 0)
                + stats.get("uncacheable", 0))
    if resolved != ok:
        raise SystemExit("FAIL: cache counters account for %d resolves but "
                         "%d requests ran" % (resolved, ok))
    return stats


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--server", required=True,
                        help="path to the levnet_serve binary")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--specs", nargs="+", default=DEFAULT_SPECS,
                        help="distinct machine specs to cycle (>= 2 for the "
                             "cache to matter)")
    parser.add_argument("--invalid-every", type=int, default=5,
                        help="make every Kth request malformed (0 = none)")
    parser.add_argument("--cache", type=int, default=8)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--socket", action="store_true",
                        help="drive the server over a Unix socket instead "
                             "of stdin/stdout")
    args = parser.parse_args()

    requests = build_requests(args)
    payload = "".join(line + "\n" for line, _, _, _ in requests).encode()
    server_cmd = [args.server, "--cache", str(args.cache),
                  "--queue-depth", str(args.queue_depth),
                  "--workers", str(args.workers)]

    if args.socket:
        with tempfile.TemporaryDirectory() as tmp:
            output = run_socket(server_cmd, payload,
                                os.path.join(tmp, "serve.sock"))
    else:
        output = run_stdio(server_cmd, payload)

    stats = validate(requests, output)
    print("OK: %d requests (%d ok, %d errors), %d batches (peak %d), "
          "cache %d hit / %d miss / %d evicted"
          % (stats["requests"], stats["ok"], stats["errors"],
             stats["batches"], stats["peak_batch"], stats["cache_hits"],
             stats["cache_misses"], stats["cache_evictions"]))


if __name__ == "__main__":
    main()
