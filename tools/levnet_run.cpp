// levnet_run — one emulated PRAM machine from a spec string, no recompile.
//
//   levnet_run 'star:5/two-phase/crcw-combining/fifo' \ ...
//       --program histogram --seeds 5 --threads 8 --json out/
//   levnet_run --spec-file scenario.json
//   levnet_run --list
//
// The spec grammar lives in machine/spec.hpp; --list prints the registered
// topology families (with their routers), program families, modes,
// disciplines and knobs. The run fans the seeds across a thread pool with
// the same bit-identical seed derivation as the bench harness and emits a
// report JSON (aggregate stats + per-seed EmulationReports).
//
// A --spec-file is a flat JSON object; string values for "spec"/"program",
// numbers for "seeds"/"threads"/"steps"/"step-threads":
//
//   {"spec": "shuffle:9/two-phase/crcw-combining/furthest-first",
//    "program": "histogram", "seeds": 5, "threads": 8}

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "analysis/trials.hpp"
#include "machine/machine.hpp"
#include "machine/registry.hpp"
#include "machine/run_io.hpp"
#include "machine/spec.hpp"
#include "obs/recorder.hpp"

namespace {

using namespace levnet;

// Strict count parsing, the flat-JSON spec-file decoder and the per-seed
// report-field writer live in machine/run_io.* — shared with the
// levnet_serve request decoder so both front ends accept the same shape,
// emit the same error messages, and write byte-identical report payloads.
using machine::json_escape;
using machine::parse_count;

struct Options {
  std::string spec_text;
  std::string spec_file;
  std::string program = "permutation";
  std::string json_path;
  std::string metrics_path;  // --metrics: per-seed probe JSONL
  std::string trace_path;    // --trace: Chrome/Perfetto trace JSON
  std::uint32_t seeds = 5;
  std::uint32_t steps = 4;  // PRAM steps for the synthetic-traffic programs
  unsigned threads = 0;
  /// Engine step parallelism override (spec `threads:` token); the
  /// sentinel leaves whatever the spec says untouched.
  static constexpr std::uint32_t kKeepSpec = ~std::uint32_t{0};
  std::uint32_t step_threads = kKeepSpec;
  bool list = false;
  bool help = false;
};

constexpr const char kUsage[] =
    "usage: levnet_run SPEC [options]\n"
    "       levnet_run --spec-file FILE.json [options]\n"
    "       levnet_run --list\n"
    "\n"
    "  SPEC                 machine spec, e.g. "
    "star:5/two-phase/crcw-combining/fifo\n"
    "  --program KEY        PRAM program family (default: permutation)\n"
    "  --steps N            PRAM steps for the traffic programs (default 4)\n"
    "  --seeds N            independent trials (default 5)\n"
    "  --threads N          pool size for fanning seeds, 0 = hardware\n"
    "                       concurrency (default)\n"
    "  --step-threads N     intra-trial parallelism: shard each engine step\n"
    "                       over N threads (spec token 'threads:N'; results\n"
    "                       are bit-identical for any N; 0 = hardware\n"
    "                       concurrency, default: whatever the spec says)\n"
    "  --json PATH          write the report JSON to PATH (a directory gets\n"
    "                       an auto-named RUN_<spec>__<program>.json; '-'\n"
    "                       writes to stdout)\n"
    "  --metrics FILE       write per-seed probe metrics (counters, latency\n"
    "                       quantiles, step samples) as JSON Lines; implies\n"
    "                       spec token obs:1 unless the spec sets a cadence\n"
    "  --trace FILE         write a Chrome/Perfetto trace (virtual-time\n"
    "                       packet and engine-phase spans; spec token\n"
    "                       'trace'); open via ui.perfetto.dev\n"
    "  --spec-file FILE     read spec/program/seeds/threads/steps/\n"
    "                       step-threads from a flat JSON object instead of\n"
    "                       the command line\n"
    "  --list               print every registered topology, router,\n"
    "                       program family, mode, discipline and knob\n";

bool parse_args(int argc, char** argv, Options& options, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](std::string& out) {
      if (i + 1 >= argc) {
        error = arg + " needs a value";
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--program") {
      if (!next(options.program)) return false;
    } else if (arg == "--json") {
      if (!next(options.json_path)) return false;
    } else if (arg == "--metrics") {
      if (!next(options.metrics_path)) return false;
    } else if (arg == "--trace") {
      if (!next(options.trace_path)) return false;
    } else if (arg == "--spec-file") {
      if (!next(options.spec_file)) return false;
    } else if (arg == "--seeds" || arg == "--steps" || arg == "--threads" ||
               arg == "--step-threads") {
      if (!next(value)) return false;
      unsigned long parsed = 0;
      if (!parse_count(value, parsed)) {
        error = "bad number '" + value + "' for " + arg +
                " (expected an unsigned integer)";
        return false;
      }
      if (arg == "--seeds") {
        options.seeds = static_cast<std::uint32_t>(parsed);
      } else if (arg == "--steps") {
        options.steps = static_cast<std::uint32_t>(parsed);
      } else if (arg == "--step-threads") {
        options.step_threads = static_cast<std::uint32_t>(parsed);
      } else {
        options.threads = static_cast<unsigned>(parsed);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      error = "unknown flag '" + arg + "'";
      return false;
    } else if (options.spec_text.empty()) {
      options.spec_text = arg;
    } else {
      error = "unexpected extra argument '" + arg + "'";
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------ JSON helpers

bool apply_spec_file(Options& options, std::string& error) {
  std::ifstream in(options.spec_file);
  if (!in) {
    error = "cannot open spec file '" + options.spec_file + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::map<std::string, std::string> values;
  if (!machine::parse_flat_json(buffer.str(), values, error)) return false;
  const auto number = [&](const char* key, auto& out) {
    unsigned long parsed = 0;
    bool present = values.count(key) != 0;
    if (!machine::read_count_field(values, key, "spec file", parsed, error)) {
      return false;
    }
    if (present) {
      out = static_cast<std::remove_reference_t<decltype(out)>>(parsed);
    }
    return true;
  };
  if (values.count("spec") != 0) options.spec_text = values["spec"];
  if (values.count("program") != 0) options.program = values["program"];
  return number("seeds", options.seeds) && number("steps", options.steps) &&
         number("threads", options.threads) &&
         number("step-threads", options.step_threads);
}

// ------------------------------------------------------------------ --list

void print_catalogue(std::ostream& os) {
  os << "topology families (key:params / routers; * = default router):\n";
  for (const machine::TopologyInfo& info : machine::topology_families()) {
    os << "  " << info.key << ":" << info.params_help << "\n      "
       << info.description << "\n      routers:";
    bool first = true;
    for (const machine::RouterInfo& router : info.routers) {
      os << (first ? " *" : " ") << router.key;
      if (router.takes_param) os << "[:param]";
      first = false;
    }
    os << "\n";
  }
  os << "\nprogram families (--program):\n";
  for (const machine::ProgramInfo& info : machine::program_families()) {
    os << "  " << info.key;
    for (std::size_t pad = std::string(info.key).size(); pad < 16; ++pad) {
      os << ' ';
    }
    os << info.description;
    if (info.wants_combining) os << " [combining recommended]";
    os << "\n";
  }
  os << "\nmodes:        erew | crew | crcw | crcw-combining\n"
     << "disciplines:  fifo | furthest-first | nearest-first\n"
     << "threads:      threads:N  sharded stepping (1 = serial, 0 = hardware\n"
     << "              concurrency; results identical across values)\n"
     << "obs:          obs:N sample probes every Nth step; 'trace' records\n"
     << "              virtual-time spans (both result-inert; see --metrics\n"
     << "              and --trace)\n"
     << "faults:       faults:links=F,nodes=F,procs=F,modules=F,onsets=N,\n"
     << "              allow-cut=1 (procs= kills processor endpoints;\n"
     << "              survivors adopt the dead program slots)\n"
     << "knobs:        seed=N budget=N rehash=N hash-degree=N buffer=N\n"
     << "\nexample:\n  levnet_run 'star:5/two-phase/crcw-combining/fifo/"
        "faults:links=0.05' --program histogram --seeds 5\n";
}

// ------------------------------------------------------------------ report

void write_report_json(std::ostream& os, const Options& options,
                       const machine::MachineSpec& spec,
                       const machine::Machine& machine,
                       const analysis::TrialStats& stats,
                       const std::vector<emulation::EmulationReport>& reports) {
  os << "{\n  \"spec\": \"";
  json_escape(os, options.spec_text);
  os << "\",\n  \"canonical_spec\": \"";
  json_escape(os, spec.to_string());
  os << "\",\n  \"program\": \"";
  json_escape(os, options.program);
  os << "\",\n  \"machine\": {\"name\": \"";
  json_escape(os, machine.name());
  os << "\", \"nodes\": " << machine.graph().node_count()
     << ", \"processors\": " << machine.processors()
     << ", \"route_scale\": " << machine.route_scale() << "},\n"
     << "  \"seeds\": " << options.seeds
     << ",\n  \"threads\": " << options.threads
     << ",\n  \"pram_steps_cap\": " << options.steps << ",\n"
     << "  \"aggregate\": {\"steps_mean\": " << stats.steps.mean
     << ", \"steps_max\": " << stats.steps.max
     << ", \"worst_step_max\": " << stats.worst_step.max
     << ", \"max_link_queue\": " << stats.max_link_queue.max
     << ", \"max_node_queue\": " << stats.max_node_queue.max
     << ", \"combined_mean\": " << stats.combined_mean
     << ", \"rehashes_mean\": " << stats.rehashes_mean
     << ", \"local_ops_mean\": " << stats.local_ops_mean
     << ", \"detours_mean\": " << stats.detours_mean
     << ", \"dropped_mean\": " << stats.dropped_mean
     << ", \"fault_rehashes_mean\": " << stats.fault_rehashes_mean
     << ", \"adopted_slot_steps_mean\": " << stats.adopted_slot_steps_mean
     << ", \"peak_in_flight_max\": " << stats.peak_in_flight.max
     << ", \"latency_p50_mean\": " << stats.latency_p50.mean
     << ", \"latency_p95_mean\": " << stats.latency_p95.mean
     << ", \"latency_p99_mean\": " << stats.latency_p99.mean
     << ", \"queue_delay_p50_mean\": " << stats.queue_delay_p50.mean
     << ", \"queue_delay_p95_mean\": " << stats.queue_delay_p95.mean
     << ", \"queue_delay_p99_mean\": " << stats.queue_delay_p99.mean
     << ", \"complete_runs\": " << stats.complete_runs
     << ", \"runs\": " << stats.runs << "},\n  \"per_seed\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const emulation::EmulationReport& r = reports[i];
    std::uint64_t first_seed = 1;
    os << (i == 0 ? "" : ",") << "\n    {\"trial\": " << i << ", \"seed\": "
       << analysis::TrialRunner::trial_seed(first_seed,
                                            static_cast<std::uint32_t>(i))
       << ", ";
    machine::write_report_fields(os, r);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

[[nodiscard]] std::string spec_slug(const std::string& spec,
                                    const std::string& program) {
  std::string slug;
  for (const char c : spec) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.') {
      slug += c;
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return "RUN_" + slug + "__" + program + ".json";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string error;
  if (!parse_args(argc, argv, options, error)) {
    std::cerr << "levnet_run: " << error << "\n" << kUsage;
    return 1;
  }
  if (options.help) {
    std::cout << kUsage;
    return 0;
  }
  if (options.list) {
    print_catalogue(std::cout);
    return 0;
  }
  if (!options.spec_file.empty() && !apply_spec_file(options, error)) {
    std::cerr << "levnet_run: " << error << "\n";
    return 1;
  }
  if (options.spec_text.empty()) {
    std::cerr << "levnet_run: no machine spec given\n" << kUsage;
    return 1;
  }
  if (options.seeds == 0) {
    std::cerr << "levnet_run: --seeds must be at least 1\n";
    return 1;
  }

  machine::MachineSpec spec;
  if (!machine::parse_spec(options.spec_text, spec, error)) {
    std::cerr << "levnet_run: " << error << "\n";
    return 1;
  }
  if (options.step_threads != Options::kKeepSpec) {
    spec.step_threads = options.step_threads;
  }
  // The export flags imply the matching spec tokens (a spec-set cadence
  // wins over the implied obs:1). Both are result-inert.
  if (!options.metrics_path.empty() && spec.obs_cadence == 0) {
    spec.obs_cadence = 1;
  }
  if (!options.trace_path.empty()) spec.obs_trace = true;
  if (!machine::Machine::validate(spec, error)) {
    std::cerr << "levnet_run: " << error << "\n";
    return 1;
  }
  const machine::ProgramInfo* program = machine::find_program(options.program);
  if (program == nullptr) {
    std::cerr << "levnet_run: unknown program family '" << options.program
              << "' (valid: " << machine::program_keys_joined() << ")\n";
    return 1;
  }
  if (!machine::mode_allows(spec.mode, program->required_mode)) {
    const char* const needs =
        program->required_mode == pram::Mode::kCrcw   ? "crcw"
        : program->required_mode == pram::Mode::kCrew ? "crew"
                                                      : "erew";
    std::cerr << "levnet_run: program '" << options.program << "' needs a "
              << needs << " machine, but the spec's mode is '"
              << machine::mode_key(spec.mode)
              << "' (use /" << needs << " or /crcw-combining)\n";
    return 1;
  }

  // A machine instance for the report header (the trials build their own
  // when the spec carries faults).
  machine::Machine machine = machine::Machine::build(spec);
  std::vector<emulation::EmulationReport> reports;
  const bool want_recorders =
      !options.metrics_path.empty() || !options.trace_path.empty();
  std::vector<std::unique_ptr<obs::Recorder>> recorders;
  const analysis::TrialStats stats = machine::run_trials(
      spec, machine::program_factory(options.program, options.steps),
      options.seeds, options.threads, &reports,
      want_recorders ? &recorders : nullptr);

  std::cout << "machine      : " << machine.name() << "  ("
            << machine.graph().node_count() << " nodes, "
            << machine.processors() << " processors, route scale "
            << machine.route_scale() << ")\n"
            << "spec         : " << spec.to_string() << "\n"
            << "program      : " << options.program << " x " << options.seeds
            << " seeds\n"
            << "steps/pram   : mean " << stats.steps.mean << ", max "
            << stats.steps.max << "\n"
            << "worst step   : " << stats.worst_step.max << "\n"
            << "link queue   : " << stats.max_link_queue.max << "\n"
            << "rehashes     : " << stats.rehashes_mean << " (mean)\n"
            << "complete     : " << stats.complete_runs << "/" << stats.runs
            << "\n";
  if (spec.obs_cadence != 0 || spec.obs_trace) {
    std::cout << "latency      : p50 " << stats.latency_p50.mean << ", p95 "
              << stats.latency_p95.mean << ", p99 " << stats.latency_p99.mean
              << " (mean over seeds, steps)\n"
              << "peak inflight: " << stats.peak_in_flight.max << "\n";
  }

  if (!options.metrics_path.empty()) {
    std::ofstream out(options.metrics_path);
    if (!out) {
      std::cerr << "levnet_run: cannot open " << options.metrics_path
                << " for writing\n";
      return 1;
    }
    for (std::size_t i = 0; i < recorders.size(); ++i) {
      recorders[i]->write_metrics_jsonl(out, static_cast<std::uint32_t>(i));
    }
    std::cout << "wrote " << options.metrics_path << "\n";
  }
  if (!options.trace_path.empty()) {
    std::ofstream out(options.trace_path);
    if (!out) {
      std::cerr << "levnet_run: cannot open " << options.trace_path
                << " for writing\n";
      return 1;
    }
    std::vector<const obs::Recorder*> views;
    views.reserve(recorders.size());
    for (const auto& recorder : recorders) views.push_back(recorder.get());
    obs::write_trace_json(out, views);
    std::cout << "wrote " << options.trace_path << "\n";
  }

  if (!options.json_path.empty()) {
    if (options.json_path == "-") {
      write_report_json(std::cout, options, spec, machine, stats, reports);
    } else {
      std::filesystem::path path(options.json_path);
      std::error_code ec;
      if (std::filesystem::is_directory(path, ec) ||
          options.json_path.back() == '/') {
        path /= spec_slug(options.spec_text, options.program);
      }
      std::ofstream out(path);
      if (!out) {
        std::cerr << "levnet_run: cannot open " << path << " for writing\n";
        return 1;
      }
      write_report_json(out, options, spec, machine, stats, reports);
      std::cout << "wrote " << path.string() << "\n";
    }
  }
  return stats.all_complete ? 0 : 3;
}
