#pragma once
// Collection of paper-style summary tables produced by an experiment run.
//
// Scenario bodies append rows through Report::table; after a run the report
// prints the accumulated tables and/or serializes them as JSON so scripted
// runs (bench/run_benches.sh, CI) can diff results across PRs. Reports are
// ordinary objects — tests build private ones — with one process-wide
// instance (Report::global) that the bench binaries share.

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/table.hpp"

namespace levnet::analysis {

class Report {
 public:
  Report() = default;
  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  /// Process-wide report the bench main() prints and serializes.
  static Report& global();

  /// Returns the table with this title, creating it (with `header`) on
  /// first use; later calls ignore `header`. Thread-safe lookup; row
  /// appends are the caller's to serialize (scenario bodies run
  /// sequentially).
  support::Table& table(const std::string& title,
                        std::vector<std::string> header);

  void print(std::ostream& os) const;

  /// Records the wall-clock cost of one scenario run (Registry::run calls
  /// this with the same value it prints in the per-scenario timing log).
  /// Re-recording a scenario overwrites its previous value.
  void set_wall_ms(const std::string& scenario, double ms);

  /// Per-scenario wall-clock log, in recording order.
  [[nodiscard]] std::vector<std::pair<std::string, double>> wall_ms() const;

  /// Serializes the accumulated tables as {"bench": name, "tables": [...],
  /// "wall_ms": {...}}. The wall_ms object carries the per-scenario
  /// wall-clock log so CI can flag large timing regressions; unlike the
  /// table rows it is machine-dependent and informational.
  void write_json(std::ostream& os, const std::string& bench_name) const;

  /// Drops all tables (tests reuse one report across registry runs).
  void clear();

  [[nodiscard]] std::size_t table_count() const;

  /// Snapshot of (title, header, rows) triples for comparison in tests.
  struct TableDump {
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
    bool operator==(const TableDump&) const = default;
  };
  [[nodiscard]] std::vector<TableDump> dump() const;

 private:
  struct Entry {
    std::string title;
    std::unique_ptr<support::Table> table;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> tables_;
  std::vector<std::pair<std::string, double>> wall_ms_;
};

}  // namespace levnet::analysis
