#pragma once
// Collection of paper-style summary tables produced by an experiment run.
//
// Scenario bodies append rows through Report::table; after a run the report
// prints the accumulated tables and/or serializes them as JSON so scripted
// runs (bench/run_benches.sh, CI) can diff results across PRs. Reports are
// ordinary objects — tests build private ones — with one process-wide
// instance (Report::global) that the bench binaries share.

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/table.hpp"

namespace levnet::analysis {

class Report {
 public:
  Report() = default;
  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  /// Process-wide report the bench main() prints and serializes.
  static Report& global();

  /// Returns the table with this title, creating it (with `header`) on
  /// first use; later calls ignore `header`. Thread-safe lookup; row
  /// appends are the caller's to serialize (scenario bodies run
  /// sequentially).
  support::Table& table(const std::string& title,
                        std::vector<std::string> header);

  void print(std::ostream& os) const;

  /// Serializes the accumulated tables as {"bench": name, "tables": [...]}.
  void write_json(std::ostream& os, const std::string& bench_name) const;

  /// Drops all tables (tests reuse one report across registry runs).
  void clear();

  [[nodiscard]] std::size_t table_count() const;

  /// Snapshot of (title, header, rows) triples for comparison in tests.
  struct TableDump {
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
    bool operator==(const TableDump&) const = default;
  };
  [[nodiscard]] std::vector<TableDump> dump() const;

 private:
  struct Entry {
    std::string title;
    std::unique_ptr<support::Table> table;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> tables_;
};

}  // namespace levnet::analysis
