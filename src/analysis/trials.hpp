#pragma once
// Multi-seed trial harness: the paper's O~ bounds are "with high
// probability" statements, so every experiment runs R independent seeds and
// reports the max/mean over seeds. Benches and property tests share this
// harness so EXPERIMENTS.md rows and CI assertions come from the same code.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "routing/driver.hpp"
#include "support/stats.hpp"

namespace levnet::analysis {

/// Aggregated outcome of repeating one routing experiment over seeds.
struct TrialStats {
  support::Summary steps;           // engine routing time
  support::Summary max_link_queue;  // paper's "queue size"
  support::Summary max_node_queue;
  support::Summary mean_delay;      // avg per-packet queueing delay
  bool all_complete = true;         // every run delivered everything
  std::size_t runs = 0;
};

/// Runs `trial(seed)` for `seeds` consecutive seeds starting at
/// `first_seed` and aggregates.
[[nodiscard]] TrialStats run_trials(
    const std::function<routing::RoutingOutcome(std::uint64_t seed)>& trial,
    std::uint32_t seeds, std::uint64_t first_seed = 1);

/// Normalized cost rows: x = problem scale (n, l, d...), y = steps / x.
/// The theorems predict y is bounded by a constant; `fit_line` over the raw
/// points recovers the constant.
struct ScalingPoint {
  std::uint64_t scale = 0;
  double steps_mean = 0.0;
  double steps_max = 0.0;
  double per_scale_mean = 0.0;  // steps_mean / scale
  double per_scale_max = 0.0;
  double max_link_queue = 0.0;
  double max_node_queue = 0.0;
};

[[nodiscard]] ScalingPoint make_point(std::uint64_t scale,
                                      const TrialStats& stats);

/// Least-squares slope of mean steps vs scale over a sweep — the measured
/// constant in "steps <= a * scale + o(scale)".
[[nodiscard]] support::LinearFit fit_scaling(
    const std::vector<ScalingPoint>& points);

}  // namespace levnet::analysis
