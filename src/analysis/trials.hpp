#pragma once
// Multi-seed trial harness: the paper's O~ bounds are "with high
// probability" statements, so every experiment runs R independent seeds and
// reports the max/mean over seeds. Benches and tests share this harness so
// EXPERIMENTS.md rows and CI assertions come from the same code.
//
// TrialRunner executes seeds concurrently on a support::ThreadPool while
// aggregating in seed order, so the resulting TrialStats are bit-identical
// for 1 thread and N threads. Trial callables must therefore be reentrant:
// construct the engine / emulator / Rng per call from the given seed and
// share only immutable state (graphs and routers are const after
// construction — see routing/router.hpp).

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "emulation/emulator.hpp"
#include "routing/driver.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace levnet::analysis {

/// One seed's measurements, in the units the theorems bound. Converts from
/// either harness result so routing and emulation trials share one
/// aggregation path.
struct TrialMeasurement {
  double steps = 0.0;       // routing time / network steps per PRAM step
  double worst_step = 0.0;  // slowest PRAM step (== steps for routing runs)
  double max_link_queue = 0.0;
  double max_node_queue = 0.0;
  double mean_delay = 0.0;  // avg per-packet queueing delay (routing only)
  double combined = 0.0;    // CRCW requests absorbed en route
  double rehashes = 0.0;
  double local_ops = 0.0;
  double detours = 0.0;         // fault-detour hops (degraded mode)
  double dropped = 0.0;         // packets lost to faults
  double fault_rehashes = 0.0;  // rehashes forced by module deaths
  double adopted_slot_steps = 0.0;  // dead slots executed by survivors
  /// Peak packets simultaneously in flight (phase-A live count).
  double peak_in_flight = 0.0;
  /// Delivery-latency / queue-delay quantiles in steps, from the
  /// obs::Recorder attached to the run; zero when no recorder was attached.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double queue_delay_p50 = 0.0;
  double queue_delay_p95 = 0.0;
  double queue_delay_p99 = 0.0;
  bool complete = true;

  TrialMeasurement() = default;
  TrialMeasurement(const routing::RoutingOutcome& outcome);      // NOLINT
  TrialMeasurement(const emulation::EmulationReport& report);    // NOLINT
};

/// Aggregated outcome of repeating one experiment over seeds.
struct TrialStats {
  support::Summary steps;
  support::Summary worst_step;
  support::Summary max_link_queue;  // paper's "queue size"
  support::Summary max_node_queue;
  support::Summary mean_delay;
  support::Summary peak_in_flight;
  /// Latency-quantile summaries over seeds (all zero without a recorder).
  support::Summary latency_p50;
  support::Summary latency_p95;
  support::Summary latency_p99;
  support::Summary queue_delay_p50;
  support::Summary queue_delay_p95;
  support::Summary queue_delay_p99;
  double combined_mean = 0.0;
  double rehashes_mean = 0.0;
  double local_ops_mean = 0.0;
  double detours_mean = 0.0;
  double dropped_mean = 0.0;
  double fault_rehashes_mean = 0.0;
  double adopted_slot_steps_mean = 0.0;
  bool all_complete = true;  // every run delivered everything
  /// Runs that completed (== runs unless faults defeated some seeds).
  std::size_t complete_runs = 0;
  std::size_t runs = 0;
};

/// Folds per-seed measurements (in seed order) into TrialStats.
[[nodiscard]] TrialStats aggregate(const std::vector<TrialMeasurement>& runs);

using TrialFn = std::function<TrialMeasurement(std::uint64_t seed)>;

/// Fans independent seeded trials across a thread pool. Seeds are derived
/// from consecutive labels through SplitMix64 so neighbouring trials get
/// decorrelated streams; results are collected into seed-indexed slots and
/// aggregated sequentially, making the output independent of thread count
/// and scheduling.
class TrialRunner {
 public:
  explicit TrialRunner(support::ThreadPool& pool) : pool_(&pool) {}

  /// The seed passed to trial index i (SplitMix64 of first_seed + i).
  [[nodiscard]] static std::uint64_t trial_seed(std::uint64_t first_seed,
                                                std::uint32_t index) noexcept {
    std::uint64_t state = first_seed + index;
    return support::splitmix64(state);
  }

  /// Runs fn once per seed and returns the per-seed results in seed order.
  /// R only needs to be default-constructible and movable; use this for
  /// trials whose result is not a TrialMeasurement (e.g. hash max-loads).
  template <typename Fn>
  [[nodiscard]] auto collect(std::uint32_t seeds, std::uint64_t first_seed,
                             Fn&& fn) const {
    using R = std::decay_t<decltype(fn(std::uint64_t{}))>;
    // std::vector<bool> packs results, so concurrent writes to adjacent
    // slots would race; return std::uint8_t (or a struct) instead.
    static_assert(!std::is_same_v<R, bool>,
                  "trial results must occupy distinct storage per seed");
    std::vector<R> results(seeds);
    pool_->parallel_for(seeds, [&](std::size_t i) {
      results[i] =
          fn(trial_seed(first_seed, static_cast<std::uint32_t>(i)));
    });
    return results;
  }

  /// Runs `trial(seed)` for `seeds` derived seeds and aggregates.
  [[nodiscard]] TrialStats run(const TrialFn& trial, std::uint32_t seeds,
                               std::uint64_t first_seed = 1) const;

  [[nodiscard]] support::ThreadPool& pool() const noexcept { return *pool_; }

 private:
  support::ThreadPool* pool_;
};

/// Normalized cost rows: x = problem scale (n, l, d...), y = steps / x.
/// The theorems predict y is bounded by a constant; `fit_line` over the raw
/// points recovers the constant.
struct ScalingPoint {
  std::uint64_t scale = 0;
  double steps_mean = 0.0;
  double steps_max = 0.0;
  double per_scale_mean = 0.0;  // steps_mean / scale
  double per_scale_max = 0.0;
  double max_link_queue = 0.0;
  double max_node_queue = 0.0;
};

[[nodiscard]] ScalingPoint make_point(std::uint64_t scale,
                                      const TrialStats& stats);

/// Least-squares slope of mean steps vs scale over a sweep — the measured
/// constant in "steps <= a * scale + o(scale)".
[[nodiscard]] support::LinearFit fit_scaling(
    const std::vector<ScalingPoint>& points);

}  // namespace levnet::analysis
