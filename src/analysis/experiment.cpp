#include "analysis/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace levnet::analysis {

namespace {

constexpr std::uint32_t kSmokeSeedCap = 2;
constexpr std::uint32_t kMaxThreads = 256;

std::string format_points(const std::vector<std::vector<std::int64_t>>& pts) {
  std::ostringstream os;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i != 0) os << ' ';
    os << '(';
    for (std::size_t j = 0; j < pts[i].size(); ++j) {
      if (j != 0) os << ',';
      os << pts[i][j];
    }
    os << ')';
  }
  return os.str();
}

bool parse_u32(const char* text, std::uint32_t& out) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value > 0xffffffffUL) return false;
  out = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

std::int64_t ScenarioContext::arg(std::size_t i) const {
  LEVNET_CHECK_MSG(args_ != nullptr && i < args_->size(),
                   "scenario read a sweep argument it does not declare");
  return (*args_)[i];
}

bool parse_run_options(int argc, const char* const* argv, RunOptions& options,
                       std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        error = std::string(flag) + " needs a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      const char* value = need_value("--seeds");
      if (value == nullptr) return false;
      if (!parse_u32(value, options.seeds) || options.seeds == 0) {
        error = "--seeds wants a positive integer, got '" +
                std::string(value) + "'";
        return false;
      }
    } else if (arg == "--threads") {
      const char* value = need_value("--threads");
      if (value == nullptr) return false;
      std::uint32_t threads = 0;
      // Bounded so a typo cannot ask the pool to spawn 500000 OS threads.
      if (!parse_u32(value, threads) || threads > kMaxThreads) {
        error = "--threads wants an integer in [0, " +
                std::to_string(kMaxThreads) + "], got '" +
                std::string(value) + "'";
        return false;
      }
      options.threads = threads;
    } else if (arg == "--scenario") {
      const char* value = need_value("--scenario");
      if (value == nullptr) return false;
      options.scenario_filter = value;
    } else if (arg == "--json") {
      const char* value = need_value("--json");
      if (value == nullptr) return false;
      if (*value == '\0') {
        error = "--json wants a directory path";
        return false;
      }
      options.json_dir = value;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--markdown") {
      options.markdown = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else {
      error = "unknown argument '" + arg + "'";
      return false;
    }
  }
  return true;
}

std::string run_options_usage() {
  return
      "usage: bench_<name> [options]\n"
      "  --seeds N       override every scenario's trial count\n"
      "  --threads N     thread pool size (0/default = hardware cores)\n"
      "  --scenario SUB  run only scenarios whose name contains SUB\n"
      "  --json DIR      write BENCH_<name>.json into DIR after the run\n"
      "                  (overrides the LEVNET_BENCH_JSON_DIR env var)\n"
      "  --smoke         smallest sweep points, at most 2 seeds\n"
      "  --list          print the registered scenarios and exit\n"
      "  --markdown      with --list: emit EXPERIMENTS.md table rows\n"
      "  --help          this message\n";
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::add(Scenario scenario) {
  LEVNET_CHECK_MSG(!scenario.name.empty(), "scenario needs a name");
  LEVNET_CHECK_MSG(static_cast<bool>(scenario.run),
                   "scenario needs a run body");
  LEVNET_CHECK_MSG(scenario.seeds != 0, "scenario needs at least one seed");
  for (const Scenario& existing : scenarios_) {
    LEVNET_CHECK_MSG(existing.name != scenario.name,
                     "duplicate scenario name");
  }
  if (scenario.points.empty()) scenario.points.push_back({});
  scenarios_.push_back(std::move(scenario));
}

std::size_t Registry::run(const RunOptions& options, Report& report,
                          std::ostream& log) const {
  // Name order, not registration order: reports must not depend on link
  // order or on which TU's static initializers ran first.
  std::vector<const Scenario*> selected;
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name.find(options.scenario_filter) != std::string::npos) {
      selected.push_back(&scenario);
    }
  }
  std::sort(selected.begin(), selected.end(),
            [](const Scenario* a, const Scenario* b) {
              return a->name < b->name;
            });

  support::ThreadPool pool(options.threads);
  TrialRunner runner(pool);

  for (const Scenario* scenario : selected) {
    std::uint32_t seeds = options.seeds != 0 ? options.seeds : scenario->seeds;
    if (options.smoke) seeds = std::min(seeds, kSmokeSeedCap);
    // Smoke mode shrinks the sweep: the declared smoke points, or the
    // first (smallest) full point when none were declared.
    std::vector<std::vector<std::int64_t>> smoke_fallback;
    const std::vector<std::vector<std::int64_t>>* points = &scenario->points;
    if (options.smoke) {
      if (scenario->smoke_points.empty()) {
        smoke_fallback.push_back(scenario->points.front());
        points = &smoke_fallback;
      } else {
        points = &scenario->smoke_points;
      }
    }

    // levnet-lint: allow(nondeterministic-source): wall-clock is timing
    // metadata (the informational wall_ms column), never a simulated value.
    const auto start = std::chrono::steady_clock::now();
    ScenarioContext context(*scenario, runner, report, seeds, options.smoke);
    for (const auto& point : *points) {
      context.args_ = &point;
      scenario->run(context);
    }
    context.args_ = nullptr;
    if (scenario->finish) scenario->finish(context);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            // levnet-lint: allow(nondeterministic-source): end of the
            // wall_ms timing window; see the allow at the start above.
            std::chrono::steady_clock::now() - start);
    report.set_wall_ms(scenario->name,
                       static_cast<double>(elapsed.count()));
    log << "[scenario] " << scenario->name << ": " << points->size()
        << " point(s) x " << seeds << " seed(s), threads=" << pool.size()
        << ", " << static_cast<double>(elapsed.count()) / 1000.0 << "s\n";
  }
  return selected.size();
}

void Registry::list(std::ostream& os, bool markdown,
                    const std::string& bench_name) const {
  std::vector<const Scenario*> sorted;
  for (const Scenario& scenario : scenarios_) sorted.push_back(&scenario);
  std::sort(sorted.begin(), sorted.end(),
            [](const Scenario* a, const Scenario* b) {
              return a->name < b->name;
            });
  if (markdown) {
    for (const Scenario* s : sorted) {
      os << "| `" << s->name << "` | `bench_" << bench_name << "` | "
         << s->experiment << " | " << s->sweep << " | "
         << format_points(s->points) << " | " << s->seeds << " |\n";
    }
    return;
  }
  for (const Scenario* s : sorted) {
    os << s->name << "\n    " << s->experiment << "\n    sweep: " << s->sweep
       << "\n    points: " << format_points(s->points)
       << "\n    seeds: " << s->seeds << "\n";
  }
}

}  // namespace levnet::analysis
