#pragma once
// Experiment registry: the declarative layer every bench binary shares.
//
// Each paper experiment (E1..E13) is registered as one or more Scenarios.
// A Scenario is the sweep-over-scales x trials-over-seeds x report-table
// shape all benches used to hand-roll: a list of sweep points (argument
// tuples), a default seed count, and a body that turns one point into one
// or more table rows. The registry drives the sweep, hands the body a
// ScenarioContext that runs seeds through a TrialRunner (parallel across a
// ThreadPool, aggregated in seed order — results are independent of thread
// count), and serves the common CLI:
//
//   --seeds N        override every scenario's trial count
//   --threads N      pool size (0 = hardware concurrency)
//   --scenario SUB   run only scenarios whose name contains SUB
//   --smoke          smoke points + capped seeds: every scenario, tiny cost
//   --list           print registered scenarios instead of running
//   --markdown       with --list: emit the EXPERIMENTS.md table rows
//
// Adding a scenario is a ~10-line registration — see README.md.
// Scenarios execute in name order regardless of registration order, so
// reports are deterministic across link order and translation units.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/trials.hpp"
#include "support/thread_pool.hpp"

namespace levnet::analysis {

class ScenarioContext;

/// One registered experiment scenario (an aggregate so registrations can
/// use designated initializers).
struct Scenario {
  /// Unique, filterable, and the sort key for run order ("E1/permutation").
  std::string name;
  /// Paper anchor for docs ("E1 / Theorem 2.1").
  std::string experiment;
  /// Human description of the sweep axes for EXPERIMENTS.md.
  std::string sweep;
  /// Sweep points; the body runs once per tuple. Empty means one run with
  /// no arguments.
  std::vector<std::vector<std::int64_t>> points;
  /// Points used under --smoke; empty selects the first (smallest) point.
  std::vector<std::vector<std::int64_t>> smoke_points;
  /// Default trials per point (capped at 2 under --smoke).
  std::uint32_t seeds = 5;
  /// Body: turn the current point (ctx.arg(i)) into table rows.
  std::function<void(ScenarioContext&)> run;
  /// Optional epilogue after the sweep (e.g. a scaling fit over
  /// ctx.recorded()).
  std::function<void(ScenarioContext&)> finish;
};

/// Per-run knobs, typically parsed from the CLI.
struct RunOptions {
  std::uint32_t seeds = 0;      // 0 = scenario default
  unsigned threads = 0;         // 0 = hardware concurrency
  std::string scenario_filter;  // substring match on Scenario::name
  /// Directory for BENCH_<name>.json emission (--json); empty falls back
  /// to the LEVNET_BENCH_JSON_DIR environment variable.
  std::string json_dir;
  bool smoke = false;
  bool list = false;
  bool markdown = false;
  bool help = false;
};

/// Parses the common bench CLI. Returns true on success; on failure sets
/// `error` to a message naming the offending argument.
[[nodiscard]] bool parse_run_options(int argc, const char* const* argv,
                                     RunOptions& options, std::string& error);

/// Usage text for --help and parse errors.
[[nodiscard]] std::string run_options_usage();

/// Handed to scenario bodies: the current sweep point, the effective seed
/// count, the trial runner, and the report sink.
class ScenarioContext {
 public:
  ScenarioContext(const Scenario& scenario, TrialRunner& runner,
                  Report& report, std::uint32_t seeds, bool smoke)
      : scenario_(&scenario),
        runner_(&runner),
        report_(&report),
        seeds_(seeds),
        smoke_(smoke) {}

  /// Current sweep point.
  [[nodiscard]] std::int64_t arg(std::size_t i) const;
  [[nodiscard]] std::size_t arg_count() const noexcept {
    return args_ == nullptr ? 0 : args_->size();
  }

  [[nodiscard]] std::uint32_t seeds() const noexcept { return seeds_; }
  [[nodiscard]] bool smoke() const noexcept { return smoke_; }
  [[nodiscard]] const Scenario& scenario() const noexcept {
    return *scenario_;
  }
  [[nodiscard]] TrialRunner& runner() const noexcept { return *runner_; }

  /// Runs seeds() trials through the pool and aggregates in seed order.
  [[nodiscard]] TrialStats trials(const TrialFn& trial) const {
    return runner_->run(trial, seeds_);
  }

  /// Generic per-seed collection for trials whose result is not a
  /// TrialMeasurement (hash-load draws, custom metrics).
  template <typename Fn>
  [[nodiscard]] auto collect(Fn&& fn) const {
    return runner_->collect(seeds_, 1, std::forward<Fn>(fn));
  }

  /// Report table for this run (created on first use).
  support::Table& table(const std::string& title,
                        std::vector<std::string> header) const {
    return report_->table(title, std::move(header));
  }

  /// Sweep memory for finish(): bodies record (scale, stats) per point.
  void record(std::uint64_t scale, const TrialStats& stats) {
    recorded_.emplace_back(scale, stats);
  }
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, TrialStats>>&
  recorded() const noexcept {
    return recorded_;
  }

 private:
  friend class Registry;

  const Scenario* scenario_;
  TrialRunner* runner_;
  Report* report_;
  const std::vector<std::int64_t>* args_ = nullptr;
  std::uint32_t seeds_;
  bool smoke_;
  std::vector<std::pair<std::uint64_t, TrialStats>> recorded_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry the bench binaries register into.
  static Registry& global();

  void add(Scenario scenario);
  [[nodiscard]] const std::vector<Scenario>& scenarios() const noexcept {
    return scenarios_;
  }

  /// Runs every scenario whose name contains options.scenario_filter, in
  /// name order, appending rows to `report` and one timing line per
  /// scenario to `log`. Returns the number of scenarios run.
  std::size_t run(const RunOptions& options, Report& report,
                  std::ostream& log) const;

  /// Prints the scenario catalogue: aligned text, or EXPERIMENTS.md table
  /// rows when markdown is set (bench_name labels the source binary).
  void list(std::ostream& os, bool markdown,
            const std::string& bench_name) const;

 private:
  std::vector<Scenario> scenarios_;
};

/// Static-initialization helper: file-scope registration in bench TUs.
struct ScenarioRegistrar {
  explicit ScenarioRegistrar(Scenario scenario) {
    Registry::global().add(std::move(scenario));
  }
};

}  // namespace levnet::analysis
