#include "analysis/trials.hpp"

namespace levnet::analysis {

TrialStats run_trials(
    const std::function<routing::RoutingOutcome(std::uint64_t seed)>& trial,
    std::uint32_t seeds, std::uint64_t first_seed) {
  std::vector<double> steps;
  std::vector<double> link_queue;
  std::vector<double> node_queue;
  std::vector<double> delay;
  TrialStats stats;
  for (std::uint32_t s = 0; s < seeds; ++s) {
    const routing::RoutingOutcome outcome = trial(first_seed + s);
    stats.all_complete = stats.all_complete && outcome.complete;
    steps.push_back(static_cast<double>(outcome.metrics.steps));
    link_queue.push_back(static_cast<double>(outcome.metrics.max_link_queue));
    node_queue.push_back(static_cast<double>(outcome.metrics.max_node_queue));
    const double consumed =
        outcome.metrics.consumed == 0
            ? 1.0
            : static_cast<double>(outcome.metrics.consumed);
    delay.push_back(static_cast<double>(outcome.metrics.total_delay) /
                    consumed);
    ++stats.runs;
  }
  stats.steps = support::summarize(steps);
  stats.max_link_queue = support::summarize(link_queue);
  stats.max_node_queue = support::summarize(node_queue);
  stats.mean_delay = support::summarize(delay);
  return stats;
}

ScalingPoint make_point(std::uint64_t scale, const TrialStats& stats) {
  ScalingPoint point;
  point.scale = scale;
  point.steps_mean = stats.steps.mean;
  point.steps_max = stats.steps.max;
  const auto denom = static_cast<double>(scale);
  point.per_scale_mean = stats.steps.mean / denom;
  point.per_scale_max = stats.steps.max / denom;
  point.max_link_queue = stats.max_link_queue.max;
  point.max_node_queue = stats.max_node_queue.max;
  return point;
}

support::LinearFit fit_scaling(const std::vector<ScalingPoint>& points) {
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(points.size());
  y.reserve(points.size());
  for (const ScalingPoint& p : points) {
    x.push_back(static_cast<double>(p.scale));
    y.push_back(p.steps_mean);
  }
  return support::fit_line(x, y);
}

}  // namespace levnet::analysis
