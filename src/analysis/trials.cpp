#include "analysis/trials.hpp"

namespace levnet::analysis {

TrialMeasurement::TrialMeasurement(const routing::RoutingOutcome& outcome) {
  steps = static_cast<double>(outcome.metrics.steps);
  worst_step = steps;
  max_link_queue = static_cast<double>(outcome.metrics.max_link_queue);
  max_node_queue = static_cast<double>(outcome.metrics.max_node_queue);
  const double consumed = outcome.metrics.consumed == 0
                              ? 1.0
                              : static_cast<double>(outcome.metrics.consumed);
  mean_delay = static_cast<double>(outcome.metrics.total_delay) / consumed;
  peak_in_flight = static_cast<double>(outcome.metrics.peak_in_flight);
  latency_p50 = static_cast<double>(outcome.latency_p50);
  latency_p95 = static_cast<double>(outcome.latency_p95);
  latency_p99 = static_cast<double>(outcome.latency_p99);
  queue_delay_p50 = static_cast<double>(outcome.queue_delay_p50);
  queue_delay_p95 = static_cast<double>(outcome.queue_delay_p95);
  queue_delay_p99 = static_cast<double>(outcome.queue_delay_p99);
  complete = outcome.complete;
}

TrialMeasurement::TrialMeasurement(const emulation::EmulationReport& report) {
  steps = report.mean_step_network;
  worst_step = static_cast<double>(report.max_step_network);
  max_link_queue = static_cast<double>(report.max_link_queue);
  max_node_queue = static_cast<double>(report.max_node_queue);
  combined = static_cast<double>(report.combined_requests);
  rehashes = static_cast<double>(report.rehashes);
  local_ops = static_cast<double>(report.local_ops);
  detours = static_cast<double>(report.detour_hops);
  dropped = static_cast<double>(report.dropped_packets);
  fault_rehashes = static_cast<double>(report.fault_rehashes);
  adopted_slot_steps = static_cast<double>(report.adopted_slot_steps);
  peak_in_flight = static_cast<double>(report.peak_in_flight);
  latency_p50 = static_cast<double>(report.latency_p50);
  latency_p95 = static_cast<double>(report.latency_p95);
  latency_p99 = static_cast<double>(report.latency_p99);
  queue_delay_p50 = static_cast<double>(report.queue_delay_p50);
  queue_delay_p95 = static_cast<double>(report.queue_delay_p95);
  queue_delay_p99 = static_cast<double>(report.queue_delay_p99);
  // Fault-free the emulator CHECK-fails rather than losing requests, so
  // this is always true there; degraded runs report what happened.
  complete = report.complete;
}

TrialStats aggregate(const std::vector<TrialMeasurement>& runs) {
  std::vector<double> steps;
  std::vector<double> worst;
  std::vector<double> link_queue;
  std::vector<double> node_queue;
  std::vector<double> delay;
  std::vector<double> peak;
  std::vector<double> lat50;
  std::vector<double> lat95;
  std::vector<double> lat99;
  std::vector<double> qd50;
  std::vector<double> qd95;
  std::vector<double> qd99;
  steps.reserve(runs.size());
  worst.reserve(runs.size());
  link_queue.reserve(runs.size());
  node_queue.reserve(runs.size());
  delay.reserve(runs.size());
  peak.reserve(runs.size());
  lat50.reserve(runs.size());
  lat95.reserve(runs.size());
  lat99.reserve(runs.size());
  qd50.reserve(runs.size());
  qd95.reserve(runs.size());
  qd99.reserve(runs.size());

  TrialStats stats;
  for (const TrialMeasurement& m : runs) {
    stats.all_complete = stats.all_complete && m.complete;
    if (m.complete) ++stats.complete_runs;
    steps.push_back(m.steps);
    worst.push_back(m.worst_step);
    link_queue.push_back(m.max_link_queue);
    node_queue.push_back(m.max_node_queue);
    delay.push_back(m.mean_delay);
    peak.push_back(m.peak_in_flight);
    lat50.push_back(m.latency_p50);
    lat95.push_back(m.latency_p95);
    lat99.push_back(m.latency_p99);
    qd50.push_back(m.queue_delay_p50);
    qd95.push_back(m.queue_delay_p95);
    qd99.push_back(m.queue_delay_p99);
    stats.combined_mean += m.combined;
    stats.rehashes_mean += m.rehashes;
    stats.local_ops_mean += m.local_ops;
    stats.detours_mean += m.detours;
    stats.dropped_mean += m.dropped;
    stats.fault_rehashes_mean += m.fault_rehashes;
    stats.adopted_slot_steps_mean += m.adopted_slot_steps;
    ++stats.runs;
  }
  if (stats.runs != 0) {
    const auto n = static_cast<double>(stats.runs);
    stats.combined_mean /= n;
    stats.rehashes_mean /= n;
    stats.local_ops_mean /= n;
    stats.detours_mean /= n;
    stats.dropped_mean /= n;
    stats.fault_rehashes_mean /= n;
    stats.adopted_slot_steps_mean /= n;
  }
  stats.steps = support::summarize(steps);
  stats.worst_step = support::summarize(worst);
  stats.max_link_queue = support::summarize(link_queue);
  stats.max_node_queue = support::summarize(node_queue);
  stats.mean_delay = support::summarize(delay);
  stats.peak_in_flight = support::summarize(peak);
  stats.latency_p50 = support::summarize(lat50);
  stats.latency_p95 = support::summarize(lat95);
  stats.latency_p99 = support::summarize(lat99);
  stats.queue_delay_p50 = support::summarize(qd50);
  stats.queue_delay_p95 = support::summarize(qd95);
  stats.queue_delay_p99 = support::summarize(qd99);
  return stats;
}

TrialStats TrialRunner::run(const TrialFn& trial, std::uint32_t seeds,
                            std::uint64_t first_seed) const {
  return aggregate(collect(seeds, first_seed, trial));
}

ScalingPoint make_point(std::uint64_t scale, const TrialStats& stats) {
  ScalingPoint point;
  point.scale = scale;
  point.steps_mean = stats.steps.mean;
  point.steps_max = stats.steps.max;
  const auto denom = static_cast<double>(scale);
  point.per_scale_mean = stats.steps.mean / denom;
  point.per_scale_max = stats.steps.max / denom;
  point.max_link_queue = stats.max_link_queue.max;
  point.max_node_queue = stats.max_node_queue.max;
  return point;
}

support::LinearFit fit_scaling(const std::vector<ScalingPoint>& points) {
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(points.size());
  y.reserve(points.size());
  for (const ScalingPoint& p : points) {
    x.push_back(static_cast<double>(p.scale));
    y.push_back(p.steps_mean);
  }
  return support::fit_line(x, y);
}

}  // namespace levnet::analysis
