#include "analysis/report.hpp"

#include <cstdio>
#include <ostream>

namespace levnet::analysis {

namespace {

std::string quoted(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void write_string_array(std::ostream& os,
                        const std::vector<std::string>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ", ";
    os << quoted(values[i]);
  }
  os << ']';
}

}  // namespace

Report& Report::global() {
  static Report report;
  return report;
}

support::Table& Report::table(const std::string& title,
                              std::vector<std::string> header) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : tables_) {
    if (entry.title == title) return *entry.table;
  }
  tables_.push_back(
      {title, std::make_unique<support::Table>(std::move(header))});
  return *tables_.back().table;
}

void Report::print(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : tables_) {
    os << "\n=== " << entry.title << " ===\n";
    entry.table->print(os);
  }
  os.flush();
}

void Report::set_wall_ms(const std::string& scenario, double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, value] : wall_ms_) {
    if (name == scenario) {
      value = ms;
      return;
    }
  }
  wall_ms_.emplace_back(scenario, ms);
}

std::vector<std::pair<std::string, double>> Report::wall_ms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return wall_ms_;
}

void Report::write_json(std::ostream& os, const std::string& bench_name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"bench\": " << quoted(bench_name) << ",\n  \"tables\": [";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const auto& entry = tables_[t];
    if (t != 0) os << ',';
    os << "\n    {\n      \"title\": " << quoted(entry.title)
       << ",\n      \"header\": ";
    write_string_array(os, entry.table->header());
    os << ",\n      \"rows\": [";
    const auto& rows = entry.table->rows();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != 0) os << ',';
      os << "\n        ";
      write_string_array(os, rows[r]);
    }
    os << (rows.empty() ? "]" : "\n      ]") << "\n    }";
  }
  os << (tables_.empty() ? "]" : "\n  ]");
  // Per-scenario wall clock: informational (machine-dependent), consumed by
  // bench/compare_bench.py to flag large timing regressions.
  os << ",\n  \"wall_ms\": {";
  for (std::size_t i = 0; i < wall_ms_.size(); ++i) {
    if (i != 0) os << ',';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", wall_ms_[i].second);
    os << "\n    " << quoted(wall_ms_[i].first) << ": " << buf;
  }
  os << (wall_ms_.empty() ? "}" : "\n  }") << "\n}\n";
  os.flush();
}

void Report::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  tables_.clear();
  wall_ms_.clear();
}

std::size_t Report::table_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.size();
}

std::vector<Report::TableDump> Report::dump() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TableDump> out;
  out.reserve(tables_.size());
  for (const auto& entry : tables_) {
    out.push_back({entry.title, entry.table->header(), entry.table->rows()});
  }
  return out;
}

}  // namespace levnet::analysis
