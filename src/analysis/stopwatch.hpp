#pragma once
// Stopwatch: the sanctioned wall-clock timing window.
//
// The `wall-clock-confined` lint rule keeps std::chrono clock reads inside
// src/analysis/ — wall time is timing metadata, never a simulated value.
// Benches that need a throughput denominator (levnet_serve's specs/sec)
// use this handle instead of reading the clock themselves, so the
// determinism story stays auditable from one directory.

#include <chrono>

namespace levnet::analysis {

class Stopwatch {
 public:
  Stopwatch() : start_(read()) {}

  void reset() { start_ = read(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(read() - start_).count();
  }

 private:
  static std::chrono::steady_clock::time_point read() {
    // levnet-lint: allow(nondeterministic-source): wall-clock is timing
    // metadata (throughput denominators), never a simulated value.
    return std::chrono::steady_clock::now();
  }

  std::chrono::steady_clock::time_point start_;
};

}  // namespace levnet::analysis
