#pragma once
// FaultPlan: a deterministic, seed-derived schedule of component failures.
//
// The paper's emulation theorems assume a pristine leveled network; this
// subsystem stresses exactly the machinery those theorems lean on (hashed
// memory with a rehash escape hatch, congestion-tolerant randomized
// routing) by killing links, nodes and memory modules. Failure model is
// fail-stop with migrated state (Chlebus-Gasieniec-Pelc's static-fault
// PRAM setting, Hanlon's memory-remap setting): a dead component stops
// carrying traffic / hosting cells, but cell *contents* are assumed
// migrated by the remap layer — the simulation measures the degraded
// routing and rehashing cost, not data loss.
//
// A plan is a list of (kind, id, epoch) events sampled once from a spec
// (fault fractions per component class) and a seed. Epochs are abstract
// fault times: the owner decides what an epoch is (the PRAM emulator
// advances one epoch per PRAM step). Epoch 0 events are static faults,
// active before the first step. Sampling is pure — it never touches the
// graph it reads — and deterministic given (graph, spec, seed), so a
// fault scenario is exactly reproducible across runs and thread counts.

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace levnet::faults {

using topology::EdgeId;
using topology::NodeId;

enum class FaultKind : std::uint8_t {
  kLink = 0,    // a physical link: the directed edge and its reverse
  kNode = 1,    // a switch/node: all incident edges die with it
  kModule = 2,  // a memory module: addresses remap to survivors
  kProc = 3,    // a processor endpoint: its node, co-located module, and
                // program slots all fail; survivors adopt the slots
};

struct FaultEvent {
  FaultKind kind = FaultKind::kLink;
  /// EdgeId for kLink, NodeId for kNode, module index for kModule.
  std::uint32_t id = 0;
  /// Fault time; 0 = static (active before anything runs).
  std::uint32_t epoch = 0;
};

struct FaultSpec {
  /// Fraction of physical links to kill, in [0, 1).
  double link_fraction = 0.0;
  /// Fraction of non-endpoint nodes to kill, in [0, 1). Endpoint nodes
  /// (ids below `endpoints` at sample time) are never hit by *node*
  /// faults; killing a processor endpoint is the separate, deliberate
  /// `proc_fraction` axis below.
  double node_fraction = 0.0;
  /// Fraction of memory modules to kill, in [0, 1). At least one module
  /// always survives.
  double module_fraction = 0.0;
  /// Fraction of processor endpoints to kill, in [0, 1) — the
  /// Chlebus-Gasieniec-Pelc static-processor-fault axis. A dead processor
  /// takes its endpoint node (all incident links) and its co-located
  /// memory module down with it; the emulation layer reassigns its
  /// program slots to a seed-derived survivor. Sampling guarantees at
  /// least one live processor and (under `preserve_connectivity`) that
  /// the survivor endpoints stay mutually connected.
  double proc_fraction = 0.0;
  /// Fault epochs are drawn uniformly from [0, onset_epochs); 1 (or 0)
  /// makes every fault static.
  std::uint32_t onset_epochs = 1;
  /// Skip any link/node kill that would disconnect the endpoint set in the
  /// fully degraded graph. Keeps emulation completable: every request can
  /// still reach every module w.h.p. (detours permitting).
  bool preserve_connectivity = true;
};

class FaultPlan {
 public:
  /// Empty plan: no faults, guaranteed inert everywhere it is consulted.
  FaultPlan() = default;

  /// Samples a plan against `graph`. Nodes [0, endpoints) are protected
  /// from node faults (processor kills are the explicit `proc_fraction`
  /// axis) and the live ones anchor the connectivity requirement;
  /// `modules` is the memory-module count (fabric endpoints).
  /// Deterministic in all arguments. CHECK-fails with a named error when
  /// `proc_fraction > 0` and the requested fractions cannot be satisfied
  /// under the connectivity/survivor guards (jointly unsatisfiable).
  [[nodiscard]] static FaultPlan sample(const topology::Graph& graph,
                                        std::uint32_t endpoints,
                                        std::uint32_t modules,
                                        const FaultSpec& spec,
                                        std::uint64_t seed);

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// Link/node kills the sampler rejected to preserve connectivity.
  [[nodiscard]] std::uint32_t skipped_for_connectivity() const noexcept {
    return skipped_;
  }

 private:
  std::vector<FaultEvent> events_;  // sorted by (epoch, kind, id)
  std::uint64_t seed_ = 0;
  std::uint32_t skipped_ = 0;
};

}  // namespace levnet::faults
