#include "faults/plan.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace levnet::faults {

namespace {

/// Scratch degraded graph used only while sampling: the plan must not
/// mutate the real graph, but connectivity screening needs to look at the
/// network as it will be once every accepted kill has landed.
struct Scratch {
  explicit Scratch(const topology::Graph& g)
      : graph(&g),
        edge_live(g.edge_count(), 1),
        node_live(g.node_count(), 1) {
    // Symmetric graphs (every edge paired with its reverse, which
    // kill_link/kill_node preserve) only need one forward BFS: reach-from
    // implies reach-to. With unpaired one-way edges that implication
    // fails, so the screen must also check the transpose; build the
    // in-edge lists once in that case.
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (g.reverse_edge(e) == topology::kInvalidEdge) {
        asymmetric = true;
        break;
      }
    }
    if (asymmetric) {
      in_edges.resize(g.node_count());
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        in_edges[g.edge_head(e)].push_back(e);
      }
    }
  }

  void kill_link(EdgeId e) {
    edge_live[e] = 0;
    const EdgeId rev = graph->reverse_edge(e);
    if (rev != topology::kInvalidEdge) edge_live[rev] = 0;
  }

  void revive_link(EdgeId e) {
    edge_live[e] = 1;
    const EdgeId rev = graph->reverse_edge(e);
    if (rev != topology::kInvalidEdge) edge_live[rev] = 1;
  }

  void kill_node(NodeId v, std::vector<EdgeId>& killed_edges) {
    killed_edges.clear();
    node_live[v] = 0;
    for (EdgeId e = 0; e < graph->edge_count(); ++e) {
      if ((graph->edge_tail(e) == v || graph->edge_head(e) == v) &&
          edge_live[e] != 0) {
        edge_live[e] = 0;
        killed_edges.push_back(e);
      }
    }
  }

  void revive_node(NodeId v, const std::vector<EdgeId>& killed_edges) {
    node_live[v] = 1;
    for (const EdgeId e : killed_edges) edge_live[e] = 1;
  }

  /// BFS from endpoint 0 over live edges and nodes; `backward` walks the
  /// transpose. Returns true iff every endpoint was reached.
  [[nodiscard]] bool endpoints_reachable(std::uint32_t endpoints,
                                         bool backward,
                                         std::vector<NodeId>& queue,
                                         std::vector<std::uint8_t>& seen) const {
    queue.clear();
    seen.assign(graph->node_count(), 0);
    queue.push_back(0);
    seen[0] = 1;
    std::size_t head = 0;
    std::uint32_t endpoints_seen = 1;
    while (head < queue.size()) {
      const NodeId u = queue[head++];
      const auto visit = [&](EdgeId e, NodeId v) {
        if (edge_live[e] == 0 || node_live[v] == 0 || seen[v] != 0) return;
        seen[v] = 1;
        queue.push_back(v);
        if (v < endpoints) ++endpoints_seen;
      };
      if (backward) {
        for (const EdgeId e : in_edges[u]) visit(e, graph->edge_tail(e));
      } else {
        for (std::uint32_t k = 0; k < graph->out_degree(u); ++k) {
          const EdgeId e = graph->out_edge(u, k);
          visit(e, graph->edge_head(e));
        }
      }
      if (endpoints_seen == endpoints) return true;
    }
    return endpoints_seen == endpoints;
  }

  /// True iff every live endpoint can both reach and be reached by
  /// endpoint 0 over live edges/nodes — with endpoints never killed, the
  /// "every processor can still talk to every module, both ways"
  /// requirement. Symmetric graphs need only the forward pass.
  [[nodiscard]] bool endpoints_connected(std::uint32_t endpoints,
                                         std::vector<NodeId>& queue,
                                         std::vector<std::uint8_t>& seen) const {
    if (endpoints <= 1) return true;
    if (!endpoints_reachable(endpoints, false, queue, seen)) return false;
    return !asymmetric ||
           endpoints_reachable(endpoints, true, queue, seen);
  }

  const topology::Graph* graph;
  std::vector<std::uint8_t> edge_live;
  std::vector<std::uint8_t> node_live;
  bool asymmetric = false;
  std::vector<std::vector<EdgeId>> in_edges;  // built only when asymmetric
};

std::uint32_t target_count(double fraction, std::size_t candidates) {
  LEVNET_CHECK_MSG(fraction >= 0.0 && fraction < 1.0,
                   "fault fraction must lie in [0, 1)");
  return static_cast<std::uint32_t>(fraction *
                                    static_cast<double>(candidates));
}

}  // namespace

FaultPlan FaultPlan::sample(const topology::Graph& graph,
                            std::uint32_t endpoints, std::uint32_t modules,
                            const FaultSpec& spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  if (spec.link_fraction == 0.0 && spec.node_fraction == 0.0 &&
      spec.module_fraction == 0.0) {
    // Nothing to sample: skip the candidate shuffles and scratch arrays
    // entirely (fault-free twins in A/B benches take this path per seed).
    return plan;
  }
  // Decorrelate from the emulator/router streams that share the same
  // user-facing seed.
  std::uint64_t mix = seed ^ 0xFA17'FA17'FA17'FA17ULL;
  support::Rng rng(support::splitmix64(mix));

  Scratch scratch(graph);
  std::vector<NodeId> bfs_queue;
  std::vector<std::uint8_t> bfs_seen;
  const auto draw_epoch = [&]() -> std::uint32_t {
    return spec.onset_epochs <= 1
               ? 0
               : static_cast<std::uint32_t>(rng.below(spec.onset_epochs));
  };

  // Links: one candidate per physical link (the lower-id directed edge of
  // each reverse pair; one-way edges stand alone).
  std::vector<EdgeId> links;
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const EdgeId rev = graph.reverse_edge(e);
    if (rev == topology::kInvalidEdge || e < rev) links.push_back(e);
  }
  support::shuffle(links, rng);
  const std::uint32_t link_target = target_count(spec.link_fraction,
                                                 links.size());
  std::uint32_t accepted = 0;
  for (const EdgeId e : links) {
    if (accepted == link_target) break;
    scratch.kill_link(e);
    if (spec.preserve_connectivity &&
        !scratch.endpoints_connected(endpoints, bfs_queue, bfs_seen)) {
      scratch.revive_link(e);
      ++plan.skipped_;
      continue;
    }
    plan.events_.push_back({FaultKind::kLink, e, draw_epoch()});
    ++accepted;
  }

  // Nodes: endpoints host processors and are protected.
  std::vector<NodeId> nodes;
  for (NodeId v = endpoints; v < graph.node_count(); ++v) nodes.push_back(v);
  support::shuffle(nodes, rng);
  const std::uint32_t node_target = target_count(spec.node_fraction,
                                                 nodes.size());
  accepted = 0;
  std::vector<EdgeId> killed_edges;
  for (const NodeId v : nodes) {
    if (accepted == node_target) break;
    scratch.kill_node(v, killed_edges);
    if (spec.preserve_connectivity &&
        !scratch.endpoints_connected(endpoints, bfs_queue, bfs_seen)) {
      scratch.revive_node(v, killed_edges);
      ++plan.skipped_;
      continue;
    }
    plan.events_.push_back({FaultKind::kNode, v, draw_epoch()});
    ++accepted;
  }

  // Modules: no connectivity interplay, but at least one must survive.
  std::vector<std::uint32_t> mods;
  for (std::uint32_t m = 0; m < modules; ++m) mods.push_back(m);
  support::shuffle(mods, rng);
  std::uint32_t module_target = target_count(spec.module_fraction,
                                             mods.size());
  if (modules != 0) {
    module_target = std::min(module_target, modules - 1);
  }
  for (std::uint32_t i = 0; i < module_target; ++i) {
    plan.events_.push_back({FaultKind::kModule, mods[i], draw_epoch()});
  }

  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.id < b.id;
            });
  return plan;
}

}  // namespace levnet::faults
