#include "faults/plan.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace levnet::faults {

namespace {

/// Scratch degraded graph used only while sampling: the plan must not
/// mutate the real graph, but connectivity screening needs to look at the
/// network as it will be once every accepted kill has landed.
struct Scratch {
  explicit Scratch(const topology::Graph& g)
      : graph(&g),
        edge_live(g.edge_count(), 1),
        node_live(g.node_count(), 1),
        bfs_seen(g.node_count(), 0) {
    // Symmetric graphs (every edge paired with its reverse, which
    // kill_link/kill_node preserve) only need one forward BFS: reach-from
    // implies reach-to. With unpaired one-way edges that implication
    // fails, so the screen must also check the transpose; build the
    // in-edge lists once in that case.
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (g.reverse_edge(e) == topology::kInvalidEdge) {
        asymmetric = true;
        break;
      }
    }
    if (asymmetric) {
      in_edges.resize(g.node_count());
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        in_edges[g.edge_head(e)].push_back(e);
      }
    }
  }

  void kill_link(EdgeId e) {
    edge_live[e] = 0;
    const EdgeId rev = graph->reverse_edge(e);
    if (rev != topology::kInvalidEdge) edge_live[rev] = 0;
  }

  void revive_link(EdgeId e) {
    edge_live[e] = 1;
    const EdgeId rev = graph->reverse_edge(e);
    if (rev != topology::kInvalidEdge) edge_live[rev] = 1;
  }

  void kill_node(NodeId v, std::vector<EdgeId>& killed_edges) {
    killed_edges.clear();
    node_live[v] = 0;
    for (EdgeId e = 0; e < graph->edge_count(); ++e) {
      if ((graph->edge_tail(e) == v || graph->edge_head(e) == v) &&
          edge_live[e] != 0) {
        edge_live[e] = 0;
        killed_edges.push_back(e);
      }
    }
  }

  void revive_node(NodeId v, const std::vector<EdgeId>& killed_edges) {
    node_live[v] = 1;
    for (const EdgeId e : killed_edges) edge_live[e] = 1;
  }

  /// BFS from `root` over live edges and nodes; `backward` walks the
  /// transpose. Returns true iff every *live* endpoint was reached.
  /// The visited set is a stamped array reused across every screening
  /// retry — rejection-heavy samples on large graphs no longer pay an
  /// O(node_count) clear per attempt.
  [[nodiscard]] bool endpoints_reachable(std::uint32_t endpoints,
                                         std::uint32_t live_endpoints,
                                         NodeId root, bool backward) {
    bfs_queue.clear();
    if (++bfs_stamp == 0) {  // stamp wrapped: one real clear, then restart
      std::fill(bfs_seen.begin(), bfs_seen.end(), 0);
      bfs_stamp = 1;
    }
    bfs_queue.push_back(root);
    bfs_seen[root] = bfs_stamp;
    std::size_t head = 0;
    std::uint32_t endpoints_seen = 1;
    while (head < bfs_queue.size()) {
      const NodeId u = bfs_queue[head++];
      const auto visit = [&](EdgeId e, NodeId v) {
        if (edge_live[e] == 0 || node_live[v] == 0 ||
            bfs_seen[v] == bfs_stamp) {
          return;
        }
        bfs_seen[v] = bfs_stamp;
        bfs_queue.push_back(v);
        if (v < endpoints) ++endpoints_seen;
      };
      if (backward) {
        for (const EdgeId e : in_edges[u]) visit(e, graph->edge_tail(e));
      } else {
        for (std::uint32_t k = 0; k < graph->out_degree(u); ++k) {
          const EdgeId e = graph->out_edge(u, k);
          visit(e, graph->edge_head(e));
        }
      }
      if (endpoints_seen == live_endpoints) return true;
    }
    return endpoints_seen == live_endpoints;
  }

  /// True iff every live endpoint can both reach and be reached by the
  /// first live endpoint over live edges/nodes — the "every surviving
  /// processor can still talk to every surviving module, both ways"
  /// requirement. Dead endpoints (proc faults) are out of the quantifier:
  /// nothing is owed to a processor that no longer computes. Symmetric
  /// graphs need only the forward pass.
  [[nodiscard]] bool endpoints_connected(std::uint32_t endpoints) {
    NodeId root = topology::kInvalidNode;
    std::uint32_t live = 0;
    for (NodeId v = 0; v < endpoints; ++v) {
      if (node_live[v] != 0) {
        if (root == topology::kInvalidNode) root = v;
        ++live;
      }
    }
    if (live <= 1) return true;
    if (!endpoints_reachable(endpoints, live, root, false)) return false;
    return !asymmetric || endpoints_reachable(endpoints, live, root, true);
  }

  const topology::Graph* graph;
  std::vector<std::uint8_t> edge_live;
  std::vector<std::uint8_t> node_live;
  bool asymmetric = false;
  std::vector<std::vector<EdgeId>> in_edges;  // built only when asymmetric
  std::vector<NodeId> bfs_queue;
  std::vector<std::uint32_t> bfs_seen;  // stamp-visited, reused per retry
  std::uint32_t bfs_stamp = 0;
};

std::uint32_t target_count(double fraction, std::size_t candidates) {
  LEVNET_CHECK_MSG(fraction >= 0.0 && fraction < 1.0,
                   "fault fraction must lie in [0, 1)");
  return static_cast<std::uint32_t>(fraction *
                                    static_cast<double>(candidates));
}

}  // namespace

FaultPlan FaultPlan::sample(const topology::Graph& graph,
                            std::uint32_t endpoints, std::uint32_t modules,
                            const FaultSpec& spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  if (spec.link_fraction == 0.0 && spec.node_fraction == 0.0 &&
      spec.module_fraction == 0.0 && spec.proc_fraction == 0.0) {
    // Nothing to sample: skip the candidate shuffles and scratch arrays
    // entirely (fault-free twins in A/B benches take this path per seed).
    return plan;
  }
  // Decorrelate from the emulator/router streams that share the same
  // user-facing seed.
  std::uint64_t mix = seed ^ 0xFA17'FA17'FA17'FA17ULL;
  support::Rng rng(support::splitmix64(mix));

  Scratch scratch(graph);
  const auto draw_epoch = [&]() -> std::uint32_t {
    return spec.onset_epochs <= 1
               ? 0
               : static_cast<std::uint32_t>(rng.below(spec.onset_epochs));
  };

  // Processors first: a dead processor takes its endpoint node (and every
  // incident link) with it, so the later link/node phases must see those
  // kills in the scratch graph. When the fraction is zero the phase is
  // skipped entirely — zero RNG draws — so proc-free plans keep the exact
  // draw sequence (and therefore the exact events) of every plan sampled
  // before this axis existed.
  std::uint32_t proc_dead = 0;
  if (spec.proc_fraction > 0.0) {
    std::vector<NodeId> procs;
    for (NodeId p = 0; p < endpoints; ++p) procs.push_back(p);
    support::shuffle(procs, rng);
    std::uint32_t proc_target = target_count(spec.proc_fraction,
                                             procs.size());
    if (endpoints != 0) {
      // At least one processor must survive to adopt the dead ones' slots.
      proc_target = std::min(proc_target, endpoints - 1);
    }
    std::vector<EdgeId> proc_edges;
    for (const NodeId p : procs) {
      if (proc_dead == proc_target) break;
      scratch.kill_node(p, proc_edges);
      if (spec.preserve_connectivity &&
          !scratch.endpoints_connected(endpoints)) {
        scratch.revive_node(p, proc_edges);
        ++plan.skipped_;
        continue;
      }
      plan.events_.push_back({FaultKind::kProc, p, draw_epoch()});
      ++proc_dead;
    }
    LEVNET_CHECK_MSG(
        proc_dead == proc_target,
        "FaultPlan::sample: procs= fraction unsatisfiable — every remaining "
        "processor kill would disconnect the survivor endpoints (lower "
        "procs= or set allow-cut=1)");
  }

  // Links: one candidate per physical link (the lower-id directed edge of
  // each reverse pair; one-way edges stand alone). Candidates already dead
  // in the scratch graph (killed alongside a dead processor) are passed
  // over without consuming quota: their death is implied by the kProc
  // event, and "killing" them again would corrupt the revive-on-reject
  // bookkeeping.
  std::vector<EdgeId> links;
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const EdgeId rev = graph.reverse_edge(e);
    if (rev == topology::kInvalidEdge || e < rev) links.push_back(e);
  }
  support::shuffle(links, rng);
  const std::uint32_t link_target = target_count(spec.link_fraction,
                                                 links.size());
  std::uint32_t accepted = 0;
  for (const EdgeId e : links) {
    if (accepted == link_target) break;
    if (scratch.edge_live[e] == 0) continue;
    scratch.kill_link(e);
    if (spec.preserve_connectivity &&
        !scratch.endpoints_connected(endpoints)) {
      scratch.revive_link(e);
      ++plan.skipped_;
      continue;
    }
    plan.events_.push_back({FaultKind::kLink, e, draw_epoch()});
    ++accepted;
  }
  // Link-only plans have always under-filled silently when the guard
  // rejects everything (pinned behavior); under procs= the combination is
  // a configuration error, named instead of silently shrunk.
  LEVNET_CHECK_MSG(
      spec.proc_fraction == 0.0 || accepted == link_target,
      "FaultPlan::sample: procs= and links= jointly unsatisfiable — after "
      "the processor kills, the connectivity guard rejected every remaining "
      "link candidate (lower links=/procs= or set allow-cut=1)");

  // Nodes: endpoints host processors; *node* faults never touch them
  // (processor kills are the explicit procs= axis above).
  std::vector<NodeId> nodes;
  for (NodeId v = endpoints; v < graph.node_count(); ++v) nodes.push_back(v);
  support::shuffle(nodes, rng);
  const std::uint32_t node_target = target_count(spec.node_fraction,
                                                 nodes.size());
  accepted = 0;
  std::vector<EdgeId> killed_edges;
  for (const NodeId v : nodes) {
    if (accepted == node_target) break;
    scratch.kill_node(v, killed_edges);
    if (spec.preserve_connectivity &&
        !scratch.endpoints_connected(endpoints)) {
      scratch.revive_node(v, killed_edges);
      ++plan.skipped_;
      continue;
    }
    plan.events_.push_back({FaultKind::kNode, v, draw_epoch()});
    ++accepted;
  }
  LEVNET_CHECK_MSG(
      spec.proc_fraction == 0.0 || accepted == node_target,
      "FaultPlan::sample: procs= and nodes= jointly unsatisfiable — after "
      "the processor kills, the connectivity guard rejected every remaining "
      "node candidate (lower nodes=/procs= or set allow-cut=1)");

  // Modules: no connectivity interplay, but at least one must survive.
  // Modules co-located with a dead processor die with it (the injector
  // applies that implication), so they are skipped here and the survivor
  // floor is counted over the live ones.
  std::vector<std::uint32_t> mods;
  for (std::uint32_t m = 0; m < modules; ++m) mods.push_back(m);
  support::shuffle(mods, rng);
  std::uint32_t module_target = target_count(spec.module_fraction,
                                             mods.size());
  const std::uint32_t live_modules = modules - proc_dead;
  if (live_modules != 0) {
    module_target = std::min(module_target, live_modules - 1);
  } else {
    module_target = 0;
  }
  accepted = 0;
  for (const std::uint32_t m : mods) {
    if (accepted == module_target) break;
    if (m < endpoints && scratch.node_live[m] == 0) continue;
    plan.events_.push_back({FaultKind::kModule, m, draw_epoch()});
    ++accepted;
  }

  // Apply order within an epoch: processor kills first (they imply node
  // and module deaths the later kinds must observe), then the pre-existing
  // link < node < module order so proc-free plans sort exactly as before.
  const auto kind_rank = [](FaultKind k) -> int {
    switch (k) {
      case FaultKind::kProc: return 0;
      case FaultKind::kLink: return 1;
      case FaultKind::kNode: return 2;
      case FaultKind::kModule: return 3;
    }
    return 4;
  };
  std::sort(plan.events_.begin(), plan.events_.end(),
            [&](const FaultEvent& a, const FaultEvent& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              if (a.kind != b.kind) return kind_rank(a.kind) < kind_rank(b.kind);
              return a.id < b.id;
            });
  return plan;
}

}  // namespace levnet::faults
