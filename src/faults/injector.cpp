#include "faults/injector.hpp"

#include "support/check.hpp"

namespace levnet::faults {

FaultInjector::FaultInjector(topology::Graph& graph, std::uint32_t modules,
                             const FaultPlan& plan)
    : graph_(&graph),
      plan_(&plan),
      module_live_(modules, 1),
      // Processors and modules are co-located one per endpoint fabric-wide,
      // so the module count bounds the processor id space too.
      proc_live_(modules, 1) {
  for (const FaultEvent& event : plan.events()) {
    switch (event.kind) {
      case FaultKind::kLink:
        LEVNET_CHECK_MSG(event.id < graph.edge_count(),
                         "fault plan names a link outside the graph");
        break;
      case FaultKind::kNode:
        LEVNET_CHECK_MSG(event.id < graph.node_count(),
                         "fault plan names a node outside the graph");
        break;
      case FaultKind::kModule:
        LEVNET_CHECK_MSG(event.id < modules,
                         "fault plan names a module outside the fabric");
        break;
      case FaultKind::kProc:
        LEVNET_CHECK_MSG(event.id < modules,
                         "fault plan names a processor outside the fabric");
        break;
    }
  }
}

void FaultInjector::reset() {
  graph_->revive_all();
  module_live_.assign(module_live_.size(), 1);
  proc_live_.assign(proc_live_.size(), 1);
  remap_ = hashing::ExclusionRemap{};
  proc_remap_ = hashing::ExclusionRemap{};
  cursor_ = 0;
  dead_links_ = 0;
  dead_nodes_ = 0;
}

FaultInjector::Applied FaultInjector::advance_to(std::uint32_t epoch) {
  Applied applied;
  const auto& events = plan_->events();
  while (cursor_ < events.size() && events[cursor_].epoch <= epoch) {
    const FaultEvent& event = events[cursor_++];
    switch (event.kind) {
      case FaultKind::kLink:
        // Only effective kills count: a link can already be dead when an
        // earlier node event took its endpoint (sampling overlap), and
        // the dead_* snapshot must describe distinct disabled components.
        if (graph_->edge_live(event.id)) {
          graph_->kill_link(event.id);
          ++dead_links_;
          ++applied.links;
        }
        break;
      case FaultKind::kNode:
        if (graph_->node_live(event.id)) {
          graph_->kill_node(event.id);
          ++dead_nodes_;
          ++applied.nodes;
        }
        break;
      case FaultKind::kModule:
        if (module_live_[event.id] != 0) {
          module_live_[event.id] = 0;
          ++applied.modules;
        }
        break;
      case FaultKind::kProc:
        // The compound fault: the processor's endpoint node (and every
        // incident link) dies, its co-located memory module dies, and its
        // program slot will be adopted by a survivor via proc_remap_.
        // The node kill is not counted in dead_nodes_ — the snapshot
        // reports distinct disabled components by their primary kind.
        if (proc_live_[event.id] != 0) {
          proc_live_[event.id] = 0;
          ++applied.procs;
          if (graph_->node_live(event.id)) graph_->kill_node(event.id);
          if (module_live_[event.id] != 0) {
            module_live_[event.id] = 0;
            ++applied.modules;
          }
        }
        break;
    }
  }
  if (applied.modules != 0) {
    // The remap salt is derived from the plan seed, not drawn from a live
    // RNG stream: rebuilding at any epoch yields the same survivor
    // assignment, so a replay (reset + advance) is bit-identical.
    remap_ = hashing::ExclusionRemap::build(
        module_live_, plan_->seed() ^ 0x5EED'0F'DEADULL);
  }
  if (applied.procs != 0) {
    // Same replayability argument, distinct salt: slot adoption and module
    // remap are independent survivor assignments over the same id space.
    proc_remap_ = hashing::ExclusionRemap::build(
        proc_live_, plan_->seed() ^ 0xAD09'7000'5EEDULL);
  }
  return applied;
}

}  // namespace levnet::faults
