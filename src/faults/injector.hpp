#pragma once
// FaultInjector: applies a FaultPlan onto a live topology, epoch by epoch.
//
// The injector owns the mutable view of degradation: it flips the graph's
// liveness mask for link/node events, tracks memory-module and processor
// liveness, and keeps the survivor remaps (hashing::ExclusionRemap)
// current so that remap(h(addr)) never lands on a dead module and
// adopt_proc(p) never names a dead processor. A processor event is the
// compound fault: its endpoint node dies (all incident links), its
// co-located memory module dies, and its program slot is adopted by a
// seed-derived survivor. One injector serves one
// run on one graph instance — it mutates the graph, so a faulted graph
// must not be shared across concurrent trials (construct topology + plan +
// injector per seed inside the trial body; see analysis/trials.hpp).
//
// Epochs are abstract: the emulator calls advance_to(pram_step) before
// each PRAM step, a routing harness may advance per network step. reset()
// rewinds everything (graph revived, modules revived, cursor at 0) so the
// same injector can replay the plan for a fresh run.

#include <cstdint>

#include "faults/plan.hpp"
#include "hashing/exclusion.hpp"
#include "topology/graph.hpp"

namespace levnet::faults {

class FaultInjector {
 public:
  /// Binds plan to a graph and a module space. The plan must outlive the
  /// injector. The survivor-remap salt is derived from the plan seed, so
  /// the whole degradation is one-seed deterministic.
  FaultInjector(topology::Graph& graph, std::uint32_t modules,
                const FaultPlan& plan);

  /// What advance_to just changed; module changes require a remap/rehash,
  /// proc changes additionally require a slot-adoption remap.
  struct Applied {
    std::uint32_t links = 0;
    std::uint32_t nodes = 0;
    std::uint32_t modules = 0;
    std::uint32_t procs = 0;
    [[nodiscard]] bool any() const noexcept {
      return links + nodes + modules + procs != 0;
    }
  };

  /// Revives everything and rewinds the plan cursor.
  void reset();

  /// Applies every not-yet-applied event with event.epoch <= epoch, in
  /// plan order. Rebuilds the survivor remap when a module died.
  Applied advance_to(std::uint32_t epoch);

  [[nodiscard]] bool module_live(std::uint32_t m) const noexcept {
    return module_live_[m] != 0;
  }
  /// Survivor module for hash bucket m (identity while m is live).
  [[nodiscard]] std::uint32_t remap_module(std::uint32_t m) const noexcept {
    return remap_(m);
  }

  [[nodiscard]] bool proc_live(std::uint32_t p) const noexcept {
    return proc_live_[p] != 0;
  }
  /// Survivor processor that executes processor p's program slot
  /// (identity while p is live). Seed-salted like the module remap, so the
  /// adoption assignment is replayable from the plan alone.
  [[nodiscard]] std::uint32_t adopt_proc(std::uint32_t p) const noexcept {
    return proc_remap_(p);
  }

  [[nodiscard]] std::uint32_t dead_links() const noexcept {
    return dead_links_;
  }
  [[nodiscard]] std::uint32_t dead_nodes() const noexcept {
    return dead_nodes_;
  }
  [[nodiscard]] std::uint32_t dead_modules() const noexcept {
    return remap_.excluded();
  }
  [[nodiscard]] std::uint32_t dead_procs() const noexcept {
    return proc_remap_.excluded();
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] topology::Graph& graph() noexcept { return *graph_; }

 private:
  topology::Graph* graph_;
  const FaultPlan* plan_;
  std::vector<std::uint8_t> module_live_;
  std::vector<std::uint8_t> proc_live_;
  hashing::ExclusionRemap remap_;
  hashing::ExclusionRemap proc_remap_;
  std::size_t cursor_ = 0;  // first unapplied plan event
  std::uint32_t dead_links_ = 0;
  std::uint32_t dead_nodes_ = 0;
};

}  // namespace levnet::faults
