#include "machine/run_io.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <ostream>

namespace levnet::machine {

bool parse_count(const std::string& value, unsigned long& out) {
  if (value.empty() || value.size() > 9) return false;
  for (const char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  out = std::strtoul(value.c_str(), nullptr, 10);
  return true;
}

bool parse_count_u64(const std::string& value, std::uint64_t& out) {
  if (value.empty() || value.size() > 20) return false;
  std::uint64_t parsed = 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (const char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (parsed > kMax / 10 || parsed * 10 > kMax - digit) return false;
    parsed = parsed * 10 + digit;
  }
  out = parsed;
  return true;
}

bool parse_flat_json(const std::string& text,
                     std::map<std::string, std::string>& out,
                     std::string& error, const char* where) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  const auto parse_string = [&](std::string& value) {
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    value.clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      value += text[i++];
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') {
    error = std::string(where) + " must be a JSON object";
    return false;
  }
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return true;  // empty object
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(key)) {
      error = std::string("expected a string key in the ") + where;
      return false;
    }
    skip_ws();
    if (i >= text.size() || text[i] != ':') {
      error = "expected ':' after key '" + key + "'";
      return false;
    }
    ++i;
    skip_ws();
    std::string value;
    if (i < text.size() && text[i] == '"') {
      if (!parse_string(value)) {
        error = "unterminated string value for key '" + key + "'";
        return false;
      }
    } else {
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             !std::isspace(static_cast<unsigned char>(text[i]))) {
        value += text[i++];
      }
      if (value.empty()) {
        error = "missing value for key '" + key + "'";
        return false;
      }
    }
    out[key] = value;
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') return true;
    error = "expected ',' or '}' after value for key '" + key + "'";
    return false;
  }
}

bool read_count_field(const std::map<std::string, std::string>& values,
                      const char* key, const char* where, unsigned long& out,
                      std::string& error) {
  const auto it = values.find(key);
  if (it == values.end()) return true;
  unsigned long parsed = 0;
  if (!parse_count(it->second, parsed)) {
    error = std::string("bad number for '") + key + "' in " + where +
            " (expected an unsigned integer)";
    return false;
  }
  out = parsed;
  return true;
}

void json_escape(std::ostream& os, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

void write_report_fields(std::ostream& os,
                         const emulation::EmulationReport& r) {
  os << "\"pram_steps\": " << r.pram_steps
     << ", \"network_steps\": " << r.network_steps
     << ", \"max_step_network\": " << r.max_step_network
     << ", \"mean_step_network\": " << r.mean_step_network
     << ", \"max_link_queue\": " << r.max_link_queue
     << ", \"max_node_queue\": " << r.max_node_queue
     << ", \"request_packets\": " << r.request_packets
     << ", \"reply_packets\": " << r.reply_packets
     << ", \"combined_requests\": " << r.combined_requests
     << ", \"local_ops\": " << r.local_ops
     << ", \"rehashes\": " << r.rehashes
     << ", \"detour_hops\": " << r.detour_hops
     << ", \"dropped_packets\": " << r.dropped_packets
     << ", \"fault_rehashes\": " << r.fault_rehashes
     << ", \"dead_links\": " << r.dead_links
     << ", \"dead_nodes\": " << r.dead_nodes
     << ", \"dead_modules\": " << r.dead_modules
     << ", \"dead_procs\": " << r.dead_procs
     << ", \"adopted_slot_steps\": " << r.adopted_slot_steps
     << ", \"peak_in_flight\": " << r.peak_in_flight
     << ", \"latency_p50\": " << r.latency_p50
     << ", \"latency_p95\": " << r.latency_p95
     << ", \"latency_p99\": " << r.latency_p99
     << ", \"queue_delay_p50\": " << r.queue_delay_p50
     << ", \"queue_delay_p95\": " << r.queue_delay_p95
     << ", \"queue_delay_p99\": " << r.queue_delay_p99
     << ", \"complete\": " << (r.complete ? "true" : "false");
}

}  // namespace levnet::machine
