#include "machine/registry.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "machine/spec.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "pram/algorithms/broadcast.hpp"
#include "pram/algorithms/compaction.hpp"
#include "pram/algorithms/histogram.hpp"
#include "pram/algorithms/list_ranking.hpp"
#include "pram/algorithms/matmul.hpp"
#include "pram/algorithms/matvec.hpp"
#include "pram/algorithms/max_find.hpp"
#include "pram/algorithms/prefix_sum.hpp"
#include "pram/algorithms/sorting.hpp"
#include "routing/extra_routers.hpp"
#include "routing/hypercube_router.hpp"
#include "routing/mesh_router.hpp"
#include "routing/shuffle_router.hpp"
#include "routing/star_router.hpp"
#include "routing/two_phase.hpp"
#include "support/rng.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/linear_array.hpp"
#include "topology/mesh.hpp"
#include "topology/shuffle.hpp"
#include "topology/star.hpp"
#include "topology/torus.hpp"

namespace levnet::machine {

namespace {

/// Simulation-practical ceiling on constructed network size: the CSR graph
/// plus router tables for 4M nodes already stress a laptop; anything larger
/// is a spec typo, not an experiment.
constexpr std::uint64_t kMaxNodes = std::uint64_t{1} << 22;

[[nodiscard]] bool power_fits(std::uint32_t base, std::uint32_t exponent,
                              std::uint64_t limit) {
  std::uint64_t value = 1;
  for (std::uint32_t i = 0; i < exponent; ++i) {
    value *= base;
    if (value > limit) return false;
  }
  return true;
}

/// The deterministic oblivious router of the linear processor array
/// (Section 3.4.1's 1-D substrate): one step toward the destination. Lives
/// here because the linear array needs *a* router to be a Machine and the
/// greedy walk is its only sensible oblivious policy.
class LinearGreedyRouter final : public routing::Router {
 public:
  void prepare(routing::Packet& p, support::Rng& rng) const override {
    (void)p;
    (void)rng;
  }
  [[nodiscard]] routing::NodeId next_hop(routing::Packet& p,
                                         routing::NodeId at,
                                         support::Rng& rng) const override {
    (void)rng;
    if (at == p.dst) return routing::kInvalidNode;
    return at < p.dst ? at + 1 : at - 1;
  }
  [[nodiscard]] std::uint32_t remaining(const routing::Packet& p,
                                        routing::NodeId at) const override {
    return at < p.dst ? p.dst - at : at - p.dst;
  }
};

// --------------------------------------------------------------- boxes

/// Shared implementation for the vertex-symmetric families: every node is
/// processor i == module i and the fabric is the identity binding. The
/// route scale (the theorems' L) is delegated to the topology class's own
/// closed form via the subclass override — never re-derived here.
template <typename Topology>
class IdentityBox : public TopologyBox {
 public:
  template <typename... Args>
  explicit IdentityBox(Args&&... args)
      : topo_(std::forward<Args>(args)...) {}

  [[nodiscard]] const topology::Graph& graph() const noexcept override {
    return topo_.graph();
  }
  [[nodiscard]] topology::Graph& graph_mut() noexcept override {
    return topo_.graph_mut();
  }
  [[nodiscard]] std::string name() const override { return topo_.name(); }
  [[nodiscard]] std::uint32_t endpoints() const noexcept override {
    return topo_.graph().node_count();
  }
  [[nodiscard]] emulation::EmulationFabric make_fabric(
      const routing::Router& router) const override {
    return emulation::EmulationFabric(topo_.graph(), router, route_scale(),
                                      topo_.name());
  }

 protected:
  Topology topo_;
};

class StarBox final : public IdentityBox<topology::StarGraph> {
 public:
  explicit StarBox(std::uint32_t n) : IdentityBox(n) {}

  [[nodiscard]] std::uint32_t route_scale() const noexcept override {
    return topo_.diameter();
  }
  [[nodiscard]] std::unique_ptr<routing::Router> make_router(
      std::string_view key, std::uint32_t param,
      std::string& error) const override;
};

class ShuffleBox final : public IdentityBox<topology::DWayShuffle> {
 public:
  ShuffleBox(std::uint32_t d, std::uint32_t n) : IdentityBox(d, n) {}

  [[nodiscard]] std::uint32_t route_scale() const noexcept override {
    return topo_.route_length();
  }
  [[nodiscard]] std::unique_ptr<routing::Router> make_router(
      std::string_view key, std::uint32_t param,
      std::string& error) const override;
};

class MeshBox final : public IdentityBox<topology::Mesh> {
 public:
  MeshBox(std::uint32_t rows, std::uint32_t cols)
      : IdentityBox(rows, cols) {}

  [[nodiscard]] std::uint32_t route_scale() const noexcept override {
    return topo_.diameter();
  }
  [[nodiscard]] std::unique_ptr<routing::Router> make_router(
      std::string_view key, std::uint32_t param,
      std::string& error) const override;
};

class TorusBox final : public IdentityBox<topology::Torus> {
 public:
  TorusBox(std::uint32_t rows, std::uint32_t cols)
      : IdentityBox(rows, cols) {}

  [[nodiscard]] std::uint32_t route_scale() const noexcept override {
    return topo_.diameter();
  }
  [[nodiscard]] std::unique_ptr<routing::Router> make_router(
      std::string_view key, std::uint32_t param,
      std::string& error) const override;
};

class HypercubeBox final : public IdentityBox<topology::Hypercube> {
 public:
  explicit HypercubeBox(std::uint32_t dim) : IdentityBox(dim) {}

  [[nodiscard]] std::uint32_t route_scale() const noexcept override {
    return topo_.diameter();
  }
  [[nodiscard]] std::unique_ptr<routing::Router> make_router(
      std::string_view key, std::uint32_t param,
      std::string& error) const override;
};

class CccBox final : public IdentityBox<topology::CubeConnectedCycles> {
 public:
  explicit CccBox(std::uint32_t k) : IdentityBox(k) {}

  [[nodiscard]] std::uint32_t route_scale() const noexcept override {
    return topo_.route_bound();
  }
  [[nodiscard]] std::unique_ptr<routing::Router> make_router(
      std::string_view key, std::uint32_t param,
      std::string& error) const override;
};

class LinearBox final : public IdentityBox<topology::LinearArray> {
 public:
  explicit LinearBox(std::uint32_t n) : IdentityBox(n) {}

  [[nodiscard]] std::uint32_t route_scale() const noexcept override {
    return topo_.diameter();
  }
  [[nodiscard]] std::unique_ptr<routing::Router> make_router(
      std::string_view key, std::uint32_t param,
      std::string& error) const override;
};

/// The butterfly binds differently: endpoints are the column-0 rows.
class ButterflyBox final : public TopologyBox {
 public:
  ButterflyBox(std::uint32_t radix, std::uint32_t levels)
      : bf_(radix, levels) {}

  [[nodiscard]] const topology::Graph& graph() const noexcept override {
    return bf_.graph();
  }
  [[nodiscard]] topology::Graph& graph_mut() noexcept override {
    return bf_.graph_mut();
  }
  [[nodiscard]] std::string name() const override { return bf_.name(); }
  [[nodiscard]] std::uint32_t endpoints() const noexcept override {
    return bf_.row_count();
  }
  [[nodiscard]] std::uint32_t route_scale() const noexcept override {
    return bf_.route_length();
  }
  [[nodiscard]] emulation::EmulationFabric make_fabric(
      const routing::Router& router) const override {
    return emulation::EmulationFabric(bf_, router);
  }
  [[nodiscard]] std::unique_ptr<routing::Router> make_router(
      std::string_view key, std::uint32_t param,
      std::string& error) const override;

 private:
  topology::WrappedButterfly bf_;
};

[[nodiscard]] std::string router_keys_joined(const TopologyInfo& info) {
  std::string joined;
  for (const RouterInfo& router : info.routers) {
    if (!joined.empty()) joined += ", ";
    joined += router.key;
  }
  return joined;
}

[[nodiscard]] std::string unknown_router_error(std::string_view family,
                                               std::string_view key) {
  const TopologyInfo* info = find_topology(family);
  return "unknown router '" + std::string(key) + "' for topology '" +
         std::string(family) +
         "' (valid: " + (info != nullptr ? router_keys_joined(*info) : "") +
         ")";
}

std::unique_ptr<routing::Router> StarBox::make_router(
    std::string_view key, std::uint32_t param, std::string& error) const {
  (void)param;
  if (key == "two-phase") {
    return std::make_unique<routing::StarTwoPhaseRouter>(topo_);
  }
  if (key == "greedy") {
    return std::make_unique<routing::StarGreedyRouter>(topo_);
  }
  error = unknown_router_error("star", key);
  return nullptr;
}

std::unique_ptr<routing::Router> ShuffleBox::make_router(
    std::string_view key, std::uint32_t param, std::string& error) const {
  (void)param;
  if (key == "two-phase") {
    return std::make_unique<routing::ShuffleTwoPhaseRouter>(topo_);
  }
  if (key == "unique-path") {
    return std::make_unique<routing::ShuffleUniquePathRouter>(topo_);
  }
  error = unknown_router_error("shuffle", key);
  return nullptr;
}

std::unique_ptr<routing::Router> MeshBox::make_router(
    std::string_view key, std::uint32_t param, std::string& error) const {
  if (key == "three-stage") {
    return std::make_unique<routing::MeshThreeStageRouter>(topo_, param);
  }
  if (key == "valiant") {
    return std::make_unique<routing::ValiantBrebnerMeshRouter>(topo_);
  }
  if (key == "xy") {
    return std::make_unique<routing::GreedyXYMeshRouter>(topo_);
  }
  error = unknown_router_error("mesh", key);
  return nullptr;
}

std::unique_ptr<routing::Router> TorusBox::make_router(
    std::string_view key, std::uint32_t param, std::string& error) const {
  (void)param;
  if (key == "greedy") {
    return std::make_unique<routing::TorusGreedyRouter>(topo_);
  }
  if (key == "valiant") {
    return std::make_unique<routing::TorusValiantRouter>(topo_);
  }
  error = unknown_router_error("torus", key);
  return nullptr;
}

std::unique_ptr<routing::Router> HypercubeBox::make_router(
    std::string_view key, std::uint32_t param, std::string& error) const {
  (void)param;
  if (key == "ecube") {
    return std::make_unique<routing::EcubeRouter>(topo_);
  }
  if (key == "valiant") {
    return std::make_unique<routing::ValiantHypercubeRouter>(topo_);
  }
  error = unknown_router_error("hypercube", key);
  return nullptr;
}

std::unique_ptr<routing::Router> CccBox::make_router(
    std::string_view key, std::uint32_t param, std::string& error) const {
  (void)param;
  if (key == "sweep") {
    return std::make_unique<routing::CccSweepRouter>(topo_);
  }
  if (key == "two-phase") {
    return std::make_unique<routing::CccTwoPhaseRouter>(topo_);
  }
  error = unknown_router_error("ccc", key);
  return nullptr;
}

std::unique_ptr<routing::Router> LinearBox::make_router(
    std::string_view key, std::uint32_t param, std::string& error) const {
  (void)param;
  if (key == "greedy") {
    return std::make_unique<LinearGreedyRouter>();
  }
  error = unknown_router_error("linear", key);
  return nullptr;
}

std::unique_ptr<routing::Router> ButterflyBox::make_router(
    std::string_view key, std::uint32_t param, std::string& error) const {
  (void)param;
  if (key == "two-phase") {
    return std::make_unique<routing::TwoPhaseButterflyRouter>(bf_);
  }
  if (key == "unique-path") {
    return std::make_unique<routing::UniquePathButterflyRouter>(bf_);
  }
  error = unknown_router_error("butterfly", key);
  return nullptr;
}

/// Fills `error` and returns nullptr (the builder's uniform failure path).
[[nodiscard]] std::unique_ptr<TopologyBox> bad_params(const MachineSpec& spec,
                                                      const TopologyInfo& info,
                                                      std::string& error) {
  error = "bad parameters for topology '";
  error += info.key;
  error += "': ";
  error += std::to_string(spec.param0);
  if (spec.param1 != 0) {
    error += "x";
    error += std::to_string(spec.param1);
  }
  error += " (expected ";
  error += info.params_help;
  error += ")";
  return nullptr;
}

}  // namespace

// Catalogue access is thread-safe: both tables are function-local statics
// (initialized once under the C++11 magic-static guarantee) and const ever
// after, so any thread may read them without synchronization. Entries are
// kept name-sorted — `levnet_lint` enforces it via the table markers, and
// the sorted order is what --list and error listings print.
const std::vector<TopologyInfo>& topology_families() {
  // levnet-lint: sorted-table(topology-families)
  static const std::vector<TopologyInfo> kFamilies = {
      {"butterfly",
       "levels l (radix 2) | dxl (radix d, l levels)",
       "wrapped radix-d butterfly, the canonical leveled network (Fig. 1)",
       {{"two-phase", "Algorithm 2.1: random row, then unique path"},
        {"unique-path", "deterministic digit-fixing forward path"}},
       2, 5},
      {"ccc",
       "k in 3..18 (N = k * 2^k)",
       "cube-connected cycles: constant-degree leveled network",
       {{"sweep", "deterministic cycle-walk dimension sweep"},
        {"two-phase", "random intermediate + two sweep legs"}},
       3},
      {"hypercube",
       "dim in 1..22 (N = 2^dim)",
       "binary hypercube (Section 2.3.4's comparison network)",
       {{"ecube", "deterministic dimension-order (e-cube)"},
        {"valiant", "Valiant two-phase over random intermediates"}},
       6},
      {"linear",
       "n >= 2 processors in a row",
       "linear processor array (Section 3.4.1's 1-D substrate)",
       {{"greedy", "one step toward the destination"}},
       16},
      {"mesh",
       "n (n x n) | rxc (r rows, c columns)",
       "mesh-connected computer (Section 3.1), diameter r + c - 2",
       {{"three-stage", "Section 3.4 slice-randomized 3-stage (`:slice`)",
         true},
        {"valiant", "Valiant-Brebner two-phase"},
        {"xy", "greedy dimension-order XY"}},
       8},
      {"nshuffle",
       "n in 2..7 (the paper's n-way shuffle, N = n^n)",
       "n-way shuffle (d = n): diameter n, sub-logarithmic in N",
       {{"two-phase", "Algorithm 2.3: random forward pass, unique-path leg"},
        {"unique-path", "deterministic unique forward path"}},
       3},
      {"shuffle",
       "digits n (radix 2) | dxn (radix d, n digits)",
       "d-way shuffle network (Section 2.3.5), N = d^n nodes",
       {{"two-phase", "Algorithm 2.3: random forward pass, unique-path leg"},
        {"unique-path", "deterministic unique forward path"}},
       6},
      {"star",
       "n in 2..9 (N = n! nodes)",
       "n-star graph (Definitions 2.4-2.5), diameter floor(3(n-1)/2)",
       {{"two-phase", "Algorithm 2.2: random intermediate, greedy legs"},
        {"greedy", "deterministic minimal star-transposition path"}},
       5},
      {"torus",
       "n (n x n) | rxc (r rows, c columns)",
       "2-D torus: the mesh with end-around links, diameter r/2 + c/2",
       {{"greedy", "shortest wrapped dimension-order walk"},
        {"valiant", "Valiant two-phase over random intermediates"}},
       8},
  };
  // levnet-lint: end-table
  return kFamilies;
}

const TopologyInfo* find_topology(std::string_view key) {
  for (const TopologyInfo& info : topology_families()) {
    if (info.key == key) return &info;
  }
  return nullptr;
}

std::string topology_keys_joined() {
  std::string joined;
  for (const TopologyInfo& info : topology_families()) {
    if (!joined.empty()) joined += ", ";
    joined += info.key;
  }
  return joined;
}

std::unique_ptr<TopologyBox> build_topology(const MachineSpec& spec,
                                            std::string& error) {
  const TopologyInfo* info = find_topology(spec.topology);
  if (info == nullptr) {
    error = "unknown topology family '" + spec.topology +
            "' (valid: " + topology_keys_joined() + ")";
    return nullptr;
  }
  const std::uint32_t p0 = spec.param0;
  const std::uint32_t p1 = spec.param1;

  if (spec.topology == "star") {
    if (p0 < 2 || p0 > 9 || p1 != 0) return bad_params(spec, *info, error);
    return std::make_unique<StarBox>(p0);
  }
  if (spec.topology == "shuffle") {
    const std::uint32_t d = p1 != 0 ? p0 : 2;
    const std::uint32_t n = p1 != 0 ? p1 : p0;
    if (d < 2 || n < 1 || !power_fits(d, n, kMaxNodes)) {
      return bad_params(spec, *info, error);
    }
    return std::make_unique<ShuffleBox>(d, n);
  }
  if (spec.topology == "nshuffle") {
    if (p0 < 2 || p1 != 0 || !power_fits(p0, p0, kMaxNodes)) {
      return bad_params(spec, *info, error);
    }
    return std::make_unique<ShuffleBox>(p0, p0);
  }
  if (spec.topology == "butterfly") {
    const std::uint32_t radix = p1 != 0 ? p0 : 2;
    const std::uint32_t levels = p1 != 0 ? p1 : p0;
    if (radix < 2 || levels < 1 ||
        !power_fits(radix, levels, kMaxNodes / levels)) {
      return bad_params(spec, *info, error);
    }
    return std::make_unique<ButterflyBox>(radix, levels);
  }
  if (spec.topology == "mesh" || spec.topology == "torus") {
    const std::uint32_t rows = p0;
    const std::uint32_t cols = p1 != 0 ? p1 : p0;
    if (rows < 2 || cols < 2 ||
        std::uint64_t{rows} * cols > kMaxNodes) {
      return bad_params(spec, *info, error);
    }
    if (spec.topology == "mesh") return std::make_unique<MeshBox>(rows, cols);
    return std::make_unique<TorusBox>(rows, cols);
  }
  if (spec.topology == "hypercube") {
    if (p0 < 1 || p0 > 22 || p1 != 0) return bad_params(spec, *info, error);
    return std::make_unique<HypercubeBox>(p0);
  }
  if (spec.topology == "ccc") {
    if (p0 < 3 || p0 > 18 || p1 != 0) return bad_params(spec, *info, error);
    return std::make_unique<CccBox>(p0);
  }
  if (spec.topology == "linear") {
    if (p0 < 2 || p1 != 0) return bad_params(spec, *info, error);
    return std::make_unique<LinearBox>(p0);
  }
  error = "topology family '" + spec.topology + "' has no builder";
  return nullptr;
}

// ------------------------------------------------------------------ programs

namespace {

[[nodiscard]] std::vector<pram::Word> random_words(std::uint32_t n,
                                                   std::uint64_t seed,
                                                   std::uint64_t bound) {
  support::Rng rng(seed);
  std::vector<pram::Word> words(n);
  for (auto& w : words) w = static_cast<pram::Word>(rng.below(bound));
  return words;
}

[[nodiscard]] std::uint32_t isqrt(std::uint32_t n) {
  auto root =
      static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n)));
  while (root > 1 && root * root > n) --root;
  return root;
}

[[nodiscard]] std::uint32_t icbrt(std::uint32_t n) {
  auto root =
      static_cast<std::uint32_t>(std::cbrt(static_cast<double>(n)));
  while (root > 1 && root * root * root > n) --root;
  return root;
}

}  // namespace

const std::vector<ProgramInfo>& program_families() {
  // levnet-lint: sorted-table(program-families)
  static const std::vector<ProgramInfo> kPrograms = {
      {"broadcast", "EREW binary-tree broadcast of one value",
       pram::Mode::kErew},
      {"broadcast-crew", "CREW broadcast (all read the root cell)",
       pram::Mode::kCrew},
      {"compaction", "stream compaction of marked values (EREW)",
       pram::Mode::kErew},
      {"histogram", "CRCW-SUM histogram of random keys", pram::Mode::kCrcw,
       true},
      {"hotspot-read", "every processor reads cell 0 each step",
       pram::Mode::kCrcw, true},
      {"hotspot-write", "every processor adds 1 to cell 0 each step (SUM)",
       pram::Mode::kCrcw, true},
      {"list-ranking", "pointer-jumping list ranking (CREW)",
       pram::Mode::kCrew},
      {"logical-or", "2-step CRCW logical OR", pram::Mode::kCrcw, true},
      {"matmul", "CRCW-SUM n^3-processor matrix multiply",
       pram::Mode::kCrcw, true},
      {"matvec", "CREW n^2-processor matrix-vector product",
       pram::Mode::kCrew},
      {"max-crcw", "O(1)-step CRCW maximum (n^2 processors)",
       pram::Mode::kCrcw, true},
      {"max-tournament", "EREW tournament maximum", pram::Mode::kErew},
      {"odd-even-sort", "odd-even transposition sort (EREW)",
       pram::Mode::kErew},
      {"permutation", "one random permutation of read requests per step",
       pram::Mode::kErew},
      {"prefix-sum", "inclusive parallel prefix sum (EREW)",
       pram::Mode::kErew},
      {"random", "independent uniformly random reads per step",
       pram::Mode::kCrew},
  };
  // levnet-lint: end-table
  return kPrograms;
}

bool mode_allows(Mode mode, pram::Mode required) noexcept {
  const int have = mode == Mode::kCrcwCombining
                       ? static_cast<int>(pram::Mode::kCrcw)
                       : static_cast<int>(mode);
  return have >= static_cast<int>(required);
}

const ProgramInfo* find_program(std::string_view key) {
  for (const ProgramInfo& info : program_families()) {
    if (info.key == key) return &info;
  }
  return nullptr;
}

std::string program_keys_joined() {
  std::string joined;
  for (const ProgramInfo& info : program_families()) {
    if (!joined.empty()) joined += ", ";
    joined += info.key;
  }
  return joined;
}

std::unique_ptr<pram::PramProgram> make_program(std::string_view key,
                                                std::uint32_t processors,
                                                std::uint64_t seed,
                                                std::uint32_t pram_steps,
                                                std::string& error) {
  const std::uint32_t n = processors;
  if (n == 0) {
    error = "cannot size a program for 0 processors";
    return nullptr;
  }
  if (key == "permutation") {
    return std::make_unique<pram::PermutationTraffic>(n, pram_steps, seed);
  }
  if (key == "random") {
    return std::make_unique<pram::RandomTraffic>(n, pram_steps, seed);
  }
  if (key == "hotspot-read") {
    return std::make_unique<pram::HotSpotReadTraffic>(
        n, pram_steps, static_cast<pram::Word>(99));
  }
  if (key == "hotspot-write") {
    return std::make_unique<pram::HotSpotWriteTraffic>(n, pram_steps);
  }
  if (key == "broadcast") {
    return std::make_unique<pram::BroadcastErew>(
        n, static_cast<pram::Word>(seed % 1000));
  }
  if (key == "broadcast-crew") {
    return std::make_unique<pram::BroadcastCrew>(
        n, static_cast<pram::Word>(seed % 1000));
  }
  if (key == "prefix-sum") {
    return std::make_unique<pram::PrefixSumErew>(random_words(n, seed, 100));
  }
  if (key == "odd-even-sort") {
    // The sort costs O(n) PRAM steps; cap the instance so an interactive
    // `levnet_run` on a big machine stays interactive.
    return std::make_unique<pram::OddEvenSortErew>(
        random_words(std::min(n, 128U), seed, 1000));
  }
  if (key == "compaction") {
    std::vector<pram::Word> marks = random_words(n, seed + 1, 2);
    return std::make_unique<pram::CompactionErew>(random_words(n, seed, 1000),
                                                  std::move(marks));
  }
  if (key == "histogram") {
    const std::uint32_t buckets = std::max(2U, n / 8);
    return std::make_unique<pram::HistogramCrcwSum>(
        random_words(n, seed, buckets), buckets);
  }
  if (key == "list-ranking") {
    support::Rng rng(seed);
    const auto order = support::random_permutation(n, rng);
    std::vector<std::uint32_t> successor(n);
    for (std::uint32_t i = 0; i + 1 < n; ++i) successor[order[i]] = order[i + 1];
    successor[order[n - 1]] = order[n - 1];
    return std::make_unique<pram::ListRankingCrew>(std::move(successor));
  }
  if (key == "matmul") {
    const std::uint32_t side = std::max(1U, icbrt(n));
    return std::make_unique<pram::MatMulCrcwSum>(
        random_words(side * side, seed, 10),
        random_words(side * side, seed + 1, 10), side);
  }
  if (key == "matvec") {
    const std::uint32_t side = std::max(1U, isqrt(n));
    return std::make_unique<pram::MatVecCrew>(
        random_words(side * side, seed, 10), random_words(side, seed + 1, 10),
        side);
  }
  if (key == "max-tournament") {
    return std::make_unique<pram::TournamentMaxErew>(
        random_words(n, seed, 100000));
  }
  if (key == "max-crcw") {
    const std::uint32_t side = std::max(1U, isqrt(n));
    return std::make_unique<pram::ConstantMaxCrcw>(
        random_words(side, seed, 100000));
  }
  if (key == "logical-or") {
    std::vector<pram::Word> bits(n, 0);
    bits[seed % n] = 1;
    return std::make_unique<pram::LogicalOrCrcw>(std::move(bits));
  }
  error = "unknown program family '" + std::string(key) +
          "' (valid: " + program_keys_joined() + ")";
  return nullptr;
}

}  // namespace levnet::machine
