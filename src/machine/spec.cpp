#include "machine/spec.hpp"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <system_error>
#include <string>
#include <vector>

#include "machine/registry.hpp"
#include "support/check.hpp"

namespace levnet::machine {

namespace {

constexpr std::string_view kModeKeys[] = {"erew", "crew", "crcw",
                                          "crcw-combining"};
constexpr std::string_view kDisciplineKeys[] = {"fifo", "furthest-first",
                                                "nearest-first"};

[[nodiscard]] std::string_view discipline_key(
    sim::QueueDiscipline d) noexcept {
  return kDisciplineKeys[static_cast<std::size_t>(d)];
}

[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  const std::string owned(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  out = value;
  return true;
}

[[nodiscard]] bool parse_u32(std::string_view text, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!parse_u64(text, wide) || wide > ~std::uint32_t{0}) return false;
  out = static_cast<std::uint32_t>(wide);
  return true;
}

[[nodiscard]] bool parse_fraction(std::string_view text, double& out) {
  if (text.empty()) return false;
  const std::string owned(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  if (!(value >= 0.0) || value >= 1.0) return false;
  out = value;
  return true;
}

void append_fraction(std::string& out, double value) {
  // Shortest round-trip form: parse(to_string(spec)) must reproduce the
  // exact double (the fault-plan draw depends on it bit for bit).
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  if (ec == std::errc{}) {
    out.append(buffer, end);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    out += buffer;
  }
}

[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char sep) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

/// Splits "key:params" (params optional).
void split_key_params(std::string_view segment, std::string_view& key,
                      std::string_view& params) {
  const std::size_t colon = segment.find(':');
  key = segment.substr(0, colon);
  params = colon == std::string_view::npos ? std::string_view{}
                                           : segment.substr(colon + 1);
}

[[nodiscard]] bool parse_topology_segment(std::string_view segment,
                                          MachineSpec& out,
                                          std::string& error) {
  std::string_view key;
  std::string_view params;
  split_key_params(segment, key, params);
  const TopologyInfo* info = find_topology(key);
  if (info == nullptr) {
    error = "unknown topology family '" + std::string(key) +
            "' (valid: " + topology_keys_joined() + ")";
    return false;
  }
  out.topology = std::string(key);
  if (params.empty()) {
    error = "topology '" + std::string(key) + "' needs parameters: " +
            std::string(info->params_help);
    return false;
  }
  const std::size_t cross = params.find('x');
  const std::string_view first =
      params.substr(0, cross);
  if (!parse_u32(first, out.param0) || out.param0 == 0) {
    error = "bad topology parameter '" + std::string(first) + "' in '" +
            std::string(segment) + "' (expected " +
            std::string(info->params_help) + ")";
    return false;
  }
  if (cross != std::string_view::npos) {
    const std::string_view second = params.substr(cross + 1);
    if (!parse_u32(second, out.param1) || out.param1 == 0) {
      error = "bad topology parameter '" + std::string(second) + "' in '" +
              std::string(segment) + "' (expected " +
              std::string(info->params_help) + ")";
      return false;
    }
  } else {
    out.param1 = 0;
  }
  return true;
}

[[nodiscard]] bool parse_router_segment(std::string_view segment,
                                        MachineSpec& out, std::string& error) {
  std::string_view key;
  std::string_view params;
  split_key_params(segment, key, params);
  const TopologyInfo* info = find_topology(out.topology);
  bool known = false;
  std::string valid;
  if (info != nullptr) {
    for (const RouterInfo& router : info->routers) {
      if (!valid.empty()) valid += ", ";
      valid += router.key;
      known = known || router.key == key;
    }
  }
  if (!known) {
    error = "unknown router '" + std::string(key) + "' for topology '" +
            out.topology + "' (valid: " + valid + ")";
    return false;
  }
  out.router = std::string(key);
  out.router_param = 0;
  if (!params.empty() && !parse_u32(params, out.router_param)) {
    error = "bad router parameter '" + std::string(params) + "' in '" +
            std::string(segment) + "' (expected an unsigned integer)";
    return false;
  }
  return true;
}

[[nodiscard]] bool parse_faults_segment(std::string_view body,
                                        MachineSpec& out, std::string& error) {
  for (const std::string_view kv : split(body, ',')) {
    const std::size_t eq = kv.find('=');
    const std::string_view knob = kv.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : kv.substr(eq + 1);
    bool ok = true;
    if (knob == "links") {
      ok = parse_fraction(value, out.faults.links);
    } else if (knob == "nodes") {
      ok = parse_fraction(value, out.faults.nodes);
    } else if (knob == "procs") {
      ok = parse_fraction(value, out.faults.procs);
    } else if (knob == "modules") {
      ok = parse_fraction(value, out.faults.modules);
    } else if (knob == "onsets") {
      ok = parse_u32(value, out.faults.onset_epochs);
    } else if (knob == "allow-cut") {
      std::uint32_t flag = 0;
      ok = parse_u32(value, flag) && flag <= 1;
      if (ok) out.faults.preserve_connectivity = flag == 0;
    } else {
      error = "unknown fault knob '" + std::string(knob) +
              "' (valid: links, nodes, procs, modules, onsets, allow-cut)";
      return false;
    }
    if (!ok) {
      error = "bad fault value '" + std::string(value) + "' for '" +
              std::string(knob) +
              "' (fractions must be in [0, 1), counts unsigned integers)";
      return false;
    }
  }
  return true;
}

[[nodiscard]] bool parse_tail_segment(std::string_view segment,
                                      MachineSpec& out, std::string& error) {
  for (std::size_t i = 0; i < std::size(kModeKeys); ++i) {
    if (segment == kModeKeys[i]) {
      out.mode = static_cast<Mode>(i);
      return true;
    }
  }
  for (std::size_t i = 0; i < std::size(kDisciplineKeys); ++i) {
    if (segment == kDisciplineKeys[i]) {
      out.discipline = static_cast<sim::QueueDiscipline>(i);
      return true;
    }
  }
  if (segment.rfind("faults:", 0) == 0) {
    return parse_faults_segment(segment.substr(7), out, error);
  }
  if (segment.rfind("threads:", 0) == 0) {
    const std::string_view value = segment.substr(8);
    if (!parse_u32(value, out.step_threads)) {
      error = "bad value '" + std::string(value) +
              "' for 'threads:' (expected an unsigned integer; 0 = hardware "
              "concurrency)";
      return false;
    }
    return true;
  }
  if (segment.rfind("obs:", 0) == 0) {
    const std::string_view value = segment.substr(4);
    if (!parse_u32(value, out.obs_cadence)) {
      error = "bad value '" + std::string(value) +
              "' for 'obs:' (expected an unsigned integer sampling cadence; "
              "0 = off)";
      return false;
    }
    return true;
  }
  if (segment == "trace") {
    out.obs_trace = true;
    return true;
  }
  const std::size_t eq = segment.find('=');
  if (eq != std::string_view::npos) {
    const std::string_view knob = segment.substr(0, eq);
    const std::string_view value = segment.substr(eq + 1);
    bool ok = true;
    if (knob == "seed") {
      ok = parse_u64(value, out.seed);
    } else if (knob == "budget") {
      ok = parse_u32(value, out.step_budget_factor);
    } else if (knob == "rehash") {
      ok = parse_u32(value, out.max_rehash_attempts);
    } else if (knob == "hash-degree") {
      ok = parse_u32(value, out.hash_degree);
    } else if (knob == "buffer") {
      ok = parse_u32(value, out.node_buffer_bound);
    } else {
      error = "unknown knob '" + std::string(knob) +
              "' (valid: seed, budget, rehash, hash-degree, buffer)";
      return false;
    }
    if (!ok) {
      error = "bad value '" + std::string(value) + "' for knob '" +
              std::string(knob) + "' (expected an unsigned integer)";
    }
    return ok;
  }
  error = "unknown segment '" + std::string(segment) +
          "' (expected a mode [erew|crew|crcw|crcw-combining], a discipline "
          "[fifo|furthest-first|nearest-first], 'threads:N', 'obs:N', "
          "'trace', 'faults:...', or a knob "
          "[seed=|budget=|rehash=|hash-degree=|buffer=])";
  return false;
}

}  // namespace

std::string_view mode_key(Mode mode) noexcept {
  return kModeKeys[static_cast<std::size_t>(mode)];
}

std::string MachineSpec::to_string() const {
  // Plain appends throughout: `"lit" + std::to_string(...)` trips a GCC 12
  // -Wrestrict false positive once inlining gets deep enough.
  std::string out = topology;
  out += ":";
  out += std::to_string(param0);
  if (param1 != 0) {
    out += "x";
    out += std::to_string(param1);
  }
  out += "/";
  out += router;
  if (router_param != 0) {
    out += ":";
    out += std::to_string(router_param);
  }
  out += "/";
  out += mode_key(mode);
  out += "/";
  out += discipline_key(discipline);
  if (step_threads != 1) {
    out += "/threads:";
    out += std::to_string(step_threads);
  }
  if (obs_cadence != 0) {
    out += "/obs:";
    out += std::to_string(obs_cadence);
  }
  if (obs_trace) out += "/trace";
  if (faults != FaultKnobs{}) {
    out += "/faults:";
    std::string kvs;
    const auto add = [&kvs](std::string_view knob) {
      if (!kvs.empty()) kvs += ",";
      kvs += knob;
      kvs += "=";
    };
    if (faults.links > 0.0) {
      add("links");
      append_fraction(kvs, faults.links);
    }
    if (faults.nodes > 0.0) {
      add("nodes");
      append_fraction(kvs, faults.nodes);
    }
    if (faults.procs > 0.0) {
      add("procs");
      append_fraction(kvs, faults.procs);
    }
    if (faults.modules > 0.0) {
      add("modules");
      append_fraction(kvs, faults.modules);
    }
    if (faults.onset_epochs != 1) {
      add("onsets");
      kvs += std::to_string(faults.onset_epochs);
    }
    if (!faults.preserve_connectivity) {
      add("allow-cut");
      kvs += "1";
    }
    out += kvs;
  }
  const MachineSpec defaults;
  if (seed != defaults.seed) {
    out += "/seed=";
    out += std::to_string(seed);
  }
  if (step_budget_factor != defaults.step_budget_factor) {
    out += "/budget=";
    out += std::to_string(step_budget_factor);
  }
  if (max_rehash_attempts != defaults.max_rehash_attempts) {
    out += "/rehash=";
    out += std::to_string(max_rehash_attempts);
  }
  if (hash_degree != defaults.hash_degree) {
    out += "/hash-degree=";
    out += std::to_string(hash_degree);
  }
  if (node_buffer_bound != defaults.node_buffer_bound) {
    out += "/buffer=";
    out += std::to_string(node_buffer_bound);
  }
  return out;
}

bool parse_spec(std::string_view text, MachineSpec& out, std::string& error) {
  out = MachineSpec{};
  error.clear();
  if (text.empty()) {
    error = "empty machine spec (expected topology/router[/...], e.g. "
            "star:5/two-phase/crcw-combining/fifo)";
    return false;
  }
  const std::vector<std::string_view> segments = split(text, '/');
  if (!parse_topology_segment(segments[0], out, error)) return false;
  if (segments.size() < 2 || segments[1].empty()) {
    error = "machine spec '" + std::string(text) +
            "' is missing the router segment (e.g. " + out.topology + ":" +
            std::to_string(out.param0) + "/" +
            std::string(find_topology(out.topology)->routers.front().key) +
            ")";
    return false;
  }
  if (!parse_router_segment(segments[1], out, error)) return false;
  for (std::size_t i = 2; i < segments.size(); ++i) {
    if (!parse_tail_segment(segments[i], out, error)) return false;
  }
  return true;
}

MachineSpec parse_spec(std::string_view text) {
  MachineSpec spec;
  std::string error;
  if (!parse_spec(text, spec, error)) {
    LEVNET_CHECK_MSG(false, error.c_str());
  }
  return spec;
}

}  // namespace levnet::machine
