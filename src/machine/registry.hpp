#pragma once
// String-keyed registries behind the Machine API: the 9 topology families,
// their routers, and the PRAM program families the CLI can instantiate.
//
// Everything here is static data + factories — the catalogue the spec
// grammar draws its valid tokens from. Construction errors (bad parameter
// ranges, router/family mismatches) come back as messages that name the
// bad token and list the alternatives, so `levnet_run` users never need
// the source to discover a key.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "emulation/fabric.hpp"
#include "machine/spec.hpp"
#include "pram/program.hpp"
#include "routing/router.hpp"
#include "topology/graph.hpp"

namespace levnet::machine {

// ---------------------------------------------------------------- topology

struct RouterInfo {
  std::string_view key;
  std::string_view description;
  /// The router accepts a ':' parameter (e.g. three-stage slice height).
  bool takes_param = false;
};

struct TopologyInfo {
  std::string_view key;
  /// Parameter help for --list / error messages, e.g. "n (2..9)".
  std::string_view params_help;
  std::string_view description;
  /// Valid router keys for this family; front() is the default.
  std::vector<RouterInfo> routers;
  /// A tiny parameterization for CI smoke specs ({param0, param1}).
  std::uint32_t smoke_param0 = 0;
  std::uint32_t smoke_param1 = 0;
};

/// The registered families, in catalogue order.
[[nodiscard]] const std::vector<TopologyInfo>& topology_families();

/// Lookup by key; nullptr when unknown.
[[nodiscard]] const TopologyInfo* find_topology(std::string_view key);

/// "star, shuffle, nshuffle, ..." — for error messages.
[[nodiscard]] std::string topology_keys_joined();

/// An owned, type-erased topology instance: the concrete graph classes
/// (StarGraph, DWayShuffle, ...) stay public for low-level use; the box is
/// what the Machine owns when all it needs is the common surface.
class TopologyBox {
 public:
  virtual ~TopologyBox() = default;

  [[nodiscard]] virtual const topology::Graph& graph() const noexcept = 0;
  /// Mutable graph for the fault overlay (liveness mask).
  [[nodiscard]] virtual topology::Graph& graph_mut() noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Processor == memory-module endpoint count (all nodes for the
  /// vertex-symmetric families; column-0 rows for the butterfly).
  [[nodiscard]] virtual std::uint32_t endpoints() const noexcept = 0;
  /// The diameter scale L of the theorems (hash degree, rehash budgets).
  [[nodiscard]] virtual std::uint32_t route_scale() const noexcept = 0;

  /// Constructs the family router named `key` (nullptr + `error` listing
  /// the family's valid keys when unknown). `param` is the optional router
  /// parameter (0 = default).
  [[nodiscard]] virtual std::unique_ptr<routing::Router> make_router(
      std::string_view key, std::uint32_t param, std::string& error) const = 0;

  /// Binds this topology and `router` into an emulation fabric.
  [[nodiscard]] virtual emulation::EmulationFabric make_fabric(
      const routing::Router& router) const = 0;
};

/// Builds the spec's topology (family key + params). nullptr + `error` on
/// unknown family or out-of-range parameters.
[[nodiscard]] std::unique_ptr<TopologyBox> build_topology(
    const MachineSpec& spec, std::string& error);

// ---------------------------------------------------------------- programs

struct ProgramInfo {
  std::string_view key;
  std::string_view description;
  /// Minimal machine mode the family's program is legal on.
  pram::Mode required_mode = pram::Mode::kErew;
  /// The family profits from (or exists to exercise) en-route combining.
  bool wants_combining = false;
};

/// The registered PRAM program families, in catalogue order.
[[nodiscard]] const std::vector<ProgramInfo>& program_families();

/// True when a machine in `mode` can legally run a program requiring
/// `required` (erew < crew < crcw; crcw-combining counts as crcw).
[[nodiscard]] bool mode_allows(Mode mode, pram::Mode required) noexcept;

[[nodiscard]] const ProgramInfo* find_program(std::string_view key);

[[nodiscard]] std::string program_keys_joined();

/// Instantiates program family `key` sized to `processors` endpoints, with
/// seed-derived input data. `pram_steps` bounds the synthetic-traffic
/// families (permutation/random/hot-spot); data-driven families ignore it.
/// nullptr + `error` (naming the key and listing valid ones) when unknown.
[[nodiscard]] std::unique_ptr<pram::PramProgram> make_program(
    std::string_view key, std::uint32_t processors, std::uint64_t seed,
    std::uint32_t pram_steps, std::string& error);

}  // namespace levnet::machine
