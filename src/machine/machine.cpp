#include "machine/machine.hpp"

#include <iterator>
#include <optional>
#include <string>
#include <utility>

#include "faults/plan.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace levnet::machine {

// Shared-state inventory for the const run_seeded() contract: spec, name,
// topo, router and fabric are written once in build() and only ever read
// afterwards — run_seeded() may touch them const-ly from any number of
// threads at once (each call owns a fresh NetworkEmulator; all mutable
// per-run state lives there). The two fault members are the exception:
// the injector mutates the graph's liveness overlay, which is why
// run_seeded() CHECK-rejects faulted machines and run_trials() builds one
// Machine per seed when the spec carries faults.
struct Machine::Impl {
  MachineSpec spec;
  std::string name;
  std::unique_ptr<TopologyBox> topo;
  std::unique_ptr<routing::Router> router;
  std::optional<emulation::EmulationFabric> fabric;
  // Declaration order is the lifetime order: the injector borrows the plan
  // and the box's graph, both of which live above it.
  faults::FaultPlan plan;
  std::unique_ptr<faults::FaultInjector> injector;
};

Machine::Machine(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Machine::Machine(Machine&&) noexcept = default;
Machine& Machine::operator=(Machine&&) noexcept = default;
Machine::~Machine() = default;

Machine Machine::build(const MachineSpec& spec) {
  auto impl = std::make_unique<Impl>();
  impl->spec = spec;
  std::string error;
  impl->topo = build_topology(spec, error);
  LEVNET_CHECK_MSG(impl->topo != nullptr, error);
  impl->router =
      impl->topo->make_router(spec.router, spec.router_param, error);
  LEVNET_CHECK_MSG(impl->router != nullptr, error);
  impl->fabric.emplace(impl->topo->make_fabric(*impl->router));
  impl->name = impl->topo->name();
  if (spec.faults != FaultKnobs{}) {
    faults::FaultSpec fault_spec;
    fault_spec.link_fraction = spec.faults.links;
    fault_spec.node_fraction = spec.faults.nodes;
    fault_spec.module_fraction = spec.faults.modules;
    fault_spec.proc_fraction = spec.faults.procs;
    fault_spec.onset_epochs = spec.faults.onset_epochs;
    fault_spec.preserve_connectivity = spec.faults.preserve_connectivity;
    const std::uint32_t endpoints = impl->topo->endpoints();
    impl->plan = faults::FaultPlan::sample(impl->topo->graph(), endpoints,
                                           endpoints, fault_spec, spec.seed);
    impl->injector = std::make_unique<faults::FaultInjector>(
        impl->topo->graph_mut(), endpoints, impl->plan);
  }
  return Machine(std::move(impl));
}

Machine Machine::build(std::string_view spec_text) {
  return build(parse_spec(spec_text));
}

bool Machine::validate(const MachineSpec& spec, std::string& error) {
  // Shape-only: key membership and parameter ranges, no construction.
  const TopologyInfo* info = find_topology(spec.topology);
  if (info == nullptr) {
    error = "unknown topology family '" + spec.topology +
            "' (valid: " + topology_keys_joined() + ")";
    return false;
  }
  // Reuse the builder's range checks against a throwaway instance only for
  // small parameters; large ones are rejected by the same range logic
  // before any allocation happens inside build_topology.
  MachineSpec probe = spec;
  probe.faults = FaultKnobs{};  // plan sampling is not a shape question
  std::string build_error;
  const std::unique_ptr<TopologyBox> topo =
      build_topology(probe, build_error);
  if (topo == nullptr) {
    error = build_error;
    return false;
  }
  const std::unique_ptr<routing::Router> router =
      topo->make_router(spec.router, spec.router_param, build_error);
  if (router == nullptr) {
    error = build_error;
    return false;
  }
  return true;
}

const MachineSpec& Machine::spec() const noexcept { return impl_->spec; }
const std::string& Machine::name() const noexcept { return impl_->name; }
const topology::Graph& Machine::graph() const noexcept {
  return impl_->topo->graph();
}
const routing::Router& Machine::router() const noexcept {
  return *impl_->router;
}
const emulation::EmulationFabric& Machine::fabric() const noexcept {
  return *impl_->fabric;
}
std::uint32_t Machine::processors() const noexcept {
  return impl_->topo->endpoints();
}
std::uint32_t Machine::route_scale() const noexcept {
  return impl_->topo->route_scale();
}
faults::FaultInjector* Machine::injector() noexcept {
  return impl_->injector.get();
}

emulation::EmulatorConfig Machine::emulator_config(
    std::uint64_t seed) const noexcept {
  emulation::EmulatorConfig config;
  config.combining = impl_->spec.mode == Mode::kCrcwCombining;
  config.hash_degree = impl_->spec.hash_degree;
  config.step_budget_factor = impl_->spec.step_budget_factor;
  config.max_rehash_attempts = impl_->spec.max_rehash_attempts;
  config.discipline = impl_->spec.discipline;
  config.node_buffer_bound = impl_->spec.node_buffer_bound;
  config.step_threads = impl_->spec.step_threads;
  config.seed = seed;
  config.faults = impl_->injector.get();
  return config;
}

sim::EngineConfig Machine::engine_config() const noexcept {
  sim::EngineConfig config;
  config.discipline = impl_->spec.discipline;
  config.node_buffer_bound = impl_->spec.node_buffer_bound;
  config.step_threads = impl_->spec.step_threads;
  return config;
}

emulation::EmulationReport Machine::run(pram::PramProgram& program,
                                        pram::SharedMemory& memory,
                                        obs::Recorder* recorder) {
  emulation::EmulatorConfig config = emulator_config(impl_->spec.seed);
  config.recorder = recorder;
  emulation::NetworkEmulator emulator(*impl_->fabric, config);
  return emulator.run(program, memory);
}

emulation::EmulationReport Machine::run(pram::PramProgram& program) {
  pram::SharedMemory memory;
  return run(program, memory);
}

emulation::EmulationReport Machine::run_seeded(
    std::uint64_t seed, pram::PramProgram& program, pram::SharedMemory& memory,
    obs::Recorder* recorder) const {
  LEVNET_CHECK_MSG(impl_->injector == nullptr,
                   "run_seeded is for fault-free machines; a faulted trial "
                   "must own its Machine (build one with the trial seed in "
                   "the spec)");
  emulation::EmulatorConfig config = emulator_config(seed);
  config.recorder = recorder;
  emulation::NetworkEmulator emulator(*impl_->fabric, config);
  return emulator.run(program, memory);
}

ProgramFactory program_factory(std::string_view key,
                               std::uint32_t pram_steps) {
  LEVNET_CHECK_MSG(find_program(key) != nullptr,
                   ("unknown program family '" + std::string(key) +
                    "' (valid: " + program_keys_joined() + ")")
                       .c_str());
  return [key = std::string(key), pram_steps](
             std::uint32_t processors,
             std::uint64_t seed) -> std::unique_ptr<pram::PramProgram> {
    std::string make_error;
    auto program =
        make_program(key, processors, seed, pram_steps, make_error);
    LEVNET_CHECK_MSG(program != nullptr, make_error);
    return program;
  };
}

analysis::TrialStats run_trials(
    const MachineSpec& spec, const ProgramFactory& factory,
    std::uint32_t seeds, unsigned threads,
    std::vector<emulation::EmulationReport>* reports,
    std::vector<std::unique_ptr<obs::Recorder>>* recorders) {
  LEVNET_CHECK_MSG(seeds > 0, "run_trials needs at least one seed");
  support::ThreadPool pool(threads);
  // Recorders are attached when the spec asks for observability or the
  // caller wants the recorders back; either way each seed owns its own
  // (recorders are not thread-safe), indexed like the report slots so the
  // output order is seed order at any thread count.
  const bool want_obs =
      recorders != nullptr || spec.obs_cadence != 0 || spec.obs_trace;
  std::vector<std::unique_ptr<obs::Recorder>> obs_per_seed;
  if (want_obs) {
    const obs::RecorderConfig obs_config{spec.obs_cadence, spec.obs_trace};
    obs_per_seed.reserve(seeds);
    for (std::uint32_t i = 0; i < seeds; ++i) {
      obs_per_seed.push_back(std::make_unique<obs::Recorder>(obs_config));
    }
  }
  const auto recorder_for = [&](std::size_t i) -> obs::Recorder* {
    return want_obs ? obs_per_seed[i].get() : nullptr;
  };
  // Seed fan-out matches analysis::TrialRunner::collect (SplitMix64 of
  // 1 + index) — results land in seed-indexed slots, so stats are
  // bit-identical for 1 and N threads.
  std::vector<emulation::EmulationReport> per_seed(seeds);
  if (spec.faults == FaultKnobs{}) {
    // Fault-free: one shared machine, per-trial emulator streams — the
    // same sharing the hand-written benches used (routers are immutable).
    const Machine machine = Machine::build(spec);
    if (want_obs) {
      for (auto& recorder : obs_per_seed) {
        recorder->bind_topology(machine.graph());
      }
    }
    pool.parallel_for(seeds, [&](std::size_t i) {
      const std::uint64_t seed = analysis::TrialRunner::trial_seed(
          1, static_cast<std::uint32_t>(i));
      const auto program = factory(machine.processors(), seed);
      pram::SharedMemory memory;
      per_seed[i] = machine.run_seeded(seed, *program, memory,
                                       recorder_for(i));
    });
  } else {
    // Faulted: the liveness overlay is mutable state, so every trial owns
    // its machine; the trial seed drives plan sampling and the emulator
    // stream together (one seed == one exact degraded history).
    pool.parallel_for(seeds, [&](std::size_t i) {
      const std::uint64_t seed = analysis::TrialRunner::trial_seed(
          1, static_cast<std::uint32_t>(i));
      MachineSpec trial_spec = spec;
      trial_spec.seed = seed;
      Machine machine = Machine::build(trial_spec);
      obs::Recorder* const recorder = recorder_for(i);
      if (recorder != nullptr) recorder->bind_topology(machine.graph());
      const auto program = factory(machine.processors(), seed);
      pram::SharedMemory memory;
      per_seed[i] = machine.run(*program, memory, recorder);
    });
  }
  const std::vector<analysis::TrialMeasurement> measurements(
      per_seed.begin(), per_seed.end());
  if (reports != nullptr) {
    reports->insert(reports->end(),
                    std::make_move_iterator(per_seed.begin()),
                    std::make_move_iterator(per_seed.end()));
  }
  if (recorders != nullptr) {
    recorders->insert(recorders->end(),
                      std::make_move_iterator(obs_per_seed.begin()),
                      std::make_move_iterator(obs_per_seed.end()));
  }
  return analysis::aggregate(measurements);
}

}  // namespace levnet::machine
