#pragma once
// Shared request/report I/O for the run front ends.
//
// `levnet_run --spec-file` and the `levnet_serve` request decoder accept
// the same flat-JSON shape (string values for "spec"/"program", strict
// unsigned numbers for the counts) and emit the same per-run report
// fields. One implementation here keeps the two front ends byte-compatible:
// a serve response's "report" object is written by the same function as a
// levnet_run per-seed entry, so identical (spec, program, seed) runs
// produce identical payload bytes through either door.
//
// Everything in this header is pure string/stream work — no stdin, no
// sockets, no files. The blocking reads live in src/serve/ and tools/
// (enforced by the `blocking-io-confined` lint rule); src/machine stays
// side-effect free.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "emulation/emulator.hpp"

namespace levnet::machine {

/// Strict unsigned decimal parse: digits only (no sign, no trailing junk),
/// range-checked — `--seeds -1` must be a usage error, not a 4-billion-
/// trial allocation. At most 9 digits, so the result fits uint32 comfortably.
[[nodiscard]] bool parse_count(const std::string& value, unsigned long& out);

/// Strict unsigned 64-bit decimal parse (for request seeds, which use the
/// full seed space). Digits only, up to 19 of them, overflow-checked.
[[nodiscard]] bool parse_count_u64(const std::string& value,
                                   std::uint64_t& out);

/// Parses a flat JSON object of string/number values — exactly the
/// --spec-file / serve-request shape. Not a general JSON parser by design:
/// no nesting, no arrays; numbers are captured as their literal text.
/// On failure sets `error` and returns false; `where` names the container
/// in the message ("spec file" for levnet_run, "request" for serve) so the
/// one implementation serves both front ends' diagnostics.
[[nodiscard]] bool parse_flat_json(const std::string& text,
                                   std::map<std::string, std::string>& out,
                                   std::string& error,
                                   const char* where = "spec file");

/// Fetches values[key] as a strict unsigned count. Absent key: returns
/// true and leaves `out` untouched. Present but malformed: returns false
/// with the shared error text, `where` naming the container ("spec file",
/// "request") so both front ends report identically.
[[nodiscard]] bool read_count_field(
    const std::map<std::string, std::string>& values, const char* key,
    const char* where, unsigned long& out, std::string& error);

/// JSON string escaping for the report writers (quotes and backslashes).
void json_escape(std::ostream& os, const std::string& text);

/// Writes one run's report fields as a JSON object *body* (no surrounding
/// braces): `"pram_steps": 3, ..., "complete": true`. This is the shared
/// payload of a levnet_run per-seed entry and a levnet_serve response's
/// "report" object — one writer, so the two are byte-identical for
/// identical runs.
void write_report_fields(std::ostream& os,
                         const emulation::EmulationReport& report);

}  // namespace levnet::machine
