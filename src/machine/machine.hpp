#pragma once
// Machine: one owning handle over the whole emulation stack.
//
// Hand-assembling an emulated PRAM takes five objects whose raw-pointer
// lifetimes the caller must order correctly (graph <- router <- fabric,
// plan <- injector bound to the same graph, emulator borrowing fabric and
// injector). A Machine is built from a MachineSpec and owns all of it:
//
//   auto m = machine::Machine::build("star:5/two-phase/crcw-combining/fifo");
//   pram::HistogramCrcwSum program(keys, buckets);
//   pram::SharedMemory memory;
//   emulation::EmulationReport report = m.run(program, memory);
//
// The low-level constructors stay public and untouched — golden fixtures
// and baselines are recorded against them — and a spec-built Machine is
// pinned bit-equal to the equivalent hand assembly in tests/machine_test.
//
// Concurrency contract: a fault-free Machine is immutable after build()
// (graph and router const), so one instance can serve concurrent trials
// through run_seeded(). A faulted Machine owns a mutable liveness overlay
// and must not be shared across threads — run_trials() therefore builds
// one Machine per seed when the spec carries faults, exactly like the
// hand-written fault benches did.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/trials.hpp"
#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "faults/injector.hpp"
#include "machine/registry.hpp"
#include "machine/spec.hpp"
#include "obs/recorder.hpp"
#include "pram/memory.hpp"
#include "pram/program.hpp"
#include "sim/engine.hpp"

namespace levnet::machine {

class Machine {
 public:
  /// Builds the machine a spec describes; CHECK-fails with the validation
  /// message on an invalid spec (use validate() first for user input).
  [[nodiscard]] static Machine build(const MachineSpec& spec);
  /// Convenience: parse + build a spec literal.
  [[nodiscard]] static Machine build(std::string_view spec_text);

  /// True iff build() would succeed; on failure `error` names the bad
  /// token and lists the valid alternatives.
  [[nodiscard]] static bool validate(const MachineSpec& spec,
                                     std::string& error);

  Machine(Machine&&) noexcept;
  Machine& operator=(Machine&&) noexcept;
  ~Machine();

  [[nodiscard]] const MachineSpec& spec() const noexcept;
  /// The topology's display name ("star-5", ...).
  [[nodiscard]] const std::string& name() const noexcept;
  [[nodiscard]] const topology::Graph& graph() const noexcept;
  [[nodiscard]] const routing::Router& router() const noexcept;
  [[nodiscard]] const emulation::EmulationFabric& fabric() const noexcept;
  /// Processor == memory-module count.
  [[nodiscard]] std::uint32_t processors() const noexcept;
  /// The diameter scale L of the theorems.
  [[nodiscard]] std::uint32_t route_scale() const noexcept;
  /// The owned fault injector, or nullptr for a fault-free spec.
  [[nodiscard]] faults::FaultInjector* injector() noexcept;

  /// EmulatorConfig the spec denotes, with the RNG stream seeded by `seed`
  /// (and `faults` pointing at the owned injector).
  [[nodiscard]] emulation::EmulatorConfig emulator_config(
      std::uint64_t seed) const noexcept;
  /// EngineConfig for driving the router directly (routing experiments):
  /// the spec's discipline and buffer bound, no step budget.
  [[nodiscard]] sim::EngineConfig engine_config() const noexcept;

  /// Runs `program` to completion against `memory` with the spec's seed.
  /// Replays the fault plan from epoch 0 on every call. A non-null
  /// `recorder` observes the run (counters, latency histograms, optional
  /// samples/trace) without perturbing it; null is byte-inert.
  emulation::EmulationReport run(pram::PramProgram& program,
                                 pram::SharedMemory& memory,
                                 obs::Recorder* recorder = nullptr);
  /// run() into a scratch memory (reports only).
  emulation::EmulationReport run(pram::PramProgram& program);

  /// Per-trial entry point: same machine, an explicit emulator seed.
  /// Restricted to fault-free machines (const — safe to call concurrently
  /// from trial threads); a faulted trial wants its own Machine with the
  /// trial seed in the spec, so plan and stream move together.
  ///
  /// Thread-safety: on a fault-free machine every member this reaches
  /// (spec, fabric, graph, router) is written once in build() and read-only
  /// afterwards; each call constructs its own NetworkEmulator, which owns
  /// all mutable run state (engine, pools, per-step maps, RNG stream).
  /// The 8-thread stress in tests/concurrency_test.cpp pins the resulting
  /// reports bit-identical to sequential runs, and the TSan CI job watches
  /// this path for races.
  /// A non-null `recorder` observes the run without perturbing it; the
  /// recorder is not thread-safe, so concurrent run_seeded() calls must
  /// each bring their own.
  emulation::EmulationReport run_seeded(std::uint64_t seed,
                                        pram::PramProgram& program,
                                        pram::SharedMemory& memory,
                                        obs::Recorder* recorder
                                        = nullptr) const;

 private:
  struct Impl;
  explicit Machine(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Builds one program instance per trial: `processors` is the machine's
/// endpoint count, `seed` the trial's derived seed.
using ProgramFactory = std::function<std::unique_ptr<pram::PramProgram>(
    std::uint32_t processors, std::uint64_t seed)>;

/// A registry-backed factory for program family `key` (CHECK-fails on an
/// unknown key). `pram_steps` bounds the synthetic-traffic families.
[[nodiscard]] ProgramFactory program_factory(std::string_view key,
                                             std::uint32_t pram_steps = 4);

/// Batched trials: runs `seeds` independent emulations of the machine the
/// spec describes across `threads` pool workers (0 = hardware concurrency),
/// with the same SplitMix64 seed fan-out and seed-order aggregation as
/// analysis::TrialRunner — results are bit-identical for 1 and N threads.
/// Fault-free specs share one Machine across workers; faulted specs build
/// one per seed (plan + stream derived from the trial seed). When
/// `reports` is non-null the per-seed EmulationReports are appended in
/// seed order.
///
/// Observability: when the spec carries obs:/trace tokens, or `recorders`
/// is non-null, one obs::Recorder per seed (configured from the spec) is
/// attached — stats then carry latency quantiles. A non-null `recorders`
/// receives the per-seed recorders in seed order for metrics/trace export.
/// Recorders never perturb the emulation; reports stay bit-identical.
[[nodiscard]] analysis::TrialStats run_trials(
    const MachineSpec& spec, const ProgramFactory& factory,
    std::uint32_t seeds, unsigned threads,
    std::vector<emulation::EmulationReport>* reports = nullptr,
    std::vector<std::unique_ptr<obs::Recorder>>* recorders = nullptr);

}  // namespace levnet::machine
