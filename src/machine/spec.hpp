#pragma once
// MachineSpec: a whole emulated PRAM machine as one typed, string-round-
// trippable value.
//
// The paper's machine is a tuple (network, router, PRAM mode, queue
// discipline, fault scenario, seed); standing one up by hand takes five
// objects with raw-pointer lifetimes (graph <- router <- fabric <- injector
// <- emulator). A MachineSpec names that tuple in one line of text,
//
//   star:5/two-phase/crcw-combining/fifo/faults:links=0.05
//
// so benches, examples, tests and the `levnet_run` CLI can cross scenarios
// without recompiling. The grammar (segments separated by '/'):
//
//   spec       := topology '/' router { '/' segment }
//   topology   := family ':' param [ 'x' param ]     e.g. star:5, mesh:8x16
//   router     := key [ ':' param ]                  e.g. three-stage:10
//   segment    := mode | discipline | threads | obs | trace | faults | knob
//   mode       := erew | crew | crcw | crcw-combining
//   discipline := fifo | furthest-first | nearest-first
//   threads    := 'threads:' uint    engine step parallelism (1 = serial,
//                 0 = hardware concurrency); results are bit-identical
//                 across values, so the token names a speed, not a machine
//   obs        := 'obs:' uint   per-step observability sampling cadence
//                 (0 = off, the default; N = sample every Nth step); like
//                 threads:, never changes emulation results
//   trace      := 'trace'   also record virtual-time packet/phase spans
//                 for Chrome/Perfetto export (implies nothing about obs:
//                 cadence; trace alone records spans without step samples)
//   faults     := 'faults:' kv { ',' kv }   kv in links= nodes= procs=
//                 modules= (fractions in [0,1)), onsets= (epoch count),
//                 allow-cut=0|1 (drop the connectivity guard); procs=
//                 kills processor endpoints, survivors adopt their slots
//   knob       := ('seed'|'budget'|'rehash'|'hash-degree'|'buffer') '=' uint
//
// Segments after the router may appear in any order; the canonical form
// printed by to_string() is topology/router/mode/discipline followed by
// faults and any non-default knobs, omitting nothing that differs from the
// defaults, so parse(to_string(s)) == s for every valid spec.
//
// The registered family/router/program keys live in machine/registry.hpp;
// parsing only validates shape and key spelling (with "did you mean"
// listings), construction happens in Machine::build.

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/engine.hpp"

namespace levnet::machine {

/// PRAM access mode of the emulated machine. kCrcwCombining is kCrcw plus
/// the en-route combining of Theorem 2.6 (EmulatorConfig::combining).
enum class Mode : std::uint8_t {
  kErew = 0,
  kCrew = 1,
  kCrcw = 2,
  kCrcwCombining = 3,
};

[[nodiscard]] std::string_view mode_key(Mode mode) noexcept;

/// Fault-scenario knobs; mirrors faults::FaultSpec (see faults/plan.hpp)
/// with the spec defaults.
struct FaultKnobs {
  double links = 0.0;    // fraction of physical links to kill
  double nodes = 0.0;    // fraction of non-endpoint nodes to kill
  double modules = 0.0;  // fraction of memory modules to kill
  double procs = 0.0;    // fraction of processor endpoints to kill
                         // (survivors adopt the dead slots)
  std::uint32_t onset_epochs = 1;      // 1 = all faults static
  bool preserve_connectivity = true;   // allow-cut=1 disables the guard

  [[nodiscard]] bool any() const noexcept {
    return links > 0.0 || nodes > 0.0 || modules > 0.0 || procs > 0.0;
  }
  bool operator==(const FaultKnobs&) const = default;
};

struct MachineSpec {
  /// Topology family key ("star", "mesh", ...; see registry.hpp) and its
  /// one or two construction parameters (param1 == 0 means "not given":
  /// square mesh/torus, radix-2 butterfly/shuffle).
  std::string topology;
  std::uint32_t param0 = 0;
  std::uint32_t param1 = 0;

  /// Router key within the family ("two-phase", "greedy", ...) plus an
  /// optional parameter (the 3-stage mesh router's slice height).
  std::string router;
  std::uint32_t router_param = 0;

  Mode mode = Mode::kErew;
  sim::QueueDiscipline discipline = sim::QueueDiscipline::kFifo;
  FaultKnobs faults;

  /// Base seed: the emulator RNG stream and the fault plan draw are both
  /// derived from it, so one seed names one exact degraded history.
  std::uint64_t seed = 0x1991'06ULL;

  // Emulator knobs (EmulatorConfig); defaults match EmulatorConfig's.
  std::uint32_t step_budget_factor = 0;  // budget=
  std::uint32_t max_rehash_attempts = 16;  // rehash=
  std::uint32_t hash_degree = 0;           // hash-degree=
  std::uint32_t node_buffer_bound = 0;     // buffer=
  /// Engine step parallelism (`threads:` token): 1 = serial, 0 = hardware
  /// concurrency, N = shard the step over N threads. Never changes results
  /// — the sharded engine is pinned bit-identical — so two specs differing
  /// only here emulate the same machine at different speeds.
  std::uint32_t step_threads = 1;          // threads:
  /// Observability sampling cadence (`obs:` token): 0 = off, N = record a
  /// per-step probe sample every Nth step. Like threads:, purely a lens —
  /// the emulation's results are bit-identical with it on or off.
  std::uint32_t obs_cadence = 0;           // obs:
  /// Virtual-time trace spans (`trace` token): record packet-lifecycle and
  /// engine-phase spans for Chrome/Perfetto export. Result-inert like obs:.
  bool obs_trace = false;                  // trace

  bool operator==(const MachineSpec&) const = default;

  /// Canonical text form; parse_spec(to_string()) reproduces the spec.
  [[nodiscard]] std::string to_string() const;
};

/// Parses `text` into `out`. On failure returns false and sets `error` to a
/// message that names the offending token and lists the valid alternatives.
[[nodiscard]] bool parse_spec(std::string_view text, MachineSpec& out,
                              std::string& error);

/// Parsing that CHECK-fails (with the same message) on invalid input — for
/// literals in benches/examples where a typo is a programming error.
[[nodiscard]] MachineSpec parse_spec(std::string_view text);

}  // namespace levnet::machine
