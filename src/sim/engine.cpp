#include "sim/engine.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace levnet::sim {

SyncEngine::SyncEngine(const topology::Graph& graph, TrafficHandler& handler,
                       EngineConfig config)
    : graph_(graph),
      handler_(handler),
      config_(config),
      queues_(graph.edge_count()),
      edge_active_(graph.edge_count(), 0),
      node_load_(graph.node_count(), 0) {}

void SyncEngine::reset() {
  for (EdgeId e : active_) queues_[e].clear();
  std::fill(edge_active_.begin(), edge_active_.end(), 0);
  active_.clear();
  std::fill(node_load_.begin(), node_load_.end(), 0);
  metrics_.reset();
  now_ = 0;
}

void SyncEngine::inject(Packet packet, NodeId at, support::Rng& rng) {
  packet.inject_step = now_;
  packet.came_from = topology::kInvalidNode;
  ++metrics_.injected;
  route_from(std::move(packet), at, rng);
}

void SyncEngine::route_from(Packet&& packet, NodeId at, support::Rng& rng) {
  scratch_forwards_.clear();
  handler_.on_packet(packet, at, now_, rng, scratch_forwards_);
  if (scratch_forwards_.empty()) {
    ++metrics_.consumed;
    metrics_.steps = std::max(metrics_.steps, now_);
    metrics_.total_hops += packet.hops;
    const std::uint32_t journey = now_ - packet.inject_step;
    metrics_.total_delay += journey - std::min(journey, packet.hops);
    return;
  }
  // Fan-out: the last forward moves the original, earlier ones take copies.
  const std::size_t fan = scratch_forwards_.size();
  for (std::size_t i = 0; i + 1 < fan; ++i) {
    Packet copy{packet};
    copy.route_state = scratch_forwards_[i].route_state;
    enqueue(std::move(copy), at, scratch_forwards_[i].to);
  }
  packet.route_state = scratch_forwards_[fan - 1].route_state;
  const NodeId last = scratch_forwards_[fan - 1].to;
  enqueue(std::move(packet), at, last);
}

void SyncEngine::enqueue(Packet&& packet, NodeId at, NodeId next) {
  const EdgeId e = graph_.edge_between(at, next);
  LEVNET_CHECK_MSG(e != topology::kInvalidEdge,
                   "handler forwarded along a non-existent link");
  if (config_.discipline != QueueDiscipline::kFifo) {
    packet.priority = handler_.priority(packet, at);
  }
  queues_[e].push(std::move(packet));
  metrics_.max_link_queue = std::max(
      metrics_.max_link_queue, static_cast<std::uint32_t>(queues_[e].size()));
  const std::uint32_t load = ++node_load_[at];
  metrics_.max_node_queue = std::max(metrics_.max_node_queue, load);
  if (!edge_active_[e]) {
    edge_active_[e] = 1;
    active_.push_back(e);
  }
}

Packet SyncEngine::pop_by_discipline(support::RingQueue<Packet>& queue) {
  if (config_.discipline == QueueDiscipline::kFifo || queue.size() == 1) {
    return queue.pop();
  }
  // Keys were cached at enqueue time (Packet::priority), so the selection
  // scan is a plain comparison loop with no handler round-trips.
  std::size_t best = 0;
  std::uint32_t best_key = queue.at(0).priority;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const std::uint32_t key = queue.at(i).priority;
    const bool better = config_.discipline == QueueDiscipline::kFurthestFirst
                            ? key > best_key
                            : key < best_key;
    if (better) {
      best = i;
      best_key = key;
    }
  }
  return queue.extract(best);
}

std::size_t SyncEngine::step(support::Rng& rng) {
  ++now_;
  landings_.clear();
  next_active_.clear();
  // Transmission phase: every active directed link moves one packet, unless
  // bounded-buffer mode blocks it.
  for (const EdgeId e : active_) {
    auto& queue = queues_[e];
    const NodeId tail = graph_.edge_tail(e);
    const NodeId head = graph_.edge_head(e);
    if (config_.node_buffer_bound != 0 &&
        node_load_[head] >= config_.node_buffer_bound) {
      next_active_.push_back(e);  // blocked; stays active
      continue;
    }
    Packet packet = pop_by_discipline(queue);
    --node_load_[tail];
    packet.hops += 1;
    packet.came_from = tail;
    landings_.push_back(Landing{std::move(packet), head});
    if (!queue.empty()) {
      next_active_.push_back(e);
    } else {
      edge_active_[e] = 0;
    }
  }
  std::swap(active_, next_active_);
  // Landing phase: consumed or forwarded; new enqueues become eligible for
  // transmission from the next step (they are appended to active_ now, but
  // this step's transmission loop has already finished).
  for (auto& landing : landings_) {
    route_from(std::move(landing.packet), landing.at, rng);
  }
  return landings_.size();
}

bool SyncEngine::run(support::Rng& rng) {
  while (!active_.empty()) {
    if (config_.max_steps != 0 && now_ >= config_.max_steps) {
      metrics_.aborted = true;
      return false;
    }
    const std::size_t moved = step(rng);
    if (moved == 0 && !active_.empty()) {
      metrics_.deadlocked = true;
      return false;
    }
  }
  return true;
}

}  // namespace levnet::sim
