#include "sim/engine.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "support/check.hpp"

namespace levnet::sim {

SyncEngine::SyncEngine(const topology::Graph& graph, TrafficHandler& handler,
                       EngineConfig config)
    : graph_(graph),
      handler_(handler),
      config_(config),
      queues_(graph.edge_count()),
      edge_active_(graph.edge_count(), 0),
      edge_dirty_(graph.edge_count(), 0),
      node_load_(graph.node_count(), 0) {
  // Per-step scratch is sized for the worst step up front: at most one
  // landing per directed edge, every edge active, and handler fan-out
  // bounded by a node's degree in the common (non-combining) case. Growth
  // past these marks is still legal — capacity then persists — but typical
  // steady-state steps never touch the heap.
  const std::size_t edges = graph.edge_count();
  landings_.reserve(edges);
  active_.reserve(edges);
  next_active_.reserve(edges);
  dirty_edges_.reserve(edges);
  scratch_forwards_.reserve(graph.max_out_degree() + 1);
  if (config_.step_threads != 1) {
    // levnet-lint: shard-ordered(shard_transmit/decide_landings merge per-shard results in shard order)
    auto pool = std::make_unique<support::ThreadPool>(config_.step_threads);
    if (pool->size() > 1) {
      shard_next_active_.resize(pool->size());
      step_pool_ = std::move(pool);
    }
    // A 1-wide pool (e.g. step_threads=0 on a 1-core host) is dropped: the
    // serial path is the same computation without the phase scaffolding.
  }
  concurrent_capable_ = handler_.route_concurrent_capable();
  obs_ = config_.recorder;
  if (obs_ != nullptr) {
    obs_->ensure_lanes(step_pool_ != nullptr ? step_pool_->size() : 1);
  }
}

void SyncEngine::reset() {
  // dirty_edges_ is every edge that queued a packet since the last reset —
  // a strict superset of active_, so packets stranded on edges that were
  // blocked out of active_ by a bounded-buffer deadlock or a mid-flight
  // abort are cleared too (they used to leak into the next run).
  for (const EdgeId e : dirty_edges_) {
    queues_[e].clear();
    edge_active_[e] = 0;
    edge_dirty_[e] = 0;
  }
  dirty_edges_.clear();
  active_.clear();
  landings_.clear();
  redirects_.clear();
  // Per-shard scratch can hold edges from an aborted mid-flight step (the
  // run stopped between the shard fill and the barrier merge never happens
  // in practice, but a defensive drain is cheap and keeps the invariant
  // "reset() leaves no step residue" unconditional).
  for (std::vector<EdgeId>& shard : shard_next_active_) shard.clear();
  dec_kind_.clear();
  dec_next_.clear();
  dec_edge_.clear();
  pool_.clear();
  std::fill(node_load_.begin(), node_load_.end(), 0);
  metrics_.reset();
  now_ = 0;
}

void SyncEngine::inject(Packet packet, NodeId at, support::Rng& rng) {
  packet.inject_step = now_;
  packet.came_from = topology::kInvalidNode;
  ++metrics_.injected;
  if (obs_ != nullptr) obs_->count_injection();
  const PacketRef ref = pool_.allocate();
  pool_.get(ref) = packet;
  route_from(ref, at, rng);
}

void SyncEngine::route_from(PacketRef ref, NodeId at, support::Rng& rng) {
  scratch_forwards_.clear();
  scratch_forward_edges_.clear();
  handler_.on_packet(pool_.get(ref), at, now_, rng, scratch_forwards_);
  if (graph_.has_faults() && !scratch_forwards_.empty() &&
      !resolve_faulted_forwards(ref, at, rng)) {
    // Every forward was blocked by a fault and the handler had no detour:
    // the packet is lost (counted, never silently).
    pool_.release(ref);
    return;
  }
  if (scratch_forwards_.empty()) {
    const Packet& packet = pool_.get(ref);
    ++metrics_.consumed;
    metrics_.steps = std::max(metrics_.steps, now_);
    metrics_.total_hops += packet.hops;
    const std::uint32_t journey = now_ - packet.inject_step;
    metrics_.total_delay +=
        journey - std::min<std::uint32_t>(journey, packet.hops);
    if (obs_ != nullptr) {
      // Consumption runs in serial contexts only (inject, the serial
      // landing loops, phase C's replay), so the recorder sees deliveries
      // in landing order at every step_threads value.
      obs_->on_consume(static_cast<std::uint8_t>(packet.kind), packet.src,
                       packet.inject_step, packet.hops, now_);
    }
    pool_.release(ref);
    return;
  }
  // Fan-out: the last forward keeps the original's pool slot, earlier ones
  // take copies. (allocate() may move the pool, so re-fetch per copy.)
  const std::size_t fan = scratch_forwards_.size();
  const bool hinted = scratch_forward_edges_.size() == fan;  // degraded mode
  for (std::size_t i = 0; i + 1 < fan; ++i) {
    const PacketRef copy = pool_.allocate();
    pool_.get(copy) = pool_.get(ref);
    pool_.get(copy).route_state = scratch_forwards_[i].route_state;
    enqueue(copy, at, scratch_forwards_[i].to,
            hinted ? scratch_forward_edges_[i] : topology::kInvalidEdge);
  }
  pool_.get(ref).route_state = scratch_forwards_[fan - 1].route_state;
  enqueue(ref, at, scratch_forwards_[fan - 1].to,
          hinted ? scratch_forward_edges_[fan - 1] : topology::kInvalidEdge);
}

bool SyncEngine::try_detour(PacketRef ref, NodeId at, NodeId blocked,
                            support::Rng& rng, NodeId& next, EdgeId& edge) {
  const std::uint32_t max_tries = graph_.out_degree(at) + 1;
  for (std::uint32_t tries = 0; tries < max_tries; ++tries) {
    const NodeId detour = handler_.on_fault(pool_.get(ref), at, blocked, rng);
    if (detour == topology::kInvalidNode) return false;
    const EdgeId e = graph_.edge_between(at, detour);
    if (e != topology::kInvalidEdge && graph_.edge_live(e)) {
      ++metrics_.detours;
      if (obs_ != nullptr) obs_->count_detour();
      next = detour;
      edge = e;
      return true;
    }
    blocked = detour;  // that one is dead too; negotiate again
  }
  return false;
}

bool SyncEngine::resolve_faulted_forwards(PacketRef ref, NodeId at,
                                          support::Rng& rng) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < scratch_forwards_.size(); ++i) {
    Forward f = scratch_forwards_[i];
    EdgeId edge = graph_.edge_between(at, f.to);
    LEVNET_CHECK_MSG(edge != topology::kInvalidEdge,
                     "handler forwarded along a non-existent link");
    bool live = graph_.edge_live(edge);
    if (!live) {
      NodeId detour = topology::kInvalidNode;
      live = try_detour(ref, at, f.to, rng, detour, edge);
      if (live) {
        f.to = detour;
        f.route_state = pool_.get(ref).route_state;  // on_fault re-prepared
      }
    }
    if (live) {
      scratch_forwards_[kept] = f;
      // Remember the resolved edge so the enqueue in route_from skips the
      // second adjacency scan.
      scratch_forward_edges_.resize(kept + 1);
      scratch_forward_edges_[kept] = edge;
      ++kept;
    } else {
      ++metrics_.dropped;
    }
  }
  scratch_forwards_.resize(kept);
  return kept != 0;
}

void SyncEngine::enqueue(PacketRef ref, NodeId at, NodeId next,
                         EdgeId edge_hint, bool priority_cached) {
  const EdgeId e = edge_hint != topology::kInvalidEdge
                       ? edge_hint
                       : graph_.edge_between(at, next);
  LEVNET_DCHECK(e == graph_.edge_between(at, next));
  LEVNET_CHECK_MSG(e != topology::kInvalidEdge,
                   "handler forwarded along a non-existent link");
  if (config_.discipline != QueueDiscipline::kFifo && !priority_cached) {
    Packet& packet = pool_.get(ref);
    packet.priority = handler_.priority(packet, at);
  }
  queues_[e].push(ref);
  metrics_.max_link_queue = std::max(
      metrics_.max_link_queue, static_cast<std::uint32_t>(queues_[e].size()));
  const std::uint32_t load = ++node_load_[at];
  metrics_.max_node_queue = std::max(metrics_.max_node_queue, load);
  if (!edge_active_[e]) {
    edge_active_[e] = 1;
    active_.push_back(e);
    // active_ is always a subset of dirty_edges_, so the dirty check only
    // needs to run on the inactive -> active transition.
    if (!edge_dirty_[e]) {
      edge_dirty_[e] = 1;
      dirty_edges_.push_back(e);
    }
  }
}

PacketRef SyncEngine::pop_by_discipline(support::RingQueue<PacketRef>& queue) {
  if (config_.discipline == QueueDiscipline::kFifo || queue.size() == 1) {
    return queue.pop();
  }
  // Keys were cached at enqueue time (Packet::priority), so the selection
  // scan is a comparison loop over pooled keys with no handler round-trips.
  std::size_t best = 0;
  std::uint32_t best_key = pool_.get(queue.at(0)).priority;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const std::uint32_t key = pool_.get(queue.at(i)).priority;
    const bool better = config_.discipline == QueueDiscipline::kFurthestFirst
                            ? key > best_key
                            : key < best_key;
    if (better) {
      best = i;
      best_key = key;
    }
  }
  return queue.extract(best);
}

void SyncEngine::drain_dead_edge(EdgeId e, support::Rng& rng) {
  // The link died while packets sat on it (time-triggered fault mid-run).
  // Each queued packet is re-aimed from the link's tail by the handler's
  // on_fault and re-enqueued after the transmission loop (eligible from
  // the next step, like any fresh enqueue); packets without a detour drop.
  auto& queue = queues_[e];
  const NodeId tail = graph_.edge_tail(e);
  const NodeId head = graph_.edge_head(e);
  while (!queue.empty()) {
    const PacketRef ref = queue.pop();
    --node_load_[tail];
    NodeId next = topology::kInvalidNode;
    EdgeId detour = topology::kInvalidEdge;
    if (try_detour(ref, tail, head, rng, next, detour)) {
      redirects_.push_back(Redirect{ref, tail, next, detour});
    } else {
      ++metrics_.dropped;
      pool_.release(ref);
    }
  }
}

void SyncEngine::shard_transmit() {
  const std::size_t n = active_.size();
  landings_.resize(n);
  const std::size_t shards = shard_next_active_.size();
  // Fault-free + unbounded: every active link pops exactly one packet, so
  // shard s owns active_[begin, end), the matching landings_ slice, and
  // every queue/pool-slot/edge-flag it touches — disjoint across shards.
  // levnet-lint: shard-ordered(per-shard next_active_ slices concatenated in shard order below)
  step_pool_->parallel_for(shards, [&](std::size_t s) {
    const std::size_t begin = n * s / shards;
    const std::size_t end = n * (s + 1) / shards;
    std::vector<EdgeId>& local_next = shard_next_active_[s];
    for (std::size_t i = begin; i < end; ++i) {
      const EdgeId e = active_[i];
      auto& queue = queues_[e];
      const PacketRef ref = pop_by_discipline(queue);
      Packet& packet = pool_.get(ref);
      packet.hops += 1;
      LEVNET_DCHECK(packet.hops != 0);  // 16-bit hop counter must not wrap
      packet.came_from = graph_.edge_tail(e);
      landings_[i] = Landing{ref, graph_.edge_head(e)};
      if (!queue.empty()) {
        local_next.push_back(e);
      } else {
        edge_active_[e] = 0;
      }
    }
    if (obs_ != nullptr) {
      // Per-shard probe lane: folded back into the cumulative counters in
      // shard order by merge_lanes() at the step barrier.
      obs_->lane(s).transmissions += end - begin;
    }
  });
  // node_load_ decrements are cross-shard (a node's out-links can straddle
  // a shard boundary), so they run serially after the barrier; loads are
  // only read at enqueue time, which is serial too, so by then the state
  // matches the serial engine exactly.
  for (const EdgeId e : active_) --node_load_[graph_.edge_tail(e)];
  for (std::vector<EdgeId>& local_next : shard_next_active_) {
    next_active_.insert(next_active_.end(), local_next.begin(),
                        local_next.end());
    local_next.clear();
  }
}

void SyncEngine::decide_landings(std::uint64_t step_key) {
  const std::size_t n = landings_.size();
  dec_kind_.assign(n, 0);
  dec_next_.resize(n);
  dec_edge_.resize(n);
  const std::size_t shards = shard_next_active_.size();
  const bool keyed = config_.discipline != QueueDiscipline::kFifo;
  // Pure decisions only: each worker writes its landings' packet bodies and
  // dec_* slots, draws from landing-private substreams, and reads the
  // immutable graph/handler. All queue pushes, activations and metric
  // updates happen in commit_landings, in landing order.
  // levnet-lint: shard-ordered(decisions committed in landing order by commit_landings)
  step_pool_->parallel_for(shards, [&](std::size_t s) {
    const std::size_t begin = n * s / shards;
    const std::size_t end = n * (s + 1) / shards;
    Forward forward{};
    for (std::size_t i = begin; i < end; ++i) {
      const Landing& landing = landings_[i];
      Packet& packet = pool_.get(landing.ref);
      support::Rng sub = landing_rng(step_key, i);
      if (!handler_.route_concurrent(packet, landing.at, now_, sub, forward)) {
        continue;  // deferred: phase C replays with an identical substream
      }
      packet.route_state = forward.route_state;
      if (keyed) packet.priority = handler_.priority(packet, landing.at);
      dec_kind_[i] = 1;
      dec_next_[i] = forward.to;
      // The adjacency scan is the commit loop's other hot lookup; resolving
      // it here moves it off the serial path. kInvalidEdge simply falls
      // through to enqueue's own lookup and its diagnostic CHECK.
      dec_edge_[i] = graph_.edge_between(landing.at, forward.to);
    }
  });
}

void SyncEngine::commit_landings(std::uint64_t step_key) {
  for (std::size_t i = 0; i < landings_.size(); ++i) {
    const Landing& landing = landings_[i];
    if (dec_kind_[i] != 0) {
      // A kInvalidEdge slot (handler named a non-neighbor) passes through
      // as "look it up here", reaching enqueue's diagnostic CHECK.
      enqueue(landing.ref, landing.at, dec_next_[i], dec_edge_[i],
              /*priority_cached=*/true);
    } else {
      support::Rng sub = landing_rng(step_key, i);
      route_from(landing.ref, landing.at, sub);
    }
  }
}

std::size_t SyncEngine::step(support::Rng& rng) {
  ++now_;
  metrics_.peak_in_flight =
      std::max(metrics_.peak_in_flight,
               static_cast<std::uint32_t>(pool_.live()));
  landings_.clear();
  redirects_.clear();
  next_active_.clear();
  const std::uint64_t dropped_before = metrics_.dropped;
  const bool staged = config_.node_buffer_bound == 0;
  // Sharding needs the one-pop-per-active-link invariant (staged) and a
  // fault-free graph (dead-link drains negotiate detours through the
  // handler, inherently serial). The predicate depends only on engine
  // state, never on thread scheduling, and either branch produces the
  // same state by the landing phase.
  const bool sharded = staged && step_pool_ != nullptr && !graph_.has_faults();
  // Transmission phase: every active directed link moves one packet, unless
  // bounded-buffer mode blocks it.
  if (sharded) {
    shard_transmit();
  } else {
    for (const EdgeId e : active_) {
      auto& queue = queues_[e];
      const NodeId tail = graph_.edge_tail(e);
      const NodeId head = graph_.edge_head(e);
      if (graph_.has_faults() && !graph_.edge_live(e)) {
        drain_dead_edge(e, rng);
        edge_active_[e] = 0;  // queue is empty now; redirects re-activate
        continue;
      }
      if (config_.node_buffer_bound != 0 &&
          node_load_[head] >= config_.node_buffer_bound) {
        next_active_.push_back(e);  // blocked; stays active
        continue;
      }
      const PacketRef ref = pop_by_discipline(queue);
      --node_load_[tail];
      Packet& packet = pool_.get(ref);
      packet.hops += 1;
      LEVNET_DCHECK(packet.hops != 0);  // 16-bit hop counter must not wrap
      packet.came_from = tail;
      landings_.push_back(Landing{ref, head});
      if (!queue.empty()) {
        next_active_.push_back(e);
      } else {
        edge_active_[e] = 0;
      }
    }
    if (obs_ != nullptr) {
      // Lane 0 is the serial engine's shard; one pop per landing.
      obs_->lane(0).transmissions += landings_.size();
    }
  }
  std::swap(active_, next_active_);
  // Evacuation accounting must happen before the landing phase: drops
  // during landings belong to packets that did move this step (they are
  // already in landings_), while transmission-phase drops are the only
  // trace a drained dead link leaves.
  const std::size_t evacuation_drops =
      static_cast<std::size_t>(metrics_.dropped - dropped_before);
  // Refugees from dead links re-join their new queues ahead of this step's
  // landings (a fixed, deterministic order).
  const std::size_t redirected = redirects_.size();
  for (const Redirect& redirect : redirects_) {
    enqueue(redirect.ref, redirect.at, redirect.next, redirect.edge);
  }
  redirects_.clear();
  // Landing phase: consumed or forwarded; new enqueues become eligible for
  // transmission from the next step (they are appended to active_ now, but
  // this step's transmission loop has already finished).
  if (!staged) {
    // Bounded-buffer mode keeps the legacy shared-stream landing loop (its
    // fixtures and deadlock behaviour are pinned against it).
    for (const Landing& landing : landings_) {
      route_from(landing.ref, landing.at, rng);
    }
  } else {
    // Staged landings draw from landing-private substreams derived off the
    // main stream's position WITHOUT advancing it, so the landing order in
    // which draws happen cannot matter — the precondition for sharding the
    // decision phase, and the model in force at any step_threads so one
    // spec means one result.
    const std::uint64_t step_key = rng.stream_key(now_);
    if (sharded && concurrent_capable_ && !landings_.empty()) {
      decide_landings(step_key);
      commit_landings(step_key);
    } else {
      // Serial staged path: route_from consumes exactly the draws phase B
      // would have, in the same per-landing streams — bit-identical to
      // decide+commit by construction, with zero phase scaffolding (the
      // perf_alloc suite pins this path allocation-free).
      for (std::size_t i = 0; i < landings_.size(); ++i) {
        support::Rng sub = landing_rng(step_key, i);
        route_from(landings_[i].ref, landings_[i].at, sub);
      }
    }
  }
  if (obs_ != nullptr) {
    // Step barrier: fold the per-shard lanes in shard order, then emit the
    // trace/timeline points. Everything here depends only on committed
    // engine state, and `staged` is thread-count-independent, so the
    // recorder's output is bit-identical across step_threads values.
    obs_->merge_lanes();
    if (obs_->trace_enabled()) obs_->trace_step(now_, staged);
    if (obs_->sample_due(now_)) {
      obs_->begin_sample(now_, pool_.live());
      for (const EdgeId e : active_) {
        obs_->sample_edge(e, queues_[e].size());
      }
    }
  }
  // Evacuated packets — redirected *or* dropped — count as movement: a
  // step that only cleared a dead link changed state and must not read as
  // a bounded-buffer deadlock.
  return landings_.size() + redirected + evacuation_drops;
}

bool SyncEngine::run(support::Rng& rng) {
  while (!active_.empty()) {
    if (config_.max_steps != 0 && now_ >= config_.max_steps) {
      metrics_.aborted = true;
      return false;
    }
    const std::size_t moved = step(rng);
    if (moved == 0 && !active_.empty()) {
      metrics_.deadlocked = true;
      return false;
    }
  }
  return true;
}

}  // namespace levnet::sim
