#include "sim/engine.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace levnet::sim {

SyncEngine::SyncEngine(const topology::Graph& graph, TrafficHandler& handler,
                       EngineConfig config)
    : graph_(graph),
      handler_(handler),
      config_(config),
      queues_(graph.edge_count()),
      edge_active_(graph.edge_count(), 0),
      edge_dirty_(graph.edge_count(), 0),
      node_load_(graph.node_count(), 0) {
  // Per-step scratch is sized for the worst step up front: at most one
  // landing per directed edge, every edge active, and handler fan-out
  // bounded by a node's degree in the common (non-combining) case. Growth
  // past these marks is still legal — capacity then persists — but typical
  // steady-state steps never touch the heap.
  const std::size_t edges = graph.edge_count();
  landings_.reserve(edges);
  active_.reserve(edges);
  next_active_.reserve(edges);
  dirty_edges_.reserve(edges);
  scratch_forwards_.reserve(graph.max_out_degree() + 1);
}

void SyncEngine::reset() {
  // dirty_edges_ is every edge that queued a packet since the last reset —
  // a strict superset of active_, so packets stranded on edges that were
  // blocked out of active_ by a bounded-buffer deadlock or a mid-flight
  // abort are cleared too (they used to leak into the next run).
  for (const EdgeId e : dirty_edges_) {
    queues_[e].clear();
    edge_active_[e] = 0;
    edge_dirty_[e] = 0;
  }
  dirty_edges_.clear();
  active_.clear();
  landings_.clear();
  pool_.clear();
  std::fill(node_load_.begin(), node_load_.end(), 0);
  metrics_.reset();
  now_ = 0;
}

void SyncEngine::inject(Packet packet, NodeId at, support::Rng& rng) {
  packet.inject_step = now_;
  packet.came_from = topology::kInvalidNode;
  ++metrics_.injected;
  const PacketRef ref = pool_.allocate();
  pool_.get(ref) = packet;
  route_from(ref, at, rng);
}

void SyncEngine::route_from(PacketRef ref, NodeId at, support::Rng& rng) {
  scratch_forwards_.clear();
  handler_.on_packet(pool_.get(ref), at, now_, rng, scratch_forwards_);
  if (scratch_forwards_.empty()) {
    const Packet& packet = pool_.get(ref);
    ++metrics_.consumed;
    metrics_.steps = std::max(metrics_.steps, now_);
    metrics_.total_hops += packet.hops;
    const std::uint32_t journey = now_ - packet.inject_step;
    metrics_.total_delay +=
        journey - std::min<std::uint32_t>(journey, packet.hops);
    pool_.release(ref);
    return;
  }
  // Fan-out: the last forward keeps the original's pool slot, earlier ones
  // take copies. (allocate() may move the pool, so re-fetch per copy.)
  const std::size_t fan = scratch_forwards_.size();
  for (std::size_t i = 0; i + 1 < fan; ++i) {
    const PacketRef copy = pool_.allocate();
    pool_.get(copy) = pool_.get(ref);
    pool_.get(copy).route_state = scratch_forwards_[i].route_state;
    enqueue(copy, at, scratch_forwards_[i].to);
  }
  pool_.get(ref).route_state = scratch_forwards_[fan - 1].route_state;
  enqueue(ref, at, scratch_forwards_[fan - 1].to);
}

void SyncEngine::enqueue(PacketRef ref, NodeId at, NodeId next) {
  const EdgeId e = graph_.edge_between(at, next);
  LEVNET_CHECK_MSG(e != topology::kInvalidEdge,
                   "handler forwarded along a non-existent link");
  if (config_.discipline != QueueDiscipline::kFifo) {
    Packet& packet = pool_.get(ref);
    packet.priority = handler_.priority(packet, at);
  }
  queues_[e].push(ref);
  metrics_.max_link_queue = std::max(
      metrics_.max_link_queue, static_cast<std::uint32_t>(queues_[e].size()));
  const std::uint32_t load = ++node_load_[at];
  metrics_.max_node_queue = std::max(metrics_.max_node_queue, load);
  if (!edge_active_[e]) {
    edge_active_[e] = 1;
    active_.push_back(e);
    // active_ is always a subset of dirty_edges_, so the dirty check only
    // needs to run on the inactive -> active transition.
    if (!edge_dirty_[e]) {
      edge_dirty_[e] = 1;
      dirty_edges_.push_back(e);
    }
  }
}

PacketRef SyncEngine::pop_by_discipline(support::RingQueue<PacketRef>& queue) {
  if (config_.discipline == QueueDiscipline::kFifo || queue.size() == 1) {
    return queue.pop();
  }
  // Keys were cached at enqueue time (Packet::priority), so the selection
  // scan is a comparison loop over pooled keys with no handler round-trips.
  std::size_t best = 0;
  std::uint32_t best_key = pool_.get(queue.at(0)).priority;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const std::uint32_t key = pool_.get(queue.at(i)).priority;
    const bool better = config_.discipline == QueueDiscipline::kFurthestFirst
                            ? key > best_key
                            : key < best_key;
    if (better) {
      best = i;
      best_key = key;
    }
  }
  return queue.extract(best);
}

std::size_t SyncEngine::step(support::Rng& rng) {
  ++now_;
  landings_.clear();
  next_active_.clear();
  // Transmission phase: every active directed link moves one packet, unless
  // bounded-buffer mode blocks it.
  for (const EdgeId e : active_) {
    auto& queue = queues_[e];
    const NodeId tail = graph_.edge_tail(e);
    const NodeId head = graph_.edge_head(e);
    if (config_.node_buffer_bound != 0 &&
        node_load_[head] >= config_.node_buffer_bound) {
      next_active_.push_back(e);  // blocked; stays active
      continue;
    }
    const PacketRef ref = pop_by_discipline(queue);
    --node_load_[tail];
    Packet& packet = pool_.get(ref);
    packet.hops += 1;
    LEVNET_DCHECK(packet.hops != 0);  // 16-bit hop counter must not wrap
    packet.came_from = tail;
    landings_.push_back(Landing{ref, head});
    if (!queue.empty()) {
      next_active_.push_back(e);
    } else {
      edge_active_[e] = 0;
    }
  }
  std::swap(active_, next_active_);
  // Landing phase: consumed or forwarded; new enqueues become eligible for
  // transmission from the next step (they are appended to active_ now, but
  // this step's transmission loop has already finished).
  for (const Landing& landing : landings_) {
    route_from(landing.ref, landing.at, rng);
  }
  return landings_.size();
}

bool SyncEngine::run(support::Rng& rng) {
  while (!active_.empty()) {
    if (config_.max_steps != 0 && now_ >= config_.max_steps) {
      metrics_.aborted = true;
      return false;
    }
    const std::size_t moved = step(rng);
    if (moved == 0 && !active_.empty()) {
      metrics_.deadlocked = true;
      return false;
    }
  }
  return true;
}

}  // namespace levnet::sim
