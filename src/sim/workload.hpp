#pragma once
// Workload generators for the routing problems of Section 2.2.1:
// permutation, partial, (partial) h-relation, many-one, plus the hot-spot
// and adversarial patterns used in the benches.
//
// A workload is a list of (source index, destination index) demands over an
// abstract endpoint domain [0, m); the caller maps indices to physical
// nodes (e.g. column-0 butterfly nodes, or all nodes of a star graph).

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace levnet::sim {

struct Demand {
  std::uint32_t source;
  std::uint32_t destination;
};

using Workload = std::vector<Demand>;

/// One packet per endpoint, destinations a uniform random permutation.
[[nodiscard]] Workload permutation_workload(std::uint32_t m,
                                            support::Rng& rng);

/// Partial routing: each endpoint holds a packet with probability `density`;
/// destinations are distinct (a random partial permutation).
[[nodiscard]] Workload partial_permutation_workload(std::uint32_t m,
                                                    double density,
                                                    support::Rng& rng);

/// Partial h-relation (Section 2.2.1): at most h packets per source and at
/// most h per destination — realized as h independent random permutations.
[[nodiscard]] Workload h_relation_workload(std::uint32_t m, std::uint32_t h,
                                           support::Rng& rng);

/// Many-one routing: one packet per endpoint, destination uniform (collisions
/// allowed).
[[nodiscard]] Workload many_one_workload(std::uint32_t m, support::Rng& rng);

/// Hot spot: a `fraction` of endpoints all target `target`; the rest form a
/// random permutation among themselves. Exercises CRCW combining.
[[nodiscard]] Workload hot_spot_workload(std::uint32_t m, double fraction,
                                         std::uint32_t target,
                                         support::Rng& rng);

/// Digit/bit reversal of the index — a classic adversarial permutation for
/// deterministic dimension-order routers.
[[nodiscard]] Workload reversal_workload(std::uint32_t m);

/// Mesh transpose (i, j) -> (j, i) over an n x n index grid; the standard
/// worst case for greedy XY routing (all of row i funnels into column i).
[[nodiscard]] Workload transpose_workload(std::uint32_t n);

/// Local workload over an n x n grid: destination uniform among nodes within
/// Manhattan distance `d` of the source (Theorem 3.3's locality regime).
[[nodiscard]] Workload local_mesh_workload(std::uint32_t n, std::uint32_t d,
                                           support::Rng& rng);

/// Audit helpers used by tests.
[[nodiscard]] bool is_permutation_workload(const Workload& w, std::uint32_t m);
[[nodiscard]] std::uint32_t max_demands_per_source(const Workload& w,
                                                   std::uint32_t m);
[[nodiscard]] std::uint32_t max_demands_per_destination(const Workload& w,
                                                        std::uint32_t m);

}  // namespace levnet::sim
