#pragma once
// Packet-journey tracing and the path-level audits of Section 2.2.
//
// The paper's delay analysis rests on two objects:
//   * Definition 2.1 (nonrepeating): if the paths of two packets share some
//     links and then diverge, they never share a link again;
//   * Fact 2.1 (queue-line lemma): under a nonrepeating scheme, a packet's
//     delay is at most the number of packets whose paths overlap its own.
// TracingTraffic decorates any TrafficHandler, records every packet's
// visited-node sequence, and the free functions below audit those
// properties — the property tests use them to machine-check the lemma the
// theorems lean on.

#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/packet.hpp"
#include "sim/traffic.hpp"

namespace levnet::sim {

/// A packet's route: the node sequence from injection to consumption.
/// Directed links are consecutive pairs.
struct PacketTrace {
  std::vector<NodeId> nodes;

  [[nodiscard]] std::size_t link_count() const noexcept {
    return nodes.empty() ? 0 : nodes.size() - 1;
  }
};

/// Decorator recording per-packet routes while delegating all decisions to
/// the wrapped handler. Fan-out copies (combining replies) extend the same
/// packet id's trace and are excluded from path audits by design — the
/// lemma concerns request routes, which never fan out.
class TracingTraffic final : public TrafficHandler {
 public:
  explicit TracingTraffic(TrafficHandler& inner) : inner_(inner) {}

  void on_packet(Packet& p, NodeId at, std::uint32_t step, support::Rng& rng,
                 std::vector<Forward>& out) override {
    record(p.id, at);
    inner_.on_packet(p, at, step, rng, out);
  }

  [[nodiscard]] std::uint32_t priority(const Packet& p,
                                       NodeId at) const override {
    return inner_.priority(p, at);
  }

  /// Forwarded so wrapping a concurrent-capable handler keeps the sharded
  /// phase-B path (and its engine state trajectory) instead of silently
  /// degrading to defer-everything. Decided landings are recorded here —
  /// the serial path records them via on_packet — so traces match the
  /// serial engine's node sequences exactly; deferred landings replay
  /// through on_packet and are recorded there. Called from pool workers,
  /// hence the lock around the trace store.
  [[nodiscard]] bool route_concurrent(Packet& p, NodeId at, std::uint32_t step,
                                      support::Rng& rng,
                                      Forward& out) const override {
    if (!inner_.route_concurrent(p, at, step, rng, out)) return false;
    const_cast<TracingTraffic*>(this)->record(p.id, at);
    return true;
  }

  [[nodiscard]] bool route_concurrent_capable() const override {
    return inner_.route_concurrent_capable();
  }

  [[nodiscard]] NodeId on_fault(Packet& p, NodeId at, NodeId blocked,
                                support::Rng& rng) override {
    return inner_.on_fault(p, at, blocked, rng);
  }

  [[nodiscard]] const std::vector<PacketTrace>& traces() const noexcept {
    return traces_;
  }

 private:
  void record(std::uint32_t id, NodeId at) {
    // One landing per packet per step, so a packet's appends are ordered
    // by the step barrier at any thread count; the lock only protects the
    // store's structure (resize) against concurrent phase-B workers.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (id >= traces_.size()) traces_.resize(id + 1);
    traces_[id].nodes.push_back(at);
  }

  TrafficHandler& inner_;
  mutable std::mutex mutex_;
  std::vector<PacketTrace> traces_;
};

/// Number of directed links the two routes share (the paper's "overlap"
/// measure behind Definition 2.2's queue lines).
[[nodiscard]] std::uint32_t shared_link_count(const PacketTrace& a,
                                              const PacketTrace& b);

/// Definition 2.1 check for one pair: the shared links must form a single
/// contiguous run in both routes (once diverged, never share again).
[[nodiscard]] bool nonrepeating_pair(const PacketTrace& a,
                                     const PacketTrace& b);

/// Number of packets in `all` whose route shares at least one link with
/// `a` (excluding itself) — the queue-line lemma's delay bound.
[[nodiscard]] std::uint32_t overlap_count(const PacketTrace& a,
                                          std::size_t self_index,
                                          const std::vector<PacketTrace>& all);

}  // namespace levnet::sim
