#include "sim/trace.hpp"

#include <algorithm>
#include <unordered_set>

namespace levnet::sim {
namespace {

[[nodiscard]] std::uint64_t link_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

[[nodiscard]] std::unordered_set<std::uint64_t> link_set(
    const PacketTrace& trace) {
  std::unordered_set<std::uint64_t> links;
  links.reserve(trace.link_count());
  for (std::size_t i = 0; i + 1 < trace.nodes.size(); ++i) {
    links.insert(link_key(trace.nodes[i], trace.nodes[i + 1]));
  }
  return links;
}

/// Indices (link positions) of `a`'s links that also appear in `b`.
[[nodiscard]] std::vector<std::size_t> shared_positions(
    const PacketTrace& a, const std::unordered_set<std::uint64_t>& b_links) {
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i + 1 < a.nodes.size(); ++i) {
    if (b_links.contains(link_key(a.nodes[i], a.nodes[i + 1]))) {
      positions.push_back(i);
    }
  }
  return positions;
}

[[nodiscard]] bool contiguous(const std::vector<std::size_t>& positions) {
  for (std::size_t i = 1; i < positions.size(); ++i) {
    if (positions[i] != positions[i - 1] + 1) return false;
  }
  return true;
}

}  // namespace

std::uint32_t shared_link_count(const PacketTrace& a, const PacketTrace& b) {
  const auto b_links = link_set(b);
  std::uint32_t count = 0;
  for (std::size_t i = 0; i + 1 < a.nodes.size(); ++i) {
    if (b_links.contains(link_key(a.nodes[i], a.nodes[i + 1]))) ++count;
  }
  return count;
}

bool nonrepeating_pair(const PacketTrace& a, const PacketTrace& b) {
  const auto b_links = link_set(b);
  const auto in_a = shared_positions(a, b_links);
  if (in_a.empty()) return true;
  if (!contiguous(in_a)) return false;
  const auto a_links = link_set(a);
  return contiguous(shared_positions(b, a_links));
}

std::uint32_t overlap_count(const PacketTrace& a, std::size_t self_index,
                            const std::vector<PacketTrace>& all) {
  const auto a_links = link_set(a);
  std::uint32_t overlapping = 0;
  for (std::size_t j = 0; j < all.size(); ++j) {
    if (j == self_index) continue;
    const PacketTrace& other = all[j];
    for (std::size_t i = 0; i + 1 < other.nodes.size(); ++i) {
      if (a_links.contains(link_key(other.nodes[i], other.nodes[i + 1]))) {
        ++overlapping;
        break;
      }
    }
  }
  return overlapping;
}

}  // namespace levnet::sim
