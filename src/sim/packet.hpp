#pragma once
// The unit of communication: a (source, destination) pair plus the PRAM
// payload it may carry (Section 2.2's routing problem definition).

#include <cstdint>

#include "topology/graph.hpp"

namespace levnet::sim {

using topology::EdgeId;
using topology::NodeId;

/// Handle into the engine's packet pool (support::ObjectPool<Packet>::Ref).
/// All hot-path containers (link queues, landing staging, combining scans)
/// move these 4-byte refs; the packet bodies stay put in the pool.
using PacketRef = std::uint32_t;

enum class PacketKind : std::uint8_t {
  kData = 0,     // plain routing payload (permutation / h-relation studies)
  kRequest = 1,  // PRAM memory request travelling processor -> module
  kReply = 2,    // PRAM read reply travelling module -> processor
};

enum class MemOpKind : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
};

/// Field order is part of the hot-path contract: the two 8-byte payload
/// words lead so nothing pads up to their alignment, the 4-byte fields pack
/// behind them, and the sub-word tail (16-bit hop counter plus the two
/// enum bytes, grouped next to priority/came_from) closes the struct flush
/// with its 8-byte alignment. The static_assert below locks the resulting
/// size so a careless new field cannot silently re-inflate every queue.
struct Packet {
  std::uint64_t addr = 0;         ///< Shared-memory address (PRAM traffic).
  std::int64_t value = 0;         ///< Write payload or read reply value.
  std::uint32_t id = 0;           ///< Unique within a run (injection order).
  NodeId src = 0;                 ///< Origin of the current journey.
  NodeId dst = 0;                 ///< Destination of the current journey.
  NodeId intermediate = 0;        ///< Phase-1 target chosen by two-phase routers.
  std::uint32_t route_state = 0;  ///< Router scratch: phase / hops-in-pass.
  std::uint32_t proc = 0;         ///< Issuing PRAM processor (requests/replies).
  std::uint32_t inject_step = 0;  ///< Simulation step of injection.
  /// Queue-discipline key, computed once by the engine when the packet is
  /// enqueued (TrafficHandler::priority is a function of packet state and
  /// the queue's tail node, both fixed while it waits) so non-FIFO pops
  /// compare cached keys instead of re-querying the handler per comparison.
  std::uint32_t priority = 0;
  /// Node the packet just crossed a link from; kInvalidNode right after
  /// injection. Maintained by the engine; CRCW combining records it.
  NodeId came_from = topology::kInvalidNode;
  /// Links traversed so far. 16 bits mirrors route_state's in-pass hop
  /// field; the engine checks for wrap-around in debug builds.
  std::uint16_t hops = 0;
  PacketKind kind = PacketKind::kData;
  MemOpKind op = MemOpKind::kNone;
};

// 2x8-byte payload words + 9x4-byte routing words + (hops, kind, op) in the
// final 4 bytes. A padding regression (or an accidentally widened field)
// fails right here instead of quietly taxing every queue move.
static_assert(sizeof(Packet) == 56, "Packet layout regressed (was 64 pre-pool)");
static_assert(alignof(Packet) == 8);

/// Router scratch encoding shared by the two-phase routers: low 16 bits hop
/// counter within the current pass, high bits the phase number.
[[nodiscard]] constexpr std::uint32_t route_state_pack(
    std::uint32_t phase, std::uint32_t hops_in_pass) noexcept {
  return (phase << 16) | (hops_in_pass & 0xffffU);
}
[[nodiscard]] constexpr std::uint32_t route_state_phase(
    std::uint32_t state) noexcept {
  return state >> 16;
}
[[nodiscard]] constexpr std::uint32_t route_state_hops(
    std::uint32_t state) noexcept {
  return state & 0xffffU;
}

}  // namespace levnet::sim
