#pragma once
// The unit of communication: a (source, destination) pair plus the PRAM
// payload it may carry (Section 2.2's routing problem definition).

#include <cstdint>

#include "topology/graph.hpp"

namespace levnet::sim {

using topology::EdgeId;
using topology::NodeId;

enum class PacketKind : std::uint8_t {
  kData = 0,     // plain routing payload (permutation / h-relation studies)
  kRequest = 1,  // PRAM memory request travelling processor -> module
  kReply = 2,    // PRAM read reply travelling module -> processor
};

enum class MemOpKind : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
};

struct Packet {
  std::uint32_t id = 0;           ///< Unique within a run (injection order).
  NodeId src = 0;                 ///< Origin of the current journey.
  NodeId dst = 0;                 ///< Destination of the current journey.
  NodeId intermediate = 0;        ///< Phase-1 target chosen by two-phase routers.
  std::uint32_t route_state = 0;  ///< Router scratch: phase / hops-in-pass.
  std::uint32_t proc = 0;         ///< Issuing PRAM processor (requests/replies).
  PacketKind kind = PacketKind::kData;
  MemOpKind op = MemOpKind::kNone;
  std::uint64_t addr = 0;         ///< Shared-memory address (PRAM traffic).
  std::int64_t value = 0;         ///< Write payload or read reply value.
  std::uint32_t inject_step = 0;  ///< Simulation step of injection.
  std::uint32_t hops = 0;         ///< Links traversed so far.
  /// Queue-discipline key, computed once by the engine when the packet is
  /// enqueued (TrafficHandler::priority is a function of packet state and
  /// the queue's tail node, both fixed while it waits) so non-FIFO pops
  /// compare cached keys instead of re-querying the handler per comparison.
  std::uint32_t priority = 0;
  /// Node the packet just crossed a link from; kInvalidNode right after
  /// injection. Maintained by the engine; CRCW combining records it.
  NodeId came_from = topology::kInvalidNode;
};

/// Router scratch encoding shared by the two-phase routers: low 16 bits hop
/// counter within the current pass, high bits the phase number.
[[nodiscard]] constexpr std::uint32_t route_state_pack(
    std::uint32_t phase, std::uint32_t hops_in_pass) noexcept {
  return (phase << 16) | (hops_in_pass & 0xffffU);
}
[[nodiscard]] constexpr std::uint32_t route_state_phase(
    std::uint32_t state) noexcept {
  return state >> 16;
}
[[nodiscard]] constexpr std::uint32_t route_state_hops(
    std::uint32_t state) noexcept {
  return state & 0xffffU;
}

}  // namespace levnet::sim
