#pragma once
// Synchronous network simulator.
//
// Model (Section 2.2): time advances in unit steps; in each step every
// directed link transmits at most one packet, selected from the link's
// queue by the configured discipline (FIFO by default, matching the paper's
// algorithms; furthest-destination-first for the mesh algorithm of
// Section 3.4). Packets that land on a node are handed to the
// TrafficHandler, which decides consumption or next hop(s); newly enqueued
// packets become eligible for transmission from the following step, so a
// packet traverses at most one link per step.
//
// An optional per-node buffer bound models constant-queue hardware: a link
// refuses to transmit while the receiving node's aggregate occupancy is at
// the bound (used by the O(1)-queue variants of Section 3.4).
//
// Data plane: every in-flight Packet lives in an ObjectPool and all queues
// (per-link rings, the landing staging buffer) carry 32-bit PacketRef
// handles, so a transmission moves 4 bytes instead of a 56-byte struct and
// the CRCW combining layer edits queued packets in place through the pool.
// After a warm-up pass the pool, the queues and the per-step scratch
// vectors all sit at their high-water capacities and step() performs no
// heap allocation (asserted by tests/perf_alloc_test.cpp).
//
// Parallel stepping (EngineConfig::step_threads > 1): with unbounded node
// buffers a step is phase-structured so the two heavy loops shard across a
// ThreadPool while every commit stays serial and ordered. Phase A partitions
// active_ into contiguous shards (fault-free + unbounded means every active
// link transmits exactly one packet, so landing slot i belongs to active_[i]
// and shards write disjoint preallocated slices); phase B runs the handler's
// pure route_concurrent decision per landing against a landing-private Rng
// substream; phase C commits decisions — and replays deferred landings
// through on_packet with an identical substream — in landing order on the
// driving thread. Reports and final memories are bit-identical to
// step_threads=1 by construction (same draws, same push order, same metric
// updates), pinned by the golden-equivalence suite and the sharded-step
// tests in tests/concurrency_test.cpp.
//
// Degraded mode (src/faults/): when the graph carries a fault overlay
// (Graph::has_faults()), every forward is validated against the liveness
// mask; blocked forwards go through TrafficHandler::on_fault, which either
// supplies a detour via a surviving neighbor (counted in
// RunMetrics::detours) or gives up (the packet drops, counted in
// RunMetrics::dropped). Links that die mid-run with packets queued are
// evacuated through the same hook. With no faults every one of these
// branches is short-circuited by a single bool, and behaviour is
// bit-identical to the fault-free engine (pinned by the golden suite).

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/packet.hpp"
#include "sim/traffic.hpp"
#include "support/object_pool.hpp"
#include "support/ring_queue.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "topology/graph.hpp"

namespace levnet::obs {
class Recorder;
}

namespace levnet::sim {

enum class QueueDiscipline : std::uint8_t {
  kFifo = 0,
  kFurthestFirst = 1,  // larger TrafficHandler::priority served first
  kNearestFirst = 2,   // smaller priority served first
};

struct EngineConfig {
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  /// Abort the run (metrics().aborted) once this many steps elapse; 0 means
  /// no budget. The PRAM emulator uses this to trigger rehashing.
  std::uint32_t max_steps = 0;
  /// If nonzero, a node's outgoing queues may hold at most this many packets
  /// for a link to transmit into it (bounded-buffer mode).
  std::uint32_t node_buffer_bound = 0;
  /// Total parallelism (including the caller) for the sharded step phases;
  /// 1 = fully serial engine (default), 0 = hardware concurrency. Results
  /// are bit-identical across values — sharding only engages fault-free
  /// with unbounded buffers, and every commit is shard-ordered.
  std::uint32_t step_threads = 1;
  /// Optional observability recorder (src/obs/). Null (the default) keeps
  /// every instrumented path a single pointer test: no allocation, no
  /// behaviour change, byte-identical reports. The recorder never feeds
  /// back into routing, so attaching one is equally byte-inert.
  obs::Recorder* recorder = nullptr;
};

class SyncEngine {
 public:
  SyncEngine(const topology::Graph& graph, TrafficHandler& handler,
             EngineConfig config);

  /// Places a packet on node `at` at the current time; the handler routes it
  /// immediately (it starts crossing its first link next step).
  void inject(Packet packet, NodeId at, support::Rng& rng);

  /// Advances one step: transmissions, then landings. Returns the number of
  /// packets that moved.
  std::size_t step(support::Rng& rng);

  /// Runs until all queues drain, the step budget is exhausted, or
  /// bounded-buffer mode deadlocks. Returns true iff drained normally.
  bool run(support::Rng& rng);

  [[nodiscard]] const RunMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::uint32_t now() const noexcept { return now_; }
  [[nodiscard]] bool idle() const noexcept { return active_.empty(); }

  /// Packets currently alive inside the engine (queued or mid-landing);
  /// zero whenever the engine is drained or freshly reset.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return pool_.live();
  }

  /// Direct access to a directed link's queue of packet handles. The CRCW
  /// combining layer (Theorem 2.6) scans a node's queues and edits pooled
  /// packets in place (via packet()) to merge same-address requests before
  /// they depart.
  [[nodiscard]] support::RingQueue<PacketRef>& edge_queue(EdgeId e) noexcept {
    return queues_[e];
  }

  /// Pooled packet behind a handle obtained from edge_queue().
  [[nodiscard]] Packet& packet(PacketRef ref) noexcept {
    return pool_.get(ref);
  }
  [[nodiscard]] const Packet& packet(PacketRef ref) const noexcept {
    return pool_.get(ref);
  }

  /// Clears queues, the pool and metrics for a fresh run on the same graph.
  /// Covers *every* queue populated since the last reset — including edges
  /// that were blocked out of the active list when a bounded-buffer run
  /// deadlocked or a budgeted run aborted mid-flight — so no packet can
  /// leak into the next run.
  void reset();

  /// Adjusts the step budget (0 = unlimited). The emulator grows it across
  /// rehash attempts so an initially mis-set budget cannot live-lock.
  void set_max_steps(std::uint32_t max_steps) noexcept {
    config_.max_steps = max_steps;
  }

 private:
  struct Landing {
    PacketRef ref;
    NodeId at;
  };
  /// A packet pulled off a dead link mid-run, re-aimed by on_fault; it is
  /// re-enqueued after the transmission loop so it becomes eligible from
  /// the next step, like any other enqueue.
  struct Redirect {
    PacketRef ref;
    NodeId at;
    NodeId next;
    EdgeId edge;  // at->next, already resolved during the drain
  };

  void route_from(PacketRef ref, NodeId at, support::Rng& rng);
  /// `edge_hint` carries an already-resolved at->next edge id (degraded
  /// mode validates forwards before enqueueing and should not pay the
  /// adjacency scan twice); kInvalidEdge means "look it up here".
  /// `priority_cached` skips the discipline-key recomputation when the
  /// parallel decision phase already wrote Packet::priority.
  void enqueue(PacketRef ref, NodeId at, NodeId next,
               EdgeId edge_hint = topology::kInvalidEdge,
               bool priority_cached = false);
  [[nodiscard]] PacketRef pop_by_discipline(
      support::RingQueue<PacketRef>& queue);

  /// Degraded mode (graph_.has_faults()): rewrites scratch_forwards_ so
  /// every forward targets a live link, asking the handler's on_fault for
  /// detours; forwards with no detour are removed (counted as dropped).
  /// Returns false when nothing survived.
  [[nodiscard]] bool resolve_faulted_forwards(PacketRef ref, NodeId at,
                                              support::Rng& rng);

  /// Bounded on_fault negotiation for the packet at `at` whose next hop
  /// `blocked` crosses a dead link: asks the handler for replacements (up
  /// to degree+1 tries so a handler that only proposes dead hops cannot
  /// spin) and resolves `next`/`edge` to a live link. False = the handler
  /// gave up; the caller drops the packet.
  [[nodiscard]] bool try_detour(PacketRef ref, NodeId at, NodeId blocked,
                                support::Rng& rng, NodeId& next,
                                EdgeId& edge);

  /// Degraded mode: empties the queue of a dead link by asking on_fault to
  /// re-aim each queued packet from the link's tail (time-triggered faults
  /// can strand packets on a link that was live when they joined it).
  void drain_dead_edge(EdgeId e, support::Rng& rng);

  /// The landing-private substream for landing `index` of the step whose
  /// stream_key is `step_key`. The index is spread by an odd Weyl constant
  /// before the splitmix64 finalizer: raw `key + i * gamma` seeds would
  /// hand Rng::reseed inputs that differ by its own increment, producing
  /// correlated (shifted) xoshiro state words between adjacent landings.
  [[nodiscard]] static support::Rng landing_rng(std::uint64_t step_key,
                                               std::size_t index) noexcept {
    std::uint64_t t = step_key ^ (0xd1342543de82ef95ULL * (index + 1));
    return support::Rng(support::splitmix64(t));
  }

  /// Phase A: shards the transmission loop over the pool. Fault-free +
  /// unbounded only — every active link pops exactly one packet, so
  /// landings_[i] is active_[i]'s slot and shards touch disjoint edges,
  /// queues, pool slots and landing slices. node_load_ decrements (cross-
  /// shard: a node's out-edges can straddle a boundary) and next_active_
  /// concatenation (shard order == sequential order) run serially after
  /// the barrier.
  void shard_transmit();
  /// Phase B: per-landing route_concurrent decisions into dec_* slots,
  /// sharded over the pool; commits happen in phase C only.
  void decide_landings(std::uint64_t step_key);
  /// Phase C: serial, landing-ordered commit — decided landings enqueue
  /// with their cached edge/priority, deferred landings replay through
  /// route_from with an identical substream.
  void commit_landings(std::uint64_t step_key);

  const topology::Graph& graph_;
  TrafficHandler& handler_;
  EngineConfig config_;

  support::ObjectPool<Packet> pool_;                   // every in-flight packet
  std::vector<support::RingQueue<PacketRef>> queues_;  // one per directed edge
  std::vector<std::uint8_t> edge_active_;
  std::vector<EdgeId> active_;
  std::vector<EdgeId> next_active_;
  /// Edges whose queue received at least one packet since the last reset;
  /// superset of active_ at all times, and the set reset() must drain.
  std::vector<EdgeId> dirty_edges_;
  std::vector<std::uint8_t> edge_dirty_;
  std::vector<Landing> landings_;
  std::vector<Redirect> redirects_;
  std::vector<Forward> scratch_forwards_;
  /// Edge ids of the surviving scratch_forwards_, filled by
  /// resolve_faulted_forwards so the enqueue below reuses them; empty in
  /// fault-free runs.
  std::vector<EdgeId> scratch_forward_edges_;
  std::vector<std::uint32_t> node_load_;

  // Parallel stepping (config_.step_threads != 1). The pool exists only
  // when it would have >1 thread; all result aggregation is shard-ordered
  // (see shard_transmit / decide_landings / commit_landings).
  // levnet-lint: shard-ordered(per-shard slices merged in shard order at the step barrier)
  std::unique_ptr<support::ThreadPool> step_pool_;
  /// Per-shard continuation lists, concatenated into next_active_ in shard
  /// order at the barrier (== the serial engine's append order).
  std::vector<std::vector<EdgeId>> shard_next_active_;
  /// Phase B decision slots, one per landing: kind 1 = committed decision
  /// (next/edge below are valid), 0 = deferred to phase C's replay.
  std::vector<std::uint8_t> dec_kind_;
  std::vector<NodeId> dec_next_;
  std::vector<EdgeId> dec_edge_;
  /// Cached handler.route_concurrent_capable(): skip phase B wholesale for
  /// handlers that defer every landing.
  bool concurrent_capable_ = false;

  /// Cached config_.recorder: the hot loops test one pointer.
  obs::Recorder* obs_ = nullptr;

  RunMetrics metrics_;
  std::uint32_t now_ = 0;
};

}  // namespace levnet::sim
