#pragma once
// Run-level measurements in the paper's vocabulary (Section 2.2): routing
// time (step of last consumption), delay, and queue size.

#include <cstdint>

namespace levnet::sim {

struct RunMetrics {
  /// Step at which the last packet was consumed; the paper's routing time.
  std::uint32_t steps = 0;
  std::uint64_t injected = 0;
  /// Packets consumed by the handler (delivered or absorbed by combining).
  std::uint64_t consumed = 0;
  std::uint64_t total_hops = 0;
  /// Sum over consumed packets of (journey steps - hops): time spent waiting
  /// unserved in queues — the paper's "delay of a packet".
  std::uint64_t total_delay = 0;
  /// Maximum occupancy of any single directed-link queue.
  std::uint32_t max_link_queue = 0;
  /// Maximum total occupancy across one node's outgoing-link queues.
  std::uint32_t max_node_queue = 0;
  /// Maximum number of packets alive in the engine at any step boundary
  /// (captured from the pool's live count as each step begins — the
  /// existing phase-A accounting, no extra pass).
  std::uint32_t peak_in_flight = 0;
  /// Detour hops taken around dead links/nodes (degraded mode only; the
  /// handler's on_fault supplied a surviving replacement hop).
  std::uint64_t detours = 0;
  /// Packets dropped because a fault blocked them and on_fault had no
  /// detour to offer (degraded mode only).
  std::uint64_t dropped = 0;
  /// True if the run hit the step budget before draining (triggers a rehash
  /// in the emulator, Section 2.1).
  bool aborted = false;
  /// True if bounded-buffer mode wedged (no transmission possible).
  bool deadlocked = false;

  void reset() { *this = RunMetrics{}; }
};

}  // namespace levnet::sim
