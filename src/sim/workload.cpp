#include "sim/workload.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace levnet::sim {

Workload permutation_workload(std::uint32_t m, support::Rng& rng) {
  const auto perm = support::random_permutation(m, rng);
  Workload w;
  w.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) w.push_back({i, perm[i]});
  return w;
}

Workload partial_permutation_workload(std::uint32_t m, double density,
                                      support::Rng& rng) {
  LEVNET_CHECK(density >= 0.0 && density <= 1.0);
  const auto perm = support::random_permutation(m, rng);
  Workload w;
  for (std::uint32_t i = 0; i < m; ++i) {
    if (rng.chance(density)) w.push_back({i, perm[i]});
  }
  return w;
}

Workload h_relation_workload(std::uint32_t m, std::uint32_t h,
                             support::Rng& rng) {
  Workload w;
  w.reserve(static_cast<std::size_t>(m) * h);
  for (std::uint32_t round = 0; round < h; ++round) {
    const auto perm = support::random_permutation(m, rng);
    for (std::uint32_t i = 0; i < m; ++i) w.push_back({i, perm[i]});
  }
  return w;
}

Workload many_one_workload(std::uint32_t m, support::Rng& rng) {
  Workload w;
  w.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    w.push_back({i, static_cast<std::uint32_t>(rng.below(m))});
  }
  return w;
}

Workload hot_spot_workload(std::uint32_t m, double fraction,
                           std::uint32_t target, support::Rng& rng) {
  LEVNET_CHECK(fraction >= 0.0 && fraction <= 1.0);
  LEVNET_CHECK(target < m);
  const auto perm = support::random_permutation(m, rng);
  Workload w;
  w.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    if (rng.chance(fraction)) {
      w.push_back({i, target});
    } else {
      w.push_back({i, perm[i]});
    }
  }
  return w;
}

Workload reversal_workload(std::uint32_t m) {
  // Reverse the index within the smallest power of two >= m, clamping any
  // out-of-range image to a self-loop (delivered at injection; harmless).
  std::uint32_t bits = 0;
  while ((std::uint32_t{1} << bits) < m) ++bits;
  Workload w;
  w.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    std::uint32_t r = 0;
    for (std::uint32_t b = 0; b < bits; ++b) {
      if (i & (std::uint32_t{1} << b)) r |= std::uint32_t{1} << (bits - 1 - b);
    }
    w.push_back({i, r < m ? r : i});
  }
  return w;
}

Workload transpose_workload(std::uint32_t n) {
  Workload w;
  w.reserve(static_cast<std::size_t>(n) * n);
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      w.push_back({r * n + c, c * n + r});
    }
  }
  return w;
}

Workload local_mesh_workload(std::uint32_t n, std::uint32_t d,
                             support::Rng& rng) {
  LEVNET_CHECK(d >= 1);
  Workload w;
  w.reserve(static_cast<std::size_t>(n) * n);
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      // Rejection-sample a destination within Manhattan distance d.
      for (;;) {
        const auto dr = static_cast<std::int64_t>(rng.range(0, 2 * d)) -
                        static_cast<std::int64_t>(d);
        const std::int64_t budget = static_cast<std::int64_t>(d) -
                                    (dr < 0 ? -dr : dr);
        const auto dc = static_cast<std::int64_t>(
                            rng.range(0, static_cast<std::uint64_t>(2 * budget))) -
                        budget;
        const std::int64_t rr = static_cast<std::int64_t>(r) + dr;
        const std::int64_t cc = static_cast<std::int64_t>(c) + dc;
        if (rr < 0 || cc < 0 || rr >= n || cc >= n) continue;
        w.push_back({r * n + c, static_cast<std::uint32_t>(rr) * n +
                                    static_cast<std::uint32_t>(cc)});
        break;
      }
    }
  }
  return w;
}

bool is_permutation_workload(const Workload& w, std::uint32_t m) {
  if (w.size() != m) return false;
  std::vector<bool> seen_src(m, false);
  std::vector<bool> seen_dst(m, false);
  for (const auto& demand : w) {
    if (demand.source >= m || demand.destination >= m) return false;
    if (seen_src[demand.source] || seen_dst[demand.destination]) return false;
    seen_src[demand.source] = true;
    seen_dst[demand.destination] = true;
  }
  return true;
}

std::uint32_t max_demands_per_source(const Workload& w, std::uint32_t m) {
  std::vector<std::uint32_t> count(m, 0);
  std::uint32_t best = 0;
  for (const auto& demand : w) best = std::max(best, ++count[demand.source]);
  return best;
}

std::uint32_t max_demands_per_destination(const Workload& w, std::uint32_t m) {
  std::vector<std::uint32_t> count(m, 0);
  std::uint32_t best = 0;
  for (const auto& demand : w) {
    best = std::max(best, ++count[demand.destination]);
  }
  return best;
}

}  // namespace levnet::sim
