#pragma once
// TrafficHandler: the engine's callback surface.
//
// The engine owns time, link queues and the one-packet-per-link-per-step
// capacity rule; everything problem-specific (where a packet goes next,
// when it is delivered, CRCW combining, reply generation at memory modules)
// lives behind this interface. on_packet may emit zero forwards (the packet
// is consumed), one (normal forwarding) or several (reply fan-out along a
// combining tree, Theorem 2.6); each forward carries its own route_state so
// tree branches can be retraced independently.

#include <cstdint>
#include <vector>

#include "sim/packet.hpp"
#include "support/rng.hpp"

namespace levnet::sim {

/// One outgoing copy of a landing packet.
struct Forward {
  NodeId to;
  std::uint32_t route_state;
};

class TrafficHandler {
 public:
  virtual ~TrafficHandler() = default;

  /// Packet `p` landed on node `at` at time `step` (either freshly injected,
  /// with p.came_from == kInvalidNode, or after crossing a link from
  /// p.came_from). Append to `out` the forward(s) to emit; leaving `out`
  /// empty consumes the packet.
  virtual void on_packet(Packet& p, NodeId at, std::uint32_t step,
                         support::Rng& rng, std::vector<Forward>& out) = 0;

  /// Priority key for non-FIFO queue disciplines; larger values are served
  /// first ("furthest destination first" returns the remaining distance).
  [[nodiscard]] virtual std::uint32_t priority(const Packet& p,
                                               NodeId at) const {
    (void)p;
    (void)at;
    return 0;
  }

  /// Pure-decision fast path for the engine's sharded landing phase
  /// (EngineConfig::step_threads > 1). Called concurrently from pool
  /// workers, one landing per call with a landing-private `rng` substream,
  /// so an override must not touch any state outside `p` itself. If the
  /// landing is a plain single-forward hop, fill `out` and return true; the
  /// engine commits it (queue push, activation, metrics) in landing order
  /// on the driving thread. Return false to defer — terminal landings,
  /// fan-out, combining, anything impure — in which case `p` and `rng`
  /// must be left untouched: the engine replays the landing through
  /// on_packet with an identical substream. The default defers everything,
  /// which keeps handlers written against on_packet correct (just serial)
  /// under any step_threads.
  [[nodiscard]] virtual bool route_concurrent(Packet& p, NodeId at,
                                              std::uint32_t step,
                                              support::Rng& rng,
                                              Forward& out) const {
    (void)p;
    (void)at;
    (void)step;
    (void)rng;
    (void)out;
    return false;
  }

  /// True when route_concurrent can decide at least some landings; the
  /// engine skips the parallel decision phase (and its barrier) entirely
  /// for handlers that would defer every landing anyway.
  [[nodiscard]] virtual bool route_concurrent_capable() const { return false; }

  /// Degraded-mode hook, called only when the graph carries a fault
  /// overlay (topology::Graph::has_faults()): a forward for `p` at `at`
  /// targets `blocked`, whose link (or the node itself) is dead. Return a
  /// live replacement next hop — typically a surviving neighbor, after
  /// re-preparing p's route to resume from there — or kInvalidNode to give
  /// up, in which case the engine drops the packet and counts it in
  /// RunMetrics::dropped. The default handler knows no detour and drops.
  [[nodiscard]] virtual NodeId on_fault(Packet& p, NodeId at, NodeId blocked,
                                        support::Rng& rng) {
    (void)p;
    (void)at;
    (void)blocked;
    (void)rng;
    return topology::kInvalidNode;
  }
};

}  // namespace levnet::sim
