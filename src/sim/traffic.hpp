#pragma once
// TrafficHandler: the engine's callback surface.
//
// The engine owns time, link queues and the one-packet-per-link-per-step
// capacity rule; everything problem-specific (where a packet goes next,
// when it is delivered, CRCW combining, reply generation at memory modules)
// lives behind this interface. on_packet may emit zero forwards (the packet
// is consumed), one (normal forwarding) or several (reply fan-out along a
// combining tree, Theorem 2.6); each forward carries its own route_state so
// tree branches can be retraced independently.

#include <cstdint>
#include <vector>

#include "sim/packet.hpp"
#include "support/rng.hpp"

namespace levnet::sim {

/// One outgoing copy of a landing packet.
struct Forward {
  NodeId to;
  std::uint32_t route_state;
};

class TrafficHandler {
 public:
  virtual ~TrafficHandler() = default;

  /// Packet `p` landed on node `at` at time `step` (either freshly injected,
  /// with p.came_from == kInvalidNode, or after crossing a link from
  /// p.came_from). Append to `out` the forward(s) to emit; leaving `out`
  /// empty consumes the packet.
  virtual void on_packet(Packet& p, NodeId at, std::uint32_t step,
                         support::Rng& rng, std::vector<Forward>& out) = 0;

  /// Priority key for non-FIFO queue disciplines; larger values are served
  /// first ("furthest destination first" returns the remaining distance).
  [[nodiscard]] virtual std::uint32_t priority(const Packet& p,
                                               NodeId at) const {
    (void)p;
    (void)at;
    return 0;
  }
};

}  // namespace levnet::sim
