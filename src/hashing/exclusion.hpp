#pragma once
// Survivor remap over a bucket space with an exclusion set — the hashing
// half of degraded-mode emulation.
//
// When memory modules fail, Section 2.1's rehashing rule alone cannot save
// the step: for any useful address-space size every bucket of the
// Karlin-Upfal family is hit, so "resample h until no live address maps to
// a dead module" never terminates by retrying h alone. The practical escape
// hatch (Hanlon-style memory remapping: emulate a large memory on the
// surviving small ones) is to compose h with a deterministic survivor
// remap: live buckets map to themselves, and every dead bucket is
// redirected to a live bucket chosen by a salted SplitMix64 draw. The
// composition remap . h is again a fixed function of the address, so the
// emulator's existing rehash machinery (resample h, keep the remap) still
// applies verbatim, and by construction no address can reach a dead module.
//
// The salted draw spreads each dead bucket's load across survivors
// independently, so the expected extra load per survivor is the dead
// fraction — degraded, not catastrophic (cf. Lemma 2.2's tolerance for
// O(S) overload per module).

#include <cstdint>
#include <vector>

namespace levnet::hashing {

class ExclusionRemap {
 public:
  /// Identity remap (no exclusions).
  ExclusionRemap() = default;

  /// Builds the remap for `live[b] != 0` liveness over live.size() buckets.
  /// At least one bucket must be live. When every bucket is live the remap
  /// stores nothing and stays identity.
  [[nodiscard]] static ExclusionRemap build(
      const std::vector<std::uint8_t>& live, std::uint64_t salt);

  /// Survivor bucket for `bucket` (identity when the bucket is live).
  [[nodiscard]] std::uint32_t operator()(std::uint32_t bucket) const noexcept {
    return table_.empty() ? bucket : table_[bucket];
  }

  [[nodiscard]] bool identity() const noexcept { return table_.empty(); }
  [[nodiscard]] std::uint32_t excluded() const noexcept { return excluded_; }

 private:
  std::vector<std::uint32_t> table_;  // empty == identity
  std::uint32_t excluded_ = 0;
};

}  // namespace levnet::hashing
