#include "hashing/poly_hash.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/modmath.hpp"
#include "support/primes.hpp"

namespace levnet::hashing {

PolynomialHash::PolynomialHash(std::vector<std::uint64_t> coefficients,
                               std::uint64_t prime, std::uint64_t buckets)
    : coefficients_(std::move(coefficients)), prime_(prime), buckets_(buckets) {
  LEVNET_CHECK(!coefficients_.empty());
  LEVNET_CHECK(buckets_ >= 1);
  LEVNET_CHECK(support::is_prime(prime_));
  for (const std::uint64_t a : coefficients_) LEVNET_CHECK(a < prime_);
}

PolynomialHash PolynomialHash::sample(std::uint32_t degree,
                                      std::uint64_t address_space,
                                      std::uint64_t buckets,
                                      support::Rng& rng) {
  LEVNET_CHECK(degree >= 1);
  const std::uint64_t prime =
      support::next_prime(std::max(address_space, buckets + 1));
  std::vector<std::uint64_t> coefficients(degree);
  for (auto& a : coefficients) a = rng.below(prime);
  return PolynomialHash(std::move(coefficients), prime, buckets);
}

std::uint64_t PolynomialHash::operator()(std::uint64_t x) const noexcept {
  const std::uint64_t xm = x % prime_;
  std::uint64_t acc = 0;
  // Horner: a_{S-1} x^{S-1} + ... + a_0, highest coefficient first.
  for (std::size_t i = coefficients_.size(); i-- > 0;) {
    acc = support::add_mod(support::mul_mod(acc, xm, prime_), coefficients_[i],
                           prime_);
  }
  return acc % buckets_;
}

void PolynomialHash::evaluate_batch(const std::uint64_t* keys,
                                    std::size_t count,
                                    std::uint64_t* out) const noexcept {
  constexpr std::size_t kLanes = 8;
  std::size_t k = 0;
  for (; k + kLanes <= count; k += kLanes) {
    std::uint64_t xm[kLanes];
    std::uint64_t acc[kLanes] = {};
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      xm[lane] = keys[k + lane] % prime_;
    }
    // Coefficient-major Horner: one walk of the coefficient array advances
    // all lanes in lockstep. Per lane this performs exactly operator()'s
    // operation sequence, so results match it bit for bit.
    for (std::size_t i = coefficients_.size(); i-- > 0;) {
      const std::uint64_t a = coefficients_[i];
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        acc[lane] = support::add_mod(support::mul_mod(acc[lane], xm[lane], prime_),
                                     a, prime_);
      }
    }
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      out[k + lane] = acc[lane] % buckets_;
    }
  }
  for (; k < count; ++k) out[k] = (*this)(keys[k]);
}

std::uint64_t PolynomialHash::description_bits() const noexcept {
  std::uint64_t bits_per_coeff = 0;
  while ((std::uint64_t{1} << bits_per_coeff) < prime_) ++bits_per_coeff;
  return bits_per_coeff * coefficients_.size();
}

LoadProfile bucket_loads(const PolynomialHash& h, std::uint64_t key_count) {
  LoadProfile profile;
  profile.load.assign(h.buckets(), 0);
  for (std::uint64_t x = 0; x < key_count; ++x) {
    profile.max_load = std::max(profile.max_load, ++profile.load[h(x)]);
  }
  profile.mean_load =
      static_cast<double>(key_count) / static_cast<double>(h.buckets());
  return profile;
}

std::uint32_t max_window_load(const LoadProfile& profile,
                              std::uint32_t window) {
  LEVNET_CHECK(window >= 1);
  const std::size_t buckets = profile.load.size();
  if (buckets == 0) return 0;
  const std::size_t w = std::min<std::size_t>(window, buckets);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < w; ++i) sum += profile.load[i];
  std::uint64_t best = sum;
  for (std::size_t i = w; i < buckets; ++i) {
    sum += profile.load[i];
    sum -= profile.load[i - w];
    best = std::max(best, sum);
  }
  return static_cast<std::uint32_t>(best);
}

}  // namespace levnet::hashing
