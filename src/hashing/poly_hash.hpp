#pragma once
// The Karlin-Upfal polynomial hash family of Section 2.1:
//
//   H = { h(x) = ((sum_{0 <= i < S} a_i x^i) mod P) mod N }
//
// with P prime, P >= M (the PRAM address-space size), coefficients a_i
// drawn from Z_P, and degree S = cL where L is the diameter of the
// emulating network. Lemma 2.2 bounds the probability that a random h in H
// maps more than gamma >= S items of a request set onto one memory module,
// which is what makes O~(l) emulation possible; each h needs only
// O(L log M) bits to describe (Section 2.1's practicality argument).

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace levnet::hashing {

class PolynomialHash {
 public:
  /// Explicit construction; coefficients must lie in [0, prime).
  PolynomialHash(std::vector<std::uint64_t> coefficients, std::uint64_t prime,
                 std::uint64_t buckets);

  /// Draws h uniformly from H with `degree` = S coefficients, prime
  /// P = next_prime(max(address_space, buckets + 1)), and N = `buckets`.
  [[nodiscard]] static PolynomialHash sample(std::uint32_t degree,
                                             std::uint64_t address_space,
                                             std::uint64_t buckets,
                                             support::Rng& rng);

  /// h(x): Horner evaluation mod P, then mod N.
  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const noexcept;

  /// Batched evaluation: out[i] = h(keys[i]) for i in [0, count).
  /// Bit-identical to per-key operator() calls — keys never interact — but
  /// the Horner recurrence runs coefficient-major over lanes of keys, so
  /// the long multiply-mod dependency chains of independent keys overlap
  /// instead of serializing one key at a time (the emulator hashes a whole
  /// PRAM step's addresses in one call).
  void evaluate_batch(const std::uint64_t* keys, std::size_t count,
                      std::uint64_t* out) const noexcept;

  [[nodiscard]] std::uint32_t degree() const noexcept {
    return static_cast<std::uint32_t>(coefficients_.size());
  }
  [[nodiscard]] std::uint64_t prime() const noexcept { return prime_; }
  [[nodiscard]] std::uint64_t buckets() const noexcept { return buckets_; }

  /// Bits needed to broadcast this function (S coefficients of log P bits) —
  /// the O(L log M) description-size claim of Section 2.1.
  [[nodiscard]] std::uint64_t description_bits() const noexcept;

 private:
  std::vector<std::uint64_t> coefficients_;  // a_0 first
  std::uint64_t prime_;
  std::uint64_t buckets_;
};

/// Bucket occupancy profile of a set of keys under a hash function — the
/// measurement behind Lemma 2.2 and Corollaries 3.1-3.3.
struct LoadProfile {
  std::vector<std::uint32_t> load;  // per bucket
  std::uint32_t max_load = 0;
  double mean_load = 0.0;
};

[[nodiscard]] LoadProfile bucket_loads(const PolynomialHash& h,
                                       std::uint64_t key_count);

/// Max total load over any window of `window` consecutive buckets
/// (Corollary 3.3 takes window = log N).
[[nodiscard]] std::uint32_t max_window_load(const LoadProfile& profile,
                                            std::uint32_t window);

}  // namespace levnet::hashing
