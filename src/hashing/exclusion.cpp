#include "hashing/exclusion.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"

namespace levnet::hashing {

ExclusionRemap ExclusionRemap::build(const std::vector<std::uint8_t>& live,
                                     std::uint64_t salt) {
  ExclusionRemap remap;
  std::vector<std::uint32_t> survivors;
  survivors.reserve(live.size());
  for (std::uint32_t b = 0; b < live.size(); ++b) {
    if (live[b] != 0) survivors.push_back(b);
  }
  if (survivors.size() == live.size()) return remap;  // identity
  LEVNET_CHECK_MSG(!survivors.empty(),
                   "every memory module is dead; nothing to remap onto");
  remap.table_.resize(live.size());
  for (std::uint32_t b = 0; b < live.size(); ++b) {
    if (live[b] != 0) {
      remap.table_[b] = b;
      continue;
    }
    ++remap.excluded_;
    // Stateless salted draw: deterministic per (salt, bucket), independent
    // across dead buckets so their load spreads over the survivors.
    std::uint64_t state = salt ^ (0x9e3779b97f4a7c15ULL * (b + 1));
    const std::uint64_t draw = support::splitmix64(state);
    remap.table_[b] =
        survivors[static_cast<std::size_t>(draw % survivors.size())];
  }
  return remap;
}

}  // namespace levnet::hashing
