#include "pram/types.hpp"

#include <algorithm>

namespace levnet::pram {

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kErew:
      return "EREW";
    case Mode::kCrew:
      return "CREW";
    case Mode::kCrcw:
      return "CRCW";
  }
  return "?";
}

const char* to_string(WritePolicy policy) noexcept {
  switch (policy) {
    case WritePolicy::kCommon:
      return "COMMON";
    case WritePolicy::kArbitrary:
      return "ARBITRARY";
    case WritePolicy::kPriority:
      return "PRIORITY";
    case WritePolicy::kSum:
      return "SUM";
    case WritePolicy::kMax:
      return "MAX";
    case WritePolicy::kMin:
      return "MIN";
  }
  return "?";
}

WriteClaim merge_claims(WritePolicy policy, const WriteClaim& a,
                        const WriteClaim& b,
                        bool* common_violation) noexcept {
  const ProcId low_proc = std::min(a.proc, b.proc);
  switch (policy) {
    case WritePolicy::kCommon:
      if (a.value != b.value && common_violation != nullptr) {
        *common_violation = true;
      }
      [[fallthrough]];
    case WritePolicy::kArbitrary:
    case WritePolicy::kPriority:
      // Deterministic tie-break: the lowest processor id wins. For kCommon
      // all values agree in a correct program, so the choice is immaterial.
      return a.proc <= b.proc ? a : b;
    case WritePolicy::kSum:
      return {low_proc, a.value + b.value};
    case WritePolicy::kMax:
      return {low_proc, std::max(a.value, b.value)};
    case WritePolicy::kMin:
      return {low_proc, std::min(a.value, b.value)};
  }
  return a;
}

}  // namespace levnet::pram
