#pragma once
// The PRAM's shared global memory: a sparse map from address to word with
// all cells implicitly zero. Both the reference machine and the network
// emulator operate on this representation (the emulator's hash function
// decides which *module* serves an address, not where the word lives in
// the host process).

#include <cstdint>
#include <unordered_map>

#include "pram/types.hpp"

namespace levnet::pram {

class SharedMemory {
 public:
  [[nodiscard]] Word read(Addr addr) const noexcept {
    const auto it = cells_.find(addr);
    return it == cells_.end() ? Word{0} : it->second;
  }

  void write(Addr addr, Word value) {
    if (value == 0) {
      cells_.erase(addr);  // keep the canonical form: zeros are absent
    } else {
      cells_[addr] = value;
    }
  }

  [[nodiscard]] std::size_t nonzero_cells() const noexcept {
    return cells_.size();
  }

  void clear() noexcept { cells_.clear(); }

  /// Value equality over the whole address space (zeros canonicalized).
  [[nodiscard]] bool operator==(const SharedMemory& other) const {
    return cells_ == other.cells_;
  }

  [[nodiscard]] const std::unordered_map<Addr, Word>& cells() const noexcept {
    return cells_;
  }

 private:
  std::unordered_map<Addr, Word> cells_;
};

}  // namespace levnet::pram
