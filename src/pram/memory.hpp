#pragma once
// The PRAM's shared global memory: a sparse map from address to word with
// all cells implicitly zero. Both the reference machine and the network
// emulator operate on this representation (the emulator's hash function
// decides which *module* serves an address, not where the word lives in
// the host process).

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pram/types.hpp"

namespace levnet::pram {

class SharedMemory {
 public:
  [[nodiscard]] Word read(Addr addr) const noexcept {
    const auto it = cells_.find(addr);
    return it == cells_.end() ? Word{0} : it->second;
  }

  void write(Addr addr, Word value) {
    if (value == 0) {
      cells_.erase(addr);  // keep the canonical form: zeros are absent
    } else {
      cells_[addr] = value;
    }
  }

  [[nodiscard]] std::size_t nonzero_cells() const noexcept {
    return cells_.size();
  }

  void clear() noexcept { cells_.clear(); }

  /// Value equality over the whole address space (zeros canonicalized).
  [[nodiscard]] bool operator==(const SharedMemory& other) const {
    return cells_ == other.cells_;
  }

  /// The raw cell map, for point lookups only. Its iteration order is
  /// unspecified — anything that feeds a report, fingerprint, dump, or
  /// JSON must go through sorted_cells() (`levnet_lint` flags iteration
  /// over this accessor).
  [[nodiscard]] const std::unordered_map<Addr, Word>& cells() const noexcept {
    return cells_;
  }

  /// The nonzero cells in ascending address order: the deterministic
  /// iteration surface for fingerprints, dumps, and report paths.
  [[nodiscard]] std::vector<std::pair<Addr, Word>> sorted_cells() const {
    // levnet-lint: allow(unordered-iteration): the copy is sorted on the
    // next line, which erases the unordered traversal order.
    std::vector<std::pair<Addr, Word>> sorted(cells_.begin(), cells_.end());
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

 private:
  std::unordered_map<Addr, Word> cells_;
};

}  // namespace levnet::pram
