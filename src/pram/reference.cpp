#include "pram/reference.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace levnet::pram {
namespace {

/// Generous safety net against non-terminating programs.
constexpr std::uint32_t kMaxSteps = 1U << 24;

struct PendingRead {
  ProcId proc;
  Addr addr;
};

struct CellActivity {
  std::uint32_t readers = 0;
  std::uint32_t writers = 0;
  WriteClaim claim{};
};

}  // namespace

ReferencePram::Result ReferencePram::run(PramProgram& program,
                                         SharedMemory& memory) const {
  Result result;
  program.init_memory(memory);

  const ProcId procs = program.processor_count();
  std::vector<PendingRead> reads;
  std::unordered_map<Addr, CellActivity> activity;

  for (std::uint32_t step = 0; !program.finished(step); ++step) {
    LEVNET_CHECK_MSG(step < kMaxSteps, "PRAM program did not terminate");
    reads.clear();
    activity.clear();

    for (ProcId p = 0; p < procs; ++p) {
      const MemOp op = program.issue(p, step);
      switch (op.kind) {
        case OpKind::kNone:
          break;
        case OpKind::kRead: {
          ++result.reads;
          reads.push_back({p, op.addr});
          ++activity[op.addr].readers;
          break;
        }
        case OpKind::kWrite: {
          ++result.writes;
          CellActivity& cell = activity[op.addr];
          const WriteClaim claim{p, op.value};
          if (cell.writers == 0) {
            cell.claim = claim;
          } else {
            bool violation = false;
            cell.claim = merge_claims(policy_, cell.claim, claim, &violation);
            if (violation) ++result.common_violations;
          }
          ++cell.writers;
          break;
        }
      }
    }

    // Conflict audit (the EREW/CREW legality conditions of Section 1).
    // levnet-lint: allow(unordered-iteration): sums and a max over the
    // cells — every reduction here is iteration-order independent.
    for (const auto& [addr, cell] : activity) {
      (void)addr;
      if (cell.readers >= 2) ++result.read_conflicts;
      if (cell.writers >= 2) ++result.write_conflicts;
      result.max_concurrency =
          std::max(result.max_concurrency, cell.readers + cell.writers);
    }

    // All reads observe the pre-write state of this step.
    for (const PendingRead& r : reads) {
      program.receive(r.proc, step, memory.read(r.addr));
    }
    // Writes land at the end of the step under the machine policy.
    // levnet-lint: allow(unordered-iteration): one merged claim per
    // distinct address — the writes commute across iteration order.
    for (const auto& [addr, cell] : activity) {
      if (cell.writers > 0) memory.write(addr, cell.claim.value);
    }
    result.steps = step + 1;
  }
  return result;
}

}  // namespace levnet::pram
