#pragma once
// Step-driven PRAM program interface.
//
// A PRAM computation is a sequence of synchronous steps; in each step every
// processor may issue at most one shared-memory operation (Section 1's
// model, Section 3.3's "single instruction" framing). Programs keep their
// per-processor registers internally; the executor (reference machine or
// network emulator) calls issue() for every processor, serves the reads,
// and hands results back through receive() before the next step begins.
// Reads observe the memory as of the start of the step; writes are applied
// at the end of the step under the machine's write policy.

#include <cstdint>
#include <string>

#include "pram/memory.hpp"
#include "pram/types.hpp"

namespace levnet::pram {

class PramProgram {
 public:
  virtual ~PramProgram() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual ProcId processor_count() const = 0;

  /// Size M of the shared address space the program touches; the emulator
  /// sizes its hash family prime from this (Section 2.1: P >= M).
  [[nodiscard]] virtual Addr address_space() const = 0;

  /// Minimal machine the program is legal on, and the write policy its
  /// concurrent writes assume. Executors use these as defaults.
  [[nodiscard]] virtual Mode required_mode() const = 0;
  [[nodiscard]] virtual WritePolicy write_policy() const {
    return WritePolicy::kCommon;
  }

  /// Loads the program's input into shared memory (called once per run on a
  /// fresh memory).
  virtual void init_memory(SharedMemory& memory) const = 0;

  /// True once `step` is past the last step of the program.
  [[nodiscard]] virtual bool finished(std::uint32_t step) const = 0;

  /// The operation processor `proc` performs in `step`.
  [[nodiscard]] virtual MemOp issue(ProcId proc, std::uint32_t step) = 0;

  /// Result delivery for a read issued by `proc` in `step`.
  virtual void receive(ProcId proc, std::uint32_t step, Word value) = 0;

  /// Clears per-processor registers so the same instance can run again
  /// (reference run then emulated run, on separate memories).
  virtual void reset() = 0;

  /// Postcondition check against the final memory; every algorithm in the
  /// library verifies its own output.
  [[nodiscard]] virtual bool validate(const SharedMemory& memory) const = 0;
};

}  // namespace levnet::pram
