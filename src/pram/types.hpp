#pragma once
// PRAM model vocabulary: machine modes (EREW / CREW / CRCW), concurrent-
// write resolution policies, and the per-processor memory operation issued
// in one PRAM step.
//
// The paper emulates the CRCW PRAM (Theorem 2.6) by way of the EREW result
// (Theorem 2.5) plus message combining; the reference executor and the
// network emulator resolve concurrent writes with the same policy code so
// their final memories are bit-identical — the library's core correctness
// oracle.

#include <cstdint>

namespace levnet::pram {

using Word = std::int64_t;
using Addr = std::uint64_t;
using ProcId = std::uint32_t;

enum class Mode : std::uint8_t {
  kErew,  // exclusive read, exclusive write
  kCrew,  // concurrent read, exclusive write
  kCrcw,  // concurrent read, concurrent write
};

/// Resolution rule for concurrent writes to one cell in one step.
enum class WritePolicy : std::uint8_t {
  kCommon,     // all writers must agree; disagreement is a program error
  kArbitrary,  // any single writer wins (deterministically: lowest ProcId)
  kPriority,   // lowest ProcId wins
  kSum,        // cell receives the sum of written values (combining +)
  kMax,        // cell receives the maximum written value
  kMin,        // cell receives the minimum written value
};

[[nodiscard]] const char* to_string(Mode mode) noexcept;
[[nodiscard]] const char* to_string(WritePolicy policy) noexcept;

enum class OpKind : std::uint8_t { kNone, kRead, kWrite };

/// One processor's memory action in one PRAM step.
struct MemOp {
  OpKind kind = OpKind::kNone;
  Addr addr = 0;
  Word value = 0;

  [[nodiscard]] static MemOp none() noexcept { return {}; }
  [[nodiscard]] static MemOp read(Addr addr) noexcept {
    return {OpKind::kRead, addr, 0};
  }
  [[nodiscard]] static MemOp write(Addr addr, Word value) noexcept {
    return {OpKind::kWrite, addr, value};
  }
};

/// A pending write by `proc`; claims for one cell merge associatively under
/// every policy, which is what lets the emulator combine them en route
/// (Theorem 2.6) and still match the reference machine exactly.
struct WriteClaim {
  ProcId proc = 0;
  Word value = 0;
};

/// Merges two claims for the same cell under `policy`. Sets
/// *common_violation (if non-null) when policy is kCommon and the values
/// disagree; the merged result is still well-defined (lowest proc wins) so
/// execution can continue deterministically.
[[nodiscard]] WriteClaim merge_claims(WritePolicy policy, const WriteClaim& a,
                                      const WriteClaim& b,
                                      bool* common_violation) noexcept;

}  // namespace levnet::pram
