#pragma once
// Reference PRAM executor: runs a PramProgram directly against shared
// memory with unit-time access — the ideal machine of Section 1 that the
// network emulators are measured against. It also audits access conflicts,
// so EREW/CREW programs can be certified conflict-free before their
// emulation cost is interpreted (a CRCW access pattern on an EREW emulator
// would not enjoy Theorem 2.5's bound).

#include <cstdint>

#include "pram/memory.hpp"
#include "pram/program.hpp"
#include "pram/types.hpp"

namespace levnet::pram {

class ReferencePram {
 public:
  struct Result {
    std::uint32_t steps = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /// Cells read by more than one processor in one step (illegal in EREW).
    std::uint64_t read_conflicts = 0;
    /// Cells written by more than one processor in one step (illegal in
    /// EREW and CREW).
    std::uint64_t write_conflicts = 0;
    /// kCommon-policy write conflicts with disagreeing values.
    std::uint64_t common_violations = 0;
    /// Max processors touching one cell in one step (read or write side).
    std::uint32_t max_concurrency = 1;
  };

  ReferencePram(Mode mode, WritePolicy policy)
      : mode_(mode), policy_(policy) {}

  /// Convenience: executor configured from the program's own requirements.
  static ReferencePram for_program(const PramProgram& program) {
    return ReferencePram(program.required_mode(), program.write_policy());
  }

  /// Runs `program` to completion on `memory` (which it initializes).
  Result run(PramProgram& program, SharedMemory& memory) const;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] WritePolicy policy() const noexcept { return policy_; }

 private:
  Mode mode_;
  WritePolicy policy_;
};

}  // namespace levnet::pram
