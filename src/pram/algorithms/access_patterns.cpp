#include "pram/algorithms/access_patterns.hpp"

#include "support/check.hpp"

namespace levnet::pram {

PermutationTraffic::PermutationTraffic(ProcId n, std::uint32_t pram_steps,
                                       std::uint64_t seed)
    : n_(n), steps_(pram_steps) {
  LEVNET_CHECK(n >= 1);
  support::Rng rng(seed);
  perms_.reserve(steps_);
  for (std::uint32_t t = 0; t < steps_; ++t) {
    perms_.push_back(support::random_permutation(n_, rng));
  }
}

void PermutationTraffic::init_memory(SharedMemory& memory) const {
  // Cell i holds i + 1 so every read returns a nonzero, position-specific
  // value; validate() recomputes the expected checksum from the contents.
  for (ProcId i = 0; i < n_; ++i) {
    memory.write(i, static_cast<Word>(i) + 1);
  }
}

MemOp PermutationTraffic::issue(ProcId proc, std::uint32_t step) {
  return MemOp::read(perms_[step][proc]);
}

void PermutationTraffic::receive(ProcId proc, std::uint32_t step, Word value) {
  (void)proc;
  (void)step;
  checksum_ += static_cast<std::uint64_t>(value);
}

bool PermutationTraffic::validate(const SharedMemory& memory) const {
  (void)memory;
  // Each step reads every cell exactly once: the checksum over all steps is
  // steps * sum(1..n). (reset() is a no-op, so compare against the total
  // across however many runs have accumulated — callers snapshot.)
  const std::uint64_t per_step =
      static_cast<std::uint64_t>(n_) * (static_cast<std::uint64_t>(n_) + 1) / 2;
  return checksum_ % per_step == 0;
}

RandomTraffic::RandomTraffic(ProcId n, std::uint32_t pram_steps,
                             std::uint64_t seed)
    : n_(n), steps_(pram_steps), seed_(seed), rng_(seed) {
  LEVNET_CHECK(n >= 1);
}

void RandomTraffic::init_memory(SharedMemory& memory) const {
  for (ProcId i = 0; i < n_; ++i) {
    memory.write(i, static_cast<Word>(i) + 1);
  }
}

MemOp RandomTraffic::issue(ProcId proc, std::uint32_t step) {
  (void)proc;
  (void)step;
  return MemOp::read(rng_.below(n_));
}

void RandomTraffic::receive(ProcId proc, std::uint32_t step, Word value) {
  (void)proc;
  (void)step;
  (void)value;
}

bool RandomTraffic::validate(const SharedMemory& memory) const {
  (void)memory;
  return true;
}

HotSpotReadTraffic::HotSpotReadTraffic(ProcId n, std::uint32_t pram_steps,
                                       Word sentinel)
    : n_(n), steps_(pram_steps), sentinel_(sentinel) {
  LEVNET_CHECK(n >= 1);
}

void HotSpotReadTraffic::init_memory(SharedMemory& memory) const {
  memory.write(0, sentinel_);
}

MemOp HotSpotReadTraffic::issue(ProcId proc, std::uint32_t step) {
  (void)proc;
  (void)step;
  return MemOp::read(0);
}

void HotSpotReadTraffic::receive(ProcId proc, std::uint32_t step, Word value) {
  (void)proc;
  (void)step;
  if (value != sentinel_) ++mismatches_;
}

bool HotSpotReadTraffic::validate(const SharedMemory& memory) const {
  return mismatches_ == 0 && memory.read(0) == sentinel_;
}

HotSpotWriteTraffic::HotSpotWriteTraffic(ProcId n, std::uint32_t pram_steps)
    : n_(n), steps_(pram_steps) {
  LEVNET_CHECK(n >= 1);
}

MemOp HotSpotWriteTraffic::issue(ProcId proc, std::uint32_t step) {
  (void)proc;
  (void)step;
  return MemOp::write(0, 1);
}

void HotSpotWriteTraffic::receive(ProcId proc, std::uint32_t step, Word value) {
  (void)proc;
  (void)step;
  (void)value;
}

bool HotSpotWriteTraffic::validate(const SharedMemory& memory) const {
  if (steps_ == 0) return memory.read(0) == 0;
  return memory.read(0) == static_cast<Word>(n_);
}

}  // namespace levnet::pram
