#pragma once
// Broadcast: the canonical EREW-vs-CRCW contrast program.
//
// BroadcastCrew reads one cell concurrently (2 steps; legal on CREW/CRCW);
// BroadcastErew doubles the set of informed cells each round
// (2*ceil(log2 n) steps with exclusive accesses only). Running both through
// the emulator demonstrates how concurrent reads lean on the combining
// machinery of Theorem 2.6.

#include <string>
#include <vector>

#include "pram/program.hpp"

namespace levnet::pram {

class BroadcastErew final : public PramProgram {
 public:
  BroadcastErew(ProcId n, Word value);

  [[nodiscard]] std::string name() const override { return "broadcast-erew"; }
  [[nodiscard]] ProcId processor_count() const override { return n_; }
  [[nodiscard]] Addr address_space() const override { return n_; }
  [[nodiscard]] Mode required_mode() const override { return Mode::kErew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  ProcId n_;
  Word value_;
  std::uint32_t rounds_;
  std::vector<Word> incoming_;
};

class BroadcastCrew final : public PramProgram {
 public:
  BroadcastCrew(ProcId n, Word value);

  [[nodiscard]] std::string name() const override { return "broadcast-crew"; }
  [[nodiscard]] ProcId processor_count() const override { return n_; }
  [[nodiscard]] Addr address_space() const override { return n_; }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  ProcId n_;
  Word value_;
  std::vector<Word> incoming_;
};

}  // namespace levnet::pram
