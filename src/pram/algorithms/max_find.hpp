#pragma once
// Maximum finding, three ways:
//  * TournamentMaxErew — binary-tree reduction, 1 + 2*ceil(log2 n) EREW steps;
//  * ConstantMaxCrcw — the classic 5-step CRCW trick with n^2 processors
//    (every pair compared at once, losers knocked out via common writes);
//  * LogicalOrCrcw — 2-step CRCW boolean OR, the textbook example of CRCW
//    constant-time power.
// The CRCW programs are the emulation stress cases for Theorem 2.6: their
// access patterns concentrate reads and writes on few cells.

#include <string>
#include <vector>

#include "pram/program.hpp"

namespace levnet::pram {

class TournamentMaxErew final : public PramProgram {
 public:
  explicit TournamentMaxErew(std::vector<Word> input);

  [[nodiscard]] std::string name() const override { return "max-tournament"; }
  [[nodiscard]] ProcId processor_count() const override {
    return static_cast<ProcId>(input_.size());
  }
  [[nodiscard]] Addr address_space() const override { return input_.size(); }
  [[nodiscard]] Mode required_mode() const override { return Mode::kErew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  std::vector<Word> input_;
  Word expected_;
  std::uint32_t rounds_;
  std::vector<Word> reg_;
  std::vector<Word> incoming_;
};

class ConstantMaxCrcw final : public PramProgram {
 public:
  explicit ConstantMaxCrcw(std::vector<Word> input);

  [[nodiscard]] std::string name() const override { return "max-crcw-const"; }
  [[nodiscard]] ProcId processor_count() const override { return n_ * n_; }
  [[nodiscard]] Addr address_space() const override { return 2 * n_ + 1; }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrcw; }
  [[nodiscard]] WritePolicy write_policy() const override {
    return WritePolicy::kCommon;
  }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  [[nodiscard]] Addr flag_cell(ProcId i) const { return n_ + i; }
  [[nodiscard]] Addr result_cell() const { return 2 * static_cast<Addr>(n_); }

  ProcId n_;
  std::vector<Word> input_;
  Word expected_;
  std::vector<Word> reg_a_;     // a[i] as seen by processor (i, j)
  std::vector<Word> reg_b_;     // a[j]
  std::vector<Word> reg_flag_;  // flag[i] read by (i, 0)
};

class LogicalOrCrcw final : public PramProgram {
 public:
  explicit LogicalOrCrcw(std::vector<Word> input);

  [[nodiscard]] std::string name() const override { return "logical-or-crcw"; }
  [[nodiscard]] ProcId processor_count() const override {
    return static_cast<ProcId>(input_.size());
  }
  [[nodiscard]] Addr address_space() const override {
    return input_.size() + 1;
  }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrcw; }
  [[nodiscard]] WritePolicy write_policy() const override {
    return WritePolicy::kCommon;
  }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  std::vector<Word> input_;
  Word expected_;
  std::vector<Word> reg_;
};

}  // namespace levnet::pram
