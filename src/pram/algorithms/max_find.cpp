#include "pram/algorithms/max_find.hpp"

#include <algorithm>

#include "support/bits.hpp"
#include "support/check.hpp"

namespace levnet::pram {

TournamentMaxErew::TournamentMaxErew(std::vector<Word> input)
    : input_(std::move(input)),
      rounds_(support::ceil_log2(input_.size())) {
  LEVNET_CHECK(!input_.empty());
  expected_ = *std::max_element(input_.begin(), input_.end());
  reset();
}

void TournamentMaxErew::init_memory(SharedMemory& memory) const {
  for (std::size_t i = 0; i < input_.size(); ++i) memory.write(i, input_[i]);
}

bool TournamentMaxErew::finished(std::uint32_t step) const {
  return step >= 1 + 2 * rounds_;
}

MemOp TournamentMaxErew::issue(ProcId proc, std::uint32_t step) {
  if (step == 0) return MemOp::read(proc);
  const std::uint32_t round = (step - 1) / 2;
  const bool read_phase = ((step - 1) % 2) == 0;
  const ProcId stride = ProcId{1} << round;
  const bool active =
      proc % (2 * stride) == 0 && proc + stride < processor_count();
  if (!active) return MemOp::none();
  if (read_phase) return MemOp::read(proc + stride);
  reg_[proc] = std::max(reg_[proc], incoming_[proc]);
  return MemOp::write(proc, reg_[proc]);
}

void TournamentMaxErew::receive(ProcId proc, std::uint32_t step, Word value) {
  if (step == 0) {
    reg_[proc] = value;
  } else {
    incoming_[proc] = value;
  }
}

void TournamentMaxErew::reset() {
  reg_.assign(input_.size(), 0);
  incoming_.assign(input_.size(), 0);
}

bool TournamentMaxErew::validate(const SharedMemory& memory) const {
  return memory.read(0) == expected_;
}

ConstantMaxCrcw::ConstantMaxCrcw(std::vector<Word> input)
    : n_(static_cast<ProcId>(input.size())), input_(std::move(input)) {
  LEVNET_CHECK(n_ >= 1);
  expected_ = *std::max_element(input_.begin(), input_.end());
  reset();
}

void ConstantMaxCrcw::init_memory(SharedMemory& memory) const {
  for (ProcId i = 0; i < n_; ++i) {
    memory.write(i, input_[i]);
    memory.write(flag_cell(i), 1);
  }
}

bool ConstantMaxCrcw::finished(std::uint32_t step) const { return step >= 5; }

MemOp ConstantMaxCrcw::issue(ProcId proc, std::uint32_t step) {
  const ProcId i = proc / n_;
  const ProcId j = proc % n_;
  switch (step) {
    case 0:
      return MemOp::read(i);  // concurrent: column j shares a[i]
    case 1:
      return MemOp::read(j);
    case 2:
      // a[i] loses to a[j]: knock i out. All writers agree on the value 0,
      // so the kCommon policy is satisfied.
      return reg_a_[proc] < reg_b_[proc] ? MemOp::write(flag_cell(i), 0)
                                         : MemOp::none();
    case 3:
      return j == 0 ? MemOp::read(flag_cell(i)) : MemOp::none();
    case 4:
      // Undefeated rows hold the maximum; duplicates write equal values.
      return (j == 0 && reg_flag_[proc] != 0)
                 ? MemOp::write(result_cell(), reg_a_[proc])
                 : MemOp::none();
    default:
      return MemOp::none();
  }
}

void ConstantMaxCrcw::receive(ProcId proc, std::uint32_t step, Word value) {
  switch (step) {
    case 0:
      reg_a_[proc] = value;
      break;
    case 1:
      reg_b_[proc] = value;
      break;
    case 3:
      reg_flag_[proc] = value;
      break;
    default:
      break;
  }
}

void ConstantMaxCrcw::reset() {
  const std::size_t procs = static_cast<std::size_t>(n_) * n_;
  reg_a_.assign(procs, 0);
  reg_b_.assign(procs, 0);
  reg_flag_.assign(procs, 0);
}

bool ConstantMaxCrcw::validate(const SharedMemory& memory) const {
  return memory.read(result_cell()) == expected_;
}

LogicalOrCrcw::LogicalOrCrcw(std::vector<Word> input)
    : input_(std::move(input)) {
  LEVNET_CHECK(!input_.empty());
  expected_ = std::any_of(input_.begin(), input_.end(),
                          [](Word v) { return v != 0; })
                  ? 1
                  : 0;
  reset();
}

void LogicalOrCrcw::init_memory(SharedMemory& memory) const {
  for (std::size_t i = 0; i < input_.size(); ++i) memory.write(i, input_[i]);
}

bool LogicalOrCrcw::finished(std::uint32_t step) const { return step >= 2; }

MemOp LogicalOrCrcw::issue(ProcId proc, std::uint32_t step) {
  if (step == 0) return MemOp::read(proc);
  return reg_[proc] != 0 ? MemOp::write(input_.size(), 1) : MemOp::none();
}

void LogicalOrCrcw::receive(ProcId proc, std::uint32_t step, Word value) {
  (void)step;
  reg_[proc] = value;
}

void LogicalOrCrcw::reset() { reg_.assign(input_.size(), 0); }

bool LogicalOrCrcw::validate(const SharedMemory& memory) const {
  return memory.read(input_.size()) == expected_;
}

}  // namespace levnet::pram
