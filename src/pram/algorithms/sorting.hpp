#pragma once
// Odd-even transposition sort: n phases of disjoint compare-exchanges,
// 4 EREW steps per phase. A long-running exclusive-access program — the
// bulk workload for end-to-end emulation soak tests.

#include <string>
#include <vector>

#include "pram/program.hpp"

namespace levnet::pram {

class OddEvenSortErew final : public PramProgram {
 public:
  explicit OddEvenSortErew(std::vector<Word> input);

  [[nodiscard]] std::string name() const override { return "odd-even-sort"; }
  [[nodiscard]] ProcId processor_count() const override {
    return static_cast<ProcId>(input_.size());
  }
  [[nodiscard]] Addr address_space() const override { return input_.size(); }
  [[nodiscard]] Mode required_mode() const override { return Mode::kErew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  std::vector<Word> input_;
  std::vector<Word> expected_;  // sorted input
  std::vector<Word> reg_left_;
  std::vector<Word> reg_right_;
};

}  // namespace levnet::pram
