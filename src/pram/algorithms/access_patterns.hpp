#pragma once
// Synthetic access-pattern programs for the emulation experiments
// (E6/E7/E9): they do no useful computation, but generate precisely the
// traffic the theorems are stated for.
//
//  * PermutationTraffic — each PRAM step, processor p reads the cell at a
//    fresh random permutation image of p: the canonical EREW step of
//    Theorem 2.5 (|S| = N, all distinct).
//  * RandomTraffic — uniformly random cells (many-one; CREW).
//  * HotSpotReadTraffic — every processor reads cell 0 each step: the
//    worst-case concurrent read that Theorem 2.6's combining flattens.
//  * HotSpotWriteTraffic — every processor adds 1 to cell 0 each step under
//    the SUM policy; the final counter value n*steps doubles as an
//    end-to-end correctness check of combined writes.

#include <string>
#include <vector>

#include "pram/program.hpp"
#include "support/rng.hpp"

namespace levnet::pram {

class PermutationTraffic final : public PramProgram {
 public:
  PermutationTraffic(ProcId n, std::uint32_t pram_steps, std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "perm-traffic"; }
  [[nodiscard]] ProcId processor_count() const override { return n_; }
  [[nodiscard]] Addr address_space() const override { return n_; }
  [[nodiscard]] Mode required_mode() const override { return Mode::kErew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override {
    return step >= steps_;
  }
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override {}
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  ProcId n_;
  std::uint32_t steps_;
  std::vector<std::vector<std::uint32_t>> perms_;  // one permutation per step
  std::uint64_t checksum_ = 0;  // accumulated read values (anti-DCE, audited)
};

class RandomTraffic final : public PramProgram {
 public:
  RandomTraffic(ProcId n, std::uint32_t pram_steps, std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "random-traffic"; }
  [[nodiscard]] ProcId processor_count() const override { return n_; }
  [[nodiscard]] Addr address_space() const override { return n_; }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override {
    return step >= steps_;
  }
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override { rng_.reseed(seed_); }
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  ProcId n_;
  std::uint32_t steps_;
  std::uint64_t seed_;
  support::Rng rng_;
};

class HotSpotReadTraffic final : public PramProgram {
 public:
  HotSpotReadTraffic(ProcId n, std::uint32_t pram_steps, Word sentinel);

  [[nodiscard]] std::string name() const override { return "hotspot-read"; }
  [[nodiscard]] ProcId processor_count() const override { return n_; }
  [[nodiscard]] Addr address_space() const override { return n_; }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrcw; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override {
    return step >= steps_;
  }
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override { mismatches_ = 0; }
  /// Every processor must have read the sentinel in every step.
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  ProcId n_;
  std::uint32_t steps_;
  Word sentinel_;
  std::uint64_t mismatches_ = 0;
};

class HotSpotWriteTraffic final : public PramProgram {
 public:
  HotSpotWriteTraffic(ProcId n, std::uint32_t pram_steps);

  [[nodiscard]] std::string name() const override { return "hotspot-write"; }
  [[nodiscard]] ProcId processor_count() const override { return n_; }
  [[nodiscard]] Addr address_space() const override { return n_; }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrcw; }
  [[nodiscard]] WritePolicy write_policy() const override {
    return WritePolicy::kSum;
  }
  void init_memory(SharedMemory& memory) const override { (void)memory; }
  [[nodiscard]] bool finished(std::uint32_t step) const override {
    return step >= steps_;
  }
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override {}
  /// Cell 0 must equal n: each step's n concurrent writes of 1 combine to
  /// the sum n under the SUM policy (the cell is replaced each step, not
  /// accumulated across steps).
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  ProcId n_;
  std::uint32_t steps_;
};

}  // namespace levnet::pram
