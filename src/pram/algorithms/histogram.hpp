#pragma once
// Histogram via SUM-combining concurrent writes: every processor reads its
// key and increments the key's bucket in one concurrent write step. Skewed
// key distributions turn this into the write-side hot-spot stress for the
// combining network.

#include <string>
#include <vector>

#include "pram/program.hpp"

namespace levnet::pram {

class HistogramCrcwSum final : public PramProgram {
 public:
  /// keys[i] in [0, buckets).
  HistogramCrcwSum(std::vector<Word> keys, std::uint32_t buckets);

  [[nodiscard]] std::string name() const override { return "histogram-crcw"; }
  [[nodiscard]] ProcId processor_count() const override {
    return static_cast<ProcId>(keys_.size());
  }
  [[nodiscard]] Addr address_space() const override {
    return keys_.size() + buckets_;
  }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrcw; }
  [[nodiscard]] WritePolicy write_policy() const override {
    return WritePolicy::kSum;
  }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  [[nodiscard]] Addr bucket_cell(Word key) const {
    return keys_.size() + static_cast<Addr>(key);
  }

  std::vector<Word> keys_;
  std::uint32_t buckets_;
  std::vector<Word> expected_;
  std::vector<Word> reg_;
};

}  // namespace levnet::pram
