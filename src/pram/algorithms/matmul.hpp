#pragma once
// Matrix multiplication with n^3 processors in 3 CRCW steps: processor
// (i, j, k) reads A[i][k] and B[k][j] (concurrently with n-1 others) and
// writes the product into C[i][j] under the SUM combining policy — the
// n-way concurrent write per output cell is exactly the traffic
// Theorem 2.6's combining is built for.

#include <string>
#include <vector>

#include "pram/program.hpp"

namespace levnet::pram {

class MatMulCrcwSum final : public PramProgram {
 public:
  /// a and b are n x n row-major.
  MatMulCrcwSum(std::vector<Word> a, std::vector<Word> b, ProcId n);

  [[nodiscard]] std::string name() const override { return "matmul-crcw-sum"; }
  [[nodiscard]] ProcId processor_count() const override {
    return n_ * n_ * n_;
  }
  [[nodiscard]] Addr address_space() const override {
    return 3 * static_cast<Addr>(n_) * n_;
  }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrcw; }
  [[nodiscard]] WritePolicy write_policy() const override {
    return WritePolicy::kSum;
  }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  [[nodiscard]] Addr a_cell(ProcId i, ProcId k) const { return i * n_ + k; }
  [[nodiscard]] Addr b_cell(ProcId k, ProcId j) const {
    return static_cast<Addr>(n_) * n_ + k * n_ + j;
  }
  [[nodiscard]] Addr c_cell(ProcId i, ProcId j) const {
    return 2 * static_cast<Addr>(n_) * n_ + i * n_ + j;
  }

  ProcId n_;
  std::vector<Word> a_;
  std::vector<Word> b_;
  std::vector<Word> expected_;
  std::vector<Word> reg_a_;
  std::vector<Word> reg_b_;
};

}  // namespace levnet::pram
