#pragma once
// Matrix-vector product y = A x with n^2 processors in 2 + 2*ceil(log2 n)
// CREW steps: processor (i, j) reads A[i][j] (exclusive) and x[j]
// (concurrent with the rest of column j), then row i's processors reduce
// their products by tournament into y[i]. The mixed exclusive/concurrent
// access pattern makes it a good CREW-mode emulation workload between the
// all-exclusive sorting programs and the all-concurrent CRCW stressors.

#include <string>
#include <vector>

#include "pram/program.hpp"

namespace levnet::pram {

class MatVecCrew final : public PramProgram {
 public:
  /// a is n x n row-major, x has n entries.
  MatVecCrew(std::vector<Word> a, std::vector<Word> x, ProcId n);

  [[nodiscard]] std::string name() const override { return "matvec-crew"; }
  [[nodiscard]] ProcId processor_count() const override { return n_ * n_; }
  /// Layout: A in [0, n^2), x in [n^2, n^2+n), scratch/products in
  /// [n^2+n, 2n^2+n), y in [2n^2+n, 2n^2+2n).
  [[nodiscard]] Addr address_space() const override {
    return 2 * static_cast<Addr>(n_) * n_ + 2 * n_;
  }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  [[nodiscard]] Addr a_cell(ProcId i, ProcId j) const { return i * n_ + j; }
  [[nodiscard]] Addr x_cell(ProcId j) const {
    return static_cast<Addr>(n_) * n_ + j;
  }
  [[nodiscard]] Addr product_cell(ProcId i, ProcId j) const {
    return static_cast<Addr>(n_) * n_ + n_ + i * n_ + j;
  }
  [[nodiscard]] Addr y_cell(ProcId i) const {
    return 2 * static_cast<Addr>(n_) * n_ + n_ + i;
  }

  ProcId n_;
  std::vector<Word> a_;
  std::vector<Word> x_;
  std::vector<Word> expected_;
  std::uint32_t rounds_;
  std::vector<Word> reg_a_;
  std::vector<Word> reg_prod_;
  std::vector<Word> incoming_;
};

}  // namespace levnet::pram
