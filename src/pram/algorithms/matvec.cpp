#include "pram/algorithms/matvec.hpp"

#include "support/bits.hpp"
#include "support/check.hpp"

namespace levnet::pram {

MatVecCrew::MatVecCrew(std::vector<Word> a, std::vector<Word> x, ProcId n)
    : n_(n), a_(std::move(a)), x_(std::move(x)),
      rounds_(support::ceil_log2(n)) {
  LEVNET_CHECK(n >= 1);
  LEVNET_CHECK(a_.size() == static_cast<std::size_t>(n) * n);
  LEVNET_CHECK(x_.size() == n);
  expected_.assign(n_, 0);
  for (ProcId i = 0; i < n_; ++i) {
    Word sum = 0;
    for (ProcId j = 0; j < n_; ++j) sum += a_[i * n_ + j] * x_[j];
    expected_[i] = sum;
  }
  reset();
}

void MatVecCrew::init_memory(SharedMemory& memory) const {
  for (ProcId i = 0; i < n_; ++i) {
    for (ProcId j = 0; j < n_; ++j) {
      memory.write(a_cell(i, j), a_[i * n_ + j]);
    }
    memory.write(x_cell(i), x_[i]);
  }
}

bool MatVecCrew::finished(std::uint32_t step) const {
  // read A, read x, write product, 2 per reduction round, final y write.
  return step >= 4 + 2 * rounds_;
}

MemOp MatVecCrew::issue(ProcId proc, std::uint32_t step) {
  const ProcId i = proc / n_;
  const ProcId j = proc % n_;
  if (step == 0) return MemOp::read(a_cell(i, j));
  if (step == 1) return MemOp::read(x_cell(j));  // concurrent down column j
  if (step == 2) return MemOp::write(product_cell(i, j), reg_prod_[proc]);
  const std::uint32_t final_step = 3 + 2 * rounds_;
  if (step < final_step) {
    // Tournament reduction within row i over the product cells.
    const std::uint32_t round = (step - 3) / 2;
    const bool read_phase = ((step - 3) % 2) == 0;
    const ProcId stride = ProcId{1} << round;
    const bool active = j % (2 * stride) == 0 && j + stride < n_;
    if (!active) return MemOp::none();
    if (read_phase) return MemOp::read(product_cell(i, j + stride));
    reg_prod_[proc] += incoming_[proc];
    return MemOp::write(product_cell(i, j), reg_prod_[proc]);
  }
  // Row leader publishes the dot product.
  return j == 0 ? MemOp::write(y_cell(i), reg_prod_[proc]) : MemOp::none();
}

void MatVecCrew::receive(ProcId proc, std::uint32_t step, Word value) {
  if (step == 0) {
    reg_a_[proc] = value;
  } else if (step == 1) {
    reg_prod_[proc] = reg_a_[proc] * value;
  } else {
    incoming_[proc] = value;
  }
}

void MatVecCrew::reset() {
  const std::size_t procs = static_cast<std::size_t>(n_) * n_;
  reg_a_.assign(procs, 0);
  reg_prod_.assign(procs, 0);
  incoming_.assign(procs, 0);
}

bool MatVecCrew::validate(const SharedMemory& memory) const {
  for (ProcId i = 0; i < n_; ++i) {
    if (memory.read(y_cell(i)) != expected_[i]) return false;
  }
  return true;
}

}  // namespace levnet::pram
