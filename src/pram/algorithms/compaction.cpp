#include "pram/algorithms/compaction.hpp"

#include "support/bits.hpp"
#include "support/check.hpp"

namespace levnet::pram {

CompactionErew::CompactionErew(std::vector<Word> values,
                               std::vector<Word> marks)
    : values_(std::move(values)),
      marks_(std::move(marks)),
      rounds_(support::ceil_log2(values_.size())) {
  LEVNET_CHECK(!values_.empty());
  LEVNET_CHECK(values_.size() == marks_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (marks_[i] != 0) expected_.push_back(values_[i]);
  }
  reset();
}

void CompactionErew::init_memory(SharedMemory& memory) const {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    memory.write(scan_cell(i), marks_[i] != 0 ? 1 : 0);
    memory.write(value_cell(i), values_[i]);
  }
}

bool CompactionErew::finished(std::uint32_t step) const {
  // Steps: load scan bit, load value, 2 per prefix round, final scatter.
  return step >= 3 + 2 * rounds_;
}

MemOp CompactionErew::issue(ProcId proc, std::uint32_t step) {
  if (step == 0) return MemOp::read(scan_cell(proc));
  if (step == 1) return MemOp::read(value_cell(proc));
  const std::uint32_t scatter_step = 2 + 2 * rounds_;
  if (step < scatter_step) {
    // Hillis-Steele prefix sum over the mark bits (see prefix_sum.cpp).
    const std::uint32_t round = (step - 2) / 2;
    const bool read_phase = ((step - 2) % 2) == 0;
    const ProcId offset = ProcId{1} << round;
    if (proc < offset) return MemOp::none();
    if (read_phase) return MemOp::read(scan_cell(proc - offset));
    reg_scan_[proc] += incoming_[proc];
    return MemOp::write(scan_cell(proc), reg_scan_[proc]);
  }
  // Scatter: survivor i goes to output slot scan[i] - 1. Slots are distinct
  // (prefix sums of marked positions are strictly increasing), so the write
  // is exclusive.
  if (marks_[proc] == 0) return MemOp::none();
  const auto slot = static_cast<std::uint64_t>(reg_scan_[proc] - 1);
  return MemOp::write(out_cell(slot), reg_value_[proc]);
}

void CompactionErew::receive(ProcId proc, std::uint32_t step, Word value) {
  if (step == 0) {
    reg_scan_[proc] = value;
  } else if (step == 1) {
    reg_value_[proc] = value;
  } else {
    incoming_[proc] = value;
  }
}

void CompactionErew::reset() {
  reg_scan_.assign(values_.size(), 0);
  reg_value_.assign(values_.size(), 0);
  incoming_.assign(values_.size(), 0);
}

bool CompactionErew::validate(const SharedMemory& memory) const {
  for (std::size_t i = 0; i < expected_.size(); ++i) {
    if (memory.read(out_cell(i)) != expected_[i]) return false;
  }
  // Slots past the survivor count must be untouched (zero).
  for (std::size_t i = expected_.size(); i < values_.size(); ++i) {
    if (memory.read(out_cell(i)) != 0) return false;
  }
  return true;
}

}  // namespace levnet::pram
