#include "pram/algorithms/prefix_sum.hpp"

#include "support/bits.hpp"
#include "support/check.hpp"

namespace levnet::pram {

PrefixSumErew::PrefixSumErew(std::vector<Word> input)
    : input_(std::move(input)),
      rounds_(support::ceil_log2(input_.size())) {
  LEVNET_CHECK(!input_.empty());
  expected_.resize(input_.size());
  Word sum = 0;
  for (std::size_t i = 0; i < input_.size(); ++i) {
    sum += input_[i];
    expected_[i] = sum;
  }
  reset();
}

void PrefixSumErew::init_memory(SharedMemory& memory) const {
  for (std::size_t i = 0; i < input_.size(); ++i) {
    memory.write(i, input_[i]);
  }
}

bool PrefixSumErew::finished(std::uint32_t step) const {
  return step >= 1 + 2 * rounds_;
}

MemOp PrefixSumErew::issue(ProcId proc, std::uint32_t step) {
  if (step == 0) return MemOp::read(proc);  // load own cell into the register
  const std::uint32_t round = (step - 1) / 2;
  const bool read_phase = ((step - 1) % 2) == 0;
  const ProcId offset = ProcId{1} << round;
  if (proc < offset) return MemOp::none();
  if (read_phase) return MemOp::read(proc - offset);
  reg_[proc] += incoming_[proc];
  return MemOp::write(proc, reg_[proc]);
}

void PrefixSumErew::receive(ProcId proc, std::uint32_t step, Word value) {
  if (step == 0) {
    reg_[proc] = value;
  } else {
    incoming_[proc] = value;
  }
}

void PrefixSumErew::reset() {
  reg_.assign(input_.size(), 0);
  incoming_.assign(input_.size(), 0);
}

bool PrefixSumErew::validate(const SharedMemory& memory) const {
  for (std::size_t i = 0; i < expected_.size(); ++i) {
    if (memory.read(i) != expected_[i]) return false;
  }
  return true;
}

}  // namespace levnet::pram
