#pragma once
// Stream compaction (array packing): move the marked elements of an array
// to a contiguous prefix, preserving order — the workhorse primitive behind
// PRAM processor reallocation. EREW throughout: a prefix-sum over the mark
// bits computes each survivor's output slot, then one exclusive write
// scatters it. 3 + 2*ceil(log2 n) steps on n processors.

#include <string>
#include <vector>

#include "pram/program.hpp"

namespace levnet::pram {

class CompactionErew final : public PramProgram {
 public:
  /// values[i] survives iff marks[i] != 0.
  CompactionErew(std::vector<Word> values, std::vector<Word> marks);

  [[nodiscard]] std::string name() const override { return "compaction-erew"; }
  [[nodiscard]] ProcId processor_count() const override {
    return static_cast<ProcId>(values_.size());
  }
  /// Layout: marks scratch in [0, n), values in [n, 2n), output in [2n, 3n).
  [[nodiscard]] Addr address_space() const override {
    return 3 * values_.size();
  }
  [[nodiscard]] Mode required_mode() const override { return Mode::kErew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  [[nodiscard]] Addr scan_cell(std::uint64_t i) const { return i; }
  [[nodiscard]] Addr value_cell(std::uint64_t i) const {
    return values_.size() + i;
  }
  [[nodiscard]] Addr out_cell(std::uint64_t i) const {
    return 2 * values_.size() + i;
  }

  std::vector<Word> values_;
  std::vector<Word> marks_;
  std::vector<Word> expected_;  // compacted survivors
  std::uint32_t rounds_;
  std::vector<Word> reg_scan_;   // running inclusive prefix of marks
  std::vector<Word> reg_value_;  // own value
  std::vector<Word> incoming_;
};

}  // namespace levnet::pram
