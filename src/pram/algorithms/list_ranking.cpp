#include "pram/algorithms/list_ranking.hpp"

#include "support/bits.hpp"
#include "support/check.hpp"

namespace levnet::pram {

ListRankingCrew::ListRankingCrew(std::vector<std::uint32_t> successor)
    : successor_(std::move(successor)),
      rounds_(support::ceil_log2(successor_.size())) {
  const std::size_t n = successor_.size();
  LEVNET_CHECK(n >= 1);
  for (const std::uint32_t s : successor_) LEVNET_CHECK(s < n);
  // Expected ranks by walking each node's chain (O(n^2) is fine at test
  // scale; also verifies the input really is a list ending in a tail).
  expected_rank_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t at = static_cast<std::uint32_t>(i);
    std::uint32_t dist = 0;
    while (successor_[at] != at) {
      at = successor_[at];
      ++dist;
      LEVNET_CHECK_MSG(dist <= n, "successor array is not a list");
    }
    expected_rank_[i] = dist;
  }
  reset();
}

void ListRankingCrew::init_memory(SharedMemory& memory) const {
  for (std::size_t i = 0; i < successor_.size(); ++i) {
    memory.write(succ_cell(i), successor_[i]);
    memory.write(rank_cell(i), successor_[i] == i ? 0 : 1);
  }
}

bool ListRankingCrew::finished(std::uint32_t step) const {
  return step >= 2 + 4 * rounds_;
}

MemOp ListRankingCrew::issue(ProcId proc, std::uint32_t step) {
  if (step == 0) return MemOp::read(succ_cell(proc));
  if (step == 1) return MemOp::read(rank_cell(proc));
  const std::uint32_t phase = (step - 2) % 4;
  const auto s = static_cast<std::uint64_t>(reg_succ_[proc]);
  switch (phase) {
    case 0:
      return MemOp::read(rank_cell(s));
    case 1:
      return MemOp::read(succ_cell(s));
    case 2:
      if (s != proc) reg_rank_[proc] += incoming_rank_[proc];
      return MemOp::write(rank_cell(proc), reg_rank_[proc]);
    default:
      if (s != proc) reg_succ_[proc] = incoming_succ_[proc];
      return MemOp::write(succ_cell(proc), reg_succ_[proc]);
  }
}

void ListRankingCrew::receive(ProcId proc, std::uint32_t step, Word value) {
  if (step == 0) {
    reg_succ_[proc] = value;
    return;
  }
  if (step == 1) {
    reg_rank_[proc] = value;
    return;
  }
  const std::uint32_t phase = (step - 2) % 4;
  if (phase == 0) {
    incoming_rank_[proc] = value;
  } else if (phase == 1) {
    incoming_succ_[proc] = value;
  }
}

void ListRankingCrew::reset() {
  const std::size_t n = successor_.size();
  reg_succ_.assign(n, 0);
  reg_rank_.assign(n, 0);
  incoming_rank_.assign(n, 0);
  incoming_succ_.assign(n, 0);
}

bool ListRankingCrew::validate(const SharedMemory& memory) const {
  for (std::size_t i = 0; i < successor_.size(); ++i) {
    if (memory.read(rank_cell(i)) != expected_rank_[i]) return false;
  }
  return true;
}

}  // namespace levnet::pram
