#pragma once
// List ranking by pointer jumping (Wyllie): each node of a linked list
// learns its distance to the tail in ceil(log2 n) jump rounds. Reads of
// rank[succ] and succ[succ] become concurrent as pointers converge, so the
// program needs CREW — a natural exerciser of the emulator's concurrent-
// read handling on an irregular access pattern.

#include <string>
#include <vector>

#include "pram/program.hpp"

namespace levnet::pram {

class ListRankingCrew final : public PramProgram {
 public:
  /// successor[i] is the next node; the tail points to itself.
  explicit ListRankingCrew(std::vector<std::uint32_t> successor);

  [[nodiscard]] std::string name() const override { return "list-ranking"; }
  [[nodiscard]] ProcId processor_count() const override {
    return static_cast<ProcId>(successor_.size());
  }
  [[nodiscard]] Addr address_space() const override {
    return 2 * successor_.size();
  }
  [[nodiscard]] Mode required_mode() const override { return Mode::kCrew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  [[nodiscard]] Addr succ_cell(std::uint64_t i) const { return i; }
  [[nodiscard]] Addr rank_cell(std::uint64_t i) const {
    return successor_.size() + i;
  }

  std::vector<std::uint32_t> successor_;
  std::vector<std::uint32_t> expected_rank_;
  std::uint32_t rounds_;
  std::vector<Word> reg_succ_;
  std::vector<Word> reg_rank_;
  std::vector<Word> incoming_rank_;
  std::vector<Word> incoming_succ_;
};

}  // namespace levnet::pram
