#include "pram/algorithms/broadcast.hpp"

#include <algorithm>

#include "support/bits.hpp"
#include "support/check.hpp"

namespace levnet::pram {

BroadcastErew::BroadcastErew(ProcId n, Word value)
    : n_(n), value_(value), rounds_(support::ceil_log2(n)) {
  LEVNET_CHECK(n >= 1);
  incoming_.assign(n_, 0);
}

void BroadcastErew::init_memory(SharedMemory& memory) const {
  memory.write(0, value_);
}

bool BroadcastErew::finished(std::uint32_t step) const {
  return step >= 2 * rounds_;
}

MemOp BroadcastErew::issue(ProcId proc, std::uint32_t step) {
  const std::uint32_t round = step / 2;
  const bool read_phase = (step % 2) == 0;
  const ProcId lo = ProcId{1} << round;
  const ProcId hi = std::min<ProcId>(lo * 2, n_);
  if (proc < lo || proc >= hi) return MemOp::none();
  if (read_phase) return MemOp::read(proc - lo);
  return MemOp::write(proc, incoming_[proc]);
}

void BroadcastErew::receive(ProcId proc, std::uint32_t step, Word value) {
  (void)step;
  incoming_[proc] = value;
}

void BroadcastErew::reset() { incoming_.assign(n_, 0); }

bool BroadcastErew::validate(const SharedMemory& memory) const {
  for (ProcId i = 0; i < n_; ++i) {
    if (memory.read(i) != value_) return false;
  }
  return true;
}

BroadcastCrew::BroadcastCrew(ProcId n, Word value) : n_(n), value_(value) {
  LEVNET_CHECK(n >= 1);
  incoming_.assign(n_, 0);
}

void BroadcastCrew::init_memory(SharedMemory& memory) const {
  memory.write(0, value_);
}

bool BroadcastCrew::finished(std::uint32_t step) const { return step >= 2; }

MemOp BroadcastCrew::issue(ProcId proc, std::uint32_t step) {
  if (step == 0) return MemOp::read(0);  // all processors, concurrently
  if (proc == 0) return MemOp::none();   // cell 0 already holds the value
  return MemOp::write(proc, incoming_[proc]);
}

void BroadcastCrew::receive(ProcId proc, std::uint32_t step, Word value) {
  (void)step;
  incoming_[proc] = value;
}

void BroadcastCrew::reset() { incoming_.assign(n_, 0); }

bool BroadcastCrew::validate(const SharedMemory& memory) const {
  for (ProcId i = 0; i < n_; ++i) {
    if (memory.read(i) != value_) return false;
  }
  return true;
}

}  // namespace levnet::pram
