#include "pram/algorithms/histogram.hpp"

#include "support/check.hpp"

namespace levnet::pram {

HistogramCrcwSum::HistogramCrcwSum(std::vector<Word> keys,
                                   std::uint32_t buckets)
    : keys_(std::move(keys)), buckets_(buckets) {
  LEVNET_CHECK(!keys_.empty());
  LEVNET_CHECK(buckets_ >= 1);
  expected_.assign(buckets_, 0);
  for (const Word key : keys_) {
    LEVNET_CHECK(key >= 0 && key < static_cast<Word>(buckets_));
    ++expected_[static_cast<std::size_t>(key)];
  }
  reset();
}

void HistogramCrcwSum::init_memory(SharedMemory& memory) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) memory.write(i, keys_[i]);
}

bool HistogramCrcwSum::finished(std::uint32_t step) const { return step >= 2; }

MemOp HistogramCrcwSum::issue(ProcId proc, std::uint32_t step) {
  if (step == 0) return MemOp::read(proc);
  return MemOp::write(bucket_cell(reg_[proc]), 1);
}

void HistogramCrcwSum::receive(ProcId proc, std::uint32_t step, Word value) {
  (void)step;
  reg_[proc] = value;
}

void HistogramCrcwSum::reset() { reg_.assign(keys_.size(), 0); }

bool HistogramCrcwSum::validate(const SharedMemory& memory) const {
  for (std::uint32_t b = 0; b < buckets_; ++b) {
    if (memory.read(bucket_cell(b)) != expected_[b]) return false;
  }
  return true;
}

}  // namespace levnet::pram
