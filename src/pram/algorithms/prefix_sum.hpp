#pragma once
// Inclusive parallel prefix sum by recursive doubling (Hillis-Steele):
// 1 + 2*ceil(log2 n) EREW steps on n processors. The introduction's
// motivating class of PRAM algorithms ("sorting, graph and matrix
// problems") leans on prefix sums throughout.

#include <string>
#include <vector>

#include "pram/program.hpp"

namespace levnet::pram {

class PrefixSumErew final : public PramProgram {
 public:
  explicit PrefixSumErew(std::vector<Word> input);

  [[nodiscard]] std::string name() const override { return "prefix-sum-erew"; }
  [[nodiscard]] ProcId processor_count() const override {
    return static_cast<ProcId>(input_.size());
  }
  [[nodiscard]] Addr address_space() const override { return input_.size(); }
  [[nodiscard]] Mode required_mode() const override { return Mode::kErew; }
  void init_memory(SharedMemory& memory) const override;
  [[nodiscard]] bool finished(std::uint32_t step) const override;
  [[nodiscard]] MemOp issue(ProcId proc, std::uint32_t step) override;
  void receive(ProcId proc, std::uint32_t step, Word value) override;
  void reset() override;
  [[nodiscard]] bool validate(const SharedMemory& memory) const override;

 private:
  std::vector<Word> input_;
  std::vector<Word> expected_;  // inclusive prefix sums
  std::uint32_t rounds_;
  std::vector<Word> reg_;       // running value held by each processor
  std::vector<Word> incoming_;
};

}  // namespace levnet::pram
