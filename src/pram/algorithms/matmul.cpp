#include "pram/algorithms/matmul.hpp"

#include "support/check.hpp"

namespace levnet::pram {

MatMulCrcwSum::MatMulCrcwSum(std::vector<Word> a, std::vector<Word> b,
                             ProcId n)
    : n_(n), a_(std::move(a)), b_(std::move(b)) {
  LEVNET_CHECK(n >= 1);
  LEVNET_CHECK(a_.size() == static_cast<std::size_t>(n) * n);
  LEVNET_CHECK(b_.size() == a_.size());
  expected_.assign(a_.size(), 0);
  for (ProcId i = 0; i < n_; ++i) {
    for (ProcId j = 0; j < n_; ++j) {
      Word sum = 0;
      for (ProcId k = 0; k < n_; ++k) {
        sum += a_[i * n_ + k] * b_[k * n_ + j];
      }
      expected_[i * n_ + j] = sum;
    }
  }
  reset();
}

void MatMulCrcwSum::init_memory(SharedMemory& memory) const {
  for (ProcId i = 0; i < n_; ++i) {
    for (ProcId j = 0; j < n_; ++j) {
      memory.write(a_cell(i, j), a_[i * n_ + j]);
      memory.write(b_cell(i, j), b_[i * n_ + j]);
    }
  }
}

bool MatMulCrcwSum::finished(std::uint32_t step) const { return step >= 3; }

MemOp MatMulCrcwSum::issue(ProcId proc, std::uint32_t step) {
  const ProcId k = proc % n_;
  const ProcId j = (proc / n_) % n_;
  const ProcId i = proc / (n_ * n_);
  switch (step) {
    case 0:
      return MemOp::read(a_cell(i, k));
    case 1:
      return MemOp::read(b_cell(k, j));
    default: {
      const Word product = reg_a_[proc] * reg_b_[proc];
      // Zero contributions still participate in the combined write; skipping
      // them would be an optimization the PRAM program cannot see.
      return MemOp::write(c_cell(i, j), product);
    }
  }
}

void MatMulCrcwSum::receive(ProcId proc, std::uint32_t step, Word value) {
  if (step == 0) {
    reg_a_[proc] = value;
  } else {
    reg_b_[proc] = value;
  }
}

void MatMulCrcwSum::reset() {
  const std::size_t procs = static_cast<std::size_t>(n_) * n_ * n_;
  reg_a_.assign(procs, 0);
  reg_b_.assign(procs, 0);
}

bool MatMulCrcwSum::validate(const SharedMemory& memory) const {
  for (ProcId i = 0; i < n_; ++i) {
    for (ProcId j = 0; j < n_; ++j) {
      if (memory.read(c_cell(i, j)) != expected_[i * n_ + j]) return false;
    }
  }
  return true;
}

}  // namespace levnet::pram
