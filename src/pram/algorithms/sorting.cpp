#include "pram/algorithms/sorting.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace levnet::pram {

OddEvenSortErew::OddEvenSortErew(std::vector<Word> input)
    : input_(std::move(input)) {
  LEVNET_CHECK(!input_.empty());
  expected_ = input_;
  std::sort(expected_.begin(), expected_.end());
  reset();
}

void OddEvenSortErew::init_memory(SharedMemory& memory) const {
  for (std::size_t i = 0; i < input_.size(); ++i) memory.write(i, input_[i]);
}

bool OddEvenSortErew::finished(std::uint32_t step) const {
  return step >= 4 * static_cast<std::uint32_t>(input_.size());
}

MemOp OddEvenSortErew::issue(ProcId proc, std::uint32_t step) {
  const std::uint32_t phase = step / 4;
  const std::uint32_t sub = step % 4;
  // Processor `proc` leads the pair (proc, proc + 1) when its parity
  // matches the phase parity; pairs are disjoint, so all accesses are
  // exclusive.
  const bool leader =
      (proc % 2 == phase % 2) && (proc + 1 < processor_count());
  if (!leader) return MemOp::none();
  switch (sub) {
    case 0:
      return MemOp::read(proc);
    case 1:
      return MemOp::read(proc + 1);
    case 2:
      return MemOp::write(proc, std::min(reg_left_[proc], reg_right_[proc]));
    default:
      return MemOp::write(proc + 1,
                          std::max(reg_left_[proc], reg_right_[proc]));
  }
}

void OddEvenSortErew::receive(ProcId proc, std::uint32_t step, Word value) {
  if (step % 4 == 0) {
    reg_left_[proc] = value;
  } else {
    reg_right_[proc] = value;
  }
}

void OddEvenSortErew::reset() {
  reg_left_.assign(input_.size(), 0);
  reg_right_.assign(input_.size(), 0);
}

bool OddEvenSortErew::validate(const SharedMemory& memory) const {
  for (std::size_t i = 0; i < expected_.size(); ++i) {
    if (memory.read(i) != expected_[i]) return false;
  }
  return true;
}

}  // namespace levnet::pram
