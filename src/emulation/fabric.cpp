#include "emulation/fabric.hpp"

#include "support/check.hpp"

namespace levnet::emulation {

EmulationFabric::EmulationFabric(const topology::Graph& graph,
                                 const routing::Router& router,
                                 std::uint32_t route_scale, std::string name)
    : graph_(&graph),
      router_(&router),
      endpoints_(graph.node_count()),
      route_scale_(route_scale),
      name_(std::move(name)) {
  LEVNET_CHECK(route_scale_ >= 1);
}

EmulationFabric::EmulationFabric(const topology::WrappedButterfly& butterfly,
                                 const routing::Router& router)
    : graph_(&butterfly.graph()),
      router_(&router),
      // Column-0 node ids are exactly [0, rows): the identity endpoint
      // mapping holds because node_id(0, r) == r.
      endpoints_(butterfly.row_count()),
      route_scale_(butterfly.levels()),
      name_(butterfly.name()) {}

}  // namespace levnet::emulation
