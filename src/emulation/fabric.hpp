#pragma once
// EmulationFabric: the binding between an interconnection network and the
// PRAM being emulated — which nodes host processors, which host memory
// modules, and which router carries the request/reply traffic.
//
// For vertex-symmetric physical networks (star graph, shuffle, mesh,
// hypercube) every node is both a processor and a memory module. For the
// wrapped butterfly the endpoints are the column-0 nodes (the paper's
// "first column are processors / last column are memory modules", with the
// wrap identifying the two columns).

#include <cstdint>
#include <string>

#include "routing/router.hpp"
#include "topology/butterfly.hpp"
#include "topology/graph.hpp"

namespace levnet::emulation {

using topology::NodeId;

class EmulationFabric {
 public:
  /// Identity fabric: every node of `graph` is processor i == module i.
  /// `route_scale` is the network's diameter scale L (the l of the
  /// theorems), used for hash degree and rehash budgets.
  EmulationFabric(const topology::Graph& graph, const routing::Router& router,
                  std::uint32_t route_scale, std::string name);

  /// Butterfly fabric: processors/modules are the column-0 nodes.
  EmulationFabric(const topology::WrappedButterfly& butterfly,
                  const routing::Router& router);

  [[nodiscard]] const topology::Graph& graph() const noexcept {
    return *graph_;
  }
  [[nodiscard]] const routing::Router& router() const noexcept {
    return *router_;
  }
  [[nodiscard]] std::uint32_t processors() const noexcept {
    return endpoints_;
  }
  [[nodiscard]] std::uint32_t modules() const noexcept { return endpoints_; }
  [[nodiscard]] std::uint32_t route_scale() const noexcept {
    return route_scale_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] NodeId proc_node(std::uint32_t proc) const noexcept {
    return proc;  // endpoint indices coincide with node ids in both layouts
  }
  [[nodiscard]] NodeId module_node(std::uint32_t module) const noexcept {
    return module;
  }

 private:
  const topology::Graph* graph_;
  const routing::Router* router_;
  std::uint32_t endpoints_;
  std::uint32_t route_scale_;
  std::string name_;
};

}  // namespace levnet::emulation
