#include "emulation/emulator.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "support/check.hpp"

namespace levnet::emulation {

using pram::Addr;
using pram::MemOp;
using pram::OpKind;
using pram::ProcId;
using pram::Word;
using sim::Packet;
using sim::PacketKind;

namespace {
constexpr std::uint32_t kMaxPramSteps = 1U << 24;
}  // namespace

NetworkEmulator::NetworkEmulator(const EmulationFabric& fabric,
                                 EmulatorConfig config)
    : fabric_(fabric), config_(config), rng_(config.seed) {
  LEVNET_CHECK_MSG(config_.faults == nullptr ||
                       &config_.faults->graph() == &fabric.graph(),
                   "fault injector must be bound to the fabric's graph");
}

NetworkEmulator::~NetworkEmulator() = default;

EmulationReport NetworkEmulator::run(pram::PramProgram& program,
                                     pram::SharedMemory& memory) {
  policy_ = program.write_policy();
  program.init_memory(memory);
  memory_ = &memory;

  const ProcId procs = program.processor_count();
  LEVNET_CHECK_MSG(procs <= fabric_.processors(),
                   "program needs more processors than the network has");
  pending_value_.assign(procs, 0);
  pending_read_.assign(procs, 0);
  read_served_.assign(procs, 0);

  faults::FaultInjector* injector = config_.faults;
  if (injector != nullptr) {
    for (const faults::FaultEvent& event : injector->plan().events()) {
      // Killing a processor-hosting node is the explicit kProc axis (with
      // its slot-adoption semantics); a plain kNode event there would die
      // without reassigning the slot. FaultPlan::sample keeps the kinds
      // apart when given the right endpoint count; this guards hand-built
      // plans.
      LEVNET_CHECK_MSG(event.kind != faults::FaultKind::kNode ||
                           event.id >= fabric_.processors(),
                       "node faults must not hit processor-hosting nodes");
      LEVNET_CHECK_MSG(event.kind != faults::FaultKind::kProc ||
                           event.id < fabric_.processors(),
                       "proc faults must name a processor endpoint");
    }
    injector->reset();
    // Static faults (epoch 0) are active before anything runs, so the
    // initial hash draw already composes with the survivor remap.
    injector->advance_to(0);
  }

  const std::uint32_t degree = config_.hash_degree != 0
                                   ? config_.hash_degree
                                   : fabric_.route_scale();
  const std::uint64_t address_space =
      std::max<std::uint64_t>(program.address_space(), 1);
  hash_ = std::make_unique<hashing::PolynomialHash>(
      hashing::PolynomialHash::sample(degree, address_space, fabric_.modules(),
                                      rng_));

  sim::EngineConfig engine_config;
  engine_config.discipline = config_.discipline;
  engine_config.node_buffer_bound = config_.node_buffer_bound;
  engine_config.step_threads = config_.step_threads;
  engine_config.recorder = config_.recorder;
  const std::uint32_t base_budget =
      config_.step_budget_factor != 0
          ? config_.step_budget_factor * fabric_.route_scale()
          : 0;
  engine_config.max_steps = base_budget;
  engine_ = std::make_unique<sim::SyncEngine>(fabric_.graph(), *this,
                                              engine_config);

  EmulationReport report;
  std::vector<MemOp> ops(procs);
  std::uint64_t local_this_step = 0;
  std::uint64_t requests_this_step = 0;
  std::uint64_t replies_this_step = 0;

  bool defeated = false;  // faults ended the run early (complete=false)
  for (std::uint32_t step = 0; !program.finished(step) && !defeated; ++step) {
    LEVNET_CHECK_MSG(step < kMaxPramSteps, "PRAM program did not terminate");
    if (injector != nullptr) {
      // One fault epoch per PRAM step. Module deaths rebuild the survivor
      // remap inside the injector and additionally ride the existing
      // rehash path: a fresh polynomial re-balances the load that the
      // remap just concentrated onto survivors.
      const faults::FaultInjector::Applied applied =
          injector->advance_to(step);
      // Processor deaths need no extra action here: the compound kill
      // already took the co-located module with it (so applied.modules
      // carries the rehash below), and host_node() starts resolving the
      // dead slots to their adopting survivors from this step on.
      if (applied.modules != 0) {
        ++report.fault_rehashes;
        if (config_.recorder != nullptr) {
          config_.recorder->count_rehash_attempt();
        }
        hash_ = std::make_unique<hashing::PolynomialHash>(
            hashing::PolynomialHash::sample(degree, address_space,
                                            fabric_.modules(), rng_));
      }
    }
    for (ProcId p = 0; p < procs; ++p) ops[p] = program.issue(p, step);

    for (std::uint32_t attempt = 0;; ++attempt) {
      if (attempt > config_.max_rehash_attempts) {
        // Under faults this is a scenario outcome (the plan defeated the
        // budget), not a bug: report an incomplete run instead of dying.
        LEVNET_CHECK_MSG(injector != nullptr,
                         "rehash budget exhausted; raise step_budget_factor");
        report.complete = false;
        defeated = true;
        // The defeated attempt's degraded-mode counters still matter —
        // they describe exactly why the plan won.
        report.detour_hops += engine_->metrics().detours;
        report.dropped_packets += engine_->metrics().dropped;
        break;
      }
      // Exponential backoff on the step budget: a freshly drawn hash plus a
      // doubled budget guarantees termination even if the configured budget
      // was below the feasible cost of the step.
      if (base_budget != 0) {
        const std::uint32_t shift = std::min(attempt, 16U);
        engine_->set_max_steps(base_budget << shift);
      }
      engine_->reset();
      claims_.clear();       // O(1): epoch bump, capacity retained
      trails_.clear();
      trail_nodes_.reset();  // arena rewind, not a free
      std::fill(pending_read_.begin(), pending_read_.end(), std::uint8_t{0});
      std::fill(read_served_.begin(), read_served_.end(), std::uint8_t{0});
      combined_this_step_ = 0;
      local_this_step = 0;
      requests_this_step = 0;
      replies_this_step = 0;

      // Batched hashing: one coefficient-major sweep over every address
      // this attempt issues (bit-identical to per-op module_of calls, but
      // the modular Horner chains of independent addresses overlap instead
      // of serializing one op at a time). Re-done per attempt — a rehash
      // replaced the polynomial.
      batch_addrs_.clear();
      for (ProcId p = 0; p < procs; ++p) {
        if (ops[p].kind != OpKind::kNone) batch_addrs_.push_back(ops[p].addr);
      }
      batch_modules_.resize(batch_addrs_.size());
      hash_->evaluate_batch(batch_addrs_.data(), batch_addrs_.size(),
                            batch_modules_.data());
      std::size_t batch_cursor = 0;

      for (ProcId p = 0; p < procs; ++p) {
        const MemOp& op = ops[p];
        if (op.kind == OpKind::kNone) continue;
        const std::uint32_t module =
            remap_of(static_cast<std::uint32_t>(batch_modules_[batch_cursor++]));
        // levnet-lint: endpoint-liveness(remap_of output is live by construction)
        const NodeId module_node = fabric_.module_node(module);
        // Work reassignment: dead slots issue from their adopting survivor.
        const NodeId proc_node = host_node(p);
        if (op.kind == OpKind::kRead) pending_read_[p] = 1;

        if (module_node == proc_node) {
          // The processor owns this module: unit-time local access, no
          // network traffic (reads still observe the pre-step state).
          ++local_this_step;
          if (op.kind == OpKind::kRead) {
            pending_value_[p] = memory.read(op.addr);
            read_served_[p] = 1;
          } else {
            merge_claim(op.addr, {p, op.value});
          }
          continue;
        }

        Packet packet;
        packet.kind = PacketKind::kRequest;
        packet.op = op.kind == OpKind::kRead ? sim::MemOpKind::kRead
                                             : sim::MemOpKind::kWrite;
        packet.addr = op.addr;
        packet.value = op.value;
        packet.proc = p;
        packet.src = proc_node;
        packet.dst = module_node;
        fabric_.router().prepare(packet, rng_);
        ++requests_this_step;
        engine_->inject(std::move(packet), proc_node, rng_);
      }

      // Count replies generated during the run via the handler.
      replies_counter_ = &replies_this_step;
      const bool drained = engine_->run(rng_);
      replies_counter_ = nullptr;
      // The engine's peak and the recorder's virtual clock both cover
      // aborted attempts: the work happened, so the high-water mark counts
      // and traced steps must stay monotone across the retry.
      report.peak_in_flight =
          std::max(report.peak_in_flight, engine_->metrics().peak_in_flight);
      if (config_.recorder != nullptr) {
        config_.recorder->advance_time(engine_->now());
      }
      if (drained) break;
      const sim::RunMetrics& metrics = engine_->metrics();
      if (metrics.deadlocked) {
        // Degraded detour traffic can wedge bounded buffers in patterns
        // the two-phase analysis never produces; under faults that is a
        // defeat outcome like budget exhaustion, not a bug.
        LEVNET_CHECK_MSG(injector != nullptr,
                         "bounded-buffer deadlock during emulation");
        report.complete = false;
        defeated = true;
        report.detour_hops += metrics.detours;
        report.dropped_packets += metrics.dropped;
        break;
      }
      // Over budget: choose a new hash function and re-run the step
      // (Section 2.1's rehashing rule). Memory is untouched mid-step, so
      // the retry is exact.
      ++report.rehashes;
      if (config_.recorder != nullptr) {
        config_.recorder->count_rehash_attempt();
      }
      hash_ = std::make_unique<hashing::PolynomialHash>(
          hashing::PolynomialHash::sample(degree, address_space,
                                          fabric_.modules(), rng_));
    }

    if (defeated) break;

    // Step epilogue: every read must have been answered, writes land under
    // the machine policy, results are delivered.
    for (ProcId p = 0; p < procs; ++p) {
      if (pending_read_[p] != 0 && read_served_[p] == 0) {
        // Only a fault can lose a request (a connectivity-preserving plan
        // never does); fault-free this is a routing bug.
        LEVNET_CHECK_MSG(injector != nullptr,
                         "a read request was never answered");
        report.complete = false;
        defeated = true;
      }
    }
    if (defeated) {
      // Keep the fatal step's detour/drop evidence before bailing out.
      report.detour_hops += engine_->metrics().detours;
      report.dropped_packets += engine_->metrics().dropped;
      break;  // cannot deliver results; stop with partial state
    }
    claims_.for_each([&memory](const Addr& addr, const pram::WriteClaim& claim) {
      memory.write(addr, claim.value);
    });
    for (ProcId p = 0; p < procs; ++p) {
      if (pending_read_[p] != 0) {
        program.receive(p, step, pending_value_[p]);
      }
    }

    const sim::RunMetrics& metrics = engine_->metrics();
    report.pram_steps = step + 1;
    report.network_steps += metrics.steps;
    report.max_step_network = std::max(report.max_step_network, metrics.steps);
    report.step_costs.push_back(metrics.steps);
    report.max_link_queue =
        std::max(report.max_link_queue, metrics.max_link_queue);
    report.max_node_queue =
        std::max(report.max_node_queue, metrics.max_node_queue);
    report.request_packets += requests_this_step;
    report.reply_packets += replies_this_step;
    report.combined_requests += combined_this_step_;
    report.local_ops += local_this_step;
    report.detour_hops += metrics.detours;
    report.dropped_packets += metrics.dropped;
    if (injector != nullptr) {
      // Recovery overhead, slot side: every dead slot this step was extra
      // work some survivor executed on top of its own.
      report.adopted_slot_steps += injector->dead_procs();
    }
    if (metrics.dropped != 0) {
      // A dropped write is silently absent from memory; the run keeps
      // going (degraded completion) but can no longer claim correctness.
      report.complete = false;
    }
  }

  if (report.pram_steps != 0) {
    report.mean_step_network = static_cast<double>(report.network_steps) /
                               static_cast<double>(report.pram_steps);
  }
  if (injector != nullptr) {
    report.dead_links = injector->dead_links();
    report.dead_nodes = injector->dead_nodes();
    report.dead_modules = injector->dead_modules();
    report.dead_procs = injector->dead_procs();
  }
  if (config_.recorder != nullptr) {
    const obs::Recorder& rec = *config_.recorder;
    report.latency_p50 = rec.journey().quantile(0.50);
    report.latency_p95 = rec.journey().quantile(0.95);
    report.latency_p99 = rec.journey().quantile(0.99);
    report.queue_delay_p50 = rec.queue_delay().quantile(0.50);
    report.queue_delay_p95 = rec.queue_delay().quantile(0.95);
    report.queue_delay_p99 = rec.queue_delay().quantile(0.99);
  }
  memory_ = nullptr;
  return report;
}

std::uint32_t NetworkEmulator::module_of(pram::Addr addr) const {
  // remap . h: identity without faults (and bit-identical code path — the
  // injector pointer is the only branch), survivor-redirect under module
  // deaths, so no address can reach a dead module (hashing/exclusion.hpp).
  return remap_of(static_cast<std::uint32_t>((*hash_)(addr)));
}

bool NetworkEmulator::route_concurrent_capable() const {
  // Combining inspects and edits shared queues/trails at every landing —
  // nothing to decide concurrently. Everything else forwards most landings
  // with a pure next_hop.
  return !config_.combining;
}

bool NetworkEmulator::route_concurrent(sim::Packet& p, NodeId at,
                                       std::uint32_t step, support::Rng& rng,
                                       sim::Forward& out) const {
  (void)step;
  if (config_.combining) return false;
  // A landing on its destination is terminal for every router (requests
  // serve at the module, replies deliver), and both branches touch shared
  // per-run state — defer them untouched; the driving thread replays with
  // an identical substream. Everything else is exactly the non-combining
  // on_packet forward: one next_hop against the immutable router.
  if (at == p.dst) return false;
  const NodeId next = fabric_.router().next_hop(p, at, rng);
  // Routers only report "arrived" at p.dst (terminal states are sticky),
  // so this cannot fire; the guard keeps a misbehaving router on the
  // serial diagnostic path instead of committing a half-made decision.
  LEVNET_DCHECK(next != topology::kInvalidNode);
  if (next == topology::kInvalidNode) return false;
  out = sim::Forward{next, p.route_state};
  return true;
}

NodeId NetworkEmulator::on_fault(sim::Packet& p, NodeId at, NodeId blocked,
                                 support::Rng& rng) {
  (void)blocked;
  if (config_.faults == nullptr) return topology::kInvalidNode;
  // Uniformly random surviving out-link of `at` — the degraded analogue of
  // phase 1's random link choice, so repeated detours around one obstacle
  // spread over distinct survivors instead of hammering one.
  const NodeId next = fabric_.graph().random_live_neighbor(at, rng);
  if (next == topology::kInvalidNode) return next;  // cut off: drop
  // Re-aim the journey to resume from the detour target. Position-based
  // routers restart greedily from there; the butterfly router switches to
  // its recovery phase (Router::reroute).
  fabric_.router().reroute(p, next, rng);
  return next;
}

void NetworkEmulator::on_packet(Packet& p, NodeId at, std::uint32_t step,
                                support::Rng& rng,
                                std::vector<sim::Forward>& out) {
  (void)step;
  if (p.kind == PacketKind::kRequest) {
    handle_request(p, at, rng, out);
  } else if (config_.combining) {
    handle_reply_combining(p, at, out);
  } else {
    handle_reply_plain(p, at, rng, out);
  }
}

std::uint32_t NetworkEmulator::priority(const Packet& p, NodeId at) const {
  if (p.kind == PacketKind::kRequest) {
    return fabric_.router().remaining(p, at);
  }
  return 0;
}

void NetworkEmulator::handle_request(Packet& p, NodeId at, support::Rng& rng,
                                     std::vector<sim::Forward>& out) {
  if (config_.combining) {
    // Every read landing leaves a route-back breadcrumb so the eventual
    // reply can retrace the (possibly merged) request tree.
    if (p.op == sim::MemOpKind::kRead) record_trail(p, at);
    if (try_merge_in_queue(p, at)) {
      ++combined_this_step_;
      // Combining runs on the serial landing path only
      // (route_concurrent_capable() is false), so this hook is serial too.
      if (config_.recorder != nullptr) {
        config_.recorder->count_combining_merge();
      }
      return;  // absorbed into a queued same-address request
    }
  }
  const NodeId next = fabric_.router().next_hop(p, at, rng);
  if (next != topology::kInvalidNode) {
    out.push_back(sim::Forward{next, p.route_state});
    return;
  }
  serve_at_module(p, at, rng, out);
}

void NetworkEmulator::serve_at_module(Packet& p, NodeId at, support::Rng& rng,
                                      std::vector<sim::Forward>& out) {
  LEVNET_DCHECK(at == p.dst);
  if (p.op == sim::MemOpKind::kWrite) {
    merge_claim(p.addr, {p.proc, p.value});
    return;  // writes are not acknowledged (Section 2.4)
  }
  // Reads observe the pre-step memory; writes of this step are still
  // pending claims.
  const Word value = memory_->read(p.addr);
  if (replies_counter_ != nullptr) ++*replies_counter_;
  p.kind = PacketKind::kReply;
  p.value = value;
  if (config_.combining) {
    // The reply floods the route-back trail starting at the module itself.
    handle_reply_combining(p, at, out);
    return;
  }
  p.src = at;
  // The reply targets the slot's executor — the adopting survivor when the
  // issuing processor is dead (it sent the request from there too).
  p.dst = host_node(p.proc);
  fabric_.router().prepare(p, rng);
  const NodeId next = fabric_.router().next_hop(p, at, rng);
  if (next == topology::kInvalidNode) {
    deliver_read(p.proc, value);
    return;
  }
  out.push_back(sim::Forward{next, p.route_state});
}

void NetworkEmulator::handle_reply_plain(Packet& p, NodeId at,
                                         support::Rng& rng,
                                         std::vector<sim::Forward>& out) {
  const NodeId next = fabric_.router().next_hop(p, at, rng);
  if (next == topology::kInvalidNode) {
    LEVNET_DCHECK(at == p.dst);
    deliver_read(p.proc, p.value);
    return;
  }
  out.push_back(sim::Forward{next, p.route_state});
}

void NetworkEmulator::handle_reply_combining(Packet& p, NodeId at,
                                             std::vector<sim::Forward>& out) {
  const TrailChain* chain = trails_.find(TrailKey{at, p.addr});
  if (chain == nullptr) return;  // stale flood branch; dies out
  // Walk the arena chain in insertion order — the same order the old
  // per-key vector preserved, and part of the deterministic service order.
  for (std::uint32_t i = chain->head;
       i != support::Arena<TrailNode>::kNullIndex; i = trail_nodes_[i].next) {
    TrailEntry& entry = trail_nodes_[i].entry;
    if (entry.serviced) continue;
    entry.serviced = true;
    if (entry.local) {
      deliver_read(entry.proc, p.value);
    } else {
      out.push_back(sim::Forward{entry.from, 0});
    }
  }
}

bool NetworkEmulator::try_merge_in_queue(Packet& p, NodeId at) {
  const topology::Graph& graph = fabric_.graph();
  const topology::EdgeId begin = graph.out_begin(at);
  const topology::EdgeId end = graph.out_begin(at + 1);
  for (topology::EdgeId e = begin; e < end; ++e) {
    auto& queue = engine_->edge_queue(e);
    for (std::size_t i = 0; i < queue.size(); ++i) {
      // Queues carry pool handles; the merge edits the pooled packet in
      // place, with no copy in or out of the queue.
      Packet& candidate = engine_->packet(queue.at(i));
      if (candidate.kind != PacketKind::kRequest ||
          candidate.addr != p.addr || candidate.op != p.op) {
        continue;
      }
      if (p.op == sim::MemOpKind::kWrite) {
        bool violation = false;
        const pram::WriteClaim merged = pram::merge_claims(
            policy_, {candidate.proc, candidate.value}, {p.proc, p.value},
            &violation);
        candidate.proc = merged.proc;
        candidate.value = merged.value;
      }
      // Reads need no data transfer: p's breadcrumb at this node is already
      // recorded, and the candidate's eventual reply will flood it.
      return true;
    }
  }
  return false;
}

void NetworkEmulator::record_trail(const Packet& p, NodeId at) {
  TrailNode node;
  if (p.came_from == topology::kInvalidNode) {
    node.entry.local = true;
    node.entry.proc = p.proc;
  } else {
    node.entry.from = p.came_from;
  }
  const std::uint32_t index = trail_nodes_.push(node);
  auto [chain, inserted] = trails_.find_or_insert(TrailKey{at, p.addr});
  if (inserted) {
    chain->head = index;
  } else {
    trail_nodes_[chain->tail].next = index;
  }
  chain->tail = index;
}

void NetworkEmulator::merge_claim(Addr addr, pram::WriteClaim claim) {
  auto [slot, inserted] = claims_.find_or_insert(addr);
  if (inserted) {
    *slot = claim;
  } else {
    bool violation = false;
    *slot = pram::merge_claims(policy_, *slot, claim, &violation);
  }
}

void NetworkEmulator::deliver_read(ProcId proc, Word value) {
  LEVNET_DCHECK(proc < pending_read_.size());
  LEVNET_DCHECK(pending_read_[proc] != 0);
  if (read_served_[proc] != 0) return;  // duplicate flood delivery
  read_served_[proc] = 1;
  pending_value_[proc] = value;
}

}  // namespace levnet::emulation
