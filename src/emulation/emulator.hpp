#pragma once
// NetworkEmulator — the paper's contribution, end to end.
//
// One PRAM step is emulated as (Section 2.4, Section 3.3):
//   1. every processor with a memory operation sends a request packet to
//      the memory module h(addr), where h is drawn from the Karlin-Upfal
//      polynomial family (Section 2.1);
//   2. requests are routed by the network's randomized oblivious router
//      (Algorithm 2.1 / 2.2 / 2.3, or the 3-stage mesh algorithm);
//   3. writes deposit a claim at the module, reads trigger a reply routed
//      back to the issuing processor;
//   4. if the step exceeds its time budget, a new hash function is chosen
//      and the step is re-run (the paper's rehashing escape hatch);
//   5. claims are applied under the machine's write policy, read values are
//      delivered, and the next PRAM step begins.
//
// CRCW mode (Theorem 2.6) adds en-route combining: a request landing on a
// node that still queues another request for the same address merges into
// it (writes combine their claims associatively; reads are absorbed), and
// every read landing leaves a route-back trail entry — the paper's "log d
// direction bits" — so one reply fans out along the combining tree to all
// requesters.
//
// The emulator produces exactly the same final memory as ReferencePram for
// any legal program — the library's core correctness oracle — while the
// returned report carries the cost measurements the theorems bound.
//
// Degraded mode (EmulatorConfig::faults): a FaultInjector advances a
// FaultPlan one epoch per PRAM step. Dead links/nodes are routed around by
// detouring through surviving neighbors (Router::reroute keeps any
// oblivious router progressing after a detour); dead memory modules are
// remapped through a survivor remap composed with the hash, and module
// deaths additionally trigger the rehash path. Dead *processors*
// (Chlebus-Gasieniec-Pelc's static processor faults) are handled by work
// reassignment: every program slot keeps issuing and receiving, but a dead
// slot executes at its seed-derived adopting survivor (host_node), so the
// full registry's memory image stays bit-equal to ReferencePram on the
// survivor-visible state. The same final memory is still produced whenever
// the plan keeps the survivor endpoints connected — the theorems' w.h.p.
// machinery degrades gracefully instead of failing — and the report gains
// detour/drop/fault-rehash/adoption observables plus a `complete` flag for
// runs the plan defeated.

#include <cstdint>
#include <memory>
#include <vector>

#include "emulation/fabric.hpp"
#include "faults/injector.hpp"
#include "hashing/poly_hash.hpp"
#include "pram/memory.hpp"
#include "pram/program.hpp"
#include "pram/types.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"
#include "support/arena.hpp"
#include "support/flat_hash.hpp"
#include "support/rng.hpp"

namespace levnet::emulation {

struct EmulatorConfig {
  /// En-route combining + tree replies (CRCW emulation, Theorem 2.6).
  /// Without it, concurrent accesses still execute correctly but serialize
  /// at the module links (the behaviour EREW analysis assumes away).
  bool combining = false;
  /// Hash polynomial degree S; 0 selects S = route_scale (c = 1 in S = cL).
  std::uint32_t hash_degree = 0;
  /// Per-PRAM-step budget = factor * route_scale network steps; exceeding
  /// it triggers a rehash and a retry of the step. 0 disables rehashing.
  std::uint32_t step_budget_factor = 0;
  std::uint32_t max_rehash_attempts = 16;
  sim::QueueDiscipline discipline = sim::QueueDiscipline::kFifo;
  /// Bounded-buffer mode forwarded to the engine (0 = unbounded).
  std::uint32_t node_buffer_bound = 0;
  /// Engine step parallelism (EngineConfig::step_threads): 1 = serial,
  /// 0 = hardware concurrency. Reports and final memories are bit-identical
  /// across values (golden-equivalence suite).
  std::uint32_t step_threads = 1;
  std::uint64_t seed = 0x1991'06ULL;
  /// Degraded-mode emulation: an injector bound to the fabric's graph (the
  /// caller owns graph mutability; see faults/injector.hpp). The emulator
  /// advances the fault plan one epoch per PRAM step, routes around dead
  /// links/nodes via detours, remaps dead memory modules through the
  /// survivor remap (composed with the hash, so the existing rehash path
  /// still applies), and executes dead processors' program slots at their
  /// adopting survivors (FaultInjector::adopt_proc). Node faults must not
  /// touch processor-hosting nodes — killing a processor is the explicit
  /// kProc axis. nullptr (or an injector with an empty plan) is guaranteed
  /// inert: behaviour is bit-identical to the fault-free emulator.
  faults::FaultInjector* faults = nullptr;
  /// Optional observability recorder (src/obs/), forwarded to the engine.
  /// The emulator additionally counts rehashes and combining merges into
  /// it, keeps its virtual clock monotone across rehash attempts, and
  /// folds its latency quantiles into the report. Null (the default) is
  /// byte-inert: reports and memories are bit-identical with or without.
  obs::Recorder* recorder = nullptr;
};

struct EmulationReport {
  std::uint32_t pram_steps = 0;
  /// Sum over PRAM steps of the network steps each took — the emulation
  /// cost the theorems bound by O~(l) per step.
  std::uint64_t network_steps = 0;
  std::uint32_t max_step_network = 0;
  double mean_step_network = 0.0;
  std::uint32_t max_link_queue = 0;
  std::uint32_t max_node_queue = 0;
  std::uint64_t request_packets = 0;
  std::uint64_t reply_packets = 0;
  /// Requests absorbed into a queued same-address request (combining).
  std::uint64_t combined_requests = 0;
  /// Operations served without network traffic (processor == module node).
  std::uint64_t local_ops = 0;
  std::uint32_t rehashes = 0;
  /// Per-PRAM-step network cost (for distribution plots).
  std::vector<std::uint32_t> step_costs;
  /// High-water mark of packets alive in the engine at a step boundary,
  /// across every attempt (maintained unconditionally; no recorder needed).
  std::uint32_t peak_in_flight = 0;
  /// Delivery-latency quantiles in network steps (journey = consumption
  /// step - injection step) and queue-delay quantiles (journey - hops),
  /// filled from the attached obs::Recorder; all zero without one. The
  /// quantile is the inclusive upper bound of its histogram bucket, so
  /// the values are bit-stable across platforms and thread counts.
  std::uint64_t latency_p50 = 0;
  std::uint64_t latency_p95 = 0;
  std::uint64_t latency_p99 = 0;
  std::uint64_t queue_delay_p50 = 0;
  std::uint64_t queue_delay_p95 = 0;
  std::uint64_t queue_delay_p99 = 0;

  // Degraded-mode observables; all zero / true when no faults are
  // configured (the fields exist unconditionally so reports stay uniform).
  /// Hops taken around dead links/nodes via surviving neighbors.
  std::uint64_t detour_hops = 0;
  /// Packets lost to faults with no detour available (0 under a
  /// connectivity-preserving plan).
  std::uint64_t dropped_packets = 0;
  /// Rehashes forced by memory-module deaths (survivor remap rebuilds),
  /// not counted in `rehashes` (which stays budget-triggered only).
  std::uint32_t fault_rehashes = 0;
  /// Rehashes forced by processor deaths are part of fault_rehashes too:
  /// a dead processor kills its co-located module, and that module death
  /// carries the rehash. This counts the recovery overhead on the slot
  /// side: the sum over completed PRAM steps of dead (adopted) program
  /// slots each step — survivor work inflation in slot-steps.
  std::uint64_t adopted_slot_steps = 0;
  /// Final degraded-state snapshot.
  std::uint32_t dead_links = 0;
  std::uint32_t dead_nodes = 0;
  std::uint32_t dead_modules = 0;
  std::uint32_t dead_procs = 0;
  /// False when faults defeated the run: a read went unanswered, packets
  /// dropped, or the rehash budget ran out. Fault-free runs CHECK-fail
  /// instead (a lost request there is a bug, not a scenario).
  bool complete = true;
};

class NetworkEmulator final : public sim::TrafficHandler {
 public:
  NetworkEmulator(const EmulationFabric& fabric, EmulatorConfig config);
  ~NetworkEmulator() override;

  NetworkEmulator(const NetworkEmulator&) = delete;
  NetworkEmulator& operator=(const NetworkEmulator&) = delete;

  /// Runs `program` to completion against `memory` (initializing it), with
  /// the write policy the program declares.
  EmulationReport run(pram::PramProgram& program, pram::SharedMemory& memory);

 private:
  struct TrailKey {
    NodeId node = 0;
    pram::Addr addr = 0;
    bool operator==(const TrailKey&) const = default;
  };
  struct TrailKeyHash {
    std::size_t operator()(const TrailKey& k) const noexcept {
      std::uint64_t state =
          (static_cast<std::uint64_t>(k.node) << 1) ^ (k.addr * 0x9e3779b9ULL);
      return static_cast<std::size_t>(support::splitmix64(state));
    }
  };
  struct AddrHash {
    std::size_t operator()(pram::Addr addr) const noexcept {
      std::uint64_t state = addr;
      return static_cast<std::size_t>(support::splitmix64(state));
    }
  };
  /// Route-back record: when a read reply for this address floods this
  /// node, forward a copy toward `from` (or deliver locally to `proc`).
  struct TrailEntry {
    bool local = false;
    bool serviced = false;
    pram::ProcId proc = 0;
    NodeId from = topology::kInvalidNode;
  };
  /// Trail entries for one (node, addr) key, chained through the step
  /// arena in insertion order (the reply fan-out order is part of the
  /// engine's deterministic service order and must not change).
  struct TrailNode {
    TrailEntry entry;
    std::uint32_t next = support::Arena<TrailNode>::kNullIndex;
  };
  struct TrailChain {
    std::uint32_t head = support::Arena<TrailNode>::kNullIndex;
    std::uint32_t tail = support::Arena<TrailNode>::kNullIndex;
  };

  // sim::TrafficHandler
  void on_packet(sim::Packet& p, NodeId at, std::uint32_t step,
                 support::Rng& rng, std::vector<sim::Forward>& out) override;
  [[nodiscard]] std::uint32_t priority(const sim::Packet& p,
                                       NodeId at) const override;
  /// Sharded landing phase: a mid-route hop (request or plain reply away
  /// from its destination) is a pure next_hop call against the immutable
  /// router, decided concurrently; terminal landings (serve/deliver touch
  /// memory, claims and per-proc arrays) and all combining traffic defer
  /// to on_packet on the driving thread.
  [[nodiscard]] bool route_concurrent(sim::Packet& p, NodeId at,
                                      std::uint32_t step, support::Rng& rng,
                                      sim::Forward& out) const override;
  [[nodiscard]] bool route_concurrent_capable() const override;
  /// Degraded-mode detour: picks a uniformly random surviving out-link of
  /// `at` and re-prepares the packet's route to resume from there
  /// (Router::reroute), so any oblivious router keeps making progress.
  [[nodiscard]] NodeId on_fault(sim::Packet& p, NodeId at, NodeId blocked,
                                support::Rng& rng) override;

  /// h(addr) composed with the survivor remap when faults are active.
  [[nodiscard]] std::uint32_t module_of(pram::Addr addr) const;
  /// The remap half of module_of, for addresses already hashed by the
  /// batched evaluation pass.
  [[nodiscard]] std::uint32_t remap_of(std::uint32_t hashed) const {
    return config_.faults == nullptr ? hashed
                                     : config_.faults->remap_module(hashed);
  }
  /// Network node that executes processor p's program slot: p's own
  /// endpoint while p is alive, its seed-derived adopting survivor once p
  /// is dead (work reassignment). Identity without faults — the injector
  /// pointer is the only branch, so fault-free runs are bit-inert.
  [[nodiscard]] NodeId host_node(pram::ProcId p) const {
    const std::uint32_t executor =
        config_.faults == nullptr
            ? p
            : config_.faults->adopt_proc(static_cast<std::uint32_t>(p));
    // levnet-lint: endpoint-liveness(adopt_proc output is live by construction)
    return fabric_.proc_node(executor);
  }

  void handle_request(sim::Packet& p, NodeId at, support::Rng& rng,
                      std::vector<sim::Forward>& out);
  void handle_reply_plain(sim::Packet& p, NodeId at, support::Rng& rng,
                          std::vector<sim::Forward>& out);
  void handle_reply_combining(sim::Packet& p, NodeId at,
                              std::vector<sim::Forward>& out);

  /// Serves an op arriving at its module: writes merge a claim, reads
  /// return the pre-step value.
  void serve_at_module(sim::Packet& p, NodeId at, support::Rng& rng,
                       std::vector<sim::Forward>& out);

  /// Tries to merge a landing request into a same-address request still
  /// queued at `at`; true if absorbed.
  bool try_merge_in_queue(sim::Packet& p, NodeId at);

  void record_trail(const sim::Packet& p, NodeId at);
  void merge_claim(pram::Addr addr, pram::WriteClaim claim);
  void deliver_read(pram::ProcId proc, pram::Word value);

  const EmulationFabric& fabric_;
  EmulatorConfig config_;
  pram::WritePolicy policy_ = pram::WritePolicy::kCommon;
  support::Rng rng_;
  std::unique_ptr<hashing::PolynomialHash> hash_;
  std::unique_ptr<sim::SyncEngine> engine_;
  const pram::SharedMemory* memory_ = nullptr;  // pre-step state (reads)

  // Per-PRAM-step state, all O(1)-cleared (not freed) between steps and on
  // rehash retries: open-addressed flat tables plus a step-scoped arena
  // instead of node-allocating std::unordered_maps rebuilt every step.
  support::FlatMap<pram::Addr, pram::WriteClaim, AddrHash> claims_;
  support::FlatMap<TrailKey, TrailChain, TrailKeyHash> trails_;
  support::Arena<TrailNode> trail_nodes_;
  std::vector<pram::Word> pending_value_;
  std::vector<std::uint8_t> pending_read_;
  std::vector<std::uint8_t> read_served_;
  /// Scratch for the batched h(addr) pass at injection time (one
  /// coefficient-major sweep per attempt instead of per-op Horner calls);
  /// capacity persists across steps.
  std::vector<std::uint64_t> batch_addrs_;
  std::vector<std::uint64_t> batch_modules_;
  std::uint64_t combined_this_step_ = 0;
  std::uint64_t* replies_counter_ = nullptr;
};

}  // namespace levnet::emulation
