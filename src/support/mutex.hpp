#pragma once
// std::mutex / std::condition_variable wrapped with Clang thread-safety
// capability annotations.
//
// libstdc++'s std::mutex carries no capability attributes, so Clang's
// -Wthread-safety analysis cannot see a std::lock_guard acquire it and
// every LEVNET_GUARDED_BY member would warn on correct code. These thin
// wrappers re-export exactly the subset the library uses — lock/unlock,
// scoped locking, condition waits — with the attributes attached, at zero
// runtime cost. New shared-state code should use these instead of the std
// types so the static analysis keeps covering it.

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace levnet::support {

/// Annotated std::mutex. Prefer MutexLock for scoped holds; lock()/unlock()
/// exist for the rare manual sequence.
class LEVNET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LEVNET_ACQUIRE() { mutex_.lock(); }
  void unlock() LEVNET_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() LEVNET_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  /// The wrapped handle, for CondVar only.
  [[nodiscard]] std::mutex& native_handle() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII scoped hold of a Mutex (the annotated std::unique_lock).
class LEVNET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) LEVNET_ACQUIRE(mutex)
      : lock_(mutex.native_handle()) {}
  ~MutexLock() LEVNET_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The wrapped handle, for CondVar only.
  [[nodiscard]] std::unique_lock<std::mutex>& native_handle() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over Mutex/MutexLock. wait() atomically releases and
/// reacquires the lock; from the static analysis's point of view the
/// capability is held throughout, which matches what the caller's guarded
/// predicate re-check observes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.native_handle()); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace levnet::support
