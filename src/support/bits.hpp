#pragma once
// Small integer helpers shared by the doubling-style PRAM algorithms.

#include <bit>
#include <cstdint>

namespace levnet::support {

/// ceil(log2(x)) for x >= 1; 0 maps to 0.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return static_cast<std::uint32_t>(std::bit_width(x - 1));
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  return x == 0 ? 0 : static_cast<std::uint32_t>(std::bit_width(x) - 1);
}

static_assert(ceil_log2(1) == 0);
static_assert(ceil_log2(2) == 1);
static_assert(ceil_log2(3) == 2);
static_assert(ceil_log2(1024) == 10);
static_assert(floor_log2(1) == 0);
static_assert(floor_log2(1023) == 9);

}  // namespace levnet::support
