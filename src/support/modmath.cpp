// modmath is header-only; this TU exists to give the functions a home in the
// archive and to host the compile-time self-checks below.

#include "support/modmath.hpp"

namespace levnet::support {
namespace {

static_assert(add_mod(5, 6, 7) == 4);
static_assert(sub_mod(2, 5, 7) == 4);
static_assert(mul_mod(123456789ULL, 987654321ULL, kMersenne61) ==
              123456789ULL * 987654321ULL % kMersenne61);
static_assert(pow_mod(3, 0, 5) == 1);
static_assert(pow_mod(2, 61, kMersenne61) == 1);  // 2^61 = 1 mod (2^61 - 1)
static_assert(mul_mod_m61(kMersenne61 - 1, kMersenne61 - 1) ==
              mul_mod(kMersenne61 - 1, kMersenne61 - 1, kMersenne61));

}  // namespace
}  // namespace levnet::support
