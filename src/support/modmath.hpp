#pragma once
// 64-bit modular arithmetic for the Karlin–Upfal hash family (Section 2.1).
//
// The hash class is H = { h(x) = ((sum a_i x^i) mod P) mod N } with P prime,
// P >= M (the PRAM address-space size). Polynomial evaluation needs fast
// (a * b) mod P for 64-bit operands, which we do through unsigned __int128.

#include <cstdint>

namespace levnet::support {

/// 2^61 - 1, a Mersenne prime large enough for any address space we simulate.
inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// (a + b) mod m, assuming a, b < m < 2^63.
[[nodiscard]] constexpr std::uint64_t add_mod(std::uint64_t a, std::uint64_t b,
                                              std::uint64_t m) noexcept {
  const std::uint64_t s = a + b;
  return s >= m ? s - m : s;
}

/// (a - b) mod m, assuming a, b < m.
[[nodiscard]] constexpr std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b,
                                              std::uint64_t m) noexcept {
  return a >= b ? a - b : a + (m - b);
}

/// (a * b) mod m via 128-bit intermediate; a, b < m < 2^64.
[[nodiscard]] constexpr std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                              std::uint64_t m) noexcept {
  using u128 = unsigned __int128;
  return static_cast<std::uint64_t>(static_cast<u128>(a) * b % m);
}

/// a^e mod m by square-and-multiply.
[[nodiscard]] constexpr std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e,
                                              std::uint64_t m) noexcept {
  std::uint64_t result = 1 % m;
  a %= m;
  while (e != 0) {
    if (e & 1U) result = mul_mod(result, a, m);
    a = mul_mod(a, a, m);
    e >>= 1;
  }
  return result;
}

/// Specialized reduction mod 2^61-1 (branch-light; used in hash hot path).
[[nodiscard]] constexpr std::uint64_t mul_mod_m61(std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  using u128 = unsigned __int128;
  const u128 prod = static_cast<u128>(a) * b;
  std::uint64_t lo = static_cast<std::uint64_t>(prod) & kMersenne61;
  const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t s = lo + hi;
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

}  // namespace levnet::support
