#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace levnet::support {

unsigned ThreadPool::hardware_threads() noexcept {
  return std::max(1U, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? hardware_threads() : threads) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
      // Park the counter at the end so other threads stop picking up work.
      job.next.store(job.count, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
    }
    drain(*job);
    {
      // Updating the done-count under the pool mutex pairs with the
      // caller's predicate re-check, so the final notify cannot be lost
      // between the caller's check and its wait.
      const std::lock_guard<std::mutex> lock(mutex_);
      job->workers_done.fetch_add(1, std::memory_order_acq_rel);
    }
    work_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  LEVNET_CHECK_MSG(static_cast<bool>(fn), "parallel_for needs a callable");
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.count = count;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    LEVNET_CHECK_MSG(job_ == nullptr, "parallel_for is not reentrant");
    job_ = &job;
    ++generation_;
  }
  work_ready_.notify_all();
  drain(job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] {
      return job.workers_done.load(std::memory_order_acquire) ==
             static_cast<unsigned>(workers_.size());
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace levnet::support
