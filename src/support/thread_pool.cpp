#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace levnet::support {

unsigned ThreadPool::hardware_threads() noexcept {
  return std::max(1U, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? hardware_threads() : threads) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      const MutexLock lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
      // Park the counter at the end so other threads stop picking up work.
      job.next.store(job.count, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stopping_ &&
             (job_ == nullptr || generation_ == seen_generation)) {
        work_ready_.wait(lock);
      }
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
    }
    drain(*job);
    {
      // Updating the done-count under the pool mutex pairs with the
      // caller's predicate re-check, so the final notify cannot be lost
      // between the caller's check and its wait.
      const MutexLock lock(mutex_);
      job->workers_done.fetch_add(1, std::memory_order_acq_rel);
    }
    work_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  LEVNET_CHECK_MSG(static_cast<bool>(fn), "parallel_for needs a callable");
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.count = count;
  {
    const MutexLock lock(mutex_);
    LEVNET_CHECK_MSG(job_ == nullptr, "parallel_for is not reentrant");
    job_ = &job;
    ++generation_;
  }
  work_ready_.notify_all();
  drain(job);
  {
    MutexLock lock(mutex_);
    while (job.workers_done.load(std::memory_order_acquire) !=
           static_cast<unsigned>(workers_.size())) {
      work_done_.wait(lock);
    }
    job_ = nullptr;
  }
  // All workers are past this job (acquire-ordered above), so the error
  // slot is stable; the lock still satisfies the static analysis, and a
  // once-per-fan-out acquire is free.
  std::exception_ptr error;
  {
    const MutexLock lock(job.error_mutex);
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace levnet::support
