#pragma once
// Plain-text table printer used by benches and examples to emit the
// paper-style result rows recorded in EXPERIMENTS.md.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace levnet::support {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with fixed precision so diffs across runs stay readable.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(double value, int precision = 2);

  /// Renders with a separator line under the header.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace levnet::support
