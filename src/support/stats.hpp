#pragma once
// Descriptive statistics and linear fits for the experiment harness.
//
// The paper's claims are of the form "steps <= a*n + o(n) w.h.p."; we
// evidence them by collecting step counts over seeds and sizes, then
// reporting summaries and least-squares slopes (the measured constant a).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace levnet::support {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Summarizes a sample (copies + sorts internally; samples are small).
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination; 1.0 means a perfect linear relationship.
  double r_squared = 0.0;
};

[[nodiscard]] LinearFit fit_line(std::span<const double> x,
                                 std::span<const double> y);

/// Convenience: fit with integral x values (sweep sizes).
[[nodiscard]] LinearFit fit_line(std::span<const std::uint64_t> x,
                                 std::span<const double> y);

}  // namespace levnet::support
