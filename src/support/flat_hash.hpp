#pragma once
// Open-addressed hash map with O(1) epoch-stamped clear.
//
// Purpose-built for the emulator's per-PRAM-step tables (write claims,
// combining trails), which node-allocating std::unordered_maps used to
// rebuild from scratch every step. Here keys and values sit in one flat
// power-of-two slot array probed linearly; clear() bumps a generation
// counter instead of touching the slots, so between PRAM steps and rehash
// retries the table is emptied for the cost of one increment while its
// capacity (and therefore steady-state allocation-freedom) persists.
//
// Deliberately minimal: insert-or-find, find, clear, insertion-order
// iteration. No erase — per-step state only ever grows within a step.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/thread_annotations.hpp"

namespace levnet::support {

/// Single-thread-only: per-step emulator state, owned by one engine. Debug
/// builds record the first inserting thread and abort on cross-thread
/// mutation (clear() rebinds); Release builds compile the guard out.
template <typename Key, typename Value, typename Hash>
class LEVNET_CAPABILITY("single-thread FlatMap") FlatMap {
 public:
  explicit FlatMap(std::size_t min_capacity = 16) {
    std::size_t capacity = 16;
    while (capacity < min_capacity) capacity *= 2;
    slots_.resize(capacity);
    entries_.reserve(capacity / 2);
  }

  /// Returns (value slot, inserted) for `key`, creating a default Value on
  /// first sight. The reference is invalidated by the next *successful*
  /// insertion (a lookup that finds an existing key never rehashes).
  std::pair<Value*, bool> find_or_insert(const Key& key) {
    owner_.assert_mutation_thread();
    std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    while (slots_[i].epoch == epoch_) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask;
    }
    // Not present: grow first if this insert would push load past 1/2, so
    // probes stay short and pointers are only invalidated on inserts.
    if ((entries_.size() + 1) * 2 > slots_.size()) {
      grow();
      mask = slots_.size() - 1;
      i = Hash{}(key) & mask;
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
    }
    Slot& slot = slots_[i];
    slot.epoch = epoch_;
    slot.key = key;
    slot.value = Value{};
    entries_.push_back(static_cast<std::uint32_t>(i));
    return {&slot.value, true};
  }

  /// Value for `key`, or nullptr. The pointer is invalidated by insertion.
  [[nodiscard]] Value* find(const Key& key) noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) return nullptr;
      if (slot.key == key) return &slot.value;
      i = (i + 1) & mask;
    }
  }

  /// O(1): invalidates every slot by moving to a fresh epoch. Storage (and
  /// capacity) is retained.
  void clear() noexcept {
    owner_.assert_mutation_thread();
    owner_.rebind();  // quiescent: the next mutating thread takes over
    entries_.clear();
    if (++epoch_ == 0) {  // epoch wrapped: stamp 0 is in the slots again
      for (Slot& slot : slots_) slot.epoch = 0;
      epoch_ = 1;
    }
  }

  /// Visits (key, value&) pairs in insertion order — deterministic, unlike
  /// std::unordered_map iteration.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (const std::uint32_t i : entries_) {
      fn(slots_[i].key, slots_[i].value);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    Key key{};
    Value value{};
    std::uint32_t epoch = 0;  // live iff == map's current epoch
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    std::vector<std::uint32_t> order = std::move(entries_);
    slots_.assign(old.size() * 2, Slot{});
    entries_.clear();
    entries_.reserve(slots_.size() / 2);
    epoch_ = 1;
    const std::size_t mask = slots_.size() - 1;
    for (const std::uint32_t from : order) {  // order only lists live slots
      std::size_t i = Hash{}(old[from].key) & mask;
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
      slots_[i].epoch = epoch_;
      slots_[i].key = old[from].key;
      slots_[i].value = std::move(old[from].value);
      entries_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  std::vector<Slot> slots_;            // size is always a power of two
  std::vector<std::uint32_t> entries_; // live slot indices, insertion order
  std::uint32_t epoch_ = 1;
  [[no_unique_address]] DebugThreadOwner owner_;
};

}  // namespace levnet::support
