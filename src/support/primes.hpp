#pragma once
// Primality testing and prime search.
//
// The hash family requires a prime P >= M (Section 2.1). We find it with a
// deterministic Miller–Rabin test: the witness set {2, 3, 5, 7, 11, 13, 17,
// 19, 23, 29, 31, 37} is known to be exact for all 64-bit integers.

#include <cstdint>

namespace levnet::support {

/// Deterministic Miller–Rabin for 64-bit integers.
[[nodiscard]] bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime >= n. n must leave room below 2^63.
[[nodiscard]] std::uint64_t next_prime(std::uint64_t n) noexcept;

}  // namespace levnet::support
