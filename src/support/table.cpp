#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace levnet::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LEVNET_CHECK(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  LEVNET_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  LEVNET_CHECK_MSG(rows_.back().size() < header_.size(),
                   "more cells than header columns");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << text;
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

}  // namespace levnet::support
