#include "support/primes.hpp"

#include <array>

#include "support/check.hpp"
#include "support/modmath.hpp"

namespace levnet::support {
namespace {

// Exact deterministic witness set for n < 2^64 (Sinclair / Jaeschke).
constexpr std::array<std::uint64_t, 12> kWitnesses = {2,  3,  5,  7,  11, 13,
                                                      17, 19, 23, 29, 31, 37};

[[nodiscard]] bool miller_rabin_round(std::uint64_t n, std::uint64_t a,
                                      std::uint64_t d, int r) noexcept {
  std::uint64_t x = pow_mod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < r; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1U) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : kWitnesses) {
    if (!miller_rabin_round(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  std::uint64_t candidate = n | 1U;  // first odd >= n
  while (!is_prime(candidate)) {
    LEVNET_CHECK_MSG(candidate < (std::uint64_t{1} << 63),
                     "next_prime search out of range");
    candidate += 2;
  }
  return candidate;
}

}  // namespace levnet::support
