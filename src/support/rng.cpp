#include "support/rng.hpp"

#include <numeric>

#include "support/check.hpp"

namespace levnet::support {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire, "Fast Random Integer Generation in an Interval" (2019).
  LEVNET_DCHECK(bound != 0);
  using u128 = unsigned __int128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::uint32_t> random_permutation(std::uint32_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  shuffle(perm, rng);
  return perm;
}

}  // namespace levnet::support
