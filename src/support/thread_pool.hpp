#pragma once
// Fixed-size worker pool for embarrassingly parallel trial fan-out.
//
// The experiment harness repeats independent seeded simulations; the pool
// runs them concurrently while the caller controls aggregation order, so
// results stay bit-identical for 1 thread and N threads. parallel_for hands
// out indices through an atomic counter: the assignment of index to thread
// is scheduling-dependent, but every index runs exactly once and writes
// only its own output slot, which is all determinism requires.
//
// Thread-safety contract (checked by Clang -Wthread-safety in CI): the
// job/generation/stopping handshake state is guarded by mutex_; a Job's
// first-error slot is guarded by its own error_mutex; next/workers_done are
// lock-free atomics. parallel_for is NOT reentrant and must be driven from
// one thread at a time per pool — concurrent fan-outs want one pool each.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace levnet::support {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread;
  /// 0 selects hardware_threads(). A pool of size 1 spawns no workers and
  /// runs everything inline on the caller.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + caller).
  [[nodiscard]] unsigned size() const noexcept { return threads_; }

  /// Runs fn(0) .. fn(count-1), each exactly once, across the workers and
  /// the calling thread; returns when all have finished. The first
  /// exception thrown by any invocation is rethrown here (remaining
  /// indices may be skipped). Not reentrant: one parallel_for at a time.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn)
      LEVNET_EXCLUDES(mutex_);

  /// std::thread::hardware_concurrency with a sane floor of 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> workers_done{0};
    Mutex error_mutex;
    std::exception_ptr error LEVNET_GUARDED_BY(error_mutex);  // first failure
  };

  void worker_loop() LEVNET_EXCLUDES(mutex_);
  void drain(Job& job);

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar work_ready_;
  CondVar work_done_;
  Job* job_ LEVNET_GUARDED_BY(mutex_) = nullptr;  // current job, null if idle
  // Bumped per job so workers wake exactly once per fan-out.
  std::uint64_t generation_ LEVNET_GUARDED_BY(mutex_) = 0;
  bool stopping_ LEVNET_GUARDED_BY(mutex_) = false;
};

}  // namespace levnet::support
