#pragma once
// Fixed-size worker pool for embarrassingly parallel trial fan-out.
//
// The experiment harness repeats independent seeded simulations; the pool
// runs them concurrently while the caller controls aggregation order, so
// results stay bit-identical for 1 thread and N threads. parallel_for hands
// out indices through an atomic counter: the assignment of index to thread
// is scheduling-dependent, but every index runs exactly once and writes
// only its own output slot, which is all determinism requires.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace levnet::support {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread;
  /// 0 selects hardware_threads(). A pool of size 1 spawns no workers and
  /// runs everything inline on the caller.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + caller).
  [[nodiscard]] unsigned size() const noexcept { return threads_; }

  /// Runs fn(0) .. fn(count-1), each exactly once, across the workers and
  /// the calling thread; returns when all have finished. The first
  /// exception thrown by any invocation is rethrown here (remaining
  /// indices may be skipped). Not reentrant: one parallel_for at a time.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a sane floor of 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> workers_done{0};
    std::exception_ptr error;  // first failure, guarded by error_mutex
    std::mutex error_mutex;
  };

  void worker_loop();
  void drain(Job& job);

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Job* job_ = nullptr;          // current job, null when idle
  std::uint64_t generation_ = 0;  // bumped per job so workers wake once each
  bool stopping_ = false;
};

}  // namespace levnet::support
