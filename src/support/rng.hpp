#pragma once
// Deterministic pseudo-random generator for all randomized components.
//
// Every randomized algorithm in the library (two-phase routing, hash family
// sampling, workload generation) draws from an explicitly seeded Rng so that
// runs are reproducible and high-probability claims can be evidenced over
// controlled seed sets. The generator is xoshiro256** seeded via SplitMix64,
// which is fast, passes BigCrush, and is trivially portable.

#include <array>
#include <cstdint>
#include <vector>

namespace levnet::support {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1991'0106'0d5eULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Derives an independent child generator (for parallel substreams).
  [[nodiscard]] Rng split() noexcept { return Rng{(*this)()}; }

  /// Mixes the generator's current position with `salt` into a 64-bit key
  /// WITHOUT advancing the stream. This is the base for families of
  /// per-item substreams (one Rng per landing in the engine's staged step):
  /// distinct salts give independent keys, repeated calls with the same
  /// salt give the same key, and the main stream is left untouched either
  /// way — unlike split(), which consumes a draw.
  [[nodiscard]] std::uint64_t stream_key(std::uint64_t salt) const noexcept {
    std::uint64_t mix = state_[0] ^ rotl(state_[2], 29) ^ salt;
    return splitmix64(mix);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle driven by Rng (std::shuffle's algorithm is not
/// specified cross-stdlib, so we pin ours for reproducibility).
template <typename T>
void shuffle(std::vector<T>& values, Rng& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

/// Returns a uniformly random permutation of {0, .., n-1}.
[[nodiscard]] std::vector<std::uint32_t> random_permutation(std::uint32_t n,
                                                            Rng& rng);

}  // namespace levnet::support
