#pragma once
// Step-scoped typed arena: append-only storage with O(1) reset.
//
// The emulator's per-PRAM-step bookkeeping (combining-trail entries) lives
// here: entries are appended during a step and the whole arena is rewound —
// not freed — between steps and rehash retries, so steady-state steps do no
// heap work. Indices (not pointers) are the stable names for entries; the
// backing vector may move while it grows toward its high-water size.

#include <cstdint>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace levnet::support {

template <typename T>
class Arena {
 public:
  using Index = std::uint32_t;
  static constexpr Index kNullIndex = ~Index{0};

  /// Appends a value and returns its index.
  [[nodiscard]] Index push(T value) {
    LEVNET_CHECK_MSG(used_ < kNullIndex, "arena exhausted");
    if (used_ < items_.size()) {
      items_[used_] = std::move(value);
    } else {
      items_.push_back(std::move(value));
    }
    return used_++;
  }

  [[nodiscard]] T& operator[](Index i) noexcept {
    LEVNET_DCHECK(i < used_);
    return items_[i];
  }
  [[nodiscard]] const T& operator[](Index i) const noexcept {
    LEVNET_DCHECK(i < used_);
    return items_[i];
  }

  /// Rewinds to empty without releasing storage.
  void reset() noexcept { used_ = 0; }

  void reserve(std::size_t capacity) { items_.reserve(capacity); }

  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] bool empty() const noexcept { return used_ == 0; }

 private:
  std::vector<T> items_;
  Index used_ = 0;
};

}  // namespace levnet::support
