#pragma once
// Step-scoped typed arena: append-only storage with O(1) reset.
//
// The emulator's per-PRAM-step bookkeeping (combining-trail entries) lives
// here: entries are appended during a step and the whole arena is rewound —
// not freed — between steps and rehash retries, so steady-state steps do no
// heap work. Indices (not pointers) are the stable names for entries; the
// backing vector may move while it grows toward its high-water size.

#include <cstdint>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/thread_annotations.hpp"

namespace levnet::support {

/// Single-thread-only: step-scoped storage owned by one engine. Debug
/// builds record the first pushing thread and abort on cross-thread
/// mutation (reset() rebinds); Release builds compile the guard out.
template <typename T>
class LEVNET_CAPABILITY("single-thread Arena") Arena {
 public:
  using Index = std::uint32_t;
  static constexpr Index kNullIndex = ~Index{0};

  /// Appends a value and returns its index.
  [[nodiscard]] Index push(T value) {
    owner_.assert_mutation_thread();
    LEVNET_CHECK_MSG(used_ < kNullIndex, "arena exhausted");
    if (used_ < items_.size()) {
      items_[used_] = std::move(value);
    } else {
      items_.push_back(std::move(value));
    }
    return used_++;
  }

  [[nodiscard]] T& operator[](Index i) noexcept {
    LEVNET_DCHECK(i < used_);
    return items_[i];
  }
  [[nodiscard]] const T& operator[](Index i) const noexcept {
    LEVNET_DCHECK(i < used_);
    return items_[i];
  }

  /// Rewinds to empty without releasing storage.
  void reset() noexcept {
    owner_.assert_mutation_thread();
    used_ = 0;
    owner_.rebind();  // quiescent: the next mutating thread takes over
  }

  void reserve(std::size_t capacity) { items_.reserve(capacity); }

  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] bool empty() const noexcept { return used_ == 0; }

 private:
  std::vector<T> items_;
  Index used_ = 0;
  [[no_unique_address]] DebugThreadOwner owner_;
};

}  // namespace levnet::support
