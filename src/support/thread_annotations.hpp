#pragma once
// Portable Clang thread-safety annotations plus the debug owner-thread
// guard for single-thread-only containers.
//
// The emulation stack's concurrency contract is narrow and static: the
// only mutex-protected class is support::ThreadPool, Machine is shared
// across trial threads strictly through const run_seeded(), and the hot
// data-plane containers (ObjectPool, FlatMap, Arena, RingQueue) are
// single-owner by design — one engine, one thread. These macros let Clang's
// -Wthread-safety analysis (wired into CI as a -Werror build) prove the
// first two contracts at compile time; DebugThreadOwner makes violations of
// the third fail fast at runtime in Debug builds, even without TSan.
//
// On GCC and MSVC every LEVNET_* macro expands to nothing, so the
// annotations are free outside the dedicated Clang CI job.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LEVNET_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LEVNET_THREAD_ANNOTATION
#define LEVNET_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (a lock, or a single-owner object
/// whose "capability" is being on the owning thread).
#define LEVNET_CAPABILITY(name) LEVNET_THREAD_ANNOTATION(capability(name))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define LEVNET_SCOPED_CAPABILITY LEVNET_THREAD_ANNOTATION(scoped_lockable)

/// A member that may only be touched while `mutex` is held.
#define LEVNET_GUARDED_BY(mutex) LEVNET_THREAD_ANNOTATION(guarded_by(mutex))

/// A pointer member whose *pointee* is guarded by `mutex`.
#define LEVNET_PT_GUARDED_BY(mutex) \
  LEVNET_THREAD_ANNOTATION(pt_guarded_by(mutex))

/// The function may only be called with the listed capabilities held.
#define LEVNET_REQUIRES(...) \
  LEVNET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function may only be called with the listed capabilities NOT held.
#define LEVNET_EXCLUDES(...) \
  LEVNET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define LEVNET_ACQUIRE(...) \
  LEVNET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define LEVNET_RELEASE(...) \
  LEVNET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `value`.
#define LEVNET_TRY_ACQUIRE(value, ...) \
  LEVNET_THREAD_ANNOTATION(try_acquire_capability(value, __VA_ARGS__))

/// The function returns a reference to the named capability.
#define LEVNET_RETURN_CAPABILITY(x) \
  LEVNET_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions whose locking the analysis cannot follow;
/// use only with a comment explaining why the code is in fact safe.
#define LEVNET_NO_THREAD_SAFETY_ANALYSIS \
  LEVNET_THREAD_ANNOTATION(no_thread_safety_analysis)

#ifndef NDEBUG
#include <atomic>
#include <thread>

#include "support/check.hpp"
#endif

namespace levnet::support {

#ifndef NDEBUG

/// Debug-build guard for single-thread-only containers: records the thread
/// of the first mutation and aborts on a mutation from any other thread.
/// clear()-style resets rebind ownership, so a pooled container may migrate
/// between trial threads as long as every migration happens at a quiescent
/// point. Compiled down to an empty type in Release builds.
class DebugThreadOwner {
 public:
  DebugThreadOwner() = default;
  // Copies and moves start unclaimed: the destination container is a fresh
  // object whose owning thread is whoever mutates it first.
  DebugThreadOwner(const DebugThreadOwner&) noexcept {}
  DebugThreadOwner& operator=(const DebugThreadOwner&) noexcept {
    return *this;
  }

  /// Call from every mutating member. First call claims ownership.
  void assert_mutation_thread() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // "no thread": the unclaimed state
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first use: this thread now owns the container
    }
    LEVNET_CHECK_MSG(expected == self,
                     "single-thread container mutated from a second thread "
                     "(share per-thread instances, or quiesce + clear() "
                     "before handing it over)");
  }

  /// Call from clear()/reset(): the next mutating thread becomes the owner.
  void rebind() const {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::thread::id> owner_{};
};

#else  // NDEBUG

class DebugThreadOwner {
 public:
  void assert_mutation_thread() const noexcept {}
  void rebind() const noexcept {}
};

#endif  // NDEBUG

}  // namespace levnet::support
