#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace levnet::support {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

namespace {

[[nodiscard]] double percentile(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStat rs;
  for (double v : sorted) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile(sorted, 0.5);
  s.p95 = percentile(sorted, 0.95);
  return s;
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  LEVNET_CHECK(x.size() == y.size());
  LinearFit fit;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) {
    fit.intercept = y.empty() ? 0.0 : y[0];
    return fit;
  }
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit fit_line(std::span<const std::uint64_t> x,
                   std::span<const double> y) {
  std::vector<double> xd(x.size());
  std::transform(x.begin(), x.end(), xd.begin(),
                 [](std::uint64_t v) { return static_cast<double>(v); });
  return fit_line(std::span<const double>{xd}, y);
}

}  // namespace levnet::support
