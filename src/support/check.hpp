#pragma once
// Runtime invariant checking used across the library.
//
// LEVNET_CHECK is always on (it guards simulator invariants whose violation
// would silently corrupt an experiment); LEVNET_DCHECK compiles out in
// release builds and is used in hot loops.

#include <string_view>

namespace levnet::support {

/// Aborts with a diagnostic message. Marked noreturn; never returns.
[[noreturn]] void check_failed(std::string_view expr, std::string_view file,
                               int line, std::string_view msg);

}  // namespace levnet::support

#define LEVNET_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr)) [[unlikely]] {                                            \
      ::levnet::support::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                      \
  } while (false)

#define LEVNET_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) [[unlikely]] {                                            \
      ::levnet::support::check_failed(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define LEVNET_DCHECK(expr) \
  do {                      \
  } while (false)
#else
#define LEVNET_DCHECK(expr) LEVNET_CHECK(expr)
#endif
