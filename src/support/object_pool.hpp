#pragma once
// Contiguous object pool addressed by 32-bit handles.
//
// The simulator's data plane keeps every in-flight Packet in one of these
// pools and moves 4-byte handles through the link queues instead of copying
// 56-byte structs (the Graphite-style "packets live in a pool, queues
// shuffle handles" discipline). Slots are recycled through a LIFO free list
// plus a fresh-slot cursor, so after the first drain of a workload the pool
// reaches its high-water capacity and stops touching the heap; clear()
// rewinds the cursor without releasing storage.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/thread_annotations.hpp"

namespace levnet::support {

/// Single-thread-only: one engine owns one pool. Debug builds record the
/// first mutating thread and abort on mutation from any other (clear()
/// rebinds, so a pooled engine may migrate between trials at quiescent
/// points); Release builds compile the guard out.
template <typename T>
class LEVNET_CAPABILITY("single-thread ObjectPool") ObjectPool {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kNullRef = ~Ref{0};

  /// Hands out a slot whose contents are unspecified (a recycled slot keeps
  /// its previous value); the caller must assign before reading. The
  /// returned handle stays valid until release()/clear().
  [[nodiscard]] Ref allocate() {
    owner_.assert_mutation_thread();
    ++live_;
    if (!free_.empty()) {
      const Ref ref = free_.back();
      free_.pop_back();
      return ref;
    }
    if (fresh_ == slots_.size()) {
      LEVNET_CHECK_MSG(slots_.size() < kNullRef, "object pool exhausted");
      // resize rather than emplace_back: identical growth, but it avoids a
      // GCC 12 -Warray-bounds false positive when allocate() is inlined.
      slots_.resize(slots_.size() + 1);
    }
    return fresh_++;
  }

  void release(Ref ref) {
    owner_.assert_mutation_thread();
    LEVNET_DCHECK(ref < fresh_);
    LEVNET_DCHECK(live_ > 0);
    --live_;
    free_.push_back(ref);
  }

  /// Slot access. References are invalidated by allocate() (the backing
  /// vector may grow) — hold handles, not references, across allocations.
  [[nodiscard]] T& get(Ref ref) noexcept {
    LEVNET_DCHECK(ref < fresh_);
    return slots_[ref];
  }
  [[nodiscard]] const T& get(Ref ref) const noexcept {
    LEVNET_DCHECK(ref < fresh_);
    return slots_[ref];
  }

  /// Forgets every live object but keeps the storage, so the next fill of
  /// the pool is allocation-free up to the previous high-water mark.
  void clear() noexcept {
    owner_.assert_mutation_thread();
    free_.clear();
    fresh_ = 0;
    live_ = 0;
    owner_.rebind();  // quiescent: the next mutating thread takes over
  }

  void reserve(std::size_t capacity) {
    slots_.reserve(capacity);
    free_.reserve(capacity);
  }

  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }

 private:
  std::vector<T> slots_;
  std::vector<Ref> free_;
  std::size_t fresh_ = 0;  // next never-yet-handed-out slot since clear()
  std::size_t live_ = 0;
  [[no_unique_address]] DebugThreadOwner owner_;
};

}  // namespace levnet::support
