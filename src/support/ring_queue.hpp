#pragma once
// Growable ring-buffer FIFO used for per-link packet-handle queues.
//
// The simulator allocates one queue per directed link; most stay tiny
// (the paper proves O(1)..O(l) occupancy), so the structure favours a
// small footprint when empty and amortized O(1) push/pop when active.
// Capacity is kept a power of two so every index computation is a mask,
// not a division — these queues sit on the innermost simulation loop.

#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace levnet::support {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push(T value) {
    if (size_ == buffer_.size()) grow();
    buffer_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T& front() {
    LEVNET_DCHECK(!empty());
    return buffer_[head_];
  }

  [[nodiscard]] const T& front() const {
    LEVNET_DCHECK(!empty());
    return buffer_[head_];
  }

  /// Element at FIFO position i (0 = front). Used by priority disciplines
  /// to scan the queue; occupancies are small by the paper's bounds.
  [[nodiscard]] T& at(std::size_t i) {
    LEVNET_DCHECK(i < size_);
    return buffer_[(head_ + i) & mask_];
  }

  [[nodiscard]] const T& at(std::size_t i) const {
    LEVNET_DCHECK(i < size_);
    return buffer_[(head_ + i) & mask_];
  }

  T pop() {
    LEVNET_DCHECK(!empty());
    T value = std::move(buffer_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return value;
  }

  /// Removes and returns the element at FIFO position i, preserving the
  /// relative order of the others (shifts the shorter side).
  T extract(std::size_t i) {
    LEVNET_DCHECK(i < size_);
    if (i == 0) return pop();
    T value = std::move(buffer_[(head_ + i) & mask_]);
    // Shift elements (i, size_) left by one slot.
    for (std::size_t k = i; k + 1 < size_; ++k) {
      buffer_[(head_ + k) & mask_] =
          std::move(buffer_[(head_ + k + 1) & mask_]);
    }
    --size_;
    return value;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    // Doubling from 4 keeps the capacity a power of two (mask_ correct).
    const std::size_t new_cap = buffer_.empty() ? 4 : buffer_.size() * 2;
    std::vector<T> next;
    next.reserve(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next.push_back(std::move(buffer_[(head_ + i) & mask_]));
    }
    next.resize(new_cap);
    buffer_ = std::move(next);
    mask_ = new_cap - 1;
    head_ = 0;
  }

  std::vector<T> buffer_;  // size always zero or a power of two
  std::size_t mask_ = 0;   // buffer_.size() - 1 once allocated
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace levnet::support
