#include "support/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace levnet::support {

void check_failed(std::string_view expr, std::string_view file, int line,
                  std::string_view msg) {
  std::fprintf(stderr, "[levnet] check failed: %.*s at %.*s:%d %.*s\n",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace levnet::support
