#include "serve/farm.hpp"

#include <utility>

namespace levnet::serve {

Farm::Farm(FarmConfig config) : config_(config) {}

Farm::Resolved Farm::resolve(const machine::MachineSpec& spec) {
  Resolved resolved;
  if (spec.faults.any()) {
    // Faulted machines carry a mutable liveness overlay and replay their
    // plan from the spec seed; never shared, never cached.
    resolved.owned =
        std::make_unique<machine::Machine>(machine::Machine::build(spec));
    resolved.outcome = CacheOutcome::kUncacheable;
    support::MutexLock lock(mutex_);
    ++uncacheable_;
    return resolved;
  }

  const std::string key = spec.to_string();
  support::MutexLock lock(mutex_);
  if (auto it = index_.find(key); it != index_.end()) {
    ++probes_[obs::probe_index(obs::Probe::kCacheHits)];
    lru_.splice(lru_.begin(), lru_, it->second);
    resolved.shared = lru_.front().machine;
    resolved.outcome = CacheOutcome::kHit;
    return resolved;
  }

  // Miss: build under the lock so the hit/miss/eviction sequence stays a
  // pure function of the resolve order (warm-cache bench counters are
  // asserted exactly). Builds are milliseconds; a serve batch resolves in
  // the dispatcher thread anyway.
  ++probes_[obs::probe_index(obs::Probe::kCacheMisses)];
  resolved.shared = std::make_shared<const machine::Machine>(
      machine::Machine::build(spec));
  resolved.outcome = CacheOutcome::kMiss;
  if (config_.cache_capacity == 0) return resolved;
  lru_.push_front(Entry{key, resolved.shared});
  index_[key] = lru_.begin();
  while (lru_.size() > config_.cache_capacity) {
    ++probes_[obs::probe_index(obs::Probe::kCacheEvictions)];
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return resolved;
}

Farm::Counters Farm::counters() const {
  support::MutexLock lock(mutex_);
  Counters out;
  out.hits = probes_[obs::probe_index(obs::Probe::kCacheHits)];
  out.misses = probes_[obs::probe_index(obs::Probe::kCacheMisses)];
  out.evictions = probes_[obs::probe_index(obs::Probe::kCacheEvictions)];
  out.uncacheable = uncacheable_;
  out.entries = lru_.size();
  return out;
}

std::vector<std::string> Farm::cached_keys() const {
  support::MutexLock lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const Entry& entry : lru_) keys.push_back(entry.key);
  return keys;
}

}  // namespace levnet::serve
