#include "serve/request.hpp"

#include <ostream>
#include <sstream>

#include "machine/machine.hpp"
#include "machine/registry.hpp"
#include "machine/run_io.hpp"

namespace levnet::serve {

const char* cache_outcome_key(CacheOutcome outcome) noexcept {
  switch (outcome) {
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kUncacheable:
      return "uncacheable";
  }
  return "miss";
}

bool decode_request(const std::string& line, std::uint64_t seq,
                    std::uint32_t default_steps, ServeRequest& out,
                    std::string& error) {
  out = ServeRequest{};
  out.seq = seq;
  out.steps = default_steps;

  std::map<std::string, std::string> values;
  if (!machine::parse_flat_json(line, values, error, "request")) return false;
  for (const auto& [key, value] : values) {
    (void)value;
    if (key != "spec" && key != "program" && key != "seed" &&
        key != "steps" && key != "id") {
      error = "unknown request key '" + key +
              "' (valid: spec, program, seed, steps, id)";
      return false;
    }
  }
  if (values.count("spec") == 0) {
    error = "request is missing the required 'spec' key";
    return false;
  }
  out.spec_text = values["spec"];
  if (values.count("id") != 0) out.tag = values["id"];
  if (values.count("program") != 0) out.program = values["program"];
  if (values.count("seed") != 0) {
    if (!machine::parse_count_u64(values["seed"], out.seed)) {
      error = "bad number for 'seed' in request (expected an unsigned "
              "integer)";
      return false;
    }
    out.seed_given = true;
  }
  {
    unsigned long steps = out.steps;
    if (!machine::read_count_field(values, "steps", "request", steps, error)) {
      return false;
    }
    out.steps = static_cast<std::uint32_t>(steps);
  }

  if (!machine::parse_spec(out.spec_text, out.spec, error)) return false;
  if (!machine::Machine::validate(out.spec, error)) return false;
  if (!out.seed_given) out.seed = out.spec.seed;

  const machine::ProgramInfo* program = machine::find_program(out.program);
  if (program == nullptr) {
    error = "unknown program family '" + out.program +
            "' (valid: " + machine::program_keys_joined() + ")";
    return false;
  }
  if (!machine::mode_allows(out.spec.mode, program->required_mode)) {
    const char* const needs =
        program->required_mode == pram::Mode::kCrcw   ? "crcw"
        : program->required_mode == pram::Mode::kCrew ? "crew"
                                                      : "erew";
    error = "program '" + out.program + "' needs a " + needs +
            " machine, but the spec's mode is '" +
            std::string(machine::mode_key(out.spec.mode)) + "' (use /" +
            needs + " or /crcw-combining)";
    return false;
  }
  return true;
}

namespace {

void write_seq_and_tag(std::ostream& os, std::uint64_t seq,
                       const std::string& tag) {
  os << "{\"seq\": " << seq;
  if (!tag.empty()) {
    os << ", \"id\": \"";
    machine::json_escape(os, tag);
    os << "\"";
  }
}

}  // namespace

void write_ok_response(std::ostream& os, const ServeRequest& request,
                       CacheOutcome outcome,
                       const emulation::EmulationReport& report,
                       const obs::Recorder* recorder) {
  write_seq_and_tag(os, request.seq, request.tag);
  os << ", \"status\": \"ok\", \"spec\": \"";
  machine::json_escape(os, request.spec.to_string());
  os << "\", \"program\": \"";
  machine::json_escape(os, request.program);
  os << "\", \"seed\": " << request.seed << ", \"cache\": \""
     << cache_outcome_key(outcome) << "\", \"report\": {";
  machine::write_report_fields(os, report);
  os << "}";
  if (recorder != nullptr) {
    os << ", \"counters\": {";
    for (std::size_t i = 0; i < obs::kProbeCount; ++i) {
      os << (i == 0 ? "" : ", ") << "\"" << obs::kProbeInfo[i].name
         << "\": " << recorder->counter(static_cast<obs::Probe>(i));
    }
    os << "}";
  }
  os << "}";
}

void write_error_response(std::ostream& os, std::uint64_t seq,
                          const std::string& tag, const std::string& error) {
  write_seq_and_tag(os, seq, tag);
  os << ", \"status\": \"error\", \"error\": \"";
  machine::json_escape(os, error);
  os << "\"}";
}

}  // namespace levnet::serve
