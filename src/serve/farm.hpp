#pragma once
// Farm: a capacity-bounded LRU cache of warm Machine instances, keyed by
// canonical spec text.
//
// Building a Machine (graph + router tables + fabric) dominates the cost
// of a short run, so a serve session that replays a handful of specs wants
// the build amortised away. The farm resolves a spec to a
// shared_ptr<const Machine>:
//
//   - fault-free specs are cached under spec.to_string(); a hit returns
//     the warm instance, a miss builds + inserts, evicting the least-
//     recently-used entry once `cache_capacity` is exceeded. The const
//     contract is exactly Machine::run_seeded's sharing contract — the
//     TSan-pinned path run_trials already relies on.
//   - faulted specs (spec.faults.any()) are never cached: the fault plan
//     and RNG stream must derive together from the request seed, so the
//     caller stamps the seed into the spec and the farm builds a private
//     instance per request (counted as "uncacheable").
//
// shared_ptr keeps an evicted-but-running machine alive until its last
// in-flight request completes, so eviction never races execution.
//
// Thread safety: one mutex guards the whole cache, including the build on
// a miss. Serialising builds keeps the hit/miss/eviction sequence — and
// therefore the counters surfaced through the obs probe catalogue
// (Probe::kCacheHits/kCacheMisses/kCacheEvictions) — deterministic for a
// given resolve order. Runs happen outside the lock.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "machine/machine.hpp"
#include "machine/spec.hpp"
#include "obs/probes.hpp"
#include "serve/request.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace levnet::serve {

struct FarmConfig {
  /// Max warm machines kept; 0 disables caching entirely (every fault-free
  /// resolve builds fresh and counts a miss — the bench's "cold" mode).
  std::size_t cache_capacity = 8;
};

class Farm {
 public:
  explicit Farm(FarmConfig config = {});

  [[nodiscard]] const FarmConfig& config() const noexcept { return config_; }

  /// One resolved request. Exactly one of the two pointers is set: a hit
  /// or miss hands out the cache's shared const machine (run it through
  /// run_seeded); an uncacheable faulted spec hands out a private mutable
  /// one (run it through run(), which replays the plan from spec.seed).
  struct Resolved {
    std::shared_ptr<const machine::Machine> shared;
    std::unique_ptr<machine::Machine> owned;
    CacheOutcome outcome = CacheOutcome::kMiss;
  };

  /// Resolves `spec` to a runnable machine. The spec must already have
  /// passed Machine::validate (decode_request guarantees this); for a
  /// faulted spec the caller must have stamped the request seed into
  /// `spec.seed` so plan and stream derive together.
  [[nodiscard]] Resolved resolve(const machine::MachineSpec& spec);

  /// Counter snapshot; the three cache counters use the obs probe
  /// catalogue's indices so names stay in lockstep with kProbeInfo.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t uncacheable = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Counters counters() const;

  /// Cached canonical spec keys, most-recently-used first (tests pin the
  /// eviction order through this).
  [[nodiscard]] std::vector<std::string> cached_keys() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const machine::Machine> machine;
  };

  const FarmConfig config_;
  mutable support::Mutex mutex_;
  /// Front = most recently used; eviction pops the back.
  std::list<Entry> lru_ LEVNET_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      LEVNET_GUARDED_BY(mutex_);
  std::uint64_t probes_[obs::kProbeCount] LEVNET_GUARDED_BY(mutex_) = {};
  std::uint64_t uncacheable_ LEVNET_GUARDED_BY(mutex_) = 0;
};

}  // namespace levnet::serve
