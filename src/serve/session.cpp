#include "serve/session.hpp"

#include <algorithm>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "machine/registry.hpp"
#include "obs/recorder.hpp"
#include "pram/memory.hpp"
#include "pram/program.hpp"
#include "serve/request.hpp"

namespace levnet::serve {

namespace {

/// One request line's full lifecycle; the response buffer is the only
/// output, so workers touch disjoint state.
struct Slot {
  ServeRequest request;
  bool failed = false;
  Farm::Resolved resolved;
  std::string response;
};

void run_slot(Slot& slot) {
  const machine::Machine* m = slot.resolved.owned != nullptr
                                  ? slot.resolved.owned.get()
                                  : slot.resolved.shared.get();
  std::string error;
  std::unique_ptr<pram::PramProgram> program = machine::make_program(
      slot.request.program, m->processors(), slot.request.seed,
      slot.request.steps, error);
  std::ostringstream os;
  if (program == nullptr) {
    slot.failed = true;
    write_error_response(os, slot.request.seq, slot.request.tag, error);
    slot.response = os.str();
    return;
  }

  const machine::MachineSpec& spec = slot.request.spec;
  const bool observe = spec.obs_cadence != 0 || spec.obs_trace;
  obs::Recorder recorder(
      obs::RecorderConfig{spec.obs_cadence, spec.obs_trace});
  if (observe) recorder.bind_topology(m->graph());
  obs::Recorder* rec = observe ? &recorder : nullptr;

  pram::SharedMemory memory;
  const emulation::EmulationReport report =
      slot.resolved.owned != nullptr
          ? slot.resolved.owned->run(*program, memory, rec)
          : slot.resolved.shared->run_seeded(slot.request.seed, *program,
                                             memory, rec);
  write_ok_response(os, slot.request, slot.resolved.outcome, report, rec);
  slot.response = os.str();
}

}  // namespace

Session::Session(Farm& farm, SessionConfig config)
    : farm_(farm), config_(std::move(config)), pool_(config_.workers) {
  config_.queue_depth = std::max<std::size_t>(1, config_.queue_depth);
}

SessionStats Session::serve(std::istream& in, std::ostream& out) {
  SessionStats stats;
  std::vector<std::string> lines;
  std::vector<Slot> slots;
  std::string line;

  const auto take_line = [&lines](std::string&& text) {
    if (!text.empty() && text.back() == '\r') text.pop_back();
    if (!text.empty()) lines.push_back(std::move(text));
  };

  while (true) {
    if (config_.should_stop && config_.should_stop()) break;
    if (!std::getline(in, line)) break;  // blocks for the batch's first line
    lines.clear();
    take_line(std::move(line));
    // Backpressure bound: accept only what is already buffered, up to
    // queue_depth; the rest waits in the pipe until this batch is out.
    while (lines.size() < config_.queue_depth &&
           in.rdbuf()->in_avail() > 0 && std::getline(in, line)) {
      take_line(std::move(line));
    }
    if (lines.empty()) continue;

    slots.clear();
    slots.resize(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      Slot& slot = slots[i];
      const std::uint64_t seq = stats.requests++;
      std::string error;
      if (!decode_request(lines[i], seq, config_.default_steps, slot.request,
                          error)) {
        slot.failed = true;
        std::ostringstream os;
        write_error_response(os, seq, slot.request.tag, error);
        slot.response = os.str();
        continue;
      }
      if (slot.request.spec.faults.any()) {
        // Plan and RNG stream must derive together from the request seed.
        slot.request.spec.seed = slot.request.seed;
      }
      slot.resolved = farm_.resolve(slot.request.spec);
    }

    ++stats.batches;
    stats.peak_batch = std::max(stats.peak_batch, slots.size());
    pool_.parallel_for(slots.size(), [&slots](std::size_t i) {
      if (!slots[i].failed) run_slot(slots[i]);
    });

    for (Slot& slot : slots) {
      if (slot.failed) {
        ++stats.errors;
      } else {
        ++stats.ok;
      }
      out << slot.response << "\n";
    }
    out.flush();
  }

  write_stats_line(out, stats, farm_);
  out << "\n";
  out.flush();
  return stats;
}

void write_stats_line(std::ostream& os, const SessionStats& stats,
                      const Farm& farm) {
  const Farm::Counters counters = farm.counters();
  os << "{\"status\": \"stats\", \"requests\": " << stats.requests
     << ", \"ok\": " << stats.ok << ", \"errors\": " << stats.errors
     << ", \"batches\": " << stats.batches
     << ", \"peak_batch\": " << stats.peak_batch << ", \""
     << obs::kProbeInfo[obs::probe_index(obs::Probe::kCacheHits)].name
     << "\": " << counters.hits << ", \""
     << obs::kProbeInfo[obs::probe_index(obs::Probe::kCacheMisses)].name
     << "\": " << counters.misses << ", \""
     << obs::kProbeInfo[obs::probe_index(obs::Probe::kCacheEvictions)].name
     << "\": " << counters.evictions
     << ", \"uncacheable\": " << counters.uncacheable
     << ", \"cache_entries\": " << counters.entries
     << ", \"cache_capacity\": " << farm.config().cache_capacity << "}";
}

}  // namespace levnet::serve
