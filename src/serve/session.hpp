#pragma once
// Session: the serve loop — read JSONL requests, run them through a Farm,
// write JSONL responses in request order.
//
// Requests are gathered into batches: the dispatcher blocks for the first
// line, then keeps appending lines while more input is already buffered
// (in_avail) and the batch is below `queue_depth`. That bound is the
// backpressure knob — the session never holds more than queue_depth
// requests in flight, so a firehosing client backs up in the OS pipe
// buffer rather than in server memory, while an interactive client gets
// batch-of-1 latency.
//
// Within a batch the dispatcher decodes and resolves every request in
// request order (so the farm's hit/miss/eviction counters are a pure
// function of the request sequence, independent of worker count), then
// fans the runs out across the owned ThreadPool. Each slot renders its
// full response line into its own buffer; the dispatcher emits the buffers
// in request order and flushes once per batch. Responses are therefore
// byte-identical for 1 and N workers — pinned by the ServeConcurrency
// tests under TSan.
//
// EOF or a should_stop() signal drains the current batch, writes one final
// "stats" line (request totals + the farm's cache counters, named after
// the obs probe catalogue) and returns.

#include <cstdint>
#include <functional>
#include <iosfwd>

#include "serve/farm.hpp"
#include "support/thread_pool.hpp"

namespace levnet::serve {

struct SessionConfig {
  /// Max requests in flight per batch (>= 1); the backpressure bound.
  std::size_t queue_depth = 64;
  /// Worker parallelism including the dispatcher (ThreadPool semantics:
  /// 0 = hardware concurrency, 1 = run everything inline).
  unsigned workers = 0;
  /// Default PRAM steps for requests that omit "steps".
  std::uint32_t default_steps = 4;
  /// Polled between batches; true = drain and return (SIGTERM hook).
  std::function<bool()> should_stop;
};

struct SessionStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;
  std::size_t peak_batch = 0;
};

class Session {
 public:
  Session(Farm& farm, SessionConfig config);

  /// Serves `in` to exhaustion (EOF or should_stop), one response line per
  /// request line in request order, then a final stats line. Blank input
  /// lines are ignored. Returns the totals it reported.
  SessionStats serve(std::istream& in, std::ostream& out);

 private:
  Farm& farm_;
  SessionConfig config_;
  support::ThreadPool pool_;
};

/// Writes the final stats line (no trailing newline): session totals plus
/// the farm's cache counters under their kProbeInfo names.
void write_stats_line(std::ostream& os, const SessionStats& stats,
                      const Farm& farm);

}  // namespace levnet::serve
