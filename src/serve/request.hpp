#pragma once
// Serve protocol: JSONL request decode and response encode.
//
// One request is one line — a flat JSON object in the same shape as
// `levnet_run --spec-file` (shared decoder: machine/run_io.*):
//
//   {"spec": "star:5/two-phase/crcw-combining/fifo",
//    "program": "histogram", "seed": 7, "steps": 4, "id": "client-tag"}
//
//   spec     (required) canonical MachineSpec text; may carry obs:/trace
//            tokens, in which case the response gains probe counters and
//            the report carries latency quantiles
//   program  PRAM program family key (default: permutation, like the CLI)
//   seed     emulator seed for this run (default: the spec's seed knob);
//            full 64-bit range
//   steps    PRAM steps for the synthetic-traffic programs (default 4)
//   id       opaque client tag echoed back verbatim
//
// One response is one line, in request order:
//
//   {"seq": N, "id": "...", "status": "ok", "spec": "<canonical>",
//    "program": "...", "seed": S, "cache": "hit|miss|uncacheable",
//    "report": {...}}
//
// The "report" object body is written by machine::write_report_fields —
// the same function behind a levnet_run per-seed entry — so identical
// (spec, program, seed) runs produce byte-identical report payloads
// through either front end. A request that fails validation yields
//
//   {"seq": N, "id": "...", "status": "error", "error": "<message>"}
//
// instead of killing the stream; the error messages are the CLI's own
// (bad token listings from parse_spec, unknown-program listings, mode
// mismatches), so a serve client debugs with the same vocabulary.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "emulation/emulator.hpp"
#include "machine/spec.hpp"
#include "obs/recorder.hpp"

namespace levnet::serve {

/// How the farm resolved a request's machine.
enum class CacheOutcome : std::uint8_t {
  kHit = 0,          // warm Machine found in the LRU cache
  kMiss = 1,         // built and inserted (possibly evicting)
  kUncacheable = 2,  // faulted spec: built per request, never cached
};

[[nodiscard]] const char* cache_outcome_key(CacheOutcome outcome) noexcept;

/// One decoded run request. `seq` is the server-assigned request index
/// (responses are delivered in `seq` order regardless of completion
/// order); `tag` echoes the client's "id" field when present.
struct ServeRequest {
  std::uint64_t seq = 0;
  std::string tag;
  std::string spec_text;
  machine::MachineSpec spec;
  std::string program = "permutation";
  std::uint64_t seed = 0;
  bool seed_given = false;
  std::uint32_t steps = 4;
};

/// Decodes and fully validates one request line: flat-JSON shape, known
/// keys only, required "spec", spec parse + Machine::validate, program
/// lookup, and the program/mode compatibility check the CLI enforces.
/// On failure sets `error` (already human-readable, listing alternatives)
/// and returns false; the caller turns it into a structured error line.
[[nodiscard]] bool decode_request(const std::string& line,
                                  std::uint64_t seq,
                                  std::uint32_t default_steps,
                                  ServeRequest& out, std::string& error);

/// Writes the ok-response line (no trailing newline). `recorder` non-null
/// adds a "counters" object with the full probe catalogue (requests whose
/// spec carries obs:/trace tokens).
void write_ok_response(std::ostream& os, const ServeRequest& request,
                       CacheOutcome outcome,
                       const emulation::EmulationReport& report,
                       const obs::Recorder* recorder);

/// Writes the error-response line (no trailing newline).
void write_error_response(std::ostream& os, std::uint64_t seq,
                          const std::string& tag, const std::string& error);

}  // namespace levnet::serve
