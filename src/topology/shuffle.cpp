#include "topology/shuffle.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace levnet::topology {

DWayShuffle::DWayShuffle(std::uint32_t d, std::uint32_t n) : d_(d), n_(n) {
  LEVNET_CHECK(d >= 2);
  LEVNET_CHECK(n >= 1);
  std::uint64_t count = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    count *= d;
    LEVNET_CHECK_MSG(count <= 0x7fffffffULL, "shuffle too large for NodeId");
  }
  count_ = static_cast<NodeId>(count);
  top_pow_ = static_cast<NodeId>(count / d);

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(count_) * d_ * 2);
  for (NodeId u = 0; u < count_; ++u) {
    for (std::uint32_t l = 0; l < d_; ++l) {
      const NodeId v = shift_inject(u, l);
      if (u == v) continue;  // fixed points of the shift (e.g. 000..0)
      edges.emplace_back(u, v);
      edges.emplace_back(v, u);  // bidirectional physical link
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  graph_ = Graph::from_edges(count_, std::move(edges));
}

std::string DWayShuffle::name() const {
  return "shuffle(d=" + std::to_string(d_) + ",n=" + std::to_string(n_) + ")";
}

NodeId DWayShuffle::shift_inject(NodeId u, std::uint32_t digit) const noexcept {
  LEVNET_DCHECK(digit < d_);
  return digit * top_pow_ + u / d_;
}

std::uint32_t DWayShuffle::route_digit(NodeId v, std::uint32_t k) const noexcept {
  LEVNET_DCHECK(k < n_);
  NodeId x = v;
  for (std::uint32_t i = 0; i < k; ++i) x /= d_;
  return x % d_;
}

NodeId DWayShuffle::forward_toward(NodeId u, NodeId v,
                                   std::uint32_t hops_done) const noexcept {
  // After k hops of the pass, the digit to inject is the destination's
  // k-th least-significant digit; after n hops the label equals v.
  return shift_inject(u, route_digit(v, hops_done));
}

std::string DWayShuffle::label(NodeId u) const {
  std::string s(n_, '0');
  for (std::uint32_t i = 0; i < n_; ++i) {
    s[n_ - 1 - i] = static_cast<char>('0' + (u % d_));
    u /= d_;
  }
  return s;
}

}  // namespace levnet::topology
