#pragma once
// The n-star graph (Definitions 2.4-2.5, Figure 2).
//
// Nodes are the n! permutations of symbols {1..n}; node u is adjacent to
// SWAP_j(u) for j in {2..n}, where SWAP_j exchanges the first symbol with
// the j-th. Degree n-1, diameter floor(3(n-1)/2) (Akers-Harel-Krishnamurthy
// [2]) — sub-logarithmic in the n! network size, which is exactly why the
// paper targets it.
//
// Node ids are Lehmer ranks of the permutations, so id 0 is the identity.
// The class also exposes the deterministic greedy routing step ("send the
// first symbol home; if position 1 is correct, fetch the smallest unplaced
// symbol"), which realizes the minimal star-transposition path and is the
// deterministic oblivious router of Section 2.3.3, as well as the exact
// star distance used by priority queue disciplines.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "topology/graph.hpp"

namespace levnet::topology {

/// Maximum supported star dimension: 12! just exceeds NodeId, and >9 is
/// already beyond what a laptop-scale simulation wants.
inline constexpr std::uint32_t kMaxStarSymbols = 12;

/// A permutation of {1..n} stored in fixed storage; index 0 holds the first
/// symbol (the one SWAP exchanges).
using StarPerm = std::array<std::uint8_t, kMaxStarSymbols>;

class StarGraph {
 public:
  /// n in [2, 12]; builds the full n! node graph. n <= 9 is the practical
  /// simulation range (9! = 362,880 nodes).
  explicit StarGraph(std::uint32_t n);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  /// Mutable access for the fault overlay (graph liveness mask). A faulted
  /// graph must not be shared across concurrent trials — see
  /// routing/router.hpp's concurrency contract.
  [[nodiscard]] Graph& graph_mut() noexcept { return graph_; }
  [[nodiscard]] std::string name() const;

  [[nodiscard]] std::uint32_t symbols() const noexcept { return n_; }
  [[nodiscard]] NodeId node_count() const noexcept { return count_; }
  [[nodiscard]] std::uint32_t degree() const noexcept { return n_ - 1; }
  /// floor(3(n-1)/2), from [2].
  [[nodiscard]] std::uint32_t diameter() const noexcept {
    return 3 * (n_ - 1) / 2;
  }

  /// Lehmer rank of a permutation (id of the node).
  [[nodiscard]] NodeId rank(const StarPerm& p) const noexcept;
  /// Permutation with the given rank. O(1): served from the table built at
  /// construction (the routing hot path hits this once per link crossing).
  [[nodiscard]] const StarPerm& unrank(NodeId id) const noexcept {
    return perms_[id];
  }

  /// Node reached from `u` by SWAP_j, j in [1, n-1] (swap positions 0 and j).
  /// O(1) table lookup; the table is a byproduct of edge construction.
  [[nodiscard]] NodeId swap_neighbor(NodeId u, std::uint32_t j) const noexcept {
    LEVNET_DCHECK(j >= 1 && j < n_);
    return swap_neighbors_[static_cast<std::size_t>(u) * (n_ - 1) + (j - 1)];
  }

  /// Exact star-graph distance between u and v (cycle-structure formula,
  /// validated against BFS in tests).
  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const noexcept;

  /// Next node on a minimal path from u toward v; u must differ from v.
  /// Deterministic (smallest-index tie-break), oblivious: the hop depends
  /// only on (u, v).
  [[nodiscard]] NodeId greedy_step(NodeId u, NodeId v) const noexcept;

  /// Formats the permutation of node `u` as e.g. "BACD" style digits
  /// ("2134") for figure reproduction.
  [[nodiscard]] std::string label(NodeId u) const;

 private:
  /// rho = v^{-1} o u as a position sequence: rho[i] = position of symbol
  /// u[i] within v. Sorting rho to the identity by star swaps routes u to v.
  [[nodiscard]] StarPerm relative(NodeId u, NodeId v) const noexcept;

  /// The O(n^2) Lehmer decode; construction-time only (unrank() serves the
  /// memoized table).
  [[nodiscard]] StarPerm lehmer_unrank(NodeId id) const noexcept;

  std::uint32_t n_;
  NodeId count_;
  std::array<NodeId, kMaxStarSymbols + 1> factorial_{};
  Graph graph_;
  /// Memoized decode/step tables, filled at construction. They cost the
  /// same O(n! * n) as the CSR edge lists the constructor already builds,
  /// and turn greedy_step/distance from O(n^2) rank/unrank arithmetic per
  /// link crossing into O(n) table walks — the emulation benches spend the
  /// majority of their time in these two calls.
  std::vector<StarPerm> perms_;          // perms_[u] == lehmer-unrank(u)
  std::vector<NodeId> swap_neighbors_;   // [u * (n-1) + (j-1)] == SWAP_j(u)
};

}  // namespace levnet::topology
