#include "topology/torus.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace levnet::topology {

Torus::Torus(std::uint32_t rows, std::uint32_t cols)
    : rows_(rows), cols_(cols) {
  // 2 x 2 and smaller degenerate into multi-edges; require 3+ per axis.
  LEVNET_CHECK(rows >= 3 && cols >= 3);
  LEVNET_CHECK_MSG(static_cast<std::uint64_t>(rows) * cols <= 0x7fffffffULL,
                   "torus too large for NodeId");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 4);
  for (std::uint32_t r = 0; r < rows_; ++r) {
    for (std::uint32_t c = 0; c < cols_; ++c) {
      const NodeId u = node_id(r, c);
      edges.emplace_back(u, node_id((r + 1) % rows_, c));
      edges.emplace_back(node_id((r + 1) % rows_, c), u);
      edges.emplace_back(u, node_id(r, (c + 1) % cols_));
      edges.emplace_back(node_id(r, (c + 1) % cols_), u);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  graph_ = Graph::from_edges(node_count(), std::move(edges));
}

std::string Torus::name() const {
  return "torus(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

std::uint32_t Torus::distance(NodeId u, NodeId v) const noexcept {
  const std::uint32_t dr_raw =
      row_of(u) > row_of(v) ? row_of(u) - row_of(v) : row_of(v) - row_of(u);
  const std::uint32_t dc_raw =
      col_of(u) > col_of(v) ? col_of(u) - col_of(v) : col_of(v) - col_of(u);
  return std::min(dr_raw, rows_ - dr_raw) + std::min(dc_raw, cols_ - dc_raw);
}

std::uint32_t Torus::row_step_toward(std::uint32_t r,
                                     std::uint32_t target_row) const noexcept {
  LEVNET_DCHECK(r != target_row);
  const std::uint32_t forward = (target_row + rows_ - r) % rows_;
  // Ties (exactly half way) break toward +1 for determinism.
  return forward <= rows_ - forward ? (r + 1) % rows_
                                    : (r + rows_ - 1) % rows_;
}

std::uint32_t Torus::col_step_toward(std::uint32_t c,
                                     std::uint32_t target_col) const noexcept {
  LEVNET_DCHECK(c != target_col);
  const std::uint32_t forward = (target_col + cols_ - c) % cols_;
  return forward <= cols_ - forward ? (c + 1) % cols_
                                    : (c + cols_ - 1) % cols_;
}

}  // namespace levnet::topology
