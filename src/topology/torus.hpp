#pragma once
// 2-D torus: the mesh of Section 3 with wraparound links. Halves the
// diameter (to n for an n x n torus) at the cost of non-planar wiring; the
// mesh emulation algorithm ports directly, so the torus serves as the
// "what if the MCC had end-around connections" extension experiment.

#include <cstdint>
#include <string>

#include "topology/graph.hpp"

namespace levnet::topology {

class Torus {
 public:
  Torus(std::uint32_t rows, std::uint32_t cols);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  /// Mutable access for the fault overlay (graph liveness mask); a faulted
  /// graph must not be shared across concurrent trials.
  [[nodiscard]] Graph& graph_mut() noexcept { return graph_; }
  [[nodiscard]] std::string name() const;

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  [[nodiscard]] NodeId node_count() const noexcept { return rows_ * cols_; }
  [[nodiscard]] std::uint32_t diameter() const noexcept {
    return rows_ / 2 + cols_ / 2;
  }

  [[nodiscard]] NodeId node_id(std::uint32_t r, std::uint32_t c) const noexcept {
    return r * cols_ + c;
  }
  [[nodiscard]] std::uint32_t row_of(NodeId v) const noexcept {
    return v / cols_;
  }
  [[nodiscard]] std::uint32_t col_of(NodeId v) const noexcept {
    return v % cols_;
  }

  /// Wrapped (toroidal) Manhattan distance.
  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const noexcept;

  /// One step along the shorter wrapped direction in the row coordinate
  /// (+1 or -1 mod rows) toward target_row; analogous for columns.
  [[nodiscard]] std::uint32_t row_step_toward(std::uint32_t r,
                                              std::uint32_t target_row) const
      noexcept;
  [[nodiscard]] std::uint32_t col_step_toward(std::uint32_t c,
                                              std::uint32_t target_col) const
      noexcept;

 private:
  std::uint32_t rows_;
  std::uint32_t cols_;
  Graph graph_;
};

}  // namespace levnet::topology
