#include "topology/star.hpp"

#include <utility>

#include "support/check.hpp"

namespace levnet::topology {

StarGraph::StarGraph(std::uint32_t n) : n_(n) {
  LEVNET_CHECK(n >= 2 && n <= kMaxStarSymbols);
  factorial_[0] = 1;
  for (std::uint32_t i = 1; i <= kMaxStarSymbols; ++i) {
    const std::uint64_t f =
        static_cast<std::uint64_t>(factorial_[i - 1]) * i;
    factorial_[i] = static_cast<NodeId>(f);
    if (i <= n) LEVNET_CHECK_MSG(f <= 0x7fffffffULL, "star graph too large");
  }
  count_ = factorial_[n_];

  // Decode every node once; the hot path (greedy_step, distance) then never
  // runs Lehmer arithmetic again.
  perms_.resize(count_);
  for (NodeId u = 0; u < count_; ++u) perms_[u] = lehmer_unrank(u);

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(count_) * (n_ - 1));
  swap_neighbors_.resize(static_cast<std::size_t>(count_) * (n_ - 1));
  for (NodeId u = 0; u < count_; ++u) {
    for (std::uint32_t j = 1; j < n_; ++j) {
      StarPerm p = perms_[u];
      std::swap(p[0], p[j]);
      const NodeId v = rank(p);
      swap_neighbors_[static_cast<std::size_t>(u) * (n_ - 1) + (j - 1)] = v;
      edges.emplace_back(u, v);
    }
  }
  graph_ = Graph::from_edges(count_, std::move(edges));
}

std::string StarGraph::name() const {
  return "star(n=" + std::to_string(n_) + ")";
}

NodeId StarGraph::rank(const StarPerm& p) const noexcept {
  // Lehmer code via counting smaller symbols to the right; O(n^2) with
  // n <= 12, which beats fancier schemes at this size.
  NodeId r = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    std::uint32_t smaller = 0;
    for (std::uint32_t j = i + 1; j < n_; ++j) {
      if (p[j] < p[i]) ++smaller;
    }
    r += smaller * factorial_[n_ - 1 - i];
  }
  return r;
}

StarPerm StarGraph::lehmer_unrank(NodeId id) const noexcept {
  StarPerm p{};
  std::array<std::uint8_t, kMaxStarSymbols> pool{};
  for (std::uint32_t i = 0; i < n_; ++i) {
    pool[i] = static_cast<std::uint8_t>(i + 1);
  }
  std::uint32_t remaining = n_;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const NodeId f = factorial_[n_ - 1 - i];
    const std::uint32_t idx = id / f;
    id %= f;
    p[i] = pool[idx];
    for (std::uint32_t j = idx; j + 1 < remaining; ++j) pool[j] = pool[j + 1];
    --remaining;
  }
  return p;
}

StarPerm StarGraph::relative(NodeId u, NodeId v) const noexcept {
  const StarPerm& pu = perms_[u];
  const StarPerm& pv = perms_[v];
  std::array<std::uint8_t, kMaxStarSymbols + 1> pos_in_v{};
  for (std::uint32_t i = 0; i < n_; ++i) {
    pos_in_v[pv[i]] = static_cast<std::uint8_t>(i + 1);  // 1-based position
  }
  StarPerm rho{};
  for (std::uint32_t i = 0; i < n_; ++i) rho[i] = pos_in_v[pu[i]];
  return rho;
}

std::uint32_t StarGraph::distance(NodeId u, NodeId v) const noexcept {
  if (u == v) return 0;
  const StarPerm rho = relative(u, v);
  // Cycle structure of rho (values are 1-based positions): the minimal
  // number of star transpositions is m + c if position 1 is already
  // correct, and m + c - 2 otherwise, where the c cycles of length >= 2
  // cover m elements (Akers-Krishnamurthy).
  std::array<bool, kMaxStarSymbols + 1> seen{};
  std::uint32_t m = 0;
  std::uint32_t c = 0;
  for (std::uint32_t start = 1; start <= n_; ++start) {
    if (seen[start] || rho[start - 1] == start) continue;
    std::uint32_t len = 0;
    std::uint32_t at = start;
    while (!seen[at]) {
      seen[at] = true;
      ++len;
      at = rho[at - 1];
    }
    if (len >= 2) {
      m += len;
      ++c;
    }
  }
  const bool first_fixed = rho[0] == 1;
  return first_fixed ? m + c : m + c - 2;
}

NodeId StarGraph::greedy_step(NodeId u, NodeId v) const noexcept {
  LEVNET_DCHECK(u != v);
  // relative() and swap_neighbor() are table-backed, so one greedy hop is
  // a handful of O(n) scans with no Lehmer decode.
  const StarPerm rho = relative(u, v);
  std::uint32_t j = 0;
  if (rho[0] != 1) {
    // Send the displaced first symbol home: it belongs at position rho[0].
    j = rho[0] - 1U;
  } else {
    // Position 1 is correct but the permutation is not sorted; fetch the
    // smallest-index unplaced symbol (deterministic tie-break).
    for (std::uint32_t i = 1; i < n_; ++i) {
      if (rho[i] != i + 1) {
        j = i;
        break;
      }
    }
  }
  LEVNET_DCHECK(j >= 1 && j < n_);
  return swap_neighbor(u, j);
}

std::string StarGraph::label(NodeId u) const {
  const StarPerm p = unrank(u);
  std::string s;
  s.reserve(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    s.push_back(static_cast<char>('0' + p[i]));
  }
  return s;
}

}  // namespace levnet::topology
