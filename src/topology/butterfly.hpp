#pragma once
// Wrapped radix-d butterfly — the canonical leveled network (Definition in
// Section 2.3.1, Figure 1).
//
// The network has l columns of R = d^l rows each (l*R nodes total, matching
// the paper's "leveled network of lN nodes"). Node (c, r) links forward to
// the d nodes ((c+1) mod l, r with base-d digit c replaced by any value).
// Consequences used throughout:
//   * from any column-0 node there is a unique forward path of exactly l
//     links to any other column-0 node (fix digit 0, then 1, ...), which is
//     the paper's unique-path property;
//   * taking a uniformly random link at each of l forward steps lands on a
//     uniformly random row — phase 1 of Algorithm 2.1.
// With d = 2 this is the classic wrapped butterfly used by Ranade [13];
// processors and memory modules both live on column 0 (the paper's "first
// column are processors, last column are memory modules" with the wrap
// identifying the two).
//
// Links are physically bidirectional: each forward edge has a matching
// backward edge so that CRCW combining replies can retrace request paths.

#include <cstdint>
#include <string>

#include "topology/graph.hpp"

namespace levnet::topology {

class WrappedButterfly {
 public:
  /// radix >= 2, levels >= 1; row count is radix^levels (must fit NodeId).
  WrappedButterfly(std::uint32_t radix, std::uint32_t levels);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  /// Mutable access for the fault overlay (graph liveness mask); a faulted
  /// graph must not be shared across concurrent trials.
  [[nodiscard]] Graph& graph_mut() noexcept { return graph_; }
  [[nodiscard]] std::string name() const;

  [[nodiscard]] std::uint32_t radix() const noexcept { return radix_; }
  [[nodiscard]] std::uint32_t levels() const noexcept { return levels_; }
  /// Rows per column (= number of processors / memory modules).
  [[nodiscard]] NodeId row_count() const noexcept { return rows_; }
  [[nodiscard]] NodeId node_count() const noexcept {
    return rows_ * levels_;
  }

  /// Forward route length between column-0 nodes; also the network diameter
  /// scale used in the theorems.
  [[nodiscard]] std::uint32_t route_length() const noexcept { return levels_; }

  [[nodiscard]] NodeId node_id(std::uint32_t column, NodeId row) const noexcept {
    return column * rows_ + row;
  }
  [[nodiscard]] std::uint32_t column_of(NodeId v) const noexcept {
    return v / rows_;
  }
  [[nodiscard]] NodeId row_of(NodeId v) const noexcept { return v % rows_; }

  /// Row reached from `row` when the digit at position `level` is set to
  /// `digit` (positions are base-radix, position 0 least significant).
  [[nodiscard]] NodeId with_digit(NodeId row, std::uint32_t level,
                                  std::uint32_t digit) const noexcept;

  /// Base-radix digit of `row` at `level`.
  [[nodiscard]] std::uint32_t digit(NodeId row, std::uint32_t level) const noexcept;

  /// Next node on the unique forward path from (column c, row r) toward the
  /// column-0 row `target_row`: fixes digit c to target's digit c.
  [[nodiscard]] NodeId forward_toward(NodeId v, NodeId target_row) const noexcept;

 private:
  std::uint32_t radix_;
  std::uint32_t levels_;
  NodeId rows_;
  std::vector<NodeId> digit_pow_;  // radix^i for i in [0, levels]
  Graph graph_;
};

}  // namespace levnet::topology
