#pragma once
// Binary n-cube, the comparison network of Section 1 and Section 2.3.4.
//
// 2^dim nodes, node u adjacent to u XOR (1 << i). Degree = diameter = dim,
// both logarithmic in the size — the star graph beats it on both counts,
// which experiment E12 tabulates.

#include <cstdint>
#include <string>

#include "topology/graph.hpp"

namespace levnet::topology {

class Hypercube {
 public:
  explicit Hypercube(std::uint32_t dim);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  /// Mutable access for the fault overlay (graph liveness mask); a faulted
  /// graph must not be shared across concurrent trials.
  [[nodiscard]] Graph& graph_mut() noexcept { return graph_; }
  [[nodiscard]] std::string name() const;

  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }
  [[nodiscard]] NodeId node_count() const noexcept { return NodeId{1} << dim_; }
  [[nodiscard]] std::uint32_t degree() const noexcept { return dim_; }
  [[nodiscard]] std::uint32_t diameter() const noexcept { return dim_; }

  /// Next node on the e-cube (dimension-order) path from u toward v:
  /// corrects the lowest differing bit. u must differ from v.
  [[nodiscard]] NodeId ecube_step(NodeId u, NodeId v) const noexcept;

  /// Hamming distance.
  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const noexcept;

 private:
  std::uint32_t dim_;
  Graph graph_;
};

}  // namespace levnet::topology
