#pragma once
// Directed graph in CSR form — the substrate every topology compiles to.
//
// All networks in the paper (leveled networks, star graph, d-way shuffle,
// hypercube, mesh) are represented as directed graphs where a bidirectional
// physical link contributes two directed edges. The simulator's capacity
// rule — at most one packet per directed edge per step — then matches the
// paper's "at most one packet passes through any link of the network at any
// time" (Section 2.2).

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace levnet::topology {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};
inline constexpr NodeId kInvalidNode = ~NodeId{0};

class Graph {
 public:
  Graph() = default;

  /// Builds a CSR graph from a directed edge list. Edges are sorted by
  /// (tail, head); parallel edges are rejected. Also precomputes, for every
  /// directed edge, the id of its reverse edge (or kInvalidEdge), which the
  /// CRCW combining reply phase uses to retrace request paths.
  [[nodiscard]] static Graph from_edges(
      NodeId node_count, std::vector<std::pair<NodeId, NodeId>> edges);

  [[nodiscard]] NodeId node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return heads_.size(); }

  /// Out-neighbors of u in ascending order.
  [[nodiscard]] std::span<const NodeId> out_neighbors(NodeId u) const noexcept {
    return {heads_.data() + offsets_[u], heads_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] std::uint32_t out_degree(NodeId u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }

  /// Maximum out-degree over all nodes.
  [[nodiscard]] std::uint32_t max_out_degree() const noexcept {
    return max_out_degree_;
  }

  /// Edge id of the k-th out-edge of u (CSR position).
  [[nodiscard]] EdgeId out_edge(NodeId u, std::uint32_t k) const noexcept {
    return offsets_[u] + k;
  }

  /// First out-edge id of u; out-edges of u are [out_begin(u), out_begin(u+1)).
  [[nodiscard]] EdgeId out_begin(NodeId u) const noexcept { return offsets_[u]; }

  /// Directed edge u->v, or kInvalidEdge. Linear scan: degrees are small
  /// for every topology in this library.
  [[nodiscard]] EdgeId edge_between(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] NodeId edge_head(EdgeId e) const noexcept { return heads_[e]; }
  [[nodiscard]] NodeId edge_tail(EdgeId e) const noexcept { return tails_[e]; }

  /// Id of the reverse directed edge (head->tail), or kInvalidEdge if the
  /// graph has no such edge.
  [[nodiscard]] EdgeId reverse_edge(EdgeId e) const noexcept {
    return reverse_[e];
  }

  // ------------------------------------------------------------- liveness
  // Fault overlay (src/faults/): a lazily allocated mask of dead links and
  // nodes layered over the immutable CSR structure. With no faults the mask
  // is never allocated and every query short-circuits on one bool, so the
  // fault-free hot path is a single predictable branch. Mutating the mask
  // breaks the router-sharing concurrency contract (routing/router.hpp):
  // fault trials must own their topology instance per seed.

  /// True once any link or node has been killed since construction /
  /// revive_all(). Callers gate every liveness-aware branch on this.
  [[nodiscard]] bool has_faults() const noexcept { return faulted_; }

  /// Directed edge e is usable: neither it, its tail, nor its head has been
  /// killed (kill_node marks every incident edge dead, so one lookup
  /// answers all three).
  [[nodiscard]] bool edge_live(EdgeId e) const noexcept {
    return !faulted_ || edge_live_[e] != 0;
  }

  [[nodiscard]] bool node_live(NodeId v) const noexcept {
    return !faulted_ || node_live_[v] != 0;
  }

  /// Kills one directed edge.
  void kill_edge(EdgeId e);

  /// Kills the physical link carrying edge e: e and its reverse edge (when
  /// the graph has one) — a bidirectional cable cut.
  void kill_link(EdgeId e);

  /// Kills a node and every edge incident to it (transit through the node
  /// becomes impossible in either direction).
  void kill_node(NodeId v);

  /// Clears the overlay: everything live again, mask storage released.
  void revive_all();

  [[nodiscard]] std::uint32_t dead_edge_count() const noexcept {
    return dead_edges_;
  }
  [[nodiscard]] std::uint32_t dead_node_count() const noexcept {
    return dead_nodes_;
  }

  /// Number of live out-edges of u (degraded out-degree).
  [[nodiscard]] std::uint32_t live_out_degree(NodeId u) const noexcept;

  /// Uniformly random live out-neighbor of u, or kInvalidNode when the
  /// whole fan is dead. The shared primitive of every degraded-mode
  /// detour/scramble step (emulator on_fault, butterfly recovery walk).
  [[nodiscard]] NodeId random_live_neighbor(NodeId u,
                                            support::Rng& rng) const;

 private:
  void ensure_mask();

  NodeId node_count_ = 0;
  std::uint32_t max_out_degree_ = 0;
  std::vector<EdgeId> offsets_;   // size node_count_+1
  std::vector<NodeId> heads_;     // size edge_count
  std::vector<NodeId> tails_;     // size edge_count
  std::vector<EdgeId> reverse_;   // size edge_count

  // Fault overlay; empty until the first kill.
  bool faulted_ = false;
  std::uint32_t dead_edges_ = 0;
  std::uint32_t dead_nodes_ = 0;
  std::vector<std::uint8_t> edge_live_;  // size edge_count when faulted_
  std::vector<std::uint8_t> node_live_;  // size node_count_ when faulted_
};

}  // namespace levnet::topology
