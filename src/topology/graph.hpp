#pragma once
// Directed graph in CSR form — the substrate every topology compiles to.
//
// All networks in the paper (leveled networks, star graph, d-way shuffle,
// hypercube, mesh) are represented as directed graphs where a bidirectional
// physical link contributes two directed edges. The simulator's capacity
// rule — at most one packet per directed edge per step — then matches the
// paper's "at most one packet passes through any link of the network at any
// time" (Section 2.2).

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace levnet::topology {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};
inline constexpr NodeId kInvalidNode = ~NodeId{0};

class Graph {
 public:
  Graph() = default;

  /// Builds a CSR graph from a directed edge list. Edges are sorted by
  /// (tail, head); parallel edges are rejected. Also precomputes, for every
  /// directed edge, the id of its reverse edge (or kInvalidEdge), which the
  /// CRCW combining reply phase uses to retrace request paths.
  [[nodiscard]] static Graph from_edges(
      NodeId node_count, std::vector<std::pair<NodeId, NodeId>> edges);

  [[nodiscard]] NodeId node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return heads_.size(); }

  /// Out-neighbors of u in ascending order.
  [[nodiscard]] std::span<const NodeId> out_neighbors(NodeId u) const noexcept {
    return {heads_.data() + offsets_[u], heads_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] std::uint32_t out_degree(NodeId u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }

  /// Maximum out-degree over all nodes.
  [[nodiscard]] std::uint32_t max_out_degree() const noexcept {
    return max_out_degree_;
  }

  /// Edge id of the k-th out-edge of u (CSR position).
  [[nodiscard]] EdgeId out_edge(NodeId u, std::uint32_t k) const noexcept {
    return offsets_[u] + k;
  }

  /// First out-edge id of u; out-edges of u are [out_begin(u), out_begin(u+1)).
  [[nodiscard]] EdgeId out_begin(NodeId u) const noexcept { return offsets_[u]; }

  /// Directed edge u->v, or kInvalidEdge. Linear scan: degrees are small
  /// for every topology in this library.
  [[nodiscard]] EdgeId edge_between(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] NodeId edge_head(EdgeId e) const noexcept { return heads_[e]; }
  [[nodiscard]] NodeId edge_tail(EdgeId e) const noexcept { return tails_[e]; }

  /// Id of the reverse directed edge (head->tail), or kInvalidEdge if the
  /// graph has no such edge.
  [[nodiscard]] EdgeId reverse_edge(EdgeId e) const noexcept {
    return reverse_[e];
  }

 private:
  NodeId node_count_ = 0;
  std::uint32_t max_out_degree_ = 0;
  std::vector<EdgeId> offsets_;   // size node_count_+1
  std::vector<NodeId> heads_;     // size edge_count
  std::vector<NodeId> tails_;     // size edge_count
  std::vector<EdgeId> reverse_;   // size edge_count
};

}  // namespace levnet::topology
