#include "topology/linear_array.hpp"

#include <utility>
#include <vector>

#include "support/check.hpp"

namespace levnet::topology {

LinearArray::LinearArray(std::uint32_t n) : n_(n) {
  LEVNET_CHECK(n >= 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (NodeId u = 0; u + 1 < n_; ++u) {
    edges.emplace_back(u, u + 1);
    edges.emplace_back(u + 1, u);
  }
  graph_ = Graph::from_edges(n_, std::move(edges));
}

std::string LinearArray::name() const {
  return "linear(n=" + std::to_string(n_) + ")";
}

}  // namespace levnet::topology
