#include "topology/checks.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace levnet::topology {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.out_neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    LEVNET_CHECK_MSG(d != kUnreachable, "graph not strongly connected");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t exact_diameter(const Graph& g) {
  std::uint32_t diameter = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    diameter = std::max(diameter, eccentricity(g, u));
  }
  return diameter;
}

bool is_regular(const Graph& g, std::uint32_t d) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (g.out_degree(u) != d) return false;
  }
  return true;
}

bool is_symmetric(const Graph& g) {
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.reverse_edge(e) == kInvalidEdge) return false;
  }
  return true;
}

bool is_connected(const Graph& g) {
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint64_t count_paths(const Graph& g, NodeId u, NodeId v,
                          std::uint32_t length) {
  std::vector<std::uint64_t> ways(g.node_count(), 0);
  ways[u] = 1;
  for (std::uint32_t step = 0; step < length; ++step) {
    std::vector<std::uint64_t> next(g.node_count(), 0);
    for (NodeId a = 0; a < g.node_count(); ++a) {
      if (ways[a] == 0) continue;
      for (NodeId b : g.out_neighbors(a)) next[b] += ways[a];
    }
    ways = std::move(next);
  }
  return ways[v];
}

}  // namespace levnet::topology
