#pragma once
// Structural audits used by tests and by the figure-reproduction example:
// BFS distances/diameter, degree profiles, regularity, vertex symmetry
// proxies, and the unique-path property of leveled networks.

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace levnet::topology {

inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

/// BFS distances from src along directed edges.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       NodeId src);

/// Eccentricity of src (max finite BFS distance); checks reachability.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, NodeId src);

/// Exact diameter by all-pairs BFS — O(V * E), for test-sized graphs only.
[[nodiscard]] std::uint32_t exact_diameter(const Graph& g);

/// True if every node has out-degree exactly d.
[[nodiscard]] bool is_regular(const Graph& g, std::uint32_t d);

/// True if for every edge (u, v) the edge (v, u) exists.
[[nodiscard]] bool is_symmetric(const Graph& g);

/// True if all nodes are reachable from node 0 (directed).
[[nodiscard]] bool is_connected(const Graph& g);

/// Number of distinct directed paths of exactly `length` edges from u to v.
/// Used to audit the unique-path property (Definition of leveled networks):
/// for the wrapped butterfly the count must be 1 when length == levels.
/// O(length * E) per call via dynamic programming.
[[nodiscard]] std::uint64_t count_paths(const Graph& g, NodeId u, NodeId v,
                                        std::uint32_t length);

}  // namespace levnet::topology
