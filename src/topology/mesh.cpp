#include "topology/mesh.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace levnet::topology {

Mesh::Mesh(std::uint32_t rows, std::uint32_t cols) : rows_(rows), cols_(cols) {
  LEVNET_CHECK(rows >= 1 && cols >= 1);
  LEVNET_CHECK_MSG(static_cast<std::uint64_t>(rows) * cols <= 0x7fffffffULL,
                   "mesh too large for NodeId");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 4);
  for (std::uint32_t r = 0; r < rows_; ++r) {
    for (std::uint32_t c = 0; c < cols_; ++c) {
      const NodeId u = node_id(r, c);
      if (r + 1 < rows_) {
        edges.emplace_back(u, node_id(r + 1, c));
        edges.emplace_back(node_id(r + 1, c), u);
      }
      if (c + 1 < cols_) {
        edges.emplace_back(u, node_id(r, c + 1));
        edges.emplace_back(node_id(r, c + 1), u);
      }
    }
  }
  graph_ = Graph::from_edges(node_count(), std::move(edges));
}

std::string Mesh::name() const {
  return "mesh(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

std::uint32_t Mesh::distance(NodeId u, NodeId v) const noexcept {
  const auto dr = static_cast<std::int64_t>(row_of(u)) - row_of(v);
  const auto dc = static_cast<std::int64_t>(col_of(u)) - col_of(v);
  return static_cast<std::uint32_t>(std::llabs(dr) + std::llabs(dc));
}

Mesh::RowRange Mesh::slice_rows_of(std::uint32_t r,
                                   std::uint32_t slice_rows) const noexcept {
  LEVNET_DCHECK(slice_rows >= 1);
  const std::uint32_t first = (r / slice_rows) * slice_rows;
  const std::uint32_t last = std::min(first + slice_rows - 1, rows_ - 1);
  return {first, last};
}

}  // namespace levnet::topology
