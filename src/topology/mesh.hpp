#pragma once
// The n x n mesh-connected computer (Section 3.1, Figure 5).
//
// Each grid point is a processor, each edge a bidirectional communication
// link (MIMD model: in one step a processor can communicate with all of its
// <= 4 neighbours, which the simulator realizes as one packet per directed
// edge per step). Diameter 2n - 2; the paper's point is that any practical
// algorithm must run within a small constant of that.
//
// The class also exposes the horizontal-slice partitioning of Section 3.4
// (Figure 5): stage 1 of the routing algorithm randomizes a packet's row
// within a slice of height slice_rows.

#include <cstdint>
#include <string>

#include "topology/graph.hpp"

namespace levnet::topology {

class Mesh {
 public:
  /// rows x cols grid; the paper's square mesh is Mesh(n, n).
  Mesh(std::uint32_t rows, std::uint32_t cols);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  /// Mutable access for the fault overlay (graph liveness mask); a faulted
  /// graph must not be shared across concurrent trials.
  [[nodiscard]] Graph& graph_mut() noexcept { return graph_; }
  [[nodiscard]] std::string name() const;

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  [[nodiscard]] NodeId node_count() const noexcept { return rows_ * cols_; }
  [[nodiscard]] std::uint32_t diameter() const noexcept {
    return rows_ + cols_ - 2;
  }

  [[nodiscard]] NodeId node_id(std::uint32_t r, std::uint32_t c) const noexcept {
    return r * cols_ + c;
  }
  [[nodiscard]] std::uint32_t row_of(NodeId v) const noexcept {
    return v / cols_;
  }
  [[nodiscard]] std::uint32_t col_of(NodeId v) const noexcept {
    return v % cols_;
  }

  /// Manhattan (routing) distance.
  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const noexcept;

  /// Index of the horizontal slice containing row r when slices have
  /// `slice_rows` rows each (the last slice may be short).
  [[nodiscard]] std::uint32_t slice_of(std::uint32_t r,
                                       std::uint32_t slice_rows) const noexcept {
    return r / slice_rows;
  }

  /// Row range [first, last] of the slice containing r.
  struct RowRange {
    std::uint32_t first;
    std::uint32_t last;
  };
  [[nodiscard]] RowRange slice_rows_of(std::uint32_t r,
                                       std::uint32_t slice_rows) const noexcept;

 private:
  std::uint32_t rows_;
  std::uint32_t cols_;
  Graph graph_;
};

}  // namespace levnet::topology
