#pragma once
// The d-way shuffle network (Section 2.3.5, Figure 4).
//
// N = d^n nodes labelled with n base-d digits d_n ... d_1. Node
// d_n d_{n-1} ... d_1 has a forward (shift) link to l d_n ... d_2 for every
// digit l — drop the least-significant digit, shift, inject l at the top.
// There is a unique forward path of exactly n links between any pair of
// nodes: inject the destination's digits least-significant first. Choosing
// the injected digit uniformly at random at each of n steps lands on a
// uniformly random node — phase 1 of Algorithm 2.3. With d = n this is the
// n-way shuffle, whose diameter n is sub-logarithmic in N = n^n.
//
// The physical links are bidirectional: backward (un-shift) edges exist so
// CRCW combining replies can retrace request paths; forward routing only
// ever uses shift edges.

#include <cstdint>
#include <string>

#include "topology/graph.hpp"

namespace levnet::topology {

class DWayShuffle {
 public:
  /// d >= 2 digits, n >= 1 positions; d^n nodes.
  DWayShuffle(std::uint32_t d, std::uint32_t n);

  /// Convenience constructor for the paper's n-way shuffle (d = n).
  [[nodiscard]] static DWayShuffle n_way(std::uint32_t n) {
    return DWayShuffle(n, n);
  }

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  /// Mutable access for the fault overlay (graph liveness mask); a faulted
  /// graph must not be shared across concurrent trials.
  [[nodiscard]] Graph& graph_mut() noexcept { return graph_; }
  [[nodiscard]] std::string name() const;

  [[nodiscard]] std::uint32_t radix() const noexcept { return d_; }
  [[nodiscard]] std::uint32_t digits() const noexcept { return n_; }
  [[nodiscard]] NodeId node_count() const noexcept { return count_; }
  /// Unique-path length = diameter = n.
  [[nodiscard]] std::uint32_t route_length() const noexcept { return n_; }

  /// Node reached by one forward shift injecting `digit` at the top.
  [[nodiscard]] NodeId shift_inject(NodeId u, std::uint32_t digit) const noexcept;

  /// k-th least-significant digit of the destination label (k in [0, n)),
  /// i.e. the digit to inject on hop k of the unique path toward `v`.
  [[nodiscard]] std::uint32_t route_digit(NodeId v, std::uint32_t k) const noexcept;

  /// Next node on the unique forward path toward v given that `hops_done`
  /// forward hops of this pass have already been taken.
  [[nodiscard]] NodeId forward_toward(NodeId u, NodeId v,
                                      std::uint32_t hops_done) const noexcept;

  /// Label digits, most significant first, for figure reproduction.
  [[nodiscard]] std::string label(NodeId u) const;

 private:
  std::uint32_t d_;
  std::uint32_t n_;
  NodeId count_;
  NodeId top_pow_;  // d^(n-1)
  Graph graph_;
};

}  // namespace levnet::topology
