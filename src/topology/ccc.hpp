#pragma once
// Cube-connected cycles CCC(k): each hypercube corner w of a k-cube is
// replaced by a k-node cycle; node (i, w) links around its cycle and, at
// cycle position i, across the "rung" to (i, w xor 2^i).
//
// CCC is the classic CONSTANT-degree member of the leveled-network class
// (its standard drawing is a leveled network of O(k) levels with degree 3),
// complementing the non-constant-degree star and shuffle the paper
// specializes to: N = k * 2^k nodes, degree 3, diameter Theta(k) =
// Theta(log N).

#include <cstdint>
#include <string>

#include "topology/graph.hpp"

namespace levnet::topology {

class CubeConnectedCycles {
 public:
  /// k >= 3 (k < 3 degenerates: position and rung edges coincide).
  explicit CubeConnectedCycles(std::uint32_t k);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  /// Mutable access for the fault overlay (graph liveness mask); a faulted
  /// graph must not be shared across concurrent trials.
  [[nodiscard]] Graph& graph_mut() noexcept { return graph_; }
  [[nodiscard]] std::string name() const;

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] NodeId node_count() const noexcept {
    return k_ * (NodeId{1} << k_);
  }
  [[nodiscard]] std::uint32_t degree() const noexcept { return 3; }
  /// Upper bound on the route length of the dimension-sweep router below
  /// (cycle walk with rung detours, plus the final cycle walk).
  [[nodiscard]] std::uint32_t route_bound() const noexcept {
    return 2 * k_ + k_ / 2 + 2;
  }

  [[nodiscard]] NodeId node_id(std::uint32_t position,
                               std::uint32_t corner) const noexcept {
    return corner * k_ + position;
  }
  [[nodiscard]] std::uint32_t position_of(NodeId v) const noexcept {
    return v % k_;
  }
  [[nodiscard]] std::uint32_t corner_of(NodeId v) const noexcept {
    return v / k_;
  }

  /// Next node on the deterministic oblivious dimension-sweep route toward
  /// `dst`: walk the cycle forward, taking the rung whenever the current
  /// position's cube bit differs from the destination corner; once corners
  /// agree, walk the cycle the short way to the destination position.
  /// Returns kInvalidNode when already at dst.
  [[nodiscard]] NodeId sweep_step(NodeId at, NodeId dst) const noexcept;

 private:
  std::uint32_t k_;
  Graph graph_;
};

}  // namespace levnet::topology
