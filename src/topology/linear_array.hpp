#pragma once
// Linear processor array: the 1-D substrate of the mesh analysis
// (Section 3.4.1 reduces each mesh stage to routing on a linear array).

#include <cstdint>
#include <string>

#include "topology/graph.hpp"

namespace levnet::topology {

class LinearArray {
 public:
  explicit LinearArray(std::uint32_t n);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  /// Mutable access for the fault overlay (graph liveness mask); a faulted
  /// graph must not be shared across concurrent trials.
  [[nodiscard]] Graph& graph_mut() noexcept { return graph_; }
  [[nodiscard]] std::string name() const;

  [[nodiscard]] NodeId node_count() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t diameter() const noexcept { return n_ - 1; }

  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const noexcept {
    return u > v ? u - v : v - u;
  }

 private:
  std::uint32_t n_;
  Graph graph_;
};

}  // namespace levnet::topology
