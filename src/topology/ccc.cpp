#include "topology/ccc.hpp"

#include <utility>
#include <vector>

#include "support/check.hpp"

namespace levnet::topology {

CubeConnectedCycles::CubeConnectedCycles(std::uint32_t k) : k_(k) {
  LEVNET_CHECK(k >= 3 && k <= 22);
  const NodeId corners = NodeId{1} << k_;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(node_count()) * 3);
  for (NodeId w = 0; w < corners; ++w) {
    for (std::uint32_t i = 0; i < k_; ++i) {
      const NodeId u = node_id(i, w);
      const NodeId next_in_cycle = node_id((i + 1) % k_, w);
      edges.emplace_back(u, next_in_cycle);
      edges.emplace_back(next_in_cycle, u);
      edges.emplace_back(u, node_id(i, w ^ (NodeId{1} << i)));  // rung
    }
  }
  graph_ = Graph::from_edges(node_count(), std::move(edges));
}

std::string CubeConnectedCycles::name() const {
  return "ccc(k=" + std::to_string(k_) + ")";
}

NodeId CubeConnectedCycles::sweep_step(NodeId at, NodeId dst) const noexcept {
  if (at == dst) return kInvalidNode;
  const std::uint32_t i = position_of(at);
  const std::uint32_t w = corner_of(at);
  const std::uint32_t dst_corner = corner_of(dst);
  const std::uint32_t diff = w ^ dst_corner;
  if (diff != 0) {
    // Fix the current position's bit via the rung, else advance the cycle
    // toward the next differing bit.
    if ((diff >> i) & 1U) return node_id(i, w ^ (1U << i));
    return node_id((i + 1) % k_, w);
  }
  // Same corner: walk the cycle the short way to the destination position.
  const std::uint32_t dst_position = position_of(dst);
  const std::uint32_t forward = (dst_position + k_ - i) % k_;
  return forward <= k_ - forward ? node_id((i + 1) % k_, w)
                                 : node_id((i + k_ - 1) % k_, w);
}

}  // namespace levnet::topology
