#include "topology/hypercube.hpp"

#include <bit>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace levnet::topology {

Hypercube::Hypercube(std::uint32_t dim) : dim_(dim) {
  LEVNET_CHECK(dim >= 1 && dim <= 24);
  const NodeId count = node_count();
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(count) * dim_);
  for (NodeId u = 0; u < count; ++u) {
    for (std::uint32_t i = 0; i < dim_; ++i) {
      edges.emplace_back(u, u ^ (NodeId{1} << i));
    }
  }
  graph_ = Graph::from_edges(count, std::move(edges));
}

std::string Hypercube::name() const {
  return "hypercube(dim=" + std::to_string(dim_) + ")";
}

NodeId Hypercube::ecube_step(NodeId u, NodeId v) const noexcept {
  LEVNET_DCHECK(u != v);
  const NodeId diff = u ^ v;
  return u ^ (diff & (~diff + 1));  // flip lowest set bit of the difference
}

std::uint32_t Hypercube::distance(NodeId u, NodeId v) const noexcept {
  return static_cast<std::uint32_t>(std::popcount(u ^ v));
}

}  // namespace levnet::topology
