#include "topology/butterfly.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace levnet::topology {

WrappedButterfly::WrappedButterfly(std::uint32_t radix, std::uint32_t levels)
    : radix_(radix), levels_(levels) {
  LEVNET_CHECK(radix >= 2);
  LEVNET_CHECK(levels >= 1);
  std::uint64_t rows = 1;
  digit_pow_.reserve(levels + 1);
  for (std::uint32_t i = 0; i <= levels; ++i) {
    digit_pow_.push_back(static_cast<NodeId>(rows));
    if (i < levels) {
      rows *= radix;
      LEVNET_CHECK_MSG(rows * levels <= 0x7fffffffULL,
                       "butterfly too large for NodeId");
    }
  }
  rows_ = static_cast<NodeId>(rows);

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(node_count()) * radix * 2);
  for (std::uint32_t c = 0; c < levels_; ++c) {
    const std::uint32_t next_col = (c + 1) % levels_;
    for (NodeId r = 0; r < rows_; ++r) {
      const NodeId u = node_id(c, r);
      for (std::uint32_t digit_value = 0; digit_value < radix_; ++digit_value) {
        const NodeId v = node_id(next_col, with_digit(r, c, digit_value));
        if (u == v) continue;  // levels_ == 1 with identical digit
        edges.emplace_back(u, v);
        edges.emplace_back(v, u);  // physical links are bidirectional
      }
    }
  }
  // A radix-d wrapped butterfly with one level degenerates into parallel
  // self-referencing columns; from_edges also dedups the backward edges that
  // coincide with forward edges of the adjacent column when levels_ == 2 and
  // radix_ == 2 is *not* an issue because tails differ. Remove duplicates
  // defensively before building.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  graph_ = Graph::from_edges(node_count(), std::move(edges));
}

std::string WrappedButterfly::name() const {
  return "butterfly(d=" + std::to_string(radix_) +
         ",l=" + std::to_string(levels_) + ")";
}

NodeId WrappedButterfly::with_digit(NodeId row, std::uint32_t level,
                                    std::uint32_t digit_value) const noexcept {
  const NodeId pow = digit_pow_[level];
  const std::uint32_t current = digit(row, level);
  return row - current * pow + digit_value * pow;
}

std::uint32_t WrappedButterfly::digit(NodeId row,
                                      std::uint32_t level) const noexcept {
  return (row / digit_pow_[level]) % radix_;
}

NodeId WrappedButterfly::forward_toward(NodeId v,
                                        NodeId target_row) const noexcept {
  const std::uint32_t c = column_of(v);
  const NodeId r = row_of(v);
  const std::uint32_t next_col = (c + 1) % levels_;
  return node_id(next_col, with_digit(r, c, digit(target_row, c)));
}

}  // namespace levnet::topology
