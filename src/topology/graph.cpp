#include "topology/graph.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace levnet::topology {

Graph Graph::from_edges(NodeId node_count,
                        std::vector<std::pair<NodeId, NodeId>> edges) {
  Graph g;
  g.node_count_ = node_count;
  std::sort(edges.begin(), edges.end());
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    LEVNET_CHECK_MSG(edges[i] != edges[i + 1], "parallel edge rejected");
  }
  g.offsets_.assign(node_count + 1, 0);
  g.heads_.resize(edges.size());
  g.tails_.resize(edges.size());
  for (const auto& [u, v] : edges) {
    LEVNET_CHECK(u < node_count && v < node_count);
    ++g.offsets_[u + 1];
  }
  for (NodeId u = 0; u < node_count; ++u) {
    g.offsets_[u + 1] += g.offsets_[u];
    g.max_out_degree_ =
        std::max(g.max_out_degree_, g.offsets_[u + 1] - g.offsets_[u]);
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    g.heads_[i] = edges[i].second;
    g.tails_[i] = edges[i].first;
  }
  g.reverse_.resize(edges.size());
  for (EdgeId e = 0; e < g.heads_.size(); ++e) {
    g.reverse_[e] = g.edge_between(g.heads_[e], g.tails_[e]);
  }
  return g;
}

EdgeId Graph::edge_between(NodeId u, NodeId v) const noexcept {
  const auto nbrs = out_neighbors(u);
  for (std::uint32_t k = 0; k < nbrs.size(); ++k) {
    if (nbrs[k] == v) return out_edge(u, k);
  }
  return kInvalidEdge;
}

}  // namespace levnet::topology
