#include "topology/graph.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace levnet::topology {

Graph Graph::from_edges(NodeId node_count,
                        std::vector<std::pair<NodeId, NodeId>> edges) {
  Graph g;
  g.node_count_ = node_count;
  std::sort(edges.begin(), edges.end());
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    LEVNET_CHECK_MSG(edges[i] != edges[i + 1], "parallel edge rejected");
  }
  g.offsets_.assign(node_count + 1, 0);
  g.heads_.resize(edges.size());
  g.tails_.resize(edges.size());
  for (const auto& [u, v] : edges) {
    LEVNET_CHECK(u < node_count && v < node_count);
    ++g.offsets_[u + 1];
  }
  for (NodeId u = 0; u < node_count; ++u) {
    g.offsets_[u + 1] += g.offsets_[u];
    g.max_out_degree_ =
        std::max(g.max_out_degree_, g.offsets_[u + 1] - g.offsets_[u]);
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    g.heads_[i] = edges[i].second;
    g.tails_[i] = edges[i].first;
  }
  g.reverse_.resize(edges.size());
  for (EdgeId e = 0; e < g.heads_.size(); ++e) {
    g.reverse_[e] = g.edge_between(g.heads_[e], g.tails_[e]);
  }
  return g;
}

EdgeId Graph::edge_between(NodeId u, NodeId v) const noexcept {
  const auto nbrs = out_neighbors(u);
  for (std::uint32_t k = 0; k < nbrs.size(); ++k) {
    if (nbrs[k] == v) return out_edge(u, k);
  }
  return kInvalidEdge;
}

void Graph::ensure_mask() {
  if (!faulted_) {
    edge_live_.assign(heads_.size(), 1);
    node_live_.assign(node_count_, 1);
    faulted_ = true;
  }
}

void Graph::kill_edge(EdgeId e) {
  LEVNET_CHECK(e < heads_.size());
  ensure_mask();
  if (edge_live_[e] != 0) {
    edge_live_[e] = 0;
    ++dead_edges_;
  }
}

void Graph::kill_link(EdgeId e) {
  kill_edge(e);
  const EdgeId rev = reverse_[e];
  if (rev != kInvalidEdge) kill_edge(rev);
}

void Graph::kill_node(NodeId v) {
  LEVNET_CHECK(v < node_count_);
  ensure_mask();
  if (node_live_[v] == 0) return;
  node_live_[v] = 0;
  ++dead_nodes_;
  // Incident edges die with the node: out-edges from the CSR row, in-edges
  // by a full scan (the CSR has no in-edge index; node kills are plan
  // application, not hot path).
  for (EdgeId e = offsets_[v]; e < offsets_[v + 1]; ++e) {
    if (edge_live_[e] != 0) {
      edge_live_[e] = 0;
      ++dead_edges_;
    }
  }
  for (EdgeId e = 0; e < heads_.size(); ++e) {
    if (heads_[e] == v && edge_live_[e] != 0) {
      edge_live_[e] = 0;
      ++dead_edges_;
    }
  }
}

void Graph::revive_all() {
  faulted_ = false;
  dead_edges_ = 0;
  dead_nodes_ = 0;
  edge_live_.clear();
  node_live_.clear();
}

std::uint32_t Graph::live_out_degree(NodeId u) const noexcept {
  if (!faulted_) return out_degree(u);
  std::uint32_t live = 0;
  for (EdgeId e = offsets_[u]; e < offsets_[u + 1]; ++e) {
    live += edge_live_[e];
  }
  return live;
}

NodeId Graph::random_live_neighbor(NodeId u, support::Rng& rng) const {
  const std::uint32_t live = live_out_degree(u);
  if (live == 0) return kInvalidNode;
  auto pick = static_cast<std::uint32_t>(rng.below(live));
  for (EdgeId e = offsets_[u]; e < offsets_[u + 1]; ++e) {
    if (!edge_live(e)) continue;
    if (pick-- == 0) return heads_[e];
  }
  return kInvalidNode;  // unreachable
}

}  // namespace levnet::topology
