#pragma once

#include <cstddef>
#include <cstdint>

namespace levnet::obs {

/// Cumulative event counters the recorder maintains. The enumerator order
/// is the index into Recorder's counter array and into kProbeInfo below,
/// so the two must stay in lockstep (and therefore in name-sorted order).
enum class Probe : std::uint8_t {
  kCacheEvictions = 0,
  kCacheHits = 1,
  kCacheMisses = 2,
  kCombiningMerges = 3,
  kConsumptions = 4,
  kDetours = 5,
  kInjections = 6,
  kRehashAttempts = 7,
  kTransmissions = 8,
};

inline constexpr std::size_t kProbeCount = 9;

[[nodiscard]] constexpr std::size_t probe_index(Probe p) noexcept {
  return static_cast<std::size_t>(p);
}

struct ProbeInfo {
  const char* name;  // JSON key; stable across releases
  const char* what;
};

/// Probe name registry. Export order in the metrics JSONL is this table's
/// order, which is pinned (and lint-checked) to ascending name order.
// levnet-lint: sorted-table(obs-probe-registry)
inline constexpr ProbeInfo kProbeInfo[kProbeCount] = {
    {"cache_evictions", "warm machines dropped from the serve LRU cache"},
    {"cache_hits", "serve requests resolved to a cached warm machine"},
    {"cache_misses", "serve requests that had to build their machine"},
    {"combining_merges", "requests absorbed into an in-queue twin"},
    {"consumptions", "packets delivered to their destination handler"},
    {"detours", "fault detours taken around a dead link"},
    {"injections", "packets injected into the network"},
    {"rehash_attempts", "emulation rehashes after a blown step budget"},
    {"transmissions", "link traversals (one per active edge per step)"},
};
// levnet-lint: end-table

/// Per-level queue-occupancy samples are clamped to this many levels; the
/// deepest tracked level absorbs everything below it.
inline constexpr std::size_t kMaxTrackedLevels = 8;

}  // namespace levnet::obs
