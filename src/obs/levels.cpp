#include "obs/levels.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>

#include "obs/probes.hpp"
#include "topology/graph.hpp"

namespace levnet::obs {

std::vector<std::uint8_t> edge_levels(const topology::Graph& graph) {
  constexpr std::uint32_t kUnvisited =
      std::numeric_limits<std::uint32_t>::max();
  const std::size_t nodes = graph.node_count();
  std::vector<std::uint32_t> depth(nodes, kUnvisited);
  std::vector<std::uint32_t> frontier;
  if (nodes != 0) {
    depth[0] = 0;
    frontier.push_back(0);
  }
  std::vector<std::uint32_t> next;
  std::uint32_t d = 0;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (const std::uint32_t u : frontier) {
      for (const std::uint32_t v : graph.out_neighbors(u)) {
        if (depth[v] == kUnvisited) {
          depth[v] = d;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  std::vector<std::uint8_t> levels(graph.edge_count(), 0);
  for (std::size_t e = 0; e < levels.size(); ++e) {
    const std::uint32_t tail = graph.edge_tail(static_cast<std::uint32_t>(e));
    std::uint32_t level = depth[tail] == kUnvisited ? 0 : depth[tail];
    level = std::min<std::uint32_t>(
        level, static_cast<std::uint32_t>(kMaxTrackedLevels) - 1);
    levels[e] = static_cast<std::uint8_t>(level);
  }
  return levels;
}

std::uint32_t level_count(const std::vector<std::uint8_t>& levels) {
  std::uint8_t max_level = 0;
  for (const std::uint8_t level : levels) {
    max_level = std::max(max_level, level);
  }
  return levels.empty() ? 0 : static_cast<std::uint32_t>(max_level) + 1;
}

}  // namespace levnet::obs
