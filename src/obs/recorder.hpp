#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/probes.hpp"

namespace levnet::topology {
class Graph;
}

namespace levnet::obs {

struct RecorderConfig {
  /// Sample the per-step time series every `cadence` engine steps;
  /// 0 disables the time series (histograms and counters still collect).
  std::uint32_t cadence = 0;
  /// Collect virtual-time trace spans for Chrome/Perfetto export.
  bool trace = false;
};

/// One time-series point: cumulative probe counters plus instantaneous
/// occupancy, captured at the end of an engine step.
struct StepSample {
  std::uint64_t step = 0;  // virtual step, monotone across rehash attempts
  std::uint64_t in_flight = 0;
  std::array<std::uint64_t, kProbeCount> counters{};
  std::array<std::uint32_t, kMaxTrackedLevels> level_queue{};
};

/// Span kinds emitted into the trace. Values index kSpanNames.
enum class Span : std::uint8_t {
  kPhaseA = 0,   // transmission phase of an engine step
  kPhaseB = 1,   // concurrent landing-decision phase (staged step)
  kPhaseC = 2,   // commit phase (staged step)
  kLanding = 3,  // serial landing phase (bounded-buffer step)
  kData = 4,     // packet lifecycle, PacketKind::kData
  kRequest = 5,  // packet lifecycle, PacketKind::kRequest
  kReply = 6,    // packet lifecycle, PacketKind::kReply
};

struct TraceEvent {
  std::uint64_t ts = 0;   // virtual ticks (kTicksPerStep per engine step)
  std::uint64_t dur = 0;  // virtual ticks
  std::uint32_t tid = 0;  // 0 for engine phases, source node for packets
  Span span = Span::kPhaseA;
};

/// Virtual ticks per simulation step; phases A/B/C of one step get
/// distinct sub-step timestamps so they nest visibly in a trace viewer.
inline constexpr std::uint64_t kTicksPerStep = 4;

/// Deterministic run recorder. One recorder observes one seeded run (all
/// rehash attempts included); every hook is called from a serial section
/// of the engine or emulator except the per-shard lanes, which phase A
/// fills concurrently and merge_lanes() folds back in shard order at the
/// step barrier. With no recorder attached the instrumented code paths
/// reduce to a null-pointer test, keeping disabled observability
/// byte-inert and allocation-free.
class Recorder {
 public:
  explicit Recorder(RecorderConfig config = {});

  const RecorderConfig& config() const noexcept { return config_; }

  /// Builds the per-edge level labelling used by occupancy samples.
  /// Optional: without it every edge reports on level 0.
  void bind_topology(const topology::Graph& graph);

  // --- counter hooks (serial contexts) ---
  void count_injection() noexcept {
    ++counters_[probe_index(Probe::kInjections)];
  }
  void count_detour() noexcept { ++counters_[probe_index(Probe::kDetours)]; }
  void count_rehash_attempt() noexcept {
    ++counters_[probe_index(Probe::kRehashAttempts)];
  }
  void count_combining_merge() noexcept {
    ++counters_[probe_index(Probe::kCombiningMerges)];
  }

  /// Delivery of a packet to its destination handler: feeds the latency
  /// histograms, the consumption counter and (when tracing) the packet's
  /// lifecycle span. `kind` is the raw sim::PacketKind value.
  void on_consume(std::uint8_t kind, std::uint32_t src,
                  std::uint32_t inject_step, std::uint16_t hops,
                  std::uint32_t now);

  // --- per-shard lanes (the only concurrently-written state) ---
  struct alignas(64) Lane {
    std::uint64_t transmissions = 0;
  };
  void ensure_lanes(std::size_t shards);
  Lane& lane(std::size_t shard) noexcept { return lanes_[shard]; }
  /// Folds the lanes into the cumulative counters in shard order and
  /// zeroes them; called at the step barrier (serial).
  void merge_lanes() noexcept;

  // --- step boundary (serial) ---
  [[nodiscard]] bool trace_enabled() const noexcept { return config_.trace; }
  /// Emits the engine phase spans for the step that just finished.
  void trace_step(std::uint32_t now, bool staged);
  [[nodiscard]] bool sample_due(std::uint32_t now) const noexcept {
    return config_.cadence != 0 && now % config_.cadence == 0;
  }
  /// Opens a time-series sample; follow with sample_edge() per occupied
  /// edge.
  void begin_sample(std::uint32_t now, std::uint64_t in_flight);
  void sample_edge(std::uint32_t edge, std::size_t occupancy) noexcept;

  /// Advances the virtual-time base past a finished engine attempt so
  /// steps stay monotone across rehash restarts.
  void advance_time(std::uint32_t engine_steps) noexcept {
    time_base_ += engine_steps;
  }
  [[nodiscard]] std::uint64_t virtual_step(std::uint32_t now) const noexcept {
    return time_base_ + now;
  }
  [[nodiscard]] std::uint64_t virtual_steps_total() const noexcept {
    return time_base_;
  }

  // --- results ---
  [[nodiscard]] std::uint64_t counter(Probe p) const noexcept {
    return counters_[probe_index(p)];
  }
  [[nodiscard]] const Histogram& journey() const noexcept { return journey_; }
  [[nodiscard]] const Histogram& queue_delay() const noexcept {
    return queue_delay_;
  }
  [[nodiscard]] const std::vector<StepSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint32_t tracked_levels() const noexcept {
    return tracked_levels_;
  }

  /// Writes this run's metrics as JSON Lines: one "run" summary line, then
  /// one "sample" line per time-series point. Integer-only fields, so the
  /// bytes are identical for identical runs.
  void write_metrics_jsonl(std::ostream& out, std::uint32_t seed_index) const;

 private:
  RecorderConfig config_;
  std::array<std::uint64_t, kProbeCount> counters_{};
  Histogram journey_;
  Histogram queue_delay_;
  std::vector<Lane> lanes_;
  std::vector<StepSample> samples_;
  std::vector<TraceEvent> events_;
  std::vector<std::uint8_t> edge_levels_;
  std::uint32_t tracked_levels_ = 1;
  std::uint64_t time_base_ = 0;
};

/// Writes a Chrome/Perfetto trace_event JSON file covering one recorder
/// per seed (pid = seed index). Timestamps are virtual ticks — the file
/// is bit-identical for bit-identical runs.
void write_trace_json(std::ostream& out,
                      const std::vector<const Recorder*>& recorders);

}  // namespace levnet::obs
