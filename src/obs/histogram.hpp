#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace levnet::obs {

/// Fixed-bucket histogram for nonnegative integer samples (latencies in
/// steps, queue delays, ...). The bucket layout is compiled in, so merging
/// and quantile extraction are deterministic: values 0..31 get exact
/// (identity) buckets, larger values share one bucket per power of two.
/// Quantiles report the inclusive upper bound of the quantile's bucket —
/// an integer, never an interpolation — so they are bit-stable across
/// platforms and thread counts.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 64;
  static constexpr std::uint64_t kLinearLimit = 32;  // buckets 0..31 exact

  /// Bucket index for a sample value.
  [[nodiscard]] static constexpr std::size_t bucket_of(
      std::uint64_t value) noexcept {
    if (value < kLinearLimit) return static_cast<std::size_t>(value);
    const auto width = static_cast<std::size_t>(std::bit_width(value));
    const std::size_t bucket = kLinearLimit - 6 + width;
    return bucket < kBucketCount ? bucket : kBucketCount - 1;
  }

  /// Inclusive upper bound of a bucket (the value a quantile reports).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      std::size_t bucket) noexcept {
    if (bucket < kLinearLimit) return bucket;
    if (bucket >= kBucketCount - 1) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    return (std::uint64_t{1} << (bucket - (kLinearLimit - 6))) - 1;
  }

  void record(std::uint64_t value) noexcept {
    ++counts_[bucket_of(value)];
    ++total_;
    sum_ += value;
  }

  void merge(const Histogram& other) noexcept {
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      counts_[b] += other.counts_[b];
    }
    total_ += other.total_;
    sum_ += other.sum_;
  }

  void reset() noexcept {
    counts_.fill(0);
    total_ = 0;
    sum_ = 0;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] const std::array<std::uint64_t, kBucketCount>& counts()
      const noexcept {
    return counts_;
  }

  /// Upper bound of the bucket holding the q-quantile sample (0 when
  /// empty). q is clamped to [0, 1].
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace levnet::obs
