#pragma once

#include <cstdint>
#include <vector>

namespace levnet::topology {
class Graph;
}

namespace levnet::obs {

/// Per-edge level labels for the occupancy time series: the level of a
/// directed edge is the BFS depth of its tail from node 0, clamped to
/// kMaxTrackedLevels - 1. On the leveled networks of the paper this
/// matches the stage the link feeds; on arbitrary graphs it is still a
/// deterministic, topology-only labelling. Unreachable tails land on
/// level 0.
[[nodiscard]] std::vector<std::uint8_t> edge_levels(
    const topology::Graph& graph);

/// Number of distinct levels present in a labelling (max label + 1; 0 for
/// an empty edge set).
[[nodiscard]] std::uint32_t level_count(
    const std::vector<std::uint8_t>& levels);

}  // namespace levnet::obs
