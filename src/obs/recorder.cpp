#include "obs/recorder.hpp"

#include <algorithm>
#include <ostream>

#include "obs/levels.hpp"
#include "topology/graph.hpp"

namespace levnet::obs {

namespace {

constexpr const char* kSpanNames[] = {
    "phaseA", "phaseB", "phaseC", "landing", "data", "request", "reply",
};

constexpr const char* span_name(Span span) noexcept {
  return kSpanNames[static_cast<std::size_t>(span)];
}

constexpr const char* span_category(Span span) noexcept {
  switch (span) {
    case Span::kPhaseA:
    case Span::kPhaseB:
    case Span::kPhaseC:
    case Span::kLanding:
      return "engine";
    case Span::kData:
    case Span::kRequest:
    case Span::kReply:
      return "packet";
  }
  return "engine";
}

constexpr Span packet_span(std::uint8_t kind) noexcept {
  switch (kind) {
    case 1:
      return Span::kRequest;
    case 2:
      return Span::kReply;
    default:
      return Span::kData;
  }
}

void write_counters_json(std::ostream& out,
                         const std::array<std::uint64_t, kProbeCount>& c) {
  out << '{';
  for (std::size_t i = 0; i < kProbeCount; ++i) {
    if (i != 0) out << ',';
    out << '"' << kProbeInfo[i].name << "\":" << c[i];
  }
  out << '}';
}

void write_quantiles_json(std::ostream& out, const Histogram& h) {
  out << "{\"p50\":" << h.quantile(0.50) << ",\"p95\":" << h.quantile(0.95)
      << ",\"p99\":" << h.quantile(0.99) << ",\"samples\":" << h.total()
      << ",\"sum\":" << h.sum() << '}';
}

}  // namespace

Recorder::Recorder(RecorderConfig config) : config_(config) {
  lanes_.resize(1);
}

void Recorder::bind_topology(const topology::Graph& graph) {
  edge_levels_ = edge_levels(graph);
  tracked_levels_ = std::max<std::uint32_t>(1, level_count(edge_levels_));
}

void Recorder::on_consume(std::uint8_t kind, std::uint32_t src,
                          std::uint32_t inject_step, std::uint16_t hops,
                          std::uint32_t now) {
  ++counters_[probe_index(Probe::kConsumptions)];
  const std::uint64_t journey = now - inject_step;
  const std::uint64_t queue_delay =
      journey - std::min<std::uint64_t>(journey, hops);
  journey_.record(journey);
  queue_delay_.record(queue_delay);
  if (config_.trace) {
    TraceEvent event;
    event.ts = (time_base_ + inject_step) * kTicksPerStep;
    event.dur = journey * kTicksPerStep;
    event.tid = src;
    event.span = packet_span(kind);
    events_.push_back(event);
  }
}

void Recorder::ensure_lanes(std::size_t shards) {
  if (shards < 1) shards = 1;
  if (lanes_.size() < shards) lanes_.resize(shards);
}

void Recorder::merge_lanes() noexcept {
  // Shard order: lane s holds shard s's phase-A counts; folding by
  // ascending index is the documented deterministic aggregation.
  for (Lane& lane : lanes_) {
    counters_[probe_index(Probe::kTransmissions)] += lane.transmissions;
    lane.transmissions = 0;
  }
}

void Recorder::trace_step(std::uint32_t now, bool staged) {
  const std::uint64_t base = virtual_step(now) * kTicksPerStep;
  events_.push_back(TraceEvent{base, 1, 0, Span::kPhaseA});
  if (staged) {
    events_.push_back(TraceEvent{base + 1, 1, 0, Span::kPhaseB});
    events_.push_back(TraceEvent{base + 2, 1, 0, Span::kPhaseC});
  } else {
    events_.push_back(TraceEvent{base + 1, 2, 0, Span::kLanding});
  }
}

void Recorder::begin_sample(std::uint32_t now, std::uint64_t in_flight) {
  StepSample sample;
  sample.step = virtual_step(now);
  sample.in_flight = in_flight;
  sample.counters = counters_;
  samples_.push_back(sample);
}

void Recorder::sample_edge(std::uint32_t edge, std::size_t occupancy) noexcept {
  if (samples_.empty()) return;
  std::size_t level = 0;
  if (edge < edge_levels_.size()) level = edge_levels_[edge];
  samples_.back().level_queue[level] +=
      static_cast<std::uint32_t>(occupancy);
}

void Recorder::write_metrics_jsonl(std::ostream& out,
                                   std::uint32_t seed_index) const {
  out << "{\"type\":\"run\",\"seed\":" << seed_index
      << ",\"virtual_steps\":" << time_base_ << ",\"counters\":";
  write_counters_json(out, counters_);
  out << ",\"latency\":";
  write_quantiles_json(out, journey_);
  out << ",\"queue_delay\":";
  write_quantiles_json(out, queue_delay_);
  out << ",\"levels\":" << tracked_levels_ << "}\n";
  for (const StepSample& sample : samples_) {
    out << "{\"type\":\"sample\",\"seed\":" << seed_index
        << ",\"step\":" << sample.step
        << ",\"in_flight\":" << sample.in_flight << ",\"counters\":";
    write_counters_json(out, sample.counters);
    out << ",\"level_queue\":[";
    const std::size_t levels =
        std::min<std::size_t>(tracked_levels_, kMaxTrackedLevels);
    for (std::size_t level = 0; level < levels; ++level) {
      if (level != 0) out << ',';
      out << sample.level_queue[level];
    }
    out << "]}\n";
  }
}

void write_trace_json(std::ostream& out,
                      const std::vector<const Recorder*>& recorders) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t pid = 0; pid < recorders.size(); ++pid) {
    if (recorders[pid] == nullptr) continue;
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"seed " << pid << "\"}}";
    for (const TraceEvent& event : recorders[pid]->events()) {
      out << ",\n{\"name\":\"" << span_name(event.span) << "\",\"cat\":\""
          << span_category(event.span) << "\",\"ph\":\"X\",\"ts\":" << event.ts
          << ",\"dur\":" << event.dur << ",\"pid\":" << pid
          << ",\"tid\":" << event.tid << '}';
    }
  }
  out << "\n]}\n";
}

}  // namespace levnet::obs
