#include "obs/histogram.hpp"

namespace levnet::obs {

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample, 1-based. The multiply is exact enough:
  // both operands are small integers-in-doubles, and every platform
  // rounds the same IEEE way, so the rank (and thus the answer) is
  // bit-stable.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  if (rank < 1) rank = 1;
  if (rank > total_) rank = total_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    seen += counts_[b];
    if (seen >= rank) return bucket_upper(b);
  }
  return bucket_upper(kBucketCount - 1);
}

}  // namespace levnet::obs
