#pragma once
// Hypercube routing: e-cube (deterministic dimension order) and Valiant's
// two-phase scheme [19] — the classical O~(log N) comparison point of
// Section 1 against which the paper's sub-logarithmic networks are framed.

#include "routing/router.hpp"
#include "topology/hypercube.hpp"

namespace levnet::routing {

class EcubeRouter final : public Router {
 public:
  explicit EcubeRouter(const topology::Hypercube& cube) : cube_(cube) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  const topology::Hypercube& cube_;
};

class ValiantHypercubeRouter final : public Router {
 public:
  explicit ValiantHypercubeRouter(const topology::Hypercube& cube)
      : cube_(cube) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  const topology::Hypercube& cube_;
};

}  // namespace levnet::routing
