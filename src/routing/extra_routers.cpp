#include "routing/extra_routers.hpp"

namespace levnet::routing {

// ------------------------------------------------------------------- torus

NodeId TorusGreedyRouter::step_toward(NodeId at, NodeId target) const noexcept {
  const std::uint32_t r = torus_.row_of(at);
  const std::uint32_t c = torus_.col_of(at);
  const std::uint32_t tr = torus_.row_of(target);
  const std::uint32_t tc = torus_.col_of(target);
  if (c != tc) return torus_.node_id(r, torus_.col_step_toward(c, tc));
  return torus_.node_id(torus_.row_step_toward(r, tr), c);
}

void TorusGreedyRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = 0;
}

NodeId TorusGreedyRouter::next_hop(Packet& p, NodeId at,
                                   support::Rng& rng) const {
  (void)rng;
  if (at == p.dst) return kInvalidNode;
  return step_toward(at, p.dst);
}

std::uint32_t TorusGreedyRouter::remaining(const Packet& p, NodeId at) const {
  return torus_.distance(at, p.dst);
}

void TorusValiantRouter::prepare(Packet& p, support::Rng& rng) const {
  p.intermediate = static_cast<NodeId>(rng.below(torus_.node_count()));
  p.route_state = 0;
}

NodeId TorusValiantRouter::step_toward(NodeId at,
                                       NodeId target) const noexcept {
  const std::uint32_t r = torus_.row_of(at);
  const std::uint32_t c = torus_.col_of(at);
  const std::uint32_t tr = torus_.row_of(target);
  const std::uint32_t tc = torus_.col_of(target);
  if (c != tc) return torus_.node_id(r, torus_.col_step_toward(c, tc));
  return torus_.node_id(torus_.row_step_toward(r, tr), c);
}

NodeId TorusValiantRouter::next_hop(Packet& p, NodeId at,
                                    support::Rng& rng) const {
  (void)rng;
  if (p.route_state == 0) {
    if (at != p.intermediate) return step_toward(at, p.intermediate);
    p.route_state = 1;
  }
  if (at == p.dst) return kInvalidNode;
  return step_toward(at, p.dst);
}

std::uint32_t TorusValiantRouter::remaining(const Packet& p, NodeId at) const {
  if (p.route_state == 0) {
    return torus_.distance(at, p.intermediate) +
           torus_.distance(p.intermediate, p.dst);
  }
  return torus_.distance(at, p.dst);
}

// --------------------------------------------------------------------- ccc

void CccSweepRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = 0;
}

NodeId CccSweepRouter::next_hop(Packet& p, NodeId at, support::Rng& rng) const {
  (void)rng;
  return ccc_.sweep_step(at, p.dst);
}

std::uint32_t CccSweepRouter::remaining(const Packet& p, NodeId at) const {
  (void)at;
  (void)p;
  // Exact CCC distance needs a per-pair optimization; the route bound is a
  // serviceable priority surrogate (all packets share it -> FIFO ties).
  return ccc_.route_bound();
}

void CccTwoPhaseRouter::prepare(Packet& p, support::Rng& rng) const {
  p.intermediate = static_cast<NodeId>(rng.below(ccc_.node_count()));
  p.route_state = 0;
}

NodeId CccTwoPhaseRouter::next_hop(Packet& p, NodeId at,
                                   support::Rng& rng) const {
  (void)rng;
  if (p.route_state == 0) {
    if (at != p.intermediate) return ccc_.sweep_step(at, p.intermediate);
    p.route_state = 1;
  }
  return ccc_.sweep_step(at, p.dst);
}

std::uint32_t CccTwoPhaseRouter::remaining(const Packet& p, NodeId at) const {
  (void)at;
  return p.route_state == 0 ? 2 * ccc_.route_bound() : ccc_.route_bound();
}

}  // namespace levnet::routing
