#pragma once
// d-way shuffle routing (Section 2.3.5).
//
// ShuffleUniquePathRouter follows the unique n-link forward path (inject
// the destination digits least-significant first) — deterministic and
// oblivious. ShuffleTwoPhaseRouter is Algorithm 2.3: a first pass injecting
// n uniformly random digits reaches a random intermediate node, a second
// pass follows the unique path to the destination — Theorem 2.3 /
// Corollary 2.2 give O~(n) routing on the n-way shuffle, beating the
// Theta(n log n / log log n) of Valiant's general d-way analysis.

#include "routing/router.hpp"
#include "topology/shuffle.hpp"

namespace levnet::routing {

class ShuffleUniquePathRouter final : public Router {
 public:
  explicit ShuffleUniquePathRouter(const topology::DWayShuffle& net)
      : net_(net) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  const topology::DWayShuffle& net_;
};

class ShuffleTwoPhaseRouter final : public Router {
 public:
  explicit ShuffleTwoPhaseRouter(const topology::DWayShuffle& net)
      : net_(net) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  static constexpr std::uint32_t kPhaseRandom = 1;
  static constexpr std::uint32_t kPhaseFixed = 2;
  static constexpr std::uint32_t kPhaseDone = 3;

  const topology::DWayShuffle& net_;
};

}  // namespace levnet::routing
