#pragma once
// Mesh routing algorithms (Section 3.4 and baselines from Section 3.2).
//
// MeshThreeStageRouter is the paper's algorithm: partition the mesh into
// horizontal slices of `slice_rows` rows (Figure 5); a packet from (i, j)
// to (k, l)
//   stage 0: moves along column j to a random row i' inside its own slice,
//   stage 1: moves along row i' to column l,
//   stage 2: moves along column l to row k.
// With slice_rows ~ n/log n, stage 0 costs o(n) and stages 1-2 cost
// n + o(n) each under furthest-destination-first contention resolution
// (Theorem 3.1: 2n + o(n), queues O(log n)). For the locality regime of
// Theorem 3.3, slice_rows is scaled with the request distance d.
//
// ValiantBrebnerMeshRouter is the 3n + o(n) baseline [19]: route XY to a
// uniformly random node anywhere, then XY to the destination.
// GreedyXYMeshRouter is the deterministic dimension-order baseline whose
// queues blow up on the transpose permutation — the reason randomization
// is needed.

#include "routing/router.hpp"
#include "topology/mesh.hpp"

namespace levnet::routing {

/// Default slice height from the paper's epsilon = 1/log n choice.
[[nodiscard]] std::uint32_t default_slice_rows(const topology::Mesh& mesh);

class MeshThreeStageRouter final : public Router {
 public:
  /// slice_rows == 0 selects the default n/ceil(log2 n).
  MeshThreeStageRouter(const topology::Mesh& mesh, std::uint32_t slice_rows = 0);

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  /// Exact remaining path length (stage-aware) — the "furthest destination
  /// first" key of Section 3.4.
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

  [[nodiscard]] std::uint32_t slice_rows() const noexcept {
    return slice_rows_;
  }

 private:
  static constexpr std::uint32_t kStageRandomize = 0;
  static constexpr std::uint32_t kStageRow = 1;
  static constexpr std::uint32_t kStageColumn = 2;

  const topology::Mesh& mesh_;
  std::uint32_t slice_rows_;
};

class ValiantBrebnerMeshRouter final : public Router {
 public:
  explicit ValiantBrebnerMeshRouter(const topology::Mesh& mesh) : mesh_(mesh) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  const topology::Mesh& mesh_;
};

class GreedyXYMeshRouter final : public Router {
 public:
  explicit GreedyXYMeshRouter(const topology::Mesh& mesh) : mesh_(mesh) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  const topology::Mesh& mesh_;
};

}  // namespace levnet::routing
