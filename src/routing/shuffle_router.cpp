#include "routing/shuffle_router.hpp"

#include "support/check.hpp"

namespace levnet::routing {
// The shift link out of a constant-digit node that re-injects the same
// digit is a self-loop in the abstract network; the graph omits self-loops,
// so the routers below consume such hops in place (the packet stays put for
// that link of the unique path) — a zero-cost traversal that can only make
// the measured routing time smaller by at most one step for d special nodes.

void ShuffleUniquePathRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = 0;
}

NodeId ShuffleUniquePathRouter::next_hop(Packet& p, NodeId at,
                                         support::Rng& rng) const {
  (void)rng;
  std::uint32_t hops = sim::route_state_hops(p.route_state);
  while (hops < net_.digits()) {
    const NodeId next = net_.forward_toward(at, p.dst, hops);
    ++hops;
    if (next != at) {
      p.route_state = sim::route_state_pack(0, hops);
      return next;
    }
  }
  LEVNET_DCHECK(at == p.dst);
  p.route_state = sim::route_state_pack(0, hops);
  return kInvalidNode;
}

std::uint32_t ShuffleUniquePathRouter::remaining(const Packet& p,
                                                 NodeId at) const {
  (void)at;
  return net_.digits() - sim::route_state_hops(p.route_state);
}

void ShuffleTwoPhaseRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = sim::route_state_pack(kPhaseRandom, 0);
}

NodeId ShuffleTwoPhaseRouter::next_hop(Packet& p, NodeId at,
                                       support::Rng& rng) const {
  std::uint32_t phase = sim::route_state_phase(p.route_state);
  std::uint32_t hops = sim::route_state_hops(p.route_state);
  const std::uint32_t n = net_.digits();

  for (;;) {
    if (phase == kPhaseDone) return kInvalidNode;
    if (phase == kPhaseRandom && hops == n) {
      p.intermediate = at;
      phase = kPhaseFixed;
      hops = 0;
    }
    if (phase == kPhaseFixed && hops == n) {
      LEVNET_DCHECK(at == p.dst);
      p.route_state = sim::route_state_pack(kPhaseDone, 0);
      return kInvalidNode;
    }
    NodeId next;
    if (phase == kPhaseRandom) {
      next = net_.shift_inject(
          at, static_cast<std::uint32_t>(rng.below(net_.radix())));
    } else {
      next = net_.forward_toward(at, p.dst, hops);
    }
    ++hops;
    if (next != at) {
      p.route_state = sim::route_state_pack(phase, hops);
      return next;
    }
    // Self-loop link: hop consumed in place; keep going this step.
    p.route_state = sim::route_state_pack(phase, hops);
  }
}

std::uint32_t ShuffleTwoPhaseRouter::remaining(const Packet& p,
                                               NodeId at) const {
  (void)at;
  const std::uint32_t phase = sim::route_state_phase(p.route_state);
  const std::uint32_t hops = sim::route_state_hops(p.route_state);
  const std::uint32_t n = net_.digits();
  switch (phase) {
    case kPhaseRandom:
      return (n - hops) + n;
    case kPhaseFixed:
      return n - hops;
    default:
      return 0;
  }
}

}  // namespace levnet::routing
