#include "routing/shuffle_router.hpp"

#include "support/check.hpp"

namespace levnet::routing {
// The shift link out of a constant-digit node that re-injects the same
// digit is a self-loop in the abstract network; the graph omits self-loops,
// so the routers below consume such hops in place (the packet stays put for
// that link of the unique path) — a zero-cost traversal that can only make
// the measured routing time smaller by at most one step for d special nodes.

void ShuffleUniquePathRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = 0;
}

NodeId ShuffleUniquePathRouter::next_hop(Packet& p, NodeId at,
                                         support::Rng& rng) const {
  (void)rng;
  std::uint32_t hops = sim::route_state_hops(p.route_state);
  while (hops < net_.digits()) {
    const NodeId next = net_.forward_toward(at, p.dst, hops);
    ++hops;
    if (next != at) {
      p.route_state = sim::route_state_pack(0, hops);
      return next;
    }
  }
  LEVNET_DCHECK(at == p.dst);
  p.route_state = sim::route_state_pack(0, hops);
  return kInvalidNode;
}

std::uint32_t ShuffleUniquePathRouter::remaining(const Packet& p,
                                                 NodeId at) const {
  (void)at;
  return net_.digits() - sim::route_state_hops(p.route_state);
}

void ShuffleTwoPhaseRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = sim::route_state_pack(kPhaseRandom, 0);
}

NodeId ShuffleTwoPhaseRouter::next_hop(Packet& p, NodeId at,
                                       support::Rng& rng) const {
  std::uint32_t phase = sim::route_state_phase(p.route_state);
  std::uint32_t hops = sim::route_state_hops(p.route_state);
  const std::uint32_t n = net_.digits();

  if (net_.graph().has_faults() && phase != kPhaseDone && at != p.dst) {
    // Degraded last hop: all d forward (shift) entries into the
    // destination can be dead while a backward (un-shift) link survives —
    // forward-only restarts would then never deliver. Grab the
    // destination whenever it is a live direct neighbor, whichever
    // direction the link points, and finish the journey there.
    const topology::EdgeId direct = net_.graph().edge_between(at, p.dst);
    if (direct != topology::kInvalidEdge && net_.graph().edge_live(direct)) {
      p.route_state = sim::route_state_pack(kPhaseDone, 0);
      return p.dst;
    }
  }

  for (;;) {
    if (phase == kPhaseDone) return kInvalidNode;
    if (phase == kPhaseRandom && hops == n) {
      p.intermediate = at;
      phase = kPhaseFixed;
      hops = 0;
    }
    if (phase == kPhaseFixed && hops == n) {
      LEVNET_DCHECK(at == p.dst);
      p.route_state = sim::route_state_pack(kPhaseDone, 0);
      return kInvalidNode;
    }
    NodeId next;
    if (phase == kPhaseRandom) {
      next = net_.shift_inject(
          at, static_cast<std::uint32_t>(rng.below(net_.radix())));
      if (net_.graph().has_faults()) {
        // Degraded mode: prefer a live shift link (self-loop shifts stay
        // put and need no link). Bounded redraws; the engine's on_fault
        // detour is the backstop for badly cut-off nodes.
        for (std::uint32_t tries = 0; tries < 2 * net_.radix(); ++tries) {
          if (next == at) break;
          const topology::EdgeId e = net_.graph().edge_between(at, next);
          if (e != topology::kInvalidEdge && net_.graph().edge_live(e)) break;
          next = net_.shift_inject(
              at, static_cast<std::uint32_t>(rng.below(net_.radix())));
        }
      }
    } else {
      next = net_.forward_toward(at, p.dst, hops);
    }
    ++hops;
    if (next != at) {
      p.route_state = sim::route_state_pack(phase, hops);
      return next;
    }
    // Self-loop link: hop consumed in place; keep going this step.
    p.route_state = sim::route_state_pack(phase, hops);
  }
}

std::uint32_t ShuffleTwoPhaseRouter::remaining(const Packet& p,
                                               NodeId at) const {
  (void)at;
  const std::uint32_t phase = sim::route_state_phase(p.route_state);
  const std::uint32_t hops = sim::route_state_hops(p.route_state);
  const std::uint32_t n = net_.digits();
  switch (phase) {
    case kPhaseRandom:
      return (n - hops) + n;
    case kPhaseFixed:
      return n - hops;
    default:
      return 0;
  }
}

}  // namespace levnet::routing
