#pragma once
// Routers for the extension topologies: torus (wrapped mesh) and
// cube-connected cycles. Both get a deterministic oblivious router and the
// Valiant-style two-phase randomized variant, mirroring the pattern the
// paper applies to the star and shuffle.

#include "routing/router.hpp"
#include "topology/ccc.hpp"
#include "topology/torus.hpp"

namespace levnet::routing {

/// Dimension-order routing with wrapped shortest directions.
class TorusGreedyRouter final : public Router {
 public:
  explicit TorusGreedyRouter(const topology::Torus& torus) : torus_(torus) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  [[nodiscard]] NodeId step_toward(NodeId at, NodeId target) const noexcept;

  const topology::Torus& torus_;
};

/// Two-phase: wrapped dimension-order to a uniform random node, then on to
/// the destination.
class TorusValiantRouter final : public Router {
 public:
  explicit TorusValiantRouter(const topology::Torus& torus) : torus_(torus) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  [[nodiscard]] NodeId step_toward(NodeId at, NodeId target) const noexcept;

  const topology::Torus& torus_;
};

/// Deterministic oblivious dimension sweep (see ccc.hpp).
class CccSweepRouter final : public Router {
 public:
  explicit CccSweepRouter(const topology::CubeConnectedCycles& ccc)
      : ccc_(ccc) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  const topology::CubeConnectedCycles& ccc_;
};

/// Two-phase on CCC: sweep to a uniform random node, then sweep to the
/// destination — the universal leveled-network recipe on the class's
/// constant-degree member.
class CccTwoPhaseRouter final : public Router {
 public:
  explicit CccTwoPhaseRouter(const topology::CubeConnectedCycles& ccc)
      : ccc_(ccc) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  const topology::CubeConnectedCycles& ccc_;
};

}  // namespace levnet::routing
