#include "routing/driver.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "support/check.hpp"

namespace levnet::routing {

void RouterTraffic::on_packet(Packet& p, NodeId at, std::uint32_t step,
                              support::Rng& rng,
                              std::vector<sim::Forward>& out) {
  const NodeId next = router_.next_hop(p, at, rng);
  if (next == kInvalidNode) {
    ++delivered_;
    if (at != p.dst) ++misdelivered_;
    if (p.id < arrival_steps_.size()) arrival_steps_[p.id] = step;
    return;
  }
  out.push_back(sim::Forward{next, p.route_state});
}

RoutingOutcome run_workload(const topology::Graph& graph, const Router& router,
                            const sim::Workload& workload,
                            sim::EngineConfig config, support::Rng& rng,
                            const EndpointMap& endpoint) {
  RouterTraffic traffic(router);
  traffic.expect_packets(workload.size());
  sim::SyncEngine engine(graph, traffic, config);
  std::uint32_t id = 0;
  for (const auto& demand : workload) {
    Packet p;
    p.id = id++;
    p.src = endpoint ? endpoint(demand.source) : demand.source;
    p.dst = endpoint ? endpoint(demand.destination) : demand.destination;
    router.prepare(p, rng);
    const NodeId origin = p.src;
    engine.inject(std::move(p), origin, rng);
  }
  const bool drained = engine.run(rng);

  RoutingOutcome outcome;
  outcome.metrics = engine.metrics();
  outcome.delivered = traffic.delivered();
  outcome.complete = drained && traffic.all_at_destination() &&
                     traffic.delivered() == workload.size();
  std::uint32_t slowest = 0;
  for (const std::uint32_t arrival : traffic.arrival_steps()) {
    if (arrival != RouterTraffic::kNotDelivered) {
      slowest = std::max(slowest, arrival);
    }
  }
  outcome.slowest_packet = slowest;
  if (config.recorder != nullptr) {
    const obs::Recorder& rec = *config.recorder;
    outcome.latency_p50 = rec.journey().quantile(0.50);
    outcome.latency_p95 = rec.journey().quantile(0.95);
    outcome.latency_p99 = rec.journey().quantile(0.99);
    outcome.queue_delay_p50 = rec.queue_delay().quantile(0.50);
    outcome.queue_delay_p95 = rec.queue_delay().quantile(0.95);
    outcome.queue_delay_p99 = rec.queue_delay().quantile(0.99);
  }
  return outcome;
}

}  // namespace levnet::routing
