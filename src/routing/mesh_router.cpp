#include "routing/mesh_router.hpp"

#include <bit>
#include <cstdlib>

#include "support/check.hpp"

namespace levnet::routing {
namespace {

using topology::Mesh;

[[nodiscard]] std::uint32_t abs_diff(std::uint32_t a, std::uint32_t b) noexcept {
  return a > b ? a - b : b - a;
}

/// One vertical step from (r, c) toward target row.
[[nodiscard]] NodeId vertical_step(const Mesh& mesh, std::uint32_t r,
                                   std::uint32_t c,
                                   std::uint32_t target_row) noexcept {
  return mesh.node_id(target_row > r ? r + 1 : r - 1, c);
}

/// One horizontal step from (r, c) toward target column.
[[nodiscard]] NodeId horizontal_step(const Mesh& mesh, std::uint32_t r,
                                     std::uint32_t c,
                                     std::uint32_t target_col) noexcept {
  return mesh.node_id(r, target_col > c ? c + 1 : c - 1);
}

/// XY route: along the row to the target column first, then the column.
[[nodiscard]] NodeId xy_step(const Mesh& mesh, NodeId at, NodeId target) noexcept {
  const std::uint32_t r = mesh.row_of(at);
  const std::uint32_t c = mesh.col_of(at);
  const std::uint32_t tr = mesh.row_of(target);
  const std::uint32_t tc = mesh.col_of(target);
  if (c != tc) return horizontal_step(mesh, r, c, tc);
  return vertical_step(mesh, r, c, tr);
}

}  // namespace

std::uint32_t default_slice_rows(const topology::Mesh& mesh) {
  const std::uint32_t n = mesh.rows();
  const auto log2n = static_cast<std::uint32_t>(std::bit_width(n - 1));
  return std::max(1U, n / std::max(1U, log2n));
}

MeshThreeStageRouter::MeshThreeStageRouter(const topology::Mesh& mesh,
                                           std::uint32_t slice_rows)
    : mesh_(mesh),
      slice_rows_(slice_rows == 0 ? default_slice_rows(mesh) : slice_rows) {
  LEVNET_CHECK(slice_rows_ >= 1);
}

void MeshThreeStageRouter::prepare(Packet& p, support::Rng& rng) const {
  const std::uint32_t src_row = mesh_.row_of(p.src);
  const auto [first, last] = mesh_.slice_rows_of(src_row, slice_rows_);
  const auto random_row =
      static_cast<std::uint32_t>(rng.range(first, last));
  p.intermediate = mesh_.node_id(random_row, mesh_.col_of(p.src));
  p.route_state = kStageRandomize;
}

NodeId MeshThreeStageRouter::next_hop(Packet& p, NodeId at,
                                      support::Rng& rng) const {
  (void)rng;
  const std::uint32_t r = mesh_.row_of(at);
  const std::uint32_t c = mesh_.col_of(at);
  const std::uint32_t dst_row = mesh_.row_of(p.dst);
  const std::uint32_t dst_col = mesh_.col_of(p.dst);

  if (p.route_state == kStageRandomize) {
    const std::uint32_t random_row = mesh_.row_of(p.intermediate);
    if (r != random_row) return vertical_step(mesh_, r, c, random_row);
    p.route_state = kStageRow;
  }
  if (p.route_state == kStageRow) {
    if (c != dst_col) return horizontal_step(mesh_, r, c, dst_col);
    p.route_state = kStageColumn;
  }
  if (r != dst_row) return vertical_step(mesh_, r, c, dst_row);
  return kInvalidNode;
}

std::uint32_t MeshThreeStageRouter::remaining(const Packet& p,
                                              NodeId at) const {
  const std::uint32_t r = mesh_.row_of(at);
  const std::uint32_t c = mesh_.col_of(at);
  const std::uint32_t dst_row = mesh_.row_of(p.dst);
  const std::uint32_t dst_col = mesh_.col_of(p.dst);
  switch (p.route_state) {
    case kStageRandomize: {
      const std::uint32_t random_row = mesh_.row_of(p.intermediate);
      return abs_diff(r, random_row) + abs_diff(c, dst_col) +
             abs_diff(random_row, dst_row);
    }
    case kStageRow:
      return abs_diff(c, dst_col) + abs_diff(r, dst_row);
    default:
      return abs_diff(r, dst_row);
  }
}

void ValiantBrebnerMeshRouter::prepare(Packet& p, support::Rng& rng) const {
  p.intermediate = static_cast<NodeId>(rng.below(mesh_.node_count()));
  p.route_state = 0;
}

NodeId ValiantBrebnerMeshRouter::next_hop(Packet& p, NodeId at,
                                          support::Rng& rng) const {
  (void)rng;
  if (p.route_state == 0) {
    if (at != p.intermediate) return xy_step(mesh_, at, p.intermediate);
    p.route_state = 1;
  }
  if (at == p.dst) return kInvalidNode;
  return xy_step(mesh_, at, p.dst);
}

std::uint32_t ValiantBrebnerMeshRouter::remaining(const Packet& p,
                                                  NodeId at) const {
  if (p.route_state == 0) {
    return mesh_.distance(at, p.intermediate) +
           mesh_.distance(p.intermediate, p.dst);
  }
  return mesh_.distance(at, p.dst);
}

void GreedyXYMeshRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = 0;
}

NodeId GreedyXYMeshRouter::next_hop(Packet& p, NodeId at,
                                    support::Rng& rng) const {
  (void)rng;
  if (at == p.dst) return kInvalidNode;
  return xy_step(mesh_, at, p.dst);
}

std::uint32_t GreedyXYMeshRouter::remaining(const Packet& p, NodeId at) const {
  return mesh_.distance(at, p.dst);
}

}  // namespace levnet::routing
