#pragma once
// Algorithm 2.1 — the universal randomized routing algorithm for leveled
// networks, realized on the wrapped radix-d butterfly.
//
// Phase 1: at every level the packet crosses a uniformly random forward
// link ("flipping a d-sided coin"), so after l links it sits on a uniformly
// random intermediate node. Phase 2: it follows the unique forward path of
// exactly l links to its destination. Theorem 2.1: a permutation between
// the endpoint column completes in O~(l) steps with FIFO queues of size
// O(l); Theorem 2.4 extends this to partial l-relations when l = O(d).
//
// Endpoints are column-0 nodes (the wrap identifies the paper's first and
// last columns; see butterfly.hpp).

#include "routing/router.hpp"
#include "topology/butterfly.hpp"

namespace levnet::routing {

class TwoPhaseButterflyRouter final : public Router {
 public:
  explicit TwoPhaseButterflyRouter(const topology::WrappedButterfly& net)
      : net_(net) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;
  /// Fault recovery cannot restart the two hop-counted phases from an
  /// interior column (phase 2 assumes exactly l forward hops from a
  /// column-0 start), so a detoured packet switches to a position-based
  /// recovery phase: follow forward_toward until it stands on p.dst,
  /// escaping dead planned links via l-hop random scrambles (see
  /// next_hop's recover branch for why greedy correction alone livelocks).
  void reroute(Packet& p, NodeId resume_at,
               support::Rng& rng) const override;

 private:
  static constexpr std::uint32_t kPhaseRandom = 1;
  static constexpr std::uint32_t kPhaseFixed = 2;
  static constexpr std::uint32_t kPhaseDone = 3;
  static constexpr std::uint32_t kPhaseRecover = 4;

  /// One hop of the degraded-mode scramble walk: a uniformly random live
  /// out-link of `at`, backward links included (see the .cpp for why
  /// forward-only scrambling is not ergodic).
  [[nodiscard]] NodeId random_live_step(NodeId at, support::Rng& rng) const;

  const topology::WrappedButterfly& net_;
};

/// Deterministic single-pass router along the unique forward path — the
/// oblivious baseline whose congestion the randomized phase 1 removes.
class UniquePathButterflyRouter final : public Router {
 public:
  explicit UniquePathButterflyRouter(const topology::WrappedButterfly& net)
      : net_(net) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;
  /// No degraded mode: the default reroute (src := resume_at + prepare)
  /// would silently misdeliver — the hop-counted pass assumes a column-0
  /// start — and this router's whole point is determinism, which fault
  /// recovery necessarily breaks (see TwoPhaseButterflyRouter's recovery
  /// phase). Fails loudly instead; use the two-phase router for fault
  /// scenarios.
  void reroute(Packet& p, NodeId resume_at,
               support::Rng& rng) const override;

 private:
  const topology::WrappedButterfly& net_;
};

}  // namespace levnet::routing
