#include "routing/star_router.hpp"

namespace levnet::routing {

void StarGreedyRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = 0;
}

NodeId StarGreedyRouter::next_hop(Packet& p, NodeId at,
                                  support::Rng& rng) const {
  (void)rng;
  (void)p;
  if (at == p.dst) return kInvalidNode;
  return star_.greedy_step(at, p.dst);
}

std::uint32_t StarGreedyRouter::remaining(const Packet& p, NodeId at) const {
  return star_.distance(at, p.dst);
}

void StarTwoPhaseRouter::prepare(Packet& p, support::Rng& rng) const {
  p.intermediate = static_cast<NodeId>(rng.below(star_.node_count()));
  if (star_.graph().has_faults()) {
    // Degraded mode: a dead intermediate would aim the greedy phase into a
    // hole it can never enter; rejection-sample over survivors (uniform on
    // live nodes, same single draw as the pristine path when all are live).
    while (!star_.graph().node_live(p.intermediate)) {
      p.intermediate = static_cast<NodeId>(rng.below(star_.node_count()));
    }
  }
  p.route_state = sim::route_state_pack(kPhaseToIntermediate, 0);
}

NodeId StarTwoPhaseRouter::next_hop(Packet& p, NodeId at,
                                    support::Rng& rng) const {
  (void)rng;
  if (sim::route_state_phase(p.route_state) == kPhaseToIntermediate) {
    if (at != p.intermediate) return star_.greedy_step(at, p.intermediate);
    p.route_state = sim::route_state_pack(kPhaseToDestination, 0);
  }
  if (at == p.dst) return kInvalidNode;
  return star_.greedy_step(at, p.dst);
}

std::uint32_t StarTwoPhaseRouter::remaining(const Packet& p, NodeId at) const {
  if (sim::route_state_phase(p.route_state) == kPhaseToIntermediate) {
    return star_.distance(at, p.intermediate) +
           star_.distance(p.intermediate, p.dst);
  }
  return star_.distance(at, p.dst);
}

}  // namespace levnet::routing
