#include "routing/two_phase.hpp"

#include "support/check.hpp"

namespace levnet::routing {

void TwoPhaseButterflyRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = p.src == p.dst ? sim::route_state_pack(kPhaseDone, 0)
                                 : sim::route_state_pack(kPhaseRandom, 0);
  p.intermediate = p.src;
}

NodeId TwoPhaseButterflyRouter::next_hop(Packet& p, NodeId at,
                                         support::Rng& rng) const {
  std::uint32_t phase = sim::route_state_phase(p.route_state);
  std::uint32_t hops = sim::route_state_hops(p.route_state);
  const std::uint32_t l = net_.levels();

  if (phase == kPhaseDone) return kInvalidNode;
  if (phase == kPhaseRandom && hops == l) {
    // Random walk complete: `at` is the uniformly random intermediate node.
    p.intermediate = at;
    phase = kPhaseFixed;
    hops = 0;
  }
  if (phase == kPhaseFixed && hops == l) {
    LEVNET_DCHECK(at == p.dst);
    p.route_state = sim::route_state_pack(kPhaseDone, 0);
    return kInvalidNode;
  }

  if (phase == kPhaseRecover) {
    // Position-based degraded-mode phase (see reroute): follow the unique
    // forward structure until the packet stands on its destination; no hop
    // counting, so further detours cannot desynchronize it.
    //
    // Greedy correction alone can livelock: a dead digit-correcting link
    // into column c+1 funnels *every* greedy approach to the same row
    // through itself (the digit at position c can only change at column
    // c), and no detour via neighbors changes that digit either. The
    // escape is the paper's own medicine re-applied: when the planned
    // link is dead, scramble — walk uniformly random live links (backward
    // included, see random_live_step) for the next l hops, which
    // re-randomizes every digit, then resume greedy correction from
    // wherever that lands. Each scramble gives a fresh chance to approach
    // the destination with the blocked digit already correct, so recovery
    // terminates w.h.p.
    if (at == p.dst) {
      p.route_state = sim::route_state_pack(kPhaseDone, 0);
      return kInvalidNode;
    }
    // Degraded last hop: every *forward* entry into the destination can be
    // dead while a backward link survives (the graph is physically
    // bidirectional). Recovery therefore grabs the destination whenever it
    // is a live direct neighbor, whichever direction the link points.
    const topology::EdgeId direct = net_.graph().edge_between(at, p.dst);
    if (direct != topology::kInvalidEdge && net_.graph().edge_live(direct)) {
      return p.dst;
    }
    const std::uint32_t scramble = hops;  // hops field = scramble countdown
    if (scramble > 0) {
      p.route_state = sim::route_state_pack(kPhaseRecover, scramble - 1);
      return random_live_step(at, rng);
    }
    const NodeId next = net_.forward_toward(at, net_.row_of(p.dst));
    const topology::EdgeId e = net_.graph().edge_between(at, next);
    if (e != topology::kInvalidEdge && net_.graph().edge_live(e)) {
      return next;
    }
    p.route_state = sim::route_state_pack(kPhaseRecover, l);
    return random_live_step(at, rng);
  }

  NodeId next;
  if (phase == kPhaseRandom) {
    const std::uint32_t column = net_.column_of(at);
    const NodeId row = net_.row_of(at);
    auto digit = static_cast<std::uint32_t>(rng.below(net_.radix()));
    if (net_.graph().has_faults()) {
      // Degraded mode: the d-sided coin prefers live forward links. A few
      // redraws keep the choice uniform over survivors in the common case;
      // if the node is badly cut off the engine's on_fault detour (which
      // re-enters via reroute) is the backstop.
      for (std::uint32_t tries = 0; tries < 2 * net_.radix(); ++tries) {
        const NodeId candidate =
            net_.node_id((column + 1) % l, net_.with_digit(row, column, digit));
        const topology::EdgeId e = net_.graph().edge_between(at, candidate);
        if (e != topology::kInvalidEdge && net_.graph().edge_live(e)) break;
        digit = static_cast<std::uint32_t>(rng.below(net_.radix()));
      }
    }
    next = net_.node_id((column + 1) % l, net_.with_digit(row, column, digit));
  } else {
    next = net_.forward_toward(at, net_.row_of(p.dst));
  }
  p.route_state = sim::route_state_pack(phase, hops + 1);
  return next;
}

NodeId TwoPhaseButterflyRouter::random_live_step(NodeId at,
                                                 support::Rng& rng) const {
  // Uniform over ALL live out-links, backward included. Forward-only
  // scrambling is not ergodic on a degraded butterfly: a neighborhood
  // whose live forward exits all funnel into a forward-dead node traps a
  // forward-only walk forever (its backward escapes are never taken while
  // any live forward link exists). A uniform walk on the live graph is
  // ergodic, so together with the dst-adjacency grab recovery terminates
  // with probability 1.
  const topology::Graph& g = net_.graph();
  const NodeId next = g.random_live_neighbor(at, rng);
  if (next != kInvalidNode) return next;
  // Whole fan dead: hand any neighbor to the engine, whose on_fault
  // drop/detour path is the backstop.
  return g.out_neighbors(at)[0];
}

void TwoPhaseButterflyRouter::reroute(Packet& p, NodeId resume_at,
                                      support::Rng& rng) const {
  (void)rng;
  p.src = resume_at;
  // Resume with a full scramble countdown, not straight greedy: an
  // engine-level detour means the packet just bounced off a badly degraded
  // neighborhood (e.g. a node whose whole forward fan is dead, reachable
  // only backward). Greedy correction from the detour target would funnel
  // deterministically back into the same trap; l random hops first make
  // the walk ergodic over the surviving graph, and the dst-adjacency grab
  // in next_hop's recover branch completes delivery.
  p.route_state = sim::route_state_pack(kPhaseRecover, net_.levels());
}

std::uint32_t TwoPhaseButterflyRouter::remaining(const Packet& p,
                                                 NodeId at) const {
  (void)at;
  const std::uint32_t phase = sim::route_state_phase(p.route_state);
  const std::uint32_t hops = sim::route_state_hops(p.route_state);
  const std::uint32_t l = net_.levels();
  switch (phase) {
    case kPhaseRandom:
      return (l - hops) + l;
    case kPhaseFixed:
      return l - hops;
    case kPhaseRecover:
      return l;  // flat estimate; recovery has no hop budget
    default:
      return 0;
  }
}

void UniquePathButterflyRouter::reroute(Packet& p, NodeId resume_at,
                                        support::Rng& rng) const {
  (void)p;
  (void)resume_at;
  (void)rng;
  LEVNET_CHECK_MSG(false,
                   "UniquePathButterflyRouter has no degraded mode; use "
                   "TwoPhaseButterflyRouter for fault scenarios");
}

void UniquePathButterflyRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = sim::route_state_pack(p.src == p.dst ? 1 : 0, 0);
}

NodeId UniquePathButterflyRouter::next_hop(Packet& p, NodeId at,
                                           support::Rng& rng) const {
  (void)rng;
  if (sim::route_state_phase(p.route_state) == 1) return kInvalidNode;
  const std::uint32_t hops = sim::route_state_hops(p.route_state);
  if (hops == net_.levels()) {
    LEVNET_DCHECK(at == p.dst);
    return kInvalidNode;
  }
  p.route_state = sim::route_state_pack(0, hops + 1);
  return net_.forward_toward(at, net_.row_of(p.dst));
}

std::uint32_t UniquePathButterflyRouter::remaining(const Packet& p,
                                                   NodeId at) const {
  (void)at;
  if (sim::route_state_phase(p.route_state) == 1) return 0;
  return net_.levels() - sim::route_state_hops(p.route_state);
}

}  // namespace levnet::routing
