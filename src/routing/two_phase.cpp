#include "routing/two_phase.hpp"

#include "support/check.hpp"

namespace levnet::routing {

void TwoPhaseButterflyRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = p.src == p.dst ? sim::route_state_pack(kPhaseDone, 0)
                                 : sim::route_state_pack(kPhaseRandom, 0);
  p.intermediate = p.src;
}

NodeId TwoPhaseButterflyRouter::next_hop(Packet& p, NodeId at,
                                         support::Rng& rng) const {
  std::uint32_t phase = sim::route_state_phase(p.route_state);
  std::uint32_t hops = sim::route_state_hops(p.route_state);
  const std::uint32_t l = net_.levels();

  if (phase == kPhaseDone) return kInvalidNode;
  if (phase == kPhaseRandom && hops == l) {
    // Random walk complete: `at` is the uniformly random intermediate node.
    p.intermediate = at;
    phase = kPhaseFixed;
    hops = 0;
  }
  if (phase == kPhaseFixed && hops == l) {
    LEVNET_DCHECK(at == p.dst);
    p.route_state = sim::route_state_pack(kPhaseDone, 0);
    return kInvalidNode;
  }

  NodeId next;
  if (phase == kPhaseRandom) {
    const std::uint32_t column = net_.column_of(at);
    const NodeId row = net_.row_of(at);
    const auto digit =
        static_cast<std::uint32_t>(rng.below(net_.radix()));
    next = net_.node_id((column + 1) % l, net_.with_digit(row, column, digit));
  } else {
    next = net_.forward_toward(at, net_.row_of(p.dst));
  }
  p.route_state = sim::route_state_pack(phase, hops + 1);
  return next;
}

std::uint32_t TwoPhaseButterflyRouter::remaining(const Packet& p,
                                                 NodeId at) const {
  (void)at;
  const std::uint32_t phase = sim::route_state_phase(p.route_state);
  const std::uint32_t hops = sim::route_state_hops(p.route_state);
  const std::uint32_t l = net_.levels();
  switch (phase) {
    case kPhaseRandom:
      return (l - hops) + l;
    case kPhaseFixed:
      return l - hops;
    default:
      return 0;
  }
}

void UniquePathButterflyRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = sim::route_state_pack(p.src == p.dst ? 1 : 0, 0);
}

NodeId UniquePathButterflyRouter::next_hop(Packet& p, NodeId at,
                                           support::Rng& rng) const {
  (void)rng;
  if (sim::route_state_phase(p.route_state) == 1) return kInvalidNode;
  const std::uint32_t hops = sim::route_state_hops(p.route_state);
  if (hops == net_.levels()) {
    LEVNET_DCHECK(at == p.dst);
    return kInvalidNode;
  }
  p.route_state = sim::route_state_pack(0, hops + 1);
  return net_.forward_toward(at, net_.row_of(p.dst));
}

std::uint32_t UniquePathButterflyRouter::remaining(const Packet& p,
                                                   NodeId at) const {
  (void)at;
  if (sim::route_state_phase(p.route_state) == 1) return 0;
  return net_.levels() - sim::route_state_hops(p.route_state);
}

}  // namespace levnet::routing
