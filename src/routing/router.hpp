#pragma once
// Router interface: one oblivious next-hop policy per algorithm.
//
// All routers in the paper are oblivious (Section 2.2.1): a packet's path
// depends only on its own (source, destination) and its private coin flips.
// The interface enforces that shape — `prepare` draws the coins (e.g. the
// random intermediate node of Valiant's scheme) into the packet, and
// `next_hop` is a pure function of packet state and current position.
//
// Concurrency contract: routers must be immutable after construction (no
// mutable members, all randomness via the caller-supplied Rng). The trial
// harness (analysis::TrialRunner) shares one router instance across
// concurrent seed trials, each with its own engine and Rng.

#include <cstdint>

#include "sim/packet.hpp"
#include "support/rng.hpp"
#include "topology/graph.hpp"

namespace levnet::routing {

using sim::Packet;
using topology::kInvalidNode;
using topology::NodeId;

class Router {
 public:
  virtual ~Router() = default;

  /// Initializes routing state for a journey that starts at p.src and ends
  /// at p.dst (draws random intermediates, resets hop counters).
  virtual void prepare(Packet& p, support::Rng& rng) const = 0;

  /// Next node to visit from `at`, or kInvalidNode when the packet is to be
  /// delivered at `at`. May advance p.route_state.
  [[nodiscard]] virtual NodeId next_hop(Packet& p, NodeId at,
                                        support::Rng& rng) const = 0;

  /// Remaining journey length estimate; the engine's furthest-first
  /// discipline serves larger values first (Section 3.4's priority rule).
  [[nodiscard]] virtual std::uint32_t remaining(const Packet& p,
                                                NodeId at) const {
    (void)p;
    (void)at;
    return 0;
  }

  /// Degraded-mode recovery: a fault detour is about to move p to
  /// `resume_at`, off its planned path; re-initialize the routing state so
  /// next_hop makes progress toward p.dst from there. The default restarts
  /// the journey (src := resume_at, prepare), which is correct for
  /// position-based routers (star greedy/two-phase, shuffle, mesh).
  /// Hop-counted routers whose phases assume a fixed start column
  /// (butterfly) must override with a position-based recovery mode.
  virtual void reroute(Packet& p, NodeId resume_at,
                       support::Rng& rng) const {
    p.src = resume_at;
    prepare(p, rng);
  }
};

}  // namespace levnet::routing
