#pragma once
// Drives a Router over a Workload on the synchronous engine and audits
// delivery — the harness behind every routing theorem experiment.

#include <cstdint>
#include <functional>
#include <vector>

#include "routing/router.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/traffic.hpp"
#include "sim/workload.hpp"

namespace levnet::routing {

/// TrafficHandler adapter: asks the Router for hops and records deliveries.
class RouterTraffic final : public sim::TrafficHandler {
 public:
  explicit RouterTraffic(const Router& router) : router_(router) {}

  void on_packet(Packet& p, NodeId at, std::uint32_t step, support::Rng& rng,
                 std::vector<sim::Forward>& out) override;

  [[nodiscard]] std::uint32_t priority(const Packet& p,
                                       NodeId at) const override {
    return router_.remaining(p, at);
  }

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] bool all_at_destination() const noexcept {
    return misdelivered_ == 0;
  }
  /// Step at which each packet id arrived (kNotDelivered if still in flight).
  [[nodiscard]] const std::vector<std::uint32_t>& arrival_steps() const noexcept {
    return arrival_steps_;
  }
  void expect_packets(std::size_t count) {
    arrival_steps_.assign(count, kNotDelivered);
  }

  static constexpr std::uint32_t kNotDelivered = ~std::uint32_t{0};

 private:
  const Router& router_;
  std::uint64_t delivered_ = 0;
  std::uint64_t misdelivered_ = 0;
  std::vector<std::uint32_t> arrival_steps_;
};

struct RoutingOutcome {
  sim::RunMetrics metrics;
  std::uint64_t delivered = 0;
  bool complete = false;  ///< drained, every packet at its destination
  /// Max over packets of (arrival - injection): the paper's "number of
  /// steps taken by a packet" for the slowest packet == routing time.
  std::uint32_t slowest_packet = 0;
  /// Delivery-latency and queue-delay quantiles (steps), filled from the
  /// obs::Recorder attached via EngineConfig::recorder; zero without one.
  std::uint64_t latency_p50 = 0;
  std::uint64_t latency_p95 = 0;
  std::uint64_t latency_p99 = 0;
  std::uint64_t queue_delay_p50 = 0;
  std::uint64_t queue_delay_p95 = 0;
  std::uint64_t queue_delay_p99 = 0;
};

/// Maps workload endpoint indices to physical nodes (identity by default;
/// the butterfly maps index i to its column-0 node i).
using EndpointMap = std::function<NodeId(std::uint32_t)>;

[[nodiscard]] RoutingOutcome run_workload(const topology::Graph& graph,
                                          const Router& router,
                                          const sim::Workload& workload,
                                          sim::EngineConfig config,
                                          support::Rng& rng,
                                          const EndpointMap& endpoint = {});

}  // namespace levnet::routing
