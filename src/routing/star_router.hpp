#pragma once
// Star-graph routing (Section 2.3.3-2.3.4).
//
// StarGreedyRouter is the deterministic oblivious router: follow a minimal
// star-transposition path (send the first symbol home, else fetch the
// smallest unplaced symbol). StarTwoPhaseRouter is Algorithm 2.2: pick a
// uniformly random intermediate node, route greedily to it, then greedily
// to the destination — Theorem 2.2 / Corollary 2.1 give O~(n) routing with
// FIFO queues.

#include "routing/router.hpp"
#include "topology/star.hpp"

namespace levnet::routing {

class StarGreedyRouter final : public Router {
 public:
  explicit StarGreedyRouter(const topology::StarGraph& star) : star_(star) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  const topology::StarGraph& star_;
};

class StarTwoPhaseRouter final : public Router {
 public:
  explicit StarTwoPhaseRouter(const topology::StarGraph& star) : star_(star) {}

  void prepare(Packet& p, support::Rng& rng) const override;
  [[nodiscard]] NodeId next_hop(Packet& p, NodeId at,
                                support::Rng& rng) const override;
  [[nodiscard]] std::uint32_t remaining(const Packet& p,
                                        NodeId at) const override;

 private:
  static constexpr std::uint32_t kPhaseToIntermediate = 1;
  static constexpr std::uint32_t kPhaseToDestination = 2;

  const topology::StarGraph& star_;
};

}  // namespace levnet::routing
