#include "routing/hypercube_router.hpp"

namespace levnet::routing {

void EcubeRouter::prepare(Packet& p, support::Rng& rng) const {
  (void)rng;
  p.route_state = 0;
}

NodeId EcubeRouter::next_hop(Packet& p, NodeId at, support::Rng& rng) const {
  (void)rng;
  if (at == p.dst) return kInvalidNode;
  return cube_.ecube_step(at, p.dst);
}

std::uint32_t EcubeRouter::remaining(const Packet& p, NodeId at) const {
  return cube_.distance(at, p.dst);
}

void ValiantHypercubeRouter::prepare(Packet& p, support::Rng& rng) const {
  p.intermediate = static_cast<NodeId>(rng.below(cube_.node_count()));
  p.route_state = 0;
}

NodeId ValiantHypercubeRouter::next_hop(Packet& p, NodeId at,
                                        support::Rng& rng) const {
  (void)rng;
  if (p.route_state == 0) {
    if (at != p.intermediate) return cube_.ecube_step(at, p.intermediate);
    p.route_state = 1;
  }
  if (at == p.dst) return kInvalidNode;
  return cube_.ecube_step(at, p.dst);
}

std::uint32_t ValiantHypercubeRouter::remaining(const Packet& p,
                                                NodeId at) const {
  if (p.route_state == 0) {
    return cube_.distance(at, p.intermediate) +
           cube_.distance(p.intermediate, p.dst);
  }
  return cube_.distance(at, p.dst);
}

}  // namespace levnet::routing
