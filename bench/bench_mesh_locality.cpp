// E10 (Theorem 3.3): locality on the mesh — if every memory request
// originates within Manhattan distance d of the memory's location, the
// emulation step finishes in 6d + o(d), independent of n.
//
// The hypothesis is about where memory lives, so the experiment constructs
// the local layout directly (request to a module within distance d, reply
// back) and scales the stage-1 slice height with d rather than n: the
// slice height rides the three-stage router's spec parameter.

#include <algorithm>

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "routing/driver.hpp"
#include "sim/workload.hpp"
#include "support/bits.hpp"
#include "support/rng.hpp"

namespace {

using namespace levnet;

using bench::u32;

/// One emulation step under the locality hypothesis: request to a module
/// within distance d, then the reply retraces (an independent routing of
/// the inverse demands). Each phase is one routing run.
routing::RoutingOutcome locality_round(const machine::Machine& m,
                                       std::uint32_t n, std::uint32_t d,
                                       std::uint64_t seed, bool reply_phase) {
  support::Rng rng(seed);
  sim::Workload w = sim::local_mesh_workload(n, d, rng);
  if (reply_phase) {
    for (auto& demand : w) std::swap(demand.source, demand.destination);
  }
  return routing::run_workload(m.graph(), m.router(), w, m.engine_config(),
                               rng);
}

void locality_row(analysis::ScenarioContext& ctx, std::uint32_t n,
                  std::uint32_t d) {
  // Slice height scaled to the locality radius: d / log2(d) (>= 1).
  const std::uint32_t slice =
      std::max(1U, d / std::max(1U, support::ceil_log2(d)));
  const machine::Machine m = machine::Machine::build(
      "mesh:" + std::to_string(n) + "/three-stage:" + std::to_string(slice) +
      "/erew/furthest-first");

  const analysis::TrialStats request_stats =
      ctx.trials([&](std::uint64_t seed) {
        return locality_round(m, n, d, seed, false);
      });
  const analysis::TrialStats reply_stats =
      ctx.trials([&](std::uint64_t seed) {
        return locality_round(m, n, d, seed, true);
      });

  const double round_trip = request_stats.steps.mean + reply_stats.steps.mean;
  const double round_trip_max =
      request_stats.steps.max + reply_stats.steps.max;

  auto& table = ctx.table(
      "E10 / Theorem 3.3: local requests (distance <= d) finish in 6d + o(d)",
      {"n", "d", "slice", "request(mean)", "reply(mean)", "roundtrip",
       "roundtrip(max)", "per d", "bound 6d", "ok"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{d})
      .cell(std::uint64_t{slice})
      .cell(request_stats.steps.mean, 1)
      .cell(reply_stats.steps.mean, 1)
      .cell(round_trip, 1)
      .cell(round_trip_max, 0)
      .cell(round_trip / d, 2)
      .cell(std::uint64_t{6 * d})
      .cell(std::string(request_stats.all_complete && reply_stats.all_complete
                            ? "yes"
                            : "NO"));
}

// Fixed large n, growing d: cost must track d, not n.
[[maybe_unused]] const analysis::ScenarioRegistrar kLocality{
    analysis::Scenario{
        .name = "E10/mesh-locality",
        .experiment = "E10 / Theorem 3.3",
        .sweep = "(n, d); local workloads within Manhattan distance d",
        .points = {{64, 4}, {64, 8}, {64, 16}, {64, 32}, {128, 8}, {128, 16}},
        .smoke_points = {{64, 4}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              locality_row(ctx, u32(ctx.arg(0)), u32(ctx.arg(1)));
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
