#!/usr/bin/env bash
# Builds the bench binaries and runs them with JSON emission enabled, so each
# run lands as BENCH_<name>.json at the repo root (or $LEVNET_BENCH_JSON_DIR).
#
# Usage:
#   bench/run_benches.sh [build-dir] [bench-name ...]
#
# The first argument names the build dir only when it is recognizable as
# one — an existing directory or a path containing a slash (use ./build2
# for a fresh dir); anything else is taken as a bench name and the
# default <repo>/build is used. With no bench names, every bench_*
# binary in <build-dir>/bench is run.
# Examples:
#   bench/run_benches.sh build emulation_leveled
#   bench/run_benches.sh emulation_leveled hashing
#   bench/run_benches.sh ./build-release
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# The build-dir argument is optional: treat the first argument as a build
# dir only when it is one (an existing directory or a path with a slash);
# otherwise it is a bench name and the default build dir applies.
build_dir="$repo_root/build"
if (( $# > 0 )) && { [[ -d "$1" ]] || [[ "$1" == */* ]]; }; then
  build_dir="$1"
  shift
fi

if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi

if (( $# > 0 )); then
  targets=()
  for name in "$@"; do targets+=("bench_${name#bench_}"); done
  cmake --build "$build_dir" -j --target "${targets[@]}"
else
  cmake --build "$build_dir" -j --target benches
fi

export LEVNET_BENCH_JSON_DIR="${LEVNET_BENCH_JSON_DIR:-$repo_root}"

read -ra LEVNET_BENCH_ARGS <<< "${LEVNET_BENCH_EXTRA_ARGS:-}"

run_one() {
  local bin="$1"
  echo "=== $(basename "$bin") ==="
  "$bin" ${LEVNET_BENCH_ARGS[@]+"${LEVNET_BENCH_ARGS[@]}"}
}

if (( $# > 0 )); then
  for name in "$@"; do
    run_one "$build_dir/bench/bench_${name#bench_}"
  done
else
  for bin in "$build_dir"/bench/bench_*; do
    [[ -x "$bin" && -f "$bin" ]] || continue
    run_one "$bin"
  done
fi

echo "JSON reports in $LEVNET_BENCH_JSON_DIR:"
ls -1 "$LEVNET_BENCH_JSON_DIR"/BENCH_*.json 2>/dev/null || echo "  (none)"
