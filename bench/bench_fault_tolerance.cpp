// F-series (beyond the paper): degraded-mode emulation under injected
// faults (src/faults/). The paper's w.h.p. machinery — hashed memory with
// a rehash escape hatch, congestion-tolerant randomized routing — is
// exactly what a degraded network stresses; these scenarios measure how
// gracefully it bends: completion rate, slowdown versus the fault-free run
// of the same seed, detour hops per request, and the extra rehashes that
// module deaths force. The F6+ processor-fault sweeps add the recovery
// cost of work reassignment: adopted program slots and the share of
// slot-work the survivors absorbed.
//
// Every trial owns its Machine (a faulted graph carries a mutable liveness
// mask and must not be shared across concurrent trials): the base
// MachineSpec carries the fault fractions, and stamping the trial seed into
// the spec derives plan and emulator stream together — one seed names one
// exact degraded history, as before the Machine API. The fault-free twin
// is the same spec with the faults knob cleared.

#include <algorithm>
#include <memory>

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "pram/algorithms/access_patterns.hpp"

namespace {

using namespace levnet;

using bench::u32;

constexpr std::uint32_t kPramSteps = 4;

/// Base spec shared by the F-series: two-phase router, a live rehash
/// escape hatch (the budget must be armed when detour storms blow a step),
/// and few retry attempts — a seed the plan defeats should report
/// complete=false in milliseconds, not burn 2^16x budgets first.
machine::MachineSpec fault_spec(const std::string& topology, double links,
                                double nodes, double modules,
                                sim::QueueDiscipline discipline,
                                bool combining, double procs = 0.0) {
  machine::MachineSpec spec =
      machine::parse_spec(topology + "/two-phase/budget=64/rehash=10");
  spec.mode = combining ? machine::Mode::kCrcwCombining : machine::Mode::kErew;
  spec.discipline = discipline;
  spec.faults.links = links;
  spec.faults.nodes = nodes;
  spec.faults.modules = modules;
  spec.faults.procs = procs;
  return spec;
}

/// One seed's degraded-vs-pristine outcome.
struct FaultOutcome {
  double steps = 0.0;          // faulty network steps per PRAM step
  double slowdown = 1.0;       // faulty / fault-free network steps
  double detours_per_req = 0.0;
  double extra_rehashes = 0.0;  // budget + fault rehashes beyond baseline
  double adopted_slots = 0.0;  // program slots executing at a survivor
  /// Recovery overhead: % of all slot-steps that ran on an adopting
  /// survivor instead of the slot's own processor — the work inflation
  /// survivors absorb to keep the full program registry answering.
  double recovery_overhead = 0.0;
  bool complete = false;
};

/// Degraded run + fault-free twin of the same seed -> one FaultOutcome.
template <typename MakeProgram>
FaultOutcome fault_trial(const machine::MachineSpec& base, std::uint64_t seed,
                         MakeProgram make_program) {
  machine::MachineSpec degraded_spec = base;
  degraded_spec.seed = seed;
  machine::Machine degraded = machine::Machine::build(degraded_spec);
  const auto program = make_program(degraded.processors(), seed);
  const emulation::EmulationReport faulty = degraded.run(*program);

  machine::MachineSpec pristine_spec = degraded_spec;
  pristine_spec.faults = machine::FaultKnobs{};  // empty plan: inert
  machine::Machine pristine = machine::Machine::build(pristine_spec);
  const auto baseline_program = make_program(pristine.processors(), seed);
  const emulation::EmulationReport clean = pristine.run(*baseline_program);

  FaultOutcome outcome;
  outcome.complete = faulty.complete;
  outcome.steps = faulty.mean_step_network;
  outcome.slowdown = static_cast<double>(faulty.network_steps) /
                     static_cast<double>(std::max<std::uint64_t>(
                         clean.network_steps, 1));
  outcome.detours_per_req =
      static_cast<double>(faulty.detour_hops) /
      static_cast<double>(std::max<std::uint64_t>(faulty.request_packets, 1));
  outcome.extra_rehashes =
      static_cast<double>(faulty.rehashes + faulty.fault_rehashes) -
      static_cast<double>(clean.rehashes);
  outcome.adopted_slots = static_cast<double>(faulty.dead_procs);
  const double slot_steps =
      static_cast<double>(degraded.processors()) *
      static_cast<double>(std::max<std::uint32_t>(faulty.pram_steps, 1));
  outcome.recovery_overhead =
      100.0 * static_cast<double>(faulty.adopted_slot_steps) / slot_steps;
  return outcome;
}

void fault_row(analysis::ScenarioContext& ctx, const std::string& title,
               const std::vector<std::string>& config_cells,
               const std::vector<FaultOutcome>& outcomes) {
  // Degraded-cost columns average over *completed* seeds only: a defeated
  // seed stops mid-program with truncated step counts, so folding it in
  // would understate slowdown exactly when the faults win. The defeats
  // themselves are what complete% reports.
  double complete = 0, steps = 0, slowdown = 0, detours = 0, rehashes = 0;
  for (const FaultOutcome& o : outcomes) {
    if (!o.complete) continue;
    complete += 1.0;
    steps += o.steps;
    slowdown += o.slowdown;
    detours += o.detours_per_req;
    rehashes += o.extra_rehashes;
  }
  const auto n = static_cast<double>(outcomes.size());
  const double done = complete > 0.0 ? complete : 1.0;  // all-defeated: 0s
  auto& table = ctx.table(
      title, {"network", "fault config", "complete%", "steps/pram-step",
              "slowdown", "detour/req", "extra rehash"});
  table.row()
      .cell(config_cells.at(0))
      .cell(config_cells.at(1))
      .cell(100.0 * complete / n, 0)
      .cell(steps / done, 1)
      .cell(slowdown / done, 2)
      .cell(detours / done, 2)
      .cell(rehashes / done, 1);
}

/// Row writer for the processor-fault sweeps (F6+): instead of the
/// detour/rehash columns, the degraded cost surfaces as work reassignment —
/// how many slots were adopted and what share of the slot-work the
/// survivors absorbed. Same completed-seeds-only averaging as fault_row.
void proc_fault_row(analysis::ScenarioContext& ctx, const std::string& title,
                    const std::vector<std::string>& config_cells,
                    const std::vector<FaultOutcome>& outcomes) {
  double complete = 0, steps = 0, slowdown = 0, adopted = 0, overhead = 0;
  for (const FaultOutcome& o : outcomes) {
    if (!o.complete) continue;
    complete += 1.0;
    steps += o.steps;
    slowdown += o.slowdown;
    adopted += o.adopted_slots;
    overhead += o.recovery_overhead;
  }
  const auto n = static_cast<double>(outcomes.size());
  const double done = complete > 0.0 ? complete : 1.0;  // all-defeated: 0s
  auto& table = ctx.table(
      title, {"network", "fault config", "complete%", "steps/pram-step",
              "slowdown", "adopted slots", "recovery ovh%"});
  table.row()
      .cell(config_cells.at(0))
      .cell(config_cells.at(1))
      .cell(100.0 * complete / n, 0)
      .cell(steps / done, 1)
      .cell(slowdown / done, 2)
      .cell(adopted / done, 1)
      .cell(overhead / done, 1);
}

std::unique_ptr<pram::PramProgram> permutation_program(std::uint32_t procs,
                                                       std::uint64_t seed) {
  return std::make_unique<pram::PermutationTraffic>(procs, kPramSteps, seed);
}

constexpr char kLinksTitle[] =
    "F1: EREW permutation emulation under dead links";

[[maybe_unused]] const analysis::ScenarioRegistrar kLinksStar{
    analysis::Scenario{
        .name = "F1/degraded-links-star",
        .experiment = "F1 / degraded-mode routing (beyond the paper)",
        .sweep = "(n, link%); dead physical links, EREW permutation reads",
        .points = {{5, 0}, {5, 5}, {5, 10}, {5, 15}, {6, 10}},
        .smoke_points = {{5, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const machine::MachineSpec base = fault_spec(
                  "star:" + std::to_string(n),
                  static_cast<double>(ctx.arg(1)) / 100.0, 0.0, 0.0,
                  sim::QueueDiscipline::kFifo, false);
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(base, seed, permutation_program);
              });
              fault_row(ctx, kLinksTitle,
                        {"star(n=" + std::to_string(n) + ")",
                         "links " + std::to_string(ctx.arg(1)) + "%"},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kLinksShuffle{
    analysis::Scenario{
        .name = "F1/degraded-links-shuffle",
        .experiment = "F1 / degraded-mode routing (beyond the paper)",
        .sweep = "(n, link%); n-way shuffle, dead links, EREW permutations",
        .points = {{3, 5}, {3, 10}, {4, 10}},
        .smoke_points = {{3, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const machine::MachineSpec base = fault_spec(
                  "nshuffle:" + std::to_string(n),
                  static_cast<double>(ctx.arg(1)) / 100.0, 0.0, 0.0,
                  sim::QueueDiscipline::kFifo, false);
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(base, seed, permutation_program);
              });
              fault_row(ctx, kLinksTitle,
                        {"shuffle(n=" + std::to_string(n) + ")",
                         "links " + std::to_string(ctx.arg(1)) + "%"},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kModulesStar{
    analysis::Scenario{
        .name = "F2/degraded-modules-star",
        .experiment = "F2 / memory remap under module faults (Hanlon-style)",
        .sweep = "(n, module%); dead memory modules, survivor remap + rehash",
        .points = {{5, 10}, {5, 20}, {6, 10}},
        .smoke_points = {{5, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const machine::MachineSpec base = fault_spec(
                  "star:" + std::to_string(n), 0.0, 0.0,
                  static_cast<double>(ctx.arg(1)) / 100.0,
                  sim::QueueDiscipline::kFifo, false);
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(base, seed, permutation_program);
              });
              fault_row(ctx,
                        "F2: EREW permutation emulation under dead modules",
                        {"star(n=" + std::to_string(n) + ")",
                         "modules " + std::to_string(ctx.arg(1)) + "%"},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kNodesButterfly{
    analysis::Scenario{
        .name = "F3/degraded-nodes-butterfly",
        .experiment = "F3 / dead interior switches on the leveled network",
        .sweep = "(levels l, node%); radix-2 butterfly, endpoint column "
                 "protected",
        .points = {{4, 10}, {5, 10}, {6, 10}},
        .smoke_points = {{4, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto levels = u32(ctx.arg(0));
              const machine::MachineSpec base = fault_spec(
                  "butterfly:" + std::to_string(levels), 0.05,
                  static_cast<double>(ctx.arg(1)) / 100.0, 0.0,
                  sim::QueueDiscipline::kFifo, false);
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(base, seed, permutation_program);
              });
              fault_row(ctx,
                        "F3: EREW permutation emulation under dead switches",
                        {"butterfly(d=2,l=" + std::to_string(levels) + ")",
                         "nodes " + std::to_string(ctx.arg(1)) +
                             "% links 5%"},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kDiscipline{
    analysis::Scenario{
        .name = "F4/degraded-discipline-star",
        .experiment = "F4 / queue discipline under faults (ablation)",
        .sweep = "(n, link%, discipline 0=fifo 1=furthest); dead links",
        .points = {{5, 10, 0}, {5, 10, 1}, {5, 15, 0}, {5, 15, 1}},
        .smoke_points = {{5, 10, 0}, {5, 10, 1}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const auto discipline =
                  ctx.arg(2) != 0 ? sim::QueueDiscipline::kFurthestFirst
                                  : sim::QueueDiscipline::kFifo;
              const machine::MachineSpec base = fault_spec(
                  "star:" + std::to_string(n),
                  static_cast<double>(ctx.arg(1)) / 100.0, 0.0, 0.0,
                  discipline, false);
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(base, seed, permutation_program);
              });
              fault_row(ctx, "F4: queue discipline under dead links",
                        {"star(n=" + std::to_string(n) + ")",
                         "links " + std::to_string(ctx.arg(1)) + "% " +
                             (ctx.arg(2) != 0 ? "furthest" : "fifo")},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kCrcwStar{
    analysis::Scenario{
        .name = "F5/degraded-crcw-star",
        .experiment = "F5 / combining CRCW under faults",
        .sweep = "(n, link%); hot-spot reads, en-route combining, dead links",
        .points = {{5, 5}, {5, 10}},
        .smoke_points = {{5, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const machine::MachineSpec base = fault_spec(
                  "star:" + std::to_string(n),
                  static_cast<double>(ctx.arg(1)) / 100.0, 0.0, 0.0,
                  sim::QueueDiscipline::kFifo, true);
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(
                    base, seed,
                    [](std::uint32_t procs, std::uint64_t)
                        -> std::unique_ptr<pram::PramProgram> {
                      return std::make_unique<pram::HotSpotReadTraffic>(
                          procs, kPramSteps, 99);
                    });
              });
              fault_row(ctx, "F5: combining CRCW hot spot under dead links",
                        {"star(n=" + std::to_string(n) + ")",
                         "links " + std::to_string(ctx.arg(1)) + "%"},
                        outcomes);
            },
    }};

constexpr char kProcsTitle[] =
    "F6: EREW permutation emulation under dead processors";

[[maybe_unused]] const analysis::ScenarioRegistrar kProcsStar{
    analysis::Scenario{
        .name = "F6/degraded-procs-star",
        .experiment =
            "F6 / processor faults with survivor work reassignment "
            "(Chlebus-Gasieniec-Pelc setting)",
        .sweep = "(n, proc%); dead processor endpoints, survivors adopt the "
                 "dead program slots",
        .points = {{5, 5}, {5, 10}, {5, 20}, {6, 10}},
        .smoke_points = {{5, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const machine::MachineSpec base = fault_spec(
                  "star:" + std::to_string(n), 0.0, 0.0, 0.0,
                  sim::QueueDiscipline::kFifo, false,
                  static_cast<double>(ctx.arg(1)) / 100.0);
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(base, seed, permutation_program);
              });
              proc_fault_row(ctx, kProcsTitle,
                             {"star(n=" + std::to_string(n) + ")",
                              "procs " + std::to_string(ctx.arg(1)) + "%"},
                             outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kProcsShuffle{
    analysis::Scenario{
        .name = "F6/degraded-procs-shuffle",
        .experiment =
            "F6 / processor faults with survivor work reassignment "
            "(Chlebus-Gasieniec-Pelc setting)",
        .sweep = "(n, proc%); n-way shuffle, dead processor endpoints",
        .points = {{3, 10}, {4, 10}},
        .smoke_points = {{3, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const machine::MachineSpec base = fault_spec(
                  "nshuffle:" + std::to_string(n), 0.0, 0.0, 0.0,
                  sim::QueueDiscipline::kFifo, false,
                  static_cast<double>(ctx.arg(1)) / 100.0);
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(base, seed, permutation_program);
              });
              proc_fault_row(ctx, kProcsTitle,
                             {"shuffle(n=" + std::to_string(n) + ")",
                              "procs " + std::to_string(ctx.arg(1)) + "%"},
                             outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kProcsButterfly{
    analysis::Scenario{
        .name = "F7/degraded-procs-butterfly",
        .experiment =
            "F7 / processor faults on the leveled network, compounded with "
            "dead links",
        .sweep = "(levels l, proc%); radix-2 butterfly, dead endpoint rows "
                 "plus links 5%",
        .points = {{4, 10}, {5, 10}},
        .smoke_points = {{4, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto levels = u32(ctx.arg(0));
              const machine::MachineSpec base = fault_spec(
                  "butterfly:" + std::to_string(levels), 0.05, 0.0, 0.0,
                  sim::QueueDiscipline::kFifo, false,
                  static_cast<double>(ctx.arg(1)) / 100.0);
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(base, seed, permutation_program);
              });
              proc_fault_row(ctx,
                             "F7: processor faults on the butterfly "
                             "(plus dead links)",
                             {"butterfly(d=2,l=" + std::to_string(levels) + ")",
                              "procs " + std::to_string(ctx.arg(1)) +
                                  "% links 5%"},
                             outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kProcsOnset{
    analysis::Scenario{
        .name = "F8/procs-onset-star",
        .experiment =
            "F8 / epoch-onset processor deaths (mid-run work reassignment)",
        .sweep = "(n, proc%); faults spread over the run's epochs instead of "
                 "all-static",
        .points = {{5, 10}, {5, 20}},
        .smoke_points = {{5, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              machine::MachineSpec base = fault_spec(
                  "star:" + std::to_string(n), 0.0, 0.0, 0.0,
                  sim::QueueDiscipline::kFifo, false,
                  static_cast<double>(ctx.arg(1)) / 100.0);
              base.faults.onset_epochs = kPramSteps;
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial(base, seed, permutation_program);
              });
              proc_fault_row(ctx,
                             "F8: mid-run processor deaths "
                             "(onset epochs spread over the run)",
                             {"star(n=" + std::to_string(n) + ")",
                              "procs " + std::to_string(ctx.arg(1)) +
                                  "% onsets " + std::to_string(kPramSteps)},
                             outcomes);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
