// F-series (beyond the paper): degraded-mode emulation under injected
// faults (src/faults/). The paper's w.h.p. machinery — hashed memory with
// a rehash escape hatch, congestion-tolerant randomized routing — is
// exactly what a degraded network stresses; these scenarios measure how
// gracefully it bends: completion rate, slowdown versus the fault-free run
// of the same seed, detour hops per request, and the extra rehashes that
// module deaths force.
//
// Every trial builds its topology, plan and injector per seed: a faulted
// graph carries a mutable liveness mask and must not be shared across
// concurrent trials (see faults/injector.hpp).

#include <memory>

#include "bench_common.hpp"
#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "routing/shuffle_router.hpp"
#include "routing/star_router.hpp"
#include "routing/two_phase.hpp"
#include "topology/butterfly.hpp"
#include "topology/shuffle.hpp"
#include "topology/star.hpp"

namespace {

using namespace levnet;

using bench::u32;

constexpr std::uint32_t kPramSteps = 4;
/// Budget factor for every fault run (and its fault-free twin, so the
/// slowdown ratio compares like with like): the rehash escape hatch must
/// be live when detour storms blow a step budget.
constexpr std::uint32_t kBudgetFactor = 64;

/// One seed's degraded-vs-pristine outcome.
struct FaultOutcome {
  double steps = 0.0;          // faulty network steps per PRAM step
  double slowdown = 1.0;       // faulty / fault-free network steps
  double detours_per_req = 0.0;
  double extra_rehashes = 0.0;  // budget + fault rehashes beyond baseline
  bool complete = false;
};

/// Owned topology + router + fabric + injector for one degraded star.
struct StarNet {
  StarNet(std::uint32_t n, const faults::FaultSpec& spec, std::uint64_t seed)
      : star(n),
        router(star),
        fab(star.graph(), router, star.diameter(), star.name()),
        plan(faults::FaultPlan::sample(star.graph(), star.node_count(),
                                       star.node_count(), spec, seed)),
        injector(star.graph_mut(), star.node_count(), plan) {}
  topology::StarGraph star;
  routing::StarTwoPhaseRouter router;
  emulation::EmulationFabric fab;
  faults::FaultPlan plan;
  faults::FaultInjector injector;
};

struct ShuffleNet {
  ShuffleNet(std::uint32_t n, const faults::FaultSpec& spec,
             std::uint64_t seed)
      : net(topology::DWayShuffle::n_way(n)),
        router(net),
        fab(net.graph(), router, net.route_length(), net.name()),
        plan(faults::FaultPlan::sample(net.graph(), net.node_count(),
                                       net.node_count(), spec, seed)),
        injector(net.graph_mut(), net.node_count(), plan) {}
  topology::DWayShuffle net;
  routing::ShuffleTwoPhaseRouter router;
  emulation::EmulationFabric fab;
  faults::FaultPlan plan;
  faults::FaultInjector injector;
};

struct ButterflyNet {
  ButterflyNet(std::uint32_t levels, const faults::FaultSpec& spec,
               std::uint64_t seed)
      : bf(2, levels),
        router(bf),
        fab(bf, router),
        plan(faults::FaultPlan::sample(bf.graph(), bf.row_count(),
                                       bf.row_count(), spec, seed)),
        injector(bf.graph_mut(), bf.row_count(), plan) {}
  topology::WrappedButterfly bf;
  routing::TwoPhaseButterflyRouter router;
  emulation::EmulationFabric fab;
  faults::FaultPlan plan;
  faults::FaultInjector injector;
};

emulation::EmulationReport run_emulation(
    const emulation::EmulationFabric& fab, faults::FaultInjector* injector,
    pram::PramProgram& program, std::uint64_t seed,
    sim::QueueDiscipline discipline, bool combining) {
  emulation::EmulatorConfig config;
  config.combining = combining;
  config.discipline = discipline;
  config.seed = seed;
  config.step_budget_factor = kBudgetFactor;
  // Fewer attempts than the default 16: a seed the plan defeats should
  // report complete=false in milliseconds, not burn 2^16x budgets first.
  config.max_rehash_attempts = 10;
  config.faults = injector;
  emulation::NetworkEmulator emulator(fab, config);
  pram::SharedMemory memory;
  return emulator.run(program, memory);
}

/// Degraded run + fault-free twin of the same seed -> one FaultOutcome.
template <typename Net, typename MakeProgram>
FaultOutcome fault_trial(std::uint32_t scale, const faults::FaultSpec& spec,
                         std::uint64_t seed, MakeProgram make_program,
                         sim::QueueDiscipline discipline, bool combining) {
  Net degraded(scale, spec, seed);
  auto program = make_program(degraded.fab.processors(), seed);
  const emulation::EmulationReport faulty =
      run_emulation(degraded.fab, &degraded.injector, *program, seed,
                    discipline, combining);

  Net pristine(scale, faults::FaultSpec{}, seed);  // empty plan: inert
  auto baseline_program = make_program(pristine.fab.processors(), seed);
  const emulation::EmulationReport clean =
      run_emulation(pristine.fab, nullptr, *baseline_program, seed,
                    discipline, combining);

  FaultOutcome outcome;
  outcome.complete = faulty.complete;
  outcome.steps = faulty.mean_step_network;
  outcome.slowdown = static_cast<double>(faulty.network_steps) /
                     static_cast<double>(std::max<std::uint64_t>(
                         clean.network_steps, 1));
  outcome.detours_per_req =
      static_cast<double>(faulty.detour_hops) /
      static_cast<double>(std::max<std::uint64_t>(faulty.request_packets, 1));
  outcome.extra_rehashes =
      static_cast<double>(faulty.rehashes + faulty.fault_rehashes) -
      static_cast<double>(clean.rehashes);
  return outcome;
}

void fault_row(analysis::ScenarioContext& ctx, const std::string& title,
               const std::vector<std::string>& config_cells,
               const std::vector<FaultOutcome>& outcomes) {
  // Degraded-cost columns average over *completed* seeds only: a defeated
  // seed stops mid-program with truncated step counts, so folding it in
  // would understate slowdown exactly when the faults win. The defeats
  // themselves are what complete% reports.
  double complete = 0, steps = 0, slowdown = 0, detours = 0, rehashes = 0;
  for (const FaultOutcome& o : outcomes) {
    if (!o.complete) continue;
    complete += 1.0;
    steps += o.steps;
    slowdown += o.slowdown;
    detours += o.detours_per_req;
    rehashes += o.extra_rehashes;
  }
  const auto n = static_cast<double>(outcomes.size());
  const double done = complete > 0.0 ? complete : 1.0;  // all-defeated: 0s
  auto& table = ctx.table(
      title, {"network", "fault config", "complete%", "steps/pram-step",
              "slowdown", "detour/req", "extra rehash"});
  table.row()
      .cell(config_cells.at(0))
      .cell(config_cells.at(1))
      .cell(100.0 * complete / n, 0)
      .cell(steps / done, 1)
      .cell(slowdown / done, 2)
      .cell(detours / done, 2)
      .cell(rehashes / done, 1);
}

faults::FaultSpec link_spec(std::int64_t percent) {
  faults::FaultSpec spec;
  spec.link_fraction = static_cast<double>(percent) / 100.0;
  return spec;
}

std::unique_ptr<pram::PramProgram> permutation_program(std::uint32_t procs,
                                                       std::uint64_t seed) {
  return std::make_unique<pram::PermutationTraffic>(procs, kPramSteps, seed);
}

constexpr char kLinksTitle[] =
    "F1: EREW permutation emulation under dead links";

[[maybe_unused]] const analysis::ScenarioRegistrar kLinksStar{
    analysis::Scenario{
        .name = "F1/degraded-links-star",
        .experiment = "F1 / degraded-mode routing (beyond the paper)",
        .sweep = "(n, link%); dead physical links, EREW permutation reads",
        .points = {{5, 0}, {5, 5}, {5, 10}, {5, 15}, {6, 10}},
        .smoke_points = {{5, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const faults::FaultSpec spec = link_spec(ctx.arg(1));
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial<StarNet>(n, spec, seed,
                                            permutation_program,
                                            sim::QueueDiscipline::kFifo,
                                            false);
              });
              fault_row(ctx, kLinksTitle,
                        {"star(n=" + std::to_string(n) + ")",
                         "links " + std::to_string(ctx.arg(1)) + "%"},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kLinksShuffle{
    analysis::Scenario{
        .name = "F1/degraded-links-shuffle",
        .experiment = "F1 / degraded-mode routing (beyond the paper)",
        .sweep = "(n, link%); n-way shuffle, dead links, EREW permutations",
        .points = {{3, 5}, {3, 10}, {4, 10}},
        .smoke_points = {{3, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const faults::FaultSpec spec = link_spec(ctx.arg(1));
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial<ShuffleNet>(n, spec, seed,
                                               permutation_program,
                                               sim::QueueDiscipline::kFifo,
                                               false);
              });
              fault_row(ctx, kLinksTitle,
                        {"shuffle(n=" + std::to_string(n) + ")",
                         "links " + std::to_string(ctx.arg(1)) + "%"},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kModulesStar{
    analysis::Scenario{
        .name = "F2/degraded-modules-star",
        .experiment = "F2 / memory remap under module faults (Hanlon-style)",
        .sweep = "(n, module%); dead memory modules, survivor remap + rehash",
        .points = {{5, 10}, {5, 20}, {6, 10}},
        .smoke_points = {{5, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              faults::FaultSpec spec;
              spec.module_fraction =
                  static_cast<double>(ctx.arg(1)) / 100.0;
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial<StarNet>(n, spec, seed,
                                            permutation_program,
                                            sim::QueueDiscipline::kFifo,
                                            false);
              });
              fault_row(ctx,
                        "F2: EREW permutation emulation under dead modules",
                        {"star(n=" + std::to_string(n) + ")",
                         "modules " + std::to_string(ctx.arg(1)) + "%"},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kNodesButterfly{
    analysis::Scenario{
        .name = "F3/degraded-nodes-butterfly",
        .experiment = "F3 / dead interior switches on the leveled network",
        .sweep = "(levels l, node%); radix-2 butterfly, endpoint column "
                 "protected",
        .points = {{4, 10}, {5, 10}, {6, 10}},
        .smoke_points = {{4, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto levels = u32(ctx.arg(0));
              faults::FaultSpec spec;
              spec.node_fraction = static_cast<double>(ctx.arg(1)) / 100.0;
              spec.link_fraction = 0.05;
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial<ButterflyNet>(levels, spec, seed,
                                                 permutation_program,
                                                 sim::QueueDiscipline::kFifo,
                                                 false);
              });
              fault_row(ctx,
                        "F3: EREW permutation emulation under dead switches",
                        {"butterfly(d=2,l=" + std::to_string(levels) + ")",
                         "nodes " + std::to_string(ctx.arg(1)) +
                             "% links 5%"},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kDiscipline{
    analysis::Scenario{
        .name = "F4/degraded-discipline-star",
        .experiment = "F4 / queue discipline under faults (ablation)",
        .sweep = "(n, link%, discipline 0=fifo 1=furthest); dead links",
        .points = {{5, 10, 0}, {5, 10, 1}, {5, 15, 0}, {5, 15, 1}},
        .smoke_points = {{5, 10, 0}, {5, 10, 1}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const faults::FaultSpec spec = link_spec(ctx.arg(1));
              const auto discipline =
                  ctx.arg(2) != 0 ? sim::QueueDiscipline::kFurthestFirst
                                  : sim::QueueDiscipline::kFifo;
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial<StarNet>(n, spec, seed,
                                            permutation_program, discipline,
                                            false);
              });
              fault_row(ctx, "F4: queue discipline under dead links",
                        {"star(n=" + std::to_string(n) + ")",
                         "links " + std::to_string(ctx.arg(1)) + "% " +
                             (ctx.arg(2) != 0 ? "furthest" : "fifo")},
                        outcomes);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kCrcwStar{
    analysis::Scenario{
        .name = "F5/degraded-crcw-star",
        .experiment = "F5 / combining CRCW under faults",
        .sweep = "(n, link%); hot-spot reads, en-route combining, dead links",
        .points = {{5, 5}, {5, 10}},
        .smoke_points = {{5, 10}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const faults::FaultSpec spec = link_spec(ctx.arg(1));
              const auto outcomes = ctx.collect([&](std::uint64_t seed) {
                return fault_trial<StarNet>(
                    n, spec, seed,
                    [](std::uint32_t procs, std::uint64_t)
                        -> std::unique_ptr<pram::PramProgram> {
                      return std::make_unique<pram::HotSpotReadTraffic>(
                          procs, kPramSteps, 99);
                    },
                    sim::QueueDiscipline::kFifo, true);
              });
              fault_row(ctx, "F5: combining CRCW hot spot under dead links",
                        {"star(n=" + std::to_string(n) + ")",
                         "links " + std::to_string(ctx.arg(1)) + "%"},
                        outcomes);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
