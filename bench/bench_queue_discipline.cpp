// E13 / ablations: the design choices DESIGN.md calls out.
//
//  * queue discipline on the mesh 3-stage algorithm: the paper prescribes
//    furthest-destination-first; compare FIFO and nearest-first;
//  * stage-1 slice height epsilon*n: the paper picks epsilon = 1/log n;
//    sweep the height and watch stage-1 overhead vs randomization benefit;
//  * hash polynomial degree S = cL: Lemma 2.2 wants S ~ cL; degree 1-2
//    (weaker universality) vs S = L on emulation cost.

#include <benchmark/benchmark.h>

#include "analysis/trials.hpp"
#include "bench_common.hpp"
#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "routing/driver.hpp"
#include "routing/mesh_router.hpp"
#include "routing/star_router.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "topology/mesh.hpp"
#include "topology/star.hpp"

namespace {

using namespace levnet;

constexpr std::uint32_t kSeeds = 3;

const char* discipline_name(sim::QueueDiscipline d) {
  switch (d) {
    case sim::QueueDiscipline::kFifo:
      return "fifo";
    case sim::QueueDiscipline::kFurthestFirst:
      return "furthest-first";
    case sim::QueueDiscipline::kNearestFirst:
      return "nearest-first";
  }
  return "?";
}

void BM_DisciplineAblation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto discipline =
      static_cast<sim::QueueDiscipline>(state.range(1));
  const topology::Mesh mesh(n, n);
  const routing::MeshThreeStageRouter router(mesh);
  sim::EngineConfig config;
  config.discipline = discipline;

  const analysis::TrialStats stats = analysis::run_trials(
      [&](std::uint64_t s) {
        support::Rng rng(s);
        const sim::Workload w =
            sim::permutation_workload(mesh.node_count(), rng);
        return routing::run_workload(mesh.graph(), router, w, config, rng);
      },
      kSeeds);
  for (auto _ : state) benchmark::DoNotOptimize(stats.steps.mean);
  state.counters["steps_mean"] = stats.steps.mean;

  auto& table = bench::Report::instance().table(
      "E13a / ablation: queue discipline on the mesh 3-stage router",
      {"n", "discipline", "steps(mean)", "steps(max)", "steps/n",
       "nodeQ(max)"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::string(discipline_name(discipline)))
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.steps.mean / n, 2)
      .cell(stats.max_node_queue.max, 0);
}

void BM_SliceHeightAblation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto slice = static_cast<std::uint32_t>(state.range(1));
  const topology::Mesh mesh(n, n);
  const routing::MeshThreeStageRouter router(mesh, slice);
  sim::EngineConfig config;
  config.discipline = sim::QueueDiscipline::kFurthestFirst;

  const analysis::TrialStats stats = analysis::run_trials(
      [&](std::uint64_t s) {
        support::Rng rng(s);
        // Bursty relation: where stage-1 randomization earns its keep.
        const sim::Workload w =
            sim::h_relation_workload(mesh.node_count(), 4, rng);
        return routing::run_workload(mesh.graph(), router, w, config, rng);
      },
      kSeeds);
  for (auto _ : state) benchmark::DoNotOptimize(stats.steps.mean);
  state.counters["steps_mean"] = stats.steps.mean;

  auto& table = bench::Report::instance().table(
      "E13b / ablation: stage-1 slice height (paper: n/log n) on 4-relations",
      {"n", "slice rows", "steps(mean)", "steps(max)", "nodeQ(max)"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{slice})
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.max_node_queue.max, 0);
}

void BM_HashDegreeAblation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto degree = static_cast<std::uint32_t>(state.range(1));
  const topology::StarGraph star(n);
  const routing::StarTwoPhaseRouter router(star);
  const emulation::EmulationFabric fabric(star.graph(), router,
                                          star.diameter(), star.name());
  emulation::EmulatorConfig config;
  config.hash_degree = degree;
  emulation::EmulationReport report;
  for (auto _ : state) {
    pram::PermutationTraffic program(star.node_count(), 4, 41);
    emulation::NetworkEmulator emulator(fabric, config);
    pram::SharedMemory memory;
    report = emulator.run(program, memory);
    benchmark::DoNotOptimize(report.network_steps);
  }
  state.counters["steps_per_pram_step"] = report.mean_step_network;

  auto& table = bench::Report::instance().table(
      "E13c / ablation: hash polynomial degree S (Lemma 2.2 wants S = cL)",
      {"star n", "degree S", "steps/pram-step", "worst step", "linkQ"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{degree})
      .cell(report.mean_step_network, 1)
      .cell(std::uint64_t{report.max_step_network})
      .cell(std::uint64_t{report.max_link_queue});
}

}  // namespace

BENCHMARK(BM_DisciplineAblation)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Iterations(1);
BENCHMARK(BM_SliceHeightAblation)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({64, 10})  // ~n/log n
    ->Args({64, 16})
    ->Args({64, 64})  // no randomization benefit: whole mesh is one slice
    ->Iterations(1);
BENCHMARK(BM_HashDegreeAblation)
    ->Args({6, 1})
    ->Args({6, 2})
    ->Args({6, 4})
    ->Args({6, 7})   // S = diameter
    ->Args({6, 14})  // S = 2L
    ->Iterations(1);

LEVNET_BENCH_MAIN()
