// E13 / ablations: the design choices DESIGN.md calls out.
//
//  * queue discipline on the mesh 3-stage algorithm: the paper prescribes
//    furthest-destination-first; compare FIFO and nearest-first;
//  * stage-1 slice height epsilon*n: the paper picks epsilon = 1/log n;
//    sweep the height and watch stage-1 overhead vs randomization benefit;
//  * hash polynomial degree S = cL: Lemma 2.2 wants S ~ cL; degree 1-2
//    (weaker universality) vs S = L on emulation cost.
//
// All machines come from spec strings: the discipline is a spec segment,
// the slice height is the three-stage router's `:param`, and the hash
// degree is the `hash-degree=` knob.

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "obs/recorder.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "routing/driver.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"

namespace {

using namespace levnet;

using bench::u32;

const char* discipline_name(std::int64_t d) {
  switch (d) {
    case 0:
      return "fifo";
    case 1:
      return "furthest-first";
    case 2:
      return "nearest-first";
  }
  return "?";
}

[[maybe_unused]] const analysis::ScenarioRegistrar kDiscipline{
    analysis::Scenario{
        .name = "E13a/queue-discipline",
        .experiment = "E13a / ablation",
        .sweep = "(n, discipline 0=fifo 1=furthest 2=nearest); mesh 3-stage "
                 "permutations",
        .points = {{32, 0}, {32, 1}, {32, 2}, {64, 0}, {64, 1}, {64, 2}},
        .smoke_points = {{32, 0}, {32, 1}, {32, 2}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const machine::Machine m = machine::Machine::build(
                  "mesh:" + std::to_string(n) + "/three-stage/erew/" +
                  discipline_name(ctx.arg(1)));

              const analysis::TrialStats stats =
                  ctx.trials([&](std::uint64_t seed) {
                    support::Rng rng(seed);
                    const sim::Workload w =
                        sim::permutation_workload(m.processors(), rng);
                    // Histogram-only recorder: feeds the latency columns
                    // without touching the routed packets.
                    obs::Recorder recorder{obs::RecorderConfig{}};
                    sim::EngineConfig config = m.engine_config();
                    config.recorder = &recorder;
                    return routing::run_workload(m.graph(), m.router(), w,
                                                 config, rng);
                  });

              auto& table = ctx.table(
                  "E13a / ablation: queue discipline on the mesh 3-stage "
                  "router",
                  {"n", "discipline", "steps(mean)", "steps(max)", "steps/n",
                   "nodeQ(max)", "p50(lat)", "p95(lat)", "p99(lat)"});
              table.row()
                  .cell(std::uint64_t{n})
                  .cell(std::string(discipline_name(ctx.arg(1))))
                  .cell(stats.steps.mean, 1)
                  .cell(stats.steps.max, 0)
                  .cell(stats.steps.mean / n, 2)
                  .cell(stats.max_node_queue.max, 0)
                  .cell(stats.latency_p50.mean, 1)
                  .cell(stats.latency_p95.mean, 1)
                  .cell(stats.latency_p99.mean, 1);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kSliceHeight{
    analysis::Scenario{
        .name = "E13b/slice-height",
        .experiment = "E13b / ablation",
        .sweep = "(n, slice rows); stage-1 slice height on 4-relations "
                 "(paper: n/log n)",
        .points = {{64, 1}, {64, 4}, {64, 10}, {64, 16}, {64, 64}},
        .smoke_points = {{64, 1}, {64, 10}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const auto slice = u32(ctx.arg(1));
              const machine::Machine m = machine::Machine::build(
                  "mesh:" + std::to_string(n) + "/three-stage:" +
                  std::to_string(slice) + "/erew/furthest-first");

              const analysis::TrialStats stats =
                  ctx.trials([&](std::uint64_t seed) {
                    support::Rng rng(seed);
                    // Bursty relation: where stage-1 randomization earns
                    // its keep.
                    const sim::Workload w =
                        sim::h_relation_workload(m.processors(), 4, rng);
                    return routing::run_workload(m.graph(), m.router(), w,
                                                 m.engine_config(), rng);
                  });

              auto& table = ctx.table(
                  "E13b / ablation: stage-1 slice height (paper: n/log n) on "
                  "4-relations",
                  {"n", "slice rows", "steps(mean)", "steps(max)",
                   "nodeQ(max)"});
              table.row()
                  .cell(std::uint64_t{n})
                  .cell(std::uint64_t{slice})
                  .cell(stats.steps.mean, 1)
                  .cell(stats.steps.max, 0)
                  .cell(stats.max_node_queue.max, 0);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kHashDegree{
    analysis::Scenario{
        .name = "E13c/hash-degree",
        .experiment = "E13c / ablation (Lemma 2.2)",
        .sweep = "(star n, degree S); emulation cost vs hash polynomial "
                 "degree",
        .points = {{6, 1}, {6, 2}, {6, 4}, {6, 7}, {6, 14}},
        .smoke_points = {{5, 1}, {5, 7}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const auto degree = u32(ctx.arg(1));
              const machine::Machine m = machine::Machine::build(
                  "star:" + std::to_string(n) +
                  "/two-phase/erew/fifo/hash-degree=" +
                  std::to_string(degree));
              const analysis::TrialStats stats =
                  ctx.trials([&](std::uint64_t seed) {
                    pram::PermutationTraffic program(m.processors(), 4, seed);
                    pram::SharedMemory memory;
                    obs::Recorder recorder{obs::RecorderConfig{}};
                    return m.run_seeded(seed, program, memory, &recorder);
                  });

              auto& table = ctx.table(
                  "E13c / ablation: hash polynomial degree S (Lemma 2.2 "
                  "wants S = cL)",
                  {"star n", "degree S", "steps/pram-step", "worst step",
                   "linkQ", "p50(lat)", "p95(lat)", "p99(lat)"});
              table.row()
                  .cell(std::uint64_t{n})
                  .cell(std::uint64_t{degree})
                  .cell(stats.steps.mean, 1)
                  .cell(stats.worst_step.max, 0)
                  .cell(stats.max_link_queue.max, 0)
                  .cell(stats.latency_p50.mean, 1)
                  .cell(stats.latency_p95.mean, 1)
                  .cell(stats.latency_p99.mean, 1);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
