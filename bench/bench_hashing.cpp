// E5 (Section 2.1 Fact, Lemma 2.2, Corollaries 3.1-3.3): load behaviour of
// the Karlin-Upfal polynomial hash family.
//
// Claims measured:
//  * N items into N buckets: max load O(log N / log log N) w.h.p. (Cor 3.1)
//  * N = n^2 items into beta*n buckets: max load n/beta + O(n^{3/4}) (Cor 3.2)
//  * any log N consecutive buckets get O(log N) items (Cor 3.3)
//  * description size is O(L log M) bits (Section 2.1)
//  * higher polynomial degree S = cL buys lower worst-case load (Lemma 2.2).
//
// "Trials" here are independent hash-function draws: the per-seed result is
// a load statistic (a double), collected through the generic TrialRunner
// path rather than the routing/emulation conversions.

#include <cmath>

#include "bench_common.hpp"
#include "hashing/poly_hash.hpp"
#include "support/bits.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using namespace levnet;

using bench::u32;

[[maybe_unused]] const analysis::ScenarioRegistrar kMaxLoadNIntoN{
    analysis::Scenario{
        .name = "E5a/max-load-n-into-n",
        .experiment = "E5a / Corollary 3.1",
        .sweep = "(N, degree S); N items into N buckets, 20 hash draws",
        .points = {{1024, 2}, {1024, 12}, {4096, 2}, {4096, 12}, {16384, 12},
                   {65536, 12}},
        .smoke_points = {{1024, 2}, {1024, 12}},
        .seeds = 20,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = static_cast<std::uint64_t>(ctx.arg(0));
              const auto degree = u32(ctx.arg(1));
              const std::vector<double> loads =
                  ctx.collect([&](std::uint64_t seed) {
                    support::Rng rng(seed);
                    const auto h =
                        hashing::PolynomialHash::sample(degree, n, n, rng);
                    return static_cast<double>(
                        hashing::bucket_loads(h, n).max_load);
                  });
              const support::Summary max_load = support::summarize(loads);
              const double bound = std::log2(static_cast<double>(n)) /
                                   std::log2(std::log2(static_cast<double>(n)));

              auto& table = ctx.table(
                  "E5a / Corollary 3.1: N items into N buckets",
                  {"N", "degree S", "maxload(mean)", "maxload(max)",
                   "logN/loglogN", "ratio"});
              table.row()
                  .cell(n)
                  .cell(std::uint64_t{degree})
                  .cell(max_load.mean, 2)
                  .cell(max_load.max, 0)
                  .cell(bound, 2)
                  .cell(max_load.max / bound, 2);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kMaxLoadSquare{
    analysis::Scenario{
        .name = "E5b/max-load-square-into-beta-n",
        .experiment = "E5b / Corollary 3.2",
        .sweep = "(n, beta); n^2 items into beta*n buckets, 20 hash draws",
        .points = {{32, 1}, {64, 1}, {64, 2}, {128, 2}},
        .smoke_points = {{32, 1}},
        .seeds = 20,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = static_cast<std::uint64_t>(ctx.arg(0));
              const auto beta = static_cast<std::uint64_t>(ctx.arg(1));
              const std::uint64_t items = n * n;
              const std::uint64_t buckets = beta * n;
              const std::vector<double> loads =
                  ctx.collect([&](std::uint64_t seed) {
                    support::Rng rng(seed);
                    const auto h = hashing::PolynomialHash::sample(
                        12, items, buckets, rng);
                    return static_cast<double>(
                        hashing::bucket_loads(h, items).max_load);
                  });
              const support::Summary max_load = support::summarize(loads);
              const double ideal =
                  static_cast<double>(n) / static_cast<double>(beta);
              const double slack = std::pow(static_cast<double>(n), 0.75);

              auto& table = ctx.table(
                  "E5b / Corollary 3.2: n^2 items into beta*n buckets",
                  {"n", "beta", "items", "buckets", "maxload(mean)",
                   "maxload(max)", "n/beta", "n/beta+n^0.75"});
              table.row()
                  .cell(n)
                  .cell(beta)
                  .cell(items)
                  .cell(buckets)
                  .cell(max_load.mean, 2)
                  .cell(max_load.max, 0)
                  .cell(ideal, 1)
                  .cell(ideal + slack, 1);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kWindowLoad{
    analysis::Scenario{
        .name = "E5c/window-load",
        .experiment = "E5c / Corollary 3.3",
        .sweep = "(N); max load over any log N consecutive buckets, 20 draws",
        .points = {{1024}, {4096}, {16384}},
        .smoke_points = {{1024}},
        .seeds = 20,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = static_cast<std::uint64_t>(ctx.arg(0));
              const std::uint32_t window = support::ceil_log2(n);
              const std::vector<double> loads =
                  ctx.collect([&](std::uint64_t seed) {
                    support::Rng rng(seed);
                    const auto h =
                        hashing::PolynomialHash::sample(12, n, n, rng);
                    const auto profile = hashing::bucket_loads(h, n);
                    return static_cast<double>(
                        hashing::max_window_load(profile, window));
                  });
              const support::Summary window_load = support::summarize(loads);

              auto& table = ctx.table(
                  "E5c / Corollary 3.3: any log N consecutive buckets",
                  {"N", "window=logN", "windowload(mean)", "windowload(max)",
                   "ratio to logN"});
              table.row()
                  .cell(n)
                  .cell(std::uint64_t{window})
                  .cell(window_load.mean, 2)
                  .cell(window_load.max, 0)
                  .cell(window_load.max / window, 2);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kDescriptionBits{
    analysis::Scenario{
        .name = "E5d/description-bits",
        .experiment = "E5d / Section 2.1",
        .sweep = "(degree S, log2 M); hash description size O(L log M)",
        .points = {{4, 20}, {8, 20}, {16, 30}},
        .seeds = 1,  // description size is deterministic in the parameters
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto degree = u32(ctx.arg(0));
              const auto log2_m = u32(ctx.arg(1));
              const std::uint64_t address_space = std::uint64_t{1} << log2_m;
              support::Rng rng(1);
              const auto h = hashing::PolynomialHash::sample(
                  degree, address_space, 4096, rng);

              auto& table = ctx.table(
                  "E5d / Section 2.1: hash description size O(L log M)",
                  {"degree S=cL", "log2 M", "bits", "bits/(S*log2M)"});
              table.row()
                  .cell(std::uint64_t{degree})
                  .cell(std::uint64_t{log2_m})
                  .cell(h.description_bits())
                  .cell(static_cast<double>(h.description_bits()) /
                            (static_cast<double>(degree) *
                             static_cast<double>(log2_m)),
                        2);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
