// E5 (Section 2.1 Fact, Lemma 2.2, Corollaries 3.1-3.3): load behaviour of
// the Karlin-Upfal polynomial hash family.
//
// Claims measured:
//  * N items into N buckets: max load O(log N / log log N) w.h.p. (Cor 3.1)
//  * N = n^2 items into beta*n buckets: max load n/beta + O(n^{3/4}) (Cor 3.2)
//  * any log N consecutive buckets get O(log N) items (Cor 3.3)
//  * description size is O(L log M) bits (Section 2.1)
//  * higher polynomial degree S = cL buys lower worst-case load (Lemma 2.2).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "hashing/poly_hash.hpp"
#include "support/bits.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using namespace levnet;

constexpr std::uint32_t kDraws = 20;  // hash functions sampled per row

void BM_MaxLoadNIntoN(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto degree = static_cast<std::uint32_t>(state.range(1));
  support::RunningStat max_load;
  std::uint64_t seed = 1;
  for (std::uint32_t i = 0; i < kDraws; ++i) {
    support::Rng rng(seed++);
    const auto h = hashing::PolynomialHash::sample(degree, n, n, rng);
    max_load.add(hashing::bucket_loads(h, n).max_load);
  }
  for (auto _ : state) {
    support::Rng rng(seed++);
    const auto h = hashing::PolynomialHash::sample(degree, n, n, rng);
    benchmark::DoNotOptimize(hashing::bucket_loads(h, n).max_load);
  }
  const double bound = std::log2(static_cast<double>(n)) /
                       std::log2(std::log2(static_cast<double>(n)));
  state.counters["maxload_mean"] = max_load.mean();
  state.counters["maxload_max"] = max_load.max();
  state.counters["log/loglog"] = bound;

  auto& table = bench::Report::instance().table(
      "E5a / Corollary 3.1: N items into N buckets",
      {"N", "degree S", "maxload(mean)", "maxload(max)", "logN/loglogN",
       "ratio"});
  table.row()
      .cell(n)
      .cell(std::uint64_t{degree})
      .cell(max_load.mean(), 2)
      .cell(max_load.max(), 0)
      .cell(bound, 2)
      .cell(max_load.max() / bound, 2);
}

void BM_MaxLoadSquareIntoBetaN(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto beta = static_cast<std::uint64_t>(state.range(1));
  const std::uint64_t items = n * n;
  const std::uint64_t buckets = beta * n;
  support::RunningStat max_load;
  std::uint64_t seed = 1;
  for (std::uint32_t i = 0; i < kDraws; ++i) {
    support::Rng rng(seed++);
    const auto h = hashing::PolynomialHash::sample(12, items, buckets, rng);
    max_load.add(hashing::bucket_loads(h, items).max_load);
  }
  for (auto _ : state) {
    support::Rng rng(seed++);
    const auto h = hashing::PolynomialHash::sample(12, items, buckets, rng);
    benchmark::DoNotOptimize(hashing::bucket_loads(h, items).max_load);
  }
  const double ideal = static_cast<double>(n) / static_cast<double>(beta);
  const double slack = std::pow(static_cast<double>(n), 0.75);
  state.counters["maxload_max"] = max_load.max();

  auto& table = bench::Report::instance().table(
      "E5b / Corollary 3.2: n^2 items into beta*n buckets",
      {"n", "beta", "items", "buckets", "maxload(mean)", "maxload(max)",
       "n/beta", "n/beta+n^0.75"});
  table.row()
      .cell(n)
      .cell(beta)
      .cell(items)
      .cell(buckets)
      .cell(max_load.mean(), 2)
      .cell(max_load.max(), 0)
      .cell(ideal, 1)
      .cell(ideal + slack, 1);
}

void BM_WindowLoad(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const std::uint32_t window = support::ceil_log2(n);
  support::RunningStat window_load;
  std::uint64_t seed = 1;
  for (std::uint32_t i = 0; i < kDraws; ++i) {
    support::Rng rng(seed++);
    const auto h = hashing::PolynomialHash::sample(12, n, n, rng);
    const auto profile = hashing::bucket_loads(h, n);
    window_load.add(hashing::max_window_load(profile, window));
  }
  for (auto _ : state) {
    support::Rng rng(seed++);
    const auto h = hashing::PolynomialHash::sample(12, n, n, rng);
    const auto profile = hashing::bucket_loads(h, n);
    benchmark::DoNotOptimize(hashing::max_window_load(profile, window));
  }
  state.counters["windowload_max"] = window_load.max();

  auto& table = bench::Report::instance().table(
      "E5c / Corollary 3.3: any log N consecutive buckets",
      {"N", "window=logN", "windowload(mean)", "windowload(max)",
       "ratio to logN"});
  table.row()
      .cell(n)
      .cell(std::uint64_t{window})
      .cell(window_load.mean(), 2)
      .cell(window_load.max(), 0)
      .cell(window_load.max() / window, 2);
}

void BM_DescriptionBits(benchmark::State& state) {
  const auto degree = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t address_space = std::uint64_t{1}
                                      << static_cast<std::uint32_t>(
                                             state.range(1));
  support::Rng rng(1);
  const auto h =
      hashing::PolynomialHash::sample(degree, address_space, 4096, rng);
  for (auto _ : state) benchmark::DoNotOptimize(h.description_bits());
  state.counters["bits"] = static_cast<double>(h.description_bits());

  auto& table = bench::Report::instance().table(
      "E5d / Section 2.1: hash description size O(L log M)",
      {"degree S=cL", "log2 M", "bits", "bits/(S*log2M)"});
  table.row()
      .cell(std::uint64_t{degree})
      .cell(static_cast<std::uint64_t>(state.range(1)))
      .cell(h.description_bits())
      .cell(static_cast<double>(h.description_bits()) /
                (static_cast<double>(degree) *
                 static_cast<double>(state.range(1))),
            2);
}

}  // namespace

BENCHMARK(BM_MaxLoadNIntoN)
    ->Args({1024, 2})
    ->Args({1024, 12})
    ->Args({4096, 2})
    ->Args({4096, 12})
    ->Args({16384, 12})
    ->Args({65536, 12})
    ->Iterations(2);
BENCHMARK(BM_MaxLoadSquareIntoBetaN)
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({128, 2})
    ->Iterations(2);
BENCHMARK(BM_WindowLoad)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(2);
BENCHMARK(BM_DescriptionBits)
    ->Args({4, 20})
    ->Args({8, 20})
    ->Args({16, 30})
    ->Iterations(2);

LEVNET_BENCH_MAIN()
