// E2 (Theorem 2.2, Section 2.3.3) + E4 (Corollary 2.1): routing on the
// n-star graph.
//
// Claim: randomized two-phase permutation routing (Algorithm 2.2) finishes
// in O~(n) steps — sub-logarithmic in the network size N = n! — and partial
// n-relations do too. The deterministic greedy router is the oblivious
// baseline.

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "routing/driver.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"

namespace {

using namespace levnet;

using bench::u32;

void star_row(analysis::ScenarioContext& ctx, std::uint32_t n,
              bool randomized, std::uint32_t relation_h) {
  const std::string router_key = randomized ? "two-phase" : "greedy";
  const machine::Machine m = machine::Machine::build(
      "star:" + std::to_string(n) + "/" + router_key);

  const analysis::TrialStats stats = ctx.trials([&](std::uint64_t seed) {
    support::Rng rng(seed);
    const sim::Workload w =
        relation_h <= 1
            ? sim::permutation_workload(m.processors(), rng)
            : sim::h_relation_workload(m.processors(), relation_h, rng);
    return routing::run_workload(m.graph(), m.router(), w, {}, rng);
  });

  auto& table = ctx.table(
      relation_h <= 1
          ? "E2 / Theorem 2.2: permutation routing on the n-star graph"
          : "E4 / Corollary 2.1: partial n-relation routing on the n-star",
      {"n", "N=n!", "diam", "router", "h", "steps(mean)", "steps(max)",
       "steps/n", "steps/diam", "linkQ(max)", "ok"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{m.processors()})
      .cell(std::uint64_t{m.route_scale()})
      .cell(router_key)
      .cell(std::uint64_t{relation_h == 0 ? 1 : relation_h})
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.steps.mean / n, 2)
      .cell(stats.steps.mean / m.route_scale(), 2)
      .cell(stats.max_link_queue.max, 0)
      .cell(std::string(stats.all_complete ? "yes" : "NO"));
}

[[maybe_unused]] const analysis::ScenarioRegistrar kTwoPhase{
    analysis::Scenario{
        .name = "E2/star-permutation-two-phase",
        .experiment = "E2 / Theorem 2.2",
        .sweep = "(n); n-star permutation routing, randomized two-phase",
        .points = {{4}, {5}, {6}, {7}, {8}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              star_row(ctx, u32(ctx.arg(0)), true, 1);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kGreedy{
    analysis::Scenario{
        .name = "E2/star-permutation-greedy",
        .experiment = "E2 / Theorem 2.2 (baseline)",
        .sweep = "(n); n-star permutation routing, deterministic greedy",
        .points = {{4}, {5}, {6}, {7}, {8}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              star_row(ctx, u32(ctx.arg(0)), false, 1);
            },
    }};

// Corollary 2.1: h = n relations.
[[maybe_unused]] const analysis::ScenarioRegistrar kNRelation{
    analysis::Scenario{
        .name = "E4/star-n-relation",
        .experiment = "E4 / Corollary 2.1",
        .sweep = "(n); partial n-relations on the n-star, two-phase",
        .points = {{4}, {5}, {6}, {7}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              star_row(ctx, n, true, n);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
