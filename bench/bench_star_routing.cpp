// E2 (Theorem 2.2, Section 2.3.3) + E4 (Corollary 2.1): routing on the
// n-star graph.
//
// Claim: randomized two-phase permutation routing (Algorithm 2.2) finishes
// in O~(n) steps — sub-logarithmic in the network size N = n! — and partial
// n-relations do too. The deterministic greedy router is the oblivious
// baseline.

#include <benchmark/benchmark.h>

#include "analysis/trials.hpp"
#include "bench_common.hpp"
#include "routing/driver.hpp"
#include "routing/star_router.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "topology/star.hpp"

namespace {

using namespace levnet;

constexpr std::uint32_t kSeeds = 5;

void star_case(benchmark::State& state, std::uint32_t n, bool randomized,
               std::uint32_t relation_h) {
  const topology::StarGraph star(n);
  const routing::StarTwoPhaseRouter two_phase(star);
  const routing::StarGreedyRouter greedy(star);
  const routing::Router& router =
      randomized ? static_cast<const routing::Router&>(two_phase)
                 : static_cast<const routing::Router&>(greedy);

  const analysis::TrialStats stats = analysis::run_trials(
      [&](std::uint64_t s) {
        support::Rng rng(s);
        const sim::Workload w =
            relation_h <= 1
                ? sim::permutation_workload(star.node_count(), rng)
                : sim::h_relation_workload(star.node_count(), relation_h, rng);
        return routing::run_workload(star.graph(), router, w, {}, rng);
      },
      kSeeds);

  for (auto _ : state) {
    support::Rng rng(99);
    const sim::Workload w = sim::permutation_workload(star.node_count(), rng);
    const auto outcome =
        routing::run_workload(star.graph(), router, w, {}, rng);
    benchmark::DoNotOptimize(outcome.metrics.steps);
  }
  state.counters["steps_mean"] = stats.steps.mean;
  state.counters["steps_per_n"] = stats.steps.mean / n;
  state.counters["max_link_q"] = stats.max_link_queue.max;

  auto& table = bench::Report::instance().table(
      relation_h <= 1
          ? "E2 / Theorem 2.2: permutation routing on the n-star graph"
          : "E4 / Corollary 2.1: partial n-relation routing on the n-star",
      {"n", "N=n!", "diam", "router", "h", "steps(mean)", "steps(max)",
       "steps/n", "steps/diam", "linkQ(max)", "ok"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{star.node_count()})
      .cell(std::uint64_t{star.diameter()})
      .cell(std::string(randomized ? "two-phase" : "greedy"))
      .cell(std::uint64_t{relation_h == 0 ? 1 : relation_h})
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.steps.mean / n, 2)
      .cell(stats.steps.mean / star.diameter(), 2)
      .cell(stats.max_link_queue.max, 0)
      .cell(std::string(stats.all_complete ? "yes" : "NO"));
}

void BM_StarPermutationTwoPhase(benchmark::State& state) {
  star_case(state, static_cast<std::uint32_t>(state.range(0)), true, 1);
}

void BM_StarPermutationGreedy(benchmark::State& state) {
  star_case(state, static_cast<std::uint32_t>(state.range(0)), false, 1);
}

void BM_StarNRelation(benchmark::State& state) {
  star_case(state, static_cast<std::uint32_t>(state.range(0)), true,
            static_cast<std::uint32_t>(state.range(0)));
}

}  // namespace

BENCHMARK(BM_StarPermutationTwoPhase)->DenseRange(4, 8)->Iterations(2);
BENCHMARK(BM_StarPermutationGreedy)->DenseRange(4, 8)->Iterations(2);
// Corollary 2.1: h = n relations.
BENCHMARK(BM_StarNRelation)->DenseRange(4, 7)->Iterations(2);

LEVNET_BENCH_MAIN()
