// E12 (Section 2.3.4, Akers-Harel-Krishnamurthy [2]): the star graph versus
// the hypercube — degree and diameter grow strictly slower in the network
// size, which is why sub-logarithmic emulation is possible there at all.
//
// Rows compare, at matched network sizes, degree, diameter, and
// diameter / log2(N) (sub-logarithmic means the last column falls). No
// randomness here: seeds = 1 and the sweep is purely structural. The
// topologies come from the machine registry (machine::build_topology), the
// same catalogue `levnet_run --list` prints.

#include <cmath>

#include "bench_common.hpp"
#include "machine/registry.hpp"
#include "machine/spec.hpp"
#include "support/check.hpp"
#include "topology/checks.hpp"

namespace {

using namespace levnet;

using bench::u32;

constexpr const char* kTableTitle =
    "E12 / Section 2.3.4: star graph vs hypercube scaling";
const std::vector<std::string> kHeader = {
    "network", "nodes",  "degree",    "diameter",
    "diam(measured)", "log2 N", "diam/log2N"};

void metrics_row(analysis::ScenarioContext& ctx, const std::string& family,
                 std::uint32_t param, std::uint64_t bfs_node_cap) {
  machine::MachineSpec spec;
  spec.topology = family;
  spec.param0 = param;
  std::string error;
  const auto topo = machine::build_topology(spec, error);
  LEVNET_CHECK_MSG(topo != nullptr, error);

  // route_scale is the closed-form diameter for both families; verify it
  // against all-pairs BFS where that is cheap.
  const std::uint64_t nodes = topo->graph().node_count();
  std::uint32_t measured = topo->route_scale();
  if (nodes <= bfs_node_cap) {
    measured = topology::exact_diameter(topo->graph());
  }
  const double log_size = std::log2(static_cast<double>(nodes));
  ctx.table(kTableTitle, kHeader)
      .row()
      .cell(topo->name())
      .cell(nodes)
      .cell(std::uint64_t{topo->graph().max_out_degree()})
      .cell(std::uint64_t{topo->route_scale()})
      .cell(std::uint64_t{measured})
      .cell(log_size, 1)
      .cell(topo->route_scale() / log_size, 3);
}

[[maybe_unused]] const analysis::ScenarioRegistrar kStarMetrics{
    analysis::Scenario{
        .name = "E12/star-metrics",
        .experiment = "E12 / Section 2.3.4",
        .sweep = "(n); n-star degree/diameter vs network size",
        .points = {{3}, {4}, {5}, {6}, {7}, {8}, {9}},
        .smoke_points = {{3}, {4}, {5}},
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) {
              metrics_row(ctx, "star", u32(ctx.arg(0)), 720);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kHypercubeMetrics{
    analysis::Scenario{
        .name = "E12/hypercube-metrics",
        .experiment = "E12 / Section 2.3.4 (baseline)",
        .sweep = "(dim); hypercube degree/diameter vs network size",
        .points = {{3}, {5}, {7}, {9}, {12}, {15}, {18}},
        .smoke_points = {{3}, {5}},
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) {
              metrics_row(ctx, "hypercube", u32(ctx.arg(0)), 1024);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
