// E12 (Section 2.3.4, Akers-Harel-Krishnamurthy [2]): the star graph versus
// the hypercube — degree and diameter grow strictly slower in the network
// size, which is why sub-logarithmic emulation is possible there at all.
//
// Rows compare, at matched network sizes, degree, diameter, and
// diameter / log2(N) (sub-logarithmic means the last column falls). No
// randomness here: seeds = 1 and the sweep is purely structural.

#include <cmath>

#include "bench_common.hpp"
#include "topology/checks.hpp"
#include "topology/hypercube.hpp"
#include "topology/star.hpp"

namespace {

using namespace levnet;

using bench::u32;

constexpr const char* kTableTitle =
    "E12 / Section 2.3.4: star graph vs hypercube scaling";
const std::vector<std::string> kHeader = {
    "network", "nodes",  "degree",    "diameter",
    "diam(measured)", "log2 N", "diam/log2N"};

void metrics_row(analysis::ScenarioContext& ctx, const std::string& name,
                 std::uint64_t nodes, std::uint32_t degree,
                 std::uint32_t diameter, std::uint32_t measured) {
  const double log_size = std::log2(static_cast<double>(nodes));
  ctx.table(kTableTitle, kHeader)
      .row()
      .cell(name)
      .cell(nodes)
      .cell(std::uint64_t{degree})
      .cell(std::uint64_t{diameter})
      .cell(std::uint64_t{measured})
      .cell(log_size, 1)
      .cell(diameter / log_size, 3);
}

[[maybe_unused]] const analysis::ScenarioRegistrar kStarMetrics{
    analysis::Scenario{
        .name = "E12/star-metrics",
        .experiment = "E12 / Section 2.3.4",
        .sweep = "(n); n-star degree/diameter vs network size",
        .points = {{3}, {4}, {5}, {6}, {7}, {8}, {9}},
        .smoke_points = {{3}, {4}, {5}},
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const topology::StarGraph star(n);
              // Verify the closed-form diameter where all-pairs BFS is cheap.
              std::uint32_t measured = star.diameter();
              if (star.node_count() <= 720) {
                measured = topology::exact_diameter(star.graph());
              }
              metrics_row(ctx, star.name(), star.node_count(), star.degree(),
                          star.diameter(), measured);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kHypercubeMetrics{
    analysis::Scenario{
        .name = "E12/hypercube-metrics",
        .experiment = "E12 / Section 2.3.4 (baseline)",
        .sweep = "(dim); hypercube degree/diameter vs network size",
        .points = {{3}, {5}, {7}, {9}, {12}, {15}, {18}},
        .smoke_points = {{3}, {5}},
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto dim = u32(ctx.arg(0));
              const topology::Hypercube cube(dim);
              std::uint32_t measured = cube.diameter();
              if (cube.node_count() <= 1024) {
                measured = topology::exact_diameter(cube.graph());
              }
              metrics_row(ctx, cube.name(), cube.node_count(), cube.degree(),
                          cube.diameter(), measured);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
