// E12 (Section 2.3.4, Akers-Harel-Krishnamurthy [2]): the star graph versus
// the hypercube — degree and diameter grow strictly slower in the network
// size, which is why sub-logarithmic emulation is possible there at all.
//
// Rows compare, at matched network sizes, degree, diameter, and
// diameter / log2(N) (sub-logarithmic means the last column falls).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "topology/checks.hpp"
#include "topology/hypercube.hpp"
#include "topology/star.hpp"

namespace {

using namespace levnet;

void BM_StarMetrics(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const topology::StarGraph star(n);
  // Verify the closed-form diameter on sizes where all-pairs BFS is cheap.
  std::uint32_t measured = star.diameter();
  if (star.node_count() <= 720) {
    measured = topology::exact_diameter(star.graph());
  }
  for (auto _ : state) benchmark::DoNotOptimize(measured);
  const double log_size = std::log2(static_cast<double>(star.node_count()));
  state.counters["diam_over_logN"] = star.diameter() / log_size;

  auto& table = bench::Report::instance().table(
      "E12 / Section 2.3.4: star graph vs hypercube scaling",
      {"network", "nodes", "degree", "diameter", "diam(measured)",
       "log2 N", "diam/log2N"});
  table.row()
      .cell(star.name())
      .cell(std::uint64_t{star.node_count()})
      .cell(std::uint64_t{star.degree()})
      .cell(std::uint64_t{star.diameter()})
      .cell(std::uint64_t{measured})
      .cell(log_size, 1)
      .cell(star.diameter() / log_size, 3);
}

void BM_HypercubeMetrics(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  const topology::Hypercube cube(dim);
  std::uint32_t measured = cube.diameter();
  if (cube.node_count() <= 1024) {
    measured = topology::exact_diameter(cube.graph());
  }
  for (auto _ : state) benchmark::DoNotOptimize(measured);
  const double log_size = std::log2(static_cast<double>(cube.node_count()));
  state.counters["diam_over_logN"] = cube.diameter() / log_size;

  auto& table = bench::Report::instance().table(
      "E12 / Section 2.3.4: star graph vs hypercube scaling",
      {"network", "nodes", "degree", "diameter", "diam(measured)",
       "log2 N", "diam/log2N"});
  table.row()
      .cell(cube.name())
      .cell(std::uint64_t{cube.node_count()})
      .cell(std::uint64_t{cube.degree()})
      .cell(std::uint64_t{cube.diameter()})
      .cell(std::uint64_t{measured})
      .cell(log_size, 1)
      .cell(cube.diameter() / log_size, 3);
}

}  // namespace

BENCHMARK(BM_StarMetrics)->DenseRange(3, 9)->Iterations(1);
BENCHMARK(BM_HypercubeMetrics)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Arg(12)
    ->Arg(15)
    ->Arg(18)
    ->Iterations(1);

LEVNET_BENCH_MAIN()
