#!/usr/bin/env python3
"""Diffs fresh BENCH_*.json reports against committed baselines.

The bench JSON (analysis::Report::write_json) is a list of tables with
string cells. Simulated step counts are deterministic for a fixed seed
set, so baseline and fresh rows should normally agree exactly; this
script flags relative changes above a threshold in the cost columns
(any header containing "steps") as regressions/improvements, and
reports structural drift (new/missing tables or rows) informationally.
Delivery-latency quantile columns (headers containing "(lat)") are
compared too, but only as [latency-drift] lines that never gate.
Throughput columns (headers containing "/sec", e.g. the serve bench's
specs/sec) are higher-is-better: a drop prints [THROUGHPUT-REGRESSION]
and a rise [throughput-improvement], informationally — wall-clock
derived rates never gate. `--self-test` proves the direction
conventions on synthetic tables.

Reports also carry a per-scenario "wall_ms" object (wall-clock per
scenario, machine-dependent). Wall-clock changes above --wall-threshold
are printed as [WALL-REGRESSION]/[wall-improvement] but never affect the
exit code, even under --strict: timing is noisy across CI hosts, so the
wall log is a tripwire for reading, not a gate. Baselines recorded before
wall_ms existed simply skip the comparison. Scenarios registered once per
engine thread count (names ending "@tN") additionally get [SPEEDUP] lines
ratioing each variant's fresh wall_ms against its @t1 sibling.

Usage:
  bench/compare_bench.py --baseline-dir bench/baselines --fresh-dir out
  bench/compare_bench.py ... --threshold 0.2 --strict

Exit code is 0 unless --strict is given and a steps regression was found
(the CI smoke job runs it as a non-blocking report) — with one exception:
a `complete%` column dropping below its baseline exits non-zero even
without --strict. Degraded-mode completion is a correctness signal, not a
perf signal, and a drop must never hide under the drift threshold.
"""

import argparse
import json
import os
import sys

# A column is monitored when its header contains one of these (the cost
# measurements scenarios report); configuration columns precede the first
# monitored column in every table. The degraded-mode columns of the fault
# bench (complete%, slowdown, detour/req, extra rehash) are deterministic
# per seed set like every steps column, so they gate too — and listing
# complete% here keeps it out of the configuration row key.
COST_COLUMN_MARKERS = ("steps", "maxload", "windowload", "request(", "reply(",
                       "roundtrip", "complete%", "slowdown", "detour",
                       "rehash", "adopted", "recovery")

# A completion-rate drop is a correctness signal, not a perf drift: any
# fresh complete% below its baseline gates the exit code even without
# --strict, and even when the relative change sits under --threshold
# (100% -> 90% is a -10% ratio the threshold would wave through).
COMPLETENESS_MARKER = "complete%"

# Delivery-latency quantile columns ("p50(lat)", "p95(lat)", ...) are
# deterministic like the steps columns but describe tail shape, not cost;
# drift there is reported informationally and never gates, even under
# --strict. The marker must not collide with COST_COLUMN_MARKERS so the
# quantile columns stay out of both the cost gate and the row key.
LATENCY_MARKER = "(lat)"

# Throughput columns ("specs/sec") are higher-is-better: a DROP is the
# regression, so the cost-column comparison would flag them backwards.
# They are wall-clock derived (the serve bench measures real serving
# overhead), hence machine-dependent noise like wall_ms: changes print as
# [THROUGHPUT-REGRESSION]/[throughput-improvement] but never gate, even
# under --strict. Must not collide with COST_COLUMN_MARKERS either.
THROUGHPUT_MARKER = "/sec"


def load_reports(directory):
    reports = {}
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as handle:
                reports[name] = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            print(f"  [warn] cannot read {path}: {err}")
    return reports


def cost_columns(header):
    return [
        i
        for i, title in enumerate(header)
        if any(marker in title.lower() for marker in COST_COLUMN_MARKERS)
    ]


def latency_columns(header):
    return [i for i, title in enumerate(header)
            if LATENCY_MARKER in title.lower()]


def throughput_columns(header):
    return [i for i, title in enumerate(header)
            if THROUGHPUT_MARKER in title.lower()]


def to_float(cell):
    try:
        return float(cell)
    except ValueError:
        return None


def keyed_rows(rows, first_cost_column):
    """Maps configuration key -> row.

    The tables put sweep-configuration columns (n, d, algo, ...) before the
    measurement columns, so the cells left of the first cost column identify
    a sweep point; keying on them keeps the diff aligned when points are
    added, removed or reordered. A duplicate-occurrence counter keeps
    repeated configurations distinct.
    """
    keyed = {}
    seen = {}
    for row in rows:
        config = tuple(row[:first_cost_column])
        occurrence = seen.get(config, 0)
        seen[config] = occurrence + 1
        keyed[config + (occurrence,)] = row
    return keyed


def compare_tables(bench, base_table, fresh_table, threshold, findings,
                   hard_failures):
    header = base_table.get("header", [])
    columns = cost_columns(header)
    title = base_table.get("title", "?")
    # The row key is the configuration cells before the FIRST monitored
    # column of any class — a table whose only measurements are latency or
    # throughput columns (the serve bench) still needs keyed rows.
    monitored = sorted(set(columns) | set(latency_columns(header))
                       | set(throughput_columns(header)))
    if not monitored:
        # Make the coverage gap visible rather than reading as "clean".
        print(f"  [info] {bench} / '{title}': no monitored cost columns")
        return
    base_rows = keyed_rows(base_table.get("rows", []), monitored[0])
    fresh_rows = keyed_rows(fresh_table.get("rows", []), monitored[0])
    for key in sorted(set(base_rows) ^ set(fresh_rows), key=str):
        which = "gone from fresh run" if key in base_rows else "new (no baseline)"
        print(f"  [info] {bench} / '{title}' row {key[:-1]}: {which}")
    for key in sorted(set(base_rows) & set(fresh_rows), key=str):
        base_row = base_rows[key]
        fresh_row = fresh_rows[key]
        for col in columns:
            if col >= len(base_row) or col >= len(fresh_row):
                continue
            base_value = to_float(base_row[col])
            fresh_value = to_float(fresh_row[col])
            if base_value is None or fresh_value is None:
                continue
            if COMPLETENESS_MARKER in header[col].lower():
                # Any drop gates, regardless of --strict or --threshold.
                if fresh_value < base_value:
                    hard_failures.append(
                        f"{bench} / '{title}' row {key[:-1]}")
                    print(
                        f"  [COMPLETENESS-REGRESSION] {bench} / '{title}' "
                        f"row {key[:-1]} ({header[col]}): {base_value} -> "
                        f"{fresh_value} (gates regardless of --strict)"
                    )
                elif fresh_value > base_value:
                    print(
                        f"  [completeness-improvement] {bench} / '{title}' "
                        f"row {key[:-1]} ({header[col]}): {base_value} -> "
                        f"{fresh_value}"
                    )
                continue
            if base_value == 0.0:
                continue
            ratio = fresh_value / base_value - 1.0
            if abs(ratio) > threshold:
                kind = "REGRESSION" if ratio > 0 else "improvement"
                findings.append(kind == "REGRESSION")
                print(
                    f"  [{kind}] {bench} / '{title}' row {key[:-1]} "
                    f"({header[col]}): {base_value} -> {fresh_value} "
                    f"({ratio:+.1%})"
                )
        for col in latency_columns(header):
            # Informational only: latency quantiles never gate, so a tail
            # shift is visible in the log without failing the build.
            if col >= len(base_row) or col >= len(fresh_row):
                continue
            base_value = to_float(base_row[col])
            fresh_value = to_float(fresh_row[col])
            if base_value is None or fresh_value is None:
                continue
            if base_value == 0.0 or fresh_value == base_value:
                continue
            ratio = fresh_value / base_value - 1.0
            if abs(ratio) > threshold:
                print(
                    f"  [latency-drift] {bench} / '{title}' row {key[:-1]} "
                    f"({header[col]}): {base_value} -> {fresh_value} "
                    f"({ratio:+.1%}; informational, never gates)"
                )
        for col in throughput_columns(header):
            # Higher is better: a drop is the regression. Wall-clock
            # derived, so like wall_ms it is reported but never gates.
            if col >= len(base_row) or col >= len(fresh_row):
                continue
            base_value = to_float(base_row[col])
            fresh_value = to_float(fresh_row[col])
            if base_value is None or fresh_value is None:
                continue
            if base_value == 0.0:
                continue
            ratio = fresh_value / base_value - 1.0
            if abs(ratio) > threshold:
                kind = ("THROUGHPUT-REGRESSION" if ratio < 0
                        else "throughput-improvement")
                print(
                    f"  [{kind}] {bench} / '{title}' row {key[:-1]} "
                    f"({header[col]}): {base_value} -> {fresh_value} "
                    f"({ratio:+.1%}; informational, never gates)"
                )


def compare_wall_ms(bench, baseline, fresh, threshold, floor_ms=20.0):
    """Prints wall-clock drift above `threshold`; never gates the exit code.

    Scenarios faster than `floor_ms` in the baseline are skipped: at
    millisecond scale the process and scheduler noise exceeds any signal.
    """
    base_wall = baseline.get("wall_ms") or {}
    fresh_wall = fresh.get("wall_ms") or {}
    if not base_wall or not fresh_wall:
        return
    # Scenario-set drift is informational, never a KeyError: new scenarios
    # land before their baseline is recorded, and retired ones linger in
    # baselines until the next refresh.
    for name in sorted(set(fresh_wall) - set(base_wall)):
        print(f"  [NEW-SCENARIO] {bench} scenario '{name}': in this run "
              "but not in the baselines")
    for name in sorted(set(base_wall) - set(fresh_wall)):
        print(f"  [GONE] {bench} scenario '{name}': in the baselines "
              "but not in this run")
    for name in sorted(set(base_wall) & set(fresh_wall)):
        base_value = to_float(base_wall[name])
        fresh_value = to_float(fresh_wall[name])
        if base_value is None or fresh_value is None:
            continue
        if base_value < floor_ms:
            continue
        ratio = fresh_value / base_value - 1.0
        if abs(ratio) > threshold:
            kind = "WALL-REGRESSION" if ratio > 0 else "wall-improvement"
            print(
                f"  [{kind}] {bench} scenario '{name}': "
                f"{base_value:.0f}ms -> {fresh_value:.0f}ms ({ratio:+.1%})"
            )


def report_speedups(bench, report):
    """Prints wall-clock speedup ratios between @tN variants of a scenario.

    Scenarios that sweep the engine's step_threads knob are registered once
    per thread count under names like "E6/parallel-step@t4", so each variant
    owns a wall_ms key. Variants are grouped by the base name before "@t"
    and reported as serial-time / variant-time against the @t1 baseline of
    the same run. Informational only — wall-clock never gates — and runs on
    the fresh report alone, so the speedup is a same-host, same-binary A/B.
    """
    wall = report.get("wall_ms") or {}
    groups = {}
    for name, value in wall.items():
        base, sep, suffix = name.partition("@t")
        if not sep or not suffix.isdigit():
            continue
        groups.setdefault(base, {})[int(suffix)] = to_float(value)
    for base in sorted(groups):
        variants = groups[base]
        serial = variants.get(1)
        if serial is None or not serial > 0.0:
            continue
        for threads in sorted(variants):
            if threads == 1 or variants[threads] is None:
                continue
            if not variants[threads] > 0.0:
                continue
            speedup = serial / variants[threads]
            print(
                f"  [SPEEDUP] {bench} '{base}' @t{threads}: "
                f"{serial:.0f}ms / {variants[threads]:.0f}ms = "
                f"{speedup:.2f}x vs @t1"
            )


def self_test():
    """Unit check of the column-class logic against synthetic tables.

    Proves the direction conventions: a cost (steps) rise is a REGRESSION,
    a throughput (/sec) DROP is a THROUGHPUT-REGRESSION that never lands
    in `findings`, a latency shift is [latency-drift], and a complete%
    drop is a hard failure. Run as a ctest entry so the conventions cannot
    silently invert.
    """
    import contextlib
    import io

    failures = []

    def check(name, condition):
        if not condition:
            failures.append(name)

    def run_case(base_rows, fresh_rows, header, title="T"):
        base = {"title": title, "header": header, "rows": base_rows}
        fresh = {"title": title, "header": header, "rows": fresh_rows}
        findings, hard = [], []
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            compare_tables("selftest", base, fresh, 0.1, findings, hard)
        return out.getvalue(), findings, hard

    # Cost column: higher is worse, gates under --strict.
    out, findings, hard = run_case(
        [["n=5", "100"]], [["n=5", "150"]], ["config", "steps"])
    check("cost rise is REGRESSION", "[REGRESSION]" in out)
    check("cost rise lands in findings", findings == [True])
    check("cost rise is not a hard failure", not hard)

    # Throughput column: LOWER is worse, reported but never a finding.
    out, findings, hard = run_case(
        [["c=4", "1000"]], [["c=4", "500"]], ["config", "specs/sec"])
    check("throughput drop flags THROUGHPUT-REGRESSION",
          "[THROUGHPUT-REGRESSION]" in out)
    check("throughput drop never gates", not findings and not hard)
    out, findings, hard = run_case(
        [["c=4", "1000"]], [["c=4", "2000"]], ["config", "specs/sec"])
    check("throughput rise flags improvement",
          "[throughput-improvement]" in out)
    check("throughput rise never gates", not findings and not hard)

    # A throughput-only table still keys rows on the config cells: same
    # config twice must diff positionally, not collapse or mismatch.
    out, findings, hard = run_case(
        [["a", "100"], ["a", "200"]], [["a", "100"], ["a", "50"]],
        ["config", "specs/sec"])
    check("duplicate config rows stay distinct",
          out.count("[THROUGHPUT-REGRESSION]") == 1)

    # Latency column: informational drift only.
    out, findings, hard = run_case(
        [["n=5", "100", "10"]], [["n=5", "100", "20"]],
        ["config", "steps", "p95(lat)"])
    check("latency shift is latency-drift", "[latency-drift]" in out)
    check("latency shift never gates", not findings and not hard)

    # Completeness: any drop is a hard failure regardless of threshold.
    out, findings, hard = run_case(
        [["n=5", "100"]], [["n=5", "99"]], ["config", "complete%"])
    check("complete% drop is a hard failure", len(hard) == 1)

    if failures:
        for name in failures:
            print(f"SELF-TEST FAIL: {name}")
        return 1
    print("compare_bench self-test: all cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="run the column-class unit checks and exit")
    parser.add_argument("--baseline-dir")
    parser.add_argument("--fresh-dir")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative change in a steps column that counts as a finding",
    )
    parser.add_argument(
        "--wall-threshold",
        type=float,
        default=0.3,
        help="relative wall-clock change per scenario worth reporting "
        "(informational only; never affects the exit code)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when a steps regression is found (default: report only)",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline_dir or not args.fresh_dir:
        parser.error("--baseline-dir and --fresh-dir are required")

    # A missing or empty baseline directory is a caller error (wrong path,
    # forgotten checkout), not a clean diff: exit nonzero so CI cannot
    # silently "pass" while comparing against nothing.
    if not os.path.isdir(args.baseline_dir):
        print(
            f"error: baseline dir '{args.baseline_dir}' does not exist\n"
            f"usage: {parser.prog} --baseline-dir DIR --fresh-dir DIR "
            "[--threshold F] [--strict]\n"
            "       DIR must hold the committed BENCH_*.json baselines "
            "(e.g. bench/baselines)",
            file=sys.stderr,
        )
        return 2
    baselines = load_reports(args.baseline_dir)
    fresh = load_reports(args.fresh_dir)
    if not baselines:
        print(
            f"error: no BENCH_*.json baselines in '{args.baseline_dir}' — "
            "nothing to compare against\n"
            f"usage: {parser.prog} --baseline-dir DIR --fresh-dir DIR "
            "[--threshold F] [--strict]",
            file=sys.stderr,
        )
        return 2

    findings = []
    hard_failures = []
    print(
        f"comparing {len(fresh)} fresh report(s) against "
        f"{len(baselines)} baseline(s), threshold {args.threshold:.0%}"
    )
    for name, baseline in sorted(baselines.items()):
        if name not in fresh:
            print(f"  [info] {name}: no fresh report (bench not run)")
            continue
        fresh_tables = {
            table.get("title"): table for table in fresh[name].get("tables", [])
        }
        for base_table in baseline.get("tables", []):
            title = base_table.get("title")
            if title not in fresh_tables:
                print(f"  [info] {name}: table '{title}' gone from fresh run")
                continue
            compare_tables(
                name, base_table, fresh_tables[title], args.threshold,
                findings, hard_failures
            )
        compare_wall_ms(name, baseline, fresh[name], args.wall_threshold)
    for name in sorted(set(fresh) - set(baselines)):
        print(f"  [info] {name}: new bench without a baseline")
    for name, report in sorted(fresh.items()):
        report_speedups(name, report)

    regressions = sum(findings)
    if not findings:
        print("no cost changes above threshold")
    else:
        print(
            f"{regressions} regression(s), "
            f"{len(findings) - regressions} improvement(s)"
        )
    if hard_failures:
        print(
            f"{len(hard_failures)} completeness regression(s) — "
            "degraded-mode completion dropped below baseline"
        )
        return 1
    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
