// E11 (Ranade [13] comparison, Sections 1 and 3): the baselines the paper
// positions itself against.
//
//  * Butterfly emulation (Ranade-style: hashed memory + combining requests
//    on the wrapped butterfly): cost c * log2 N per CRCW PRAM step — we
//    measure c. This reproduces the shape of Ranade's O(log N) result that
//    the paper's leveled-network theorem generalizes.
//    (Substitution note: we use the two-phase randomized router plus our
//    combining layer rather than Ranade's sorted-stream/ghost-packet
//    pipeline; same asymptotics, different constant — see DESIGN.md.)
//  * Generic two-phase emulation ON the mesh (Valiant-Brebner router, no
//    mesh-specific staging): ~8n per PRAM step vs the specialized 3-stage
//    algorithm's ~4n — the "constant matters on a large-diameter network"
//    argument motivating Section 3.

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "pram/algorithms/access_patterns.hpp"

namespace {

using namespace levnet;

using bench::u32;

constexpr std::uint32_t kPramSteps = 3;

analysis::TrialStats permutation_trials(analysis::ScenarioContext& ctx,
                                        const machine::Machine& m) {
  return ctx.trials([&](std::uint64_t seed) {
    pram::PermutationTraffic program(m.processors(), kPramSteps, seed);
    pram::SharedMemory memory;
    return m.run_seeded(seed, program, memory);
  });
}

void mesh_emulation_row(analysis::ScenarioContext& ctx, std::uint32_t n,
                        bool specialized) {
  const machine::Machine m = machine::Machine::build(
      "mesh:" + std::to_string(n) +
      (specialized ? "/three-stage/erew/furthest-first"
                   : "/valiant/erew/fifo"));
  const analysis::TrialStats stats = permutation_trials(ctx, m);

  auto& table = ctx.table(
      "E11b / Section 3 motivation: generic vs specialized emulation on the "
      "mesh (steps per PRAM step / n)",
      {"n", "scheme", "steps/pram-step", "worst", "per n"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::string(specialized ? "3-stage (paper)" : "generic 2-phase"))
      .cell(stats.steps.mean, 1)
      .cell(stats.worst_step.max, 0)
      .cell(stats.steps.mean / n, 2);
}

[[maybe_unused]] const analysis::ScenarioRegistrar kRanadeButterfly{
    analysis::Scenario{
        .name = "E11a/ranade-butterfly",
        .experiment = "E11a / Ranade [13] baseline",
        .sweep = "(levels l); combining CRCW emulation on the radix-2 "
                 "wrapped butterfly, cost = c * log2 N",
        .points = {{4}, {6}, {8}, {10}, {12}},
        .smoke_points = {{4}, {6}},
        .seeds = 2,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto levels = u32(ctx.arg(0));
              // Ranade's scheme is a combining CRCW emulation.
              const machine::Machine m = machine::Machine::build(
                  "butterfly:" + std::to_string(levels) +
                  "/two-phase/crcw-combining");
              const analysis::TrialStats stats = permutation_trials(ctx, m);

              auto& table = ctx.table(
                  "E11a / Ranade [13] baseline: combining emulation on the "
                  "butterfly (cost = c * log2 N)",
                  {"log2 N", "procs", "steps/pram-step", "worst",
                   "c = steps/log2N", "linkQ"});
              table.row()
                  .cell(std::uint64_t{levels})
                  .cell(std::uint64_t{m.processors()})
                  .cell(stats.steps.mean, 1)
                  .cell(stats.worst_step.max, 0)
                  .cell(stats.steps.mean / levels, 2)
                  .cell(stats.max_link_queue.max, 0);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kMeshGeneric{
    analysis::Scenario{
        .name = "E11b/mesh-generic-emulation",
        .experiment = "E11b / Section 3 motivation",
        .sweep = "(n); Valiant-Brebner two-phase, no mesh staging",
        .points = {{16}, {32}, {48}},
        .smoke_points = {{16}},
        .seeds = 2,
        .run =
            [](analysis::ScenarioContext& ctx) {
              mesh_emulation_row(ctx, u32(ctx.arg(0)), false);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kMeshSpecialized{
    analysis::Scenario{
        .name = "E11b/mesh-specialized-emulation",
        .experiment = "E11b / Section 3 motivation",
        .sweep = "(n); the paper's 3-stage mesh algorithm",
        .points = {{16}, {32}, {48}},
        .smoke_points = {{16}},
        .seeds = 2,
        .run =
            [](analysis::ScenarioContext& ctx) {
              mesh_emulation_row(ctx, u32(ctx.arg(0)), true);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
