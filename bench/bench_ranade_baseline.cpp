// E11 (Ranade [13] comparison, Sections 1 and 3): the baselines the paper
// positions itself against.
//
//  * Butterfly emulation (Ranade-style: hashed memory + combining requests
//    on the wrapped butterfly): cost c * log2 N per CRCW PRAM step — we
//    measure c. This reproduces the shape of Ranade's O(log N) result that
//    the paper's leveled-network theorem generalizes.
//    (Substitution note: we use the two-phase randomized router plus our
//    combining layer rather than Ranade's sorted-stream/ghost-packet
//    pipeline; same asymptotics, different constant — see DESIGN.md.)
//  * Generic two-phase emulation ON the mesh (Valiant-Brebner router, no
//    mesh-specific staging): ~8n per PRAM step vs the specialized 3-stage
//    algorithm's ~4n — the "constant matters on a large-diameter network"
//    argument motivating Section 3.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "routing/mesh_router.hpp"
#include "routing/two_phase.hpp"
#include "support/bits.hpp"
#include "support/stats.hpp"
#include "topology/mesh.hpp"

namespace {

using namespace levnet;

constexpr std::uint32_t kPramSteps = 3;

void BM_RanadeButterflyEmulation(benchmark::State& state) {
  const auto levels = static_cast<std::uint32_t>(state.range(0));
  const topology::WrappedButterfly bf(2, levels);
  const routing::TwoPhaseButterflyRouter router(bf);
  const emulation::EmulationFabric fabric(bf, router);
  emulation::EmulatorConfig config;
  config.combining = true;  // Ranade's scheme is a combining CRCW emulation
  emulation::EmulationReport report;
  for (auto _ : state) {
    pram::PermutationTraffic program(bf.row_count(), kPramSteps, 31);
    emulation::NetworkEmulator emulator(fabric, config);
    pram::SharedMemory memory;
    report = emulator.run(program, memory);
    benchmark::DoNotOptimize(report.network_steps);
  }
  state.counters["steps_per_pram_step"] = report.mean_step_network;
  state.counters["c_in_c_logN"] = report.mean_step_network / levels;

  auto& table = bench::Report::instance().table(
      "E11a / Ranade [13] baseline: combining emulation on the butterfly "
      "(cost = c * log2 N)",
      {"log2 N", "procs", "steps/pram-step", "worst", "c = steps/log2N",
       "linkQ"});
  table.row()
      .cell(std::uint64_t{levels})
      .cell(std::uint64_t{bf.row_count()})
      .cell(report.mean_step_network, 1)
      .cell(std::uint64_t{report.max_step_network})
      .cell(report.mean_step_network / levels, 2)
      .cell(std::uint64_t{report.max_link_queue});
}

void mesh_emulation_case(benchmark::State& state, std::uint32_t n,
                         bool specialized) {
  const topology::Mesh mesh(n, n);
  const routing::MeshThreeStageRouter staged(mesh);
  const routing::ValiantBrebnerMeshRouter generic(mesh);
  const routing::Router& router =
      specialized ? static_cast<const routing::Router&>(staged)
                  : static_cast<const routing::Router&>(generic);
  const emulation::EmulationFabric fabric(mesh.graph(), router,
                                          mesh.diameter(), mesh.name());
  emulation::EmulatorConfig config;
  if (specialized) config.discipline = sim::QueueDiscipline::kFurthestFirst;
  emulation::EmulationReport report;
  for (auto _ : state) {
    pram::PermutationTraffic program(mesh.node_count(), kPramSteps, 37);
    emulation::NetworkEmulator emulator(fabric, config);
    pram::SharedMemory memory;
    report = emulator.run(program, memory);
    benchmark::DoNotOptimize(report.network_steps);
  }
  state.counters["per_n"] = report.mean_step_network / n;

  auto& table = bench::Report::instance().table(
      "E11b / Section 3 motivation: generic vs specialized emulation on the "
      "mesh (steps per PRAM step / n)",
      {"n", "scheme", "steps/pram-step", "worst", "per n"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::string(specialized ? "3-stage (paper)" : "generic 2-phase"))
      .cell(report.mean_step_network, 1)
      .cell(std::uint64_t{report.max_step_network})
      .cell(report.mean_step_network / n, 2);
}

void BM_MeshGenericEmulation(benchmark::State& state) {
  mesh_emulation_case(state, static_cast<std::uint32_t>(state.range(0)),
                      false);
}

void BM_MeshSpecializedEmulation(benchmark::State& state) {
  mesh_emulation_case(state, static_cast<std::uint32_t>(state.range(0)),
                      true);
}

}  // namespace

BENCHMARK(BM_RanadeButterflyEmulation)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Iterations(1);
BENCHMARK(BM_MeshGenericEmulation)->Arg(16)->Arg(32)->Arg(48)->Iterations(1);
BENCHMARK(BM_MeshSpecializedEmulation)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)
    ->Iterations(1);

LEVNET_BENCH_MAIN()
