// SV-series (beyond the paper): throughput of the levnet_serve front end
// (src/serve/) — the JSONL request loop, the warm-machine LRU farm, and
// the batch fan-out — measured as specs/sec. Unlike the E/F-series these
// ARE wall-clock benches: the measurement is the serving overhead around
// the (deterministic) emulations, so the numbers are machine-dependent
// and compare_bench treats "/sec" columns as informational direction
// flags ([THROUGHPUT-REGRESSION]), never hard gates.
//
// The cache counter columns, by contrast, are exact: every scenario
// resolves its requests from a single dispatcher in request order, so
// hits/misses/evictions are a pure function of the request stream and a
// baseline mismatch there is a logic change, not noise.
//
//   SV1: clients x distinct-specs grid against a pre-warmed farm (every
//        request hits; the knee shows the serve-loop scaling).
//   SV2: cold (cache off) vs warm (pre-warmed) vs thrash (capacity 1,
//        alternating specs) on one client — the value of the farm.
//   SV3: fault-free (cacheable) vs faulted (uncacheable per-request
//        builds) — what fault injection costs the serving layer.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/stopwatch.hpp"
#include "bench_common.hpp"
#include "serve/farm.hpp"
#include "serve/session.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace levnet;

/// N distinct cache keys with identical build cost: the same machine text
/// with a varying seed knob (the seed is part of the canonical spec).
std::vector<std::string> distinct_specs(const std::string& base,
                                        std::size_t count) {
  std::vector<std::string> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs.push_back(base + "/seed=" + std::to_string(101 + i));
  }
  return specs;
}

/// One client's JSONL payload: `requests` lines cycling the spec list.
std::string make_payload(const std::vector<std::string>& specs,
                         std::size_t requests, std::uint32_t steps) {
  std::ostringstream os;
  for (std::size_t i = 0; i < requests; ++i) {
    os << "{\"spec\": \"" << specs[i % specs.size()]
       << "\", \"program\": \"permutation\", \"seed\": " << 7 + i % 3
       << ", \"steps\": " << steps << "}\n";
  }
  return os.str();
}

void prewarm(serve::Farm& farm, const std::vector<std::string>& specs) {
  for (const std::string& text : specs) {
    (void)farm.resolve(machine::parse_spec(text));
  }
}

/// Drives `clients` concurrent sessions (each with an inline worker, so
/// the parallelism under test is the client fan-in) over a shared farm;
/// returns wall seconds. Responses are rendered and discarded.
double drive_clients(serve::Farm& farm, unsigned clients,
                     const std::string& payload, std::uint64_t& ok_total) {
  std::vector<serve::SessionStats> stats(clients);
  support::ThreadPool pool(clients);
  const analysis::Stopwatch watch;
  pool.parallel_for(clients, [&](std::size_t i) {
    std::istringstream in(payload);
    std::ostringstream out;
    serve::SessionConfig config;
    config.queue_depth = 64;
    config.workers = 1;  // per-session pool inline; clients are the axis
    serve::Session session(farm, config);
    stats[i] = session.serve(in, out);
  });
  const double seconds = watch.seconds();
  ok_total = 0;
  for (const serve::SessionStats& s : stats) ok_total += s.ok;
  return seconds;
}

constexpr char kBaseSpec[] = "star:5/two-phase/crcw/fifo";

[[maybe_unused]] const analysis::ScenarioRegistrar kThroughput{
    analysis::Scenario{
        .name = "SV1/throughput",
        .experiment = "SV1 / serve farm (beyond the paper)",
        .sweep = "(clients, distinct specs); warm cache, requests/client "
                 "fixed",
        .points = {{1, 1}, {1, 8}, {4, 1}, {4, 8}, {8, 1}, {8, 8}},
        .smoke_points = {{1, 1}, {4, 8}},
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto clients = static_cast<unsigned>(ctx.arg(0));
              const auto nspecs = static_cast<std::size_t>(ctx.arg(1));
              const std::size_t requests = ctx.smoke() ? 6 : 32;
              const std::vector<std::string> specs =
                  distinct_specs(kBaseSpec, nspecs);
              serve::Farm farm(serve::FarmConfig{8});
              prewarm(farm, specs);
              const std::string payload = make_payload(specs, requests, 2);
              std::uint64_t ok = 0;
              const double seconds = drive_clients(farm, clients, payload, ok);
              const serve::Farm::Counters counters = farm.counters();
              auto& table = ctx.table(
                  "SV1: serve throughput, warm farm (8-entry LRU)",
                  {"clients", "specs", "requests", "cache hits",
                   "specs/sec"});
              table.row()
                  .cell(static_cast<std::uint64_t>(clients))
                  .cell(static_cast<std::uint64_t>(nspecs))
                  .cell(ok)
                  .cell(counters.hits)
                  .cell(seconds > 0.0 ? static_cast<double>(ok) / seconds
                                      : 0.0,
                        0);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kCacheWarmup{
    analysis::Scenario{
        .name = "SV2/cache-warmup",
        .experiment = "SV2 / serve farm (beyond the paper)",
        .sweep = "cold (cache off) vs warm (pre-warmed) vs thrash "
                 "(capacity 1); one client, 2 specs",
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const std::size_t requests = ctx.smoke() ? 8 : 48;
              // Two distinct machines, short runs, and a big-enough
              // topology that construction (graph + router tables + hash
              // setup) dominates a 1-step run: the spread between the rows
              // is the build cost the cache amortises.
              const std::vector<std::string> specs =
                  distinct_specs("star:6/two-phase/crcw/fifo", 2);
              const std::string payload = make_payload(specs, requests, 1);
              auto& table = ctx.table(
                  "SV2: cache value, one client alternating 2 specs",
                  {"farm", "requests", "hits", "misses", "evictions",
                   "specs/sec"});
              const auto row = [&](const char* label, std::size_t capacity,
                                   bool warm) {
                serve::Farm farm(serve::FarmConfig{capacity});
                if (warm) prewarm(farm, specs);
                std::uint64_t ok = 0;
                const double seconds = drive_clients(farm, 1, payload, ok);
                const serve::Farm::Counters counters = farm.counters();
                table.row()
                    .cell(label)
                    .cell(ok)
                    .cell(counters.hits)
                    .cell(counters.misses)
                    .cell(counters.evictions)
                    .cell(seconds > 0.0
                              ? static_cast<double>(ok) / seconds
                              : 0.0,
                          0);
              };
              row("cold", 0, false);
              row("warm", 8, true);
              row("thrash", 1, false);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kFaulted{
    analysis::Scenario{
        .name = "SV3/faulted",
        .experiment = "SV3 / serve farm (beyond the paper)",
        .sweep = "fault-free (warm cache) vs faulted (uncacheable "
                 "per-request builds); one client",
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const std::size_t requests = ctx.smoke() ? 8 : 32;
              auto& table = ctx.table(
                  "SV3: fault injection cost at the serving layer",
                  {"machine", "requests", "hits", "uncacheable",
                   "specs/sec"});
              const auto row = [&](const char* label, const std::string& spec,
                                   bool warm) {
                const std::vector<std::string> specs{spec};
                serve::Farm farm(serve::FarmConfig{8});
                if (warm) prewarm(farm, specs);
                const std::string payload = make_payload(specs, requests, 1);
                std::uint64_t ok = 0;
                const double seconds = drive_clients(farm, 1, payload, ok);
                const serve::Farm::Counters counters = farm.counters();
                table.row()
                    .cell(label)
                    .cell(ok)
                    .cell(counters.hits)
                    .cell(counters.uncacheable)
                    .cell(seconds > 0.0
                              ? static_cast<double>(ok) / seconds
                              : 0.0,
                          0);
              };
              row("fault-free", std::string(kBaseSpec) + "/budget=64/rehash=10",
                  true);
              row("faulted",
                  std::string(kBaseSpec) +
                      "/budget=64/rehash=10/faults:links=0.05",
                  false);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
