// E1 (Theorem 2.1) + E4 (Theorem 2.4): the universal two-phase algorithm on
// generic leveled networks (wrapped radix-d butterflies).
//
// Claim: permutation routing finishes in O~(l) steps — steps/l should be a
// small constant independent of l and d — with FIFO link queues of size
// O(l); partial l-relations also finish in O~(l).

#include <benchmark/benchmark.h>

#include "analysis/trials.hpp"
#include "bench_common.hpp"
#include "routing/driver.hpp"
#include "routing/two_phase.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "topology/butterfly.hpp"

namespace {

using namespace levnet;

constexpr std::uint32_t kSeeds = 5;

void run_leveled_case(benchmark::State& state, std::uint32_t radix,
                      std::uint32_t levels, std::uint32_t relation_h) {
  const topology::WrappedButterfly bf(radix, levels);
  const routing::TwoPhaseButterflyRouter router(bf);
  std::uint64_t seed = 1;
  analysis::TrialStats stats = analysis::run_trials(
      [&](std::uint64_t s) {
        support::Rng rng(s);
        const sim::Workload w =
            relation_h <= 1
                ? sim::permutation_workload(bf.row_count(), rng)
                : sim::h_relation_workload(bf.row_count(), relation_h, rng);
        return routing::run_workload(bf.graph(), router, w, {}, rng);
      },
      kSeeds);
  for (auto _ : state) {
    support::Rng rng(seed++);
    const sim::Workload w =
        relation_h <= 1
            ? sim::permutation_workload(bf.row_count(), rng)
            : sim::h_relation_workload(bf.row_count(), relation_h, rng);
    const auto outcome = routing::run_workload(bf.graph(), router, w, {}, rng);
    benchmark::DoNotOptimize(outcome.metrics.steps);
  }
  state.counters["steps_mean"] = stats.steps.mean;
  state.counters["steps_max"] = stats.steps.max;
  state.counters["steps_per_l"] = stats.steps.mean / levels;
  state.counters["max_link_q"] = stats.max_link_queue.max;
  state.counters["complete"] = stats.all_complete ? 1 : 0;

  auto& table = bench::Report::instance().table(
      relation_h <= 1
          ? "E1 / Theorem 2.1: permutation routing on leveled networks"
          : "E4 / Theorem 2.4: partial l-relation routing on leveled networks",
      {"d", "l", "N=d^l", "h", "steps(mean)", "steps(max)", "steps/l",
       "linkQ(max)", "ok"});
  table.row()
      .cell(std::uint64_t{radix})
      .cell(std::uint64_t{levels})
      .cell(std::uint64_t{bf.row_count()})
      .cell(std::uint64_t{relation_h == 0 ? 1 : relation_h})
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.steps.mean / levels, 2)
      .cell(stats.max_link_queue.max, 0)
      .cell(std::string(stats.all_complete ? "yes" : "NO"));
}

void BM_LeveledPermutation(benchmark::State& state) {
  run_leveled_case(state, static_cast<std::uint32_t>(state.range(0)),
                   static_cast<std::uint32_t>(state.range(1)), 1);
}

void BM_LeveledRelation(benchmark::State& state) {
  run_leveled_case(state, static_cast<std::uint32_t>(state.range(0)),
                   static_cast<std::uint32_t>(state.range(1)),
                   static_cast<std::uint32_t>(state.range(2)));
}

}  // namespace

// Permutations: sweep levels for several radices (same-scale N where
// possible). steps/l must stay flat as l grows — that is Theorem 2.1.
BENCHMARK(BM_LeveledPermutation)
    ->Args({2, 4})
    ->Args({2, 6})
    ->Args({2, 8})
    ->Args({2, 10})
    ->Args({2, 12})
    ->Args({3, 4})
    ->Args({3, 6})
    ->Args({3, 8})
    ->Args({4, 3})
    ->Args({4, 5})
    ->Args({4, 6})
    ->Args({8, 4})
    ->Iterations(2);

// Partial l-relations with h up to l (Theorem 2.4's regime l = O(d) is the
// d = 8 row; smaller radices are the stress beyond the theorem).
BENCHMARK(BM_LeveledRelation)
    ->Args({2, 8, 4})
    ->Args({2, 8, 8})
    ->Args({4, 5, 5})
    ->Args({8, 4, 4})
    ->Iterations(2);

LEVNET_BENCH_MAIN()
