// E1 (Theorem 2.1) + E4 (Theorem 2.4): the universal two-phase algorithm on
// generic leveled networks (wrapped radix-d butterflies).
//
// Claim: permutation routing finishes in O~(l) steps — steps/l should be a
// small constant independent of l and d — with FIFO link queues of size
// O(l); partial l-relations also finish in O~(l).

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "routing/driver.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"

namespace {

using namespace levnet;

using bench::u32;

void leveled_row(analysis::ScenarioContext& ctx, std::uint32_t radix,
                 std::uint32_t levels, std::uint32_t relation_h) {
  const machine::Machine m = machine::Machine::build(
      "butterfly:" + std::to_string(radix) + "x" + std::to_string(levels) +
      "/two-phase");
  const analysis::TrialStats stats = ctx.trials([&](std::uint64_t seed) {
    support::Rng rng(seed);
    const sim::Workload w =
        relation_h <= 1
            ? sim::permutation_workload(m.processors(), rng)
            : sim::h_relation_workload(m.processors(), relation_h, rng);
    return routing::run_workload(m.graph(), m.router(), w, {}, rng);
  });

  auto& table = ctx.table(
      relation_h <= 1
          ? "E1 / Theorem 2.1: permutation routing on leveled networks"
          : "E4 / Theorem 2.4: partial l-relation routing on leveled networks",
      {"d", "l", "N=d^l", "h", "steps(mean)", "steps(max)", "steps/l",
       "linkQ(max)", "ok"});
  table.row()
      .cell(std::uint64_t{radix})
      .cell(std::uint64_t{levels})
      .cell(std::uint64_t{m.processors()})
      .cell(std::uint64_t{relation_h == 0 ? 1 : relation_h})
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.steps.mean / levels, 2)
      .cell(stats.max_link_queue.max, 0)
      .cell(std::string(stats.all_complete ? "yes" : "NO"));
}

// Permutations: sweep levels for several radices (same-scale N where
// possible). steps/l must stay flat as l grows — that is Theorem 2.1.
[[maybe_unused]] const analysis::ScenarioRegistrar kPermutation{
    analysis::Scenario{
        .name = "E1/leveled-permutation",
        .experiment = "E1 / Theorem 2.1",
        .sweep = "(radix d, levels l), N = d^l; permutation workloads",
        .points = {{2, 4}, {2, 6}, {2, 8}, {2, 10}, {2, 12}, {3, 4}, {3, 6},
                   {3, 8}, {4, 3}, {4, 5}, {4, 6}, {8, 4}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              leveled_row(ctx, u32(ctx.arg(0)), u32(ctx.arg(1)), 1);
            },
    }};

// Partial l-relations with h up to l (Theorem 2.4's regime l = O(d) is the
// d = 8 row; smaller radices are the stress beyond the theorem).
[[maybe_unused]] const analysis::ScenarioRegistrar kRelation{
    analysis::Scenario{
        .name = "E4/leveled-relation",
        .experiment = "E4 / Theorem 2.4",
        .sweep = "(radix d, levels l, relation h); partial h-relations",
        .points = {{2, 8, 4}, {2, 8, 8}, {4, 5, 5}, {8, 4, 4}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              leveled_row(ctx, u32(ctx.arg(0)), u32(ctx.arg(1)),
                          u32(ctx.arg(2)));
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
