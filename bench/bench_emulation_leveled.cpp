// E6 (Theorem 2.5, Corollaries 2.3-2.4) + E7 (Theorem 2.6, Corollaries
// 2.5-2.6): PRAM emulation on sub-logarithmic-diameter leveled networks.
//
// Claims measured:
//  * one EREW PRAM step (a permutation of read requests) is emulated in
//    O~(diameter) network steps on the star graph and the n-way shuffle —
//    steps/diameter stays a small constant while N explodes (E6);
//  * CRCW steps (all processors reading or writing one cell) cost about the
//    same *with combining*; without it the module serializes (E7).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "routing/shuffle_router.hpp"
#include "routing/star_router.hpp"
#include "routing/two_phase.hpp"
#include "topology/shuffle.hpp"
#include "topology/star.hpp"

namespace {

using namespace levnet;

constexpr std::uint32_t kPramSteps = 4;

struct EmulationRow {
  std::string network;
  std::uint64_t processors;
  std::uint32_t diameter;
  emulation::EmulationReport report;
};

void record_erew_row(const EmulationRow& row, benchmark::State& state) {
  state.counters["net_steps_per_pram_step"] = row.report.mean_step_network;
  state.counters["per_diameter"] =
      row.report.mean_step_network / row.diameter;
  auto& table = bench::Report::instance().table(
      "E6 / Theorem 2.5 + Cor 2.3-2.4: EREW emulation cost per PRAM step",
      {"network", "procs", "diam", "steps/pram-step", "worst step",
       "per diam", "linkQ", "rehash"});
  table.row()
      .cell(row.network)
      .cell(row.processors)
      .cell(std::uint64_t{row.diameter})
      .cell(row.report.mean_step_network, 1)
      .cell(std::uint64_t{row.report.max_step_network})
      .cell(row.report.mean_step_network / row.diameter, 2)
      .cell(std::uint64_t{row.report.max_link_queue})
      .cell(std::uint64_t{row.report.rehashes});
}

void BM_ErewEmulationStar(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const topology::StarGraph star(n);
  const routing::StarTwoPhaseRouter router(star);
  const emulation::EmulationFabric fabric(star.graph(), router,
                                          star.diameter(), star.name());
  emulation::EmulationReport report;
  for (auto _ : state) {
    pram::PermutationTraffic program(star.node_count(), kPramSteps, 11);
    emulation::NetworkEmulator emulator(fabric, {});
    pram::SharedMemory memory;
    report = emulator.run(program, memory);
    benchmark::DoNotOptimize(report.network_steps);
  }
  record_erew_row({star.name(), star.node_count(), star.diameter(), report},
                  state);
}

void BM_ErewEmulationShuffle(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const topology::DWayShuffle net = topology::DWayShuffle::n_way(n);
  const routing::ShuffleTwoPhaseRouter router(net);
  const emulation::EmulationFabric fabric(net.graph(), router,
                                          net.route_length(), net.name());
  emulation::EmulationReport report;
  for (auto _ : state) {
    pram::PermutationTraffic program(net.node_count(), kPramSteps, 13);
    emulation::NetworkEmulator emulator(fabric, {});
    pram::SharedMemory memory;
    report = emulator.run(program, memory);
    benchmark::DoNotOptimize(report.network_steps);
  }
  record_erew_row({net.name(), net.node_count(), net.route_length(), report},
                  state);
}

void BM_ErewEmulationButterfly(benchmark::State& state) {
  const auto levels = static_cast<std::uint32_t>(state.range(0));
  const topology::WrappedButterfly bf(2, levels);
  const routing::TwoPhaseButterflyRouter router(bf);
  const emulation::EmulationFabric fabric(bf, router);
  emulation::EmulationReport report;
  for (auto _ : state) {
    pram::PermutationTraffic program(bf.row_count(), kPramSteps, 17);
    emulation::NetworkEmulator emulator(fabric, {});
    pram::SharedMemory memory;
    report = emulator.run(program, memory);
    benchmark::DoNotOptimize(report.network_steps);
  }
  record_erew_row({bf.name(), bf.row_count(), bf.levels(), report}, state);
}

void crcw_hotspot_case(benchmark::State& state, std::uint32_t n, bool write,
                       bool combining) {
  const topology::StarGraph star(n);
  const routing::StarTwoPhaseRouter router(star);
  const emulation::EmulationFabric fabric(star.graph(), router,
                                          star.diameter(), star.name());
  emulation::EmulatorConfig config;
  config.combining = combining;
  emulation::EmulationReport report;
  for (auto _ : state) {
    emulation::NetworkEmulator emulator(fabric, config);
    pram::SharedMemory memory;
    if (write) {
      pram::HotSpotWriteTraffic program(star.node_count(), kPramSteps);
      report = emulator.run(program, memory);
    } else {
      pram::HotSpotReadTraffic program(star.node_count(), kPramSteps, 99);
      report = emulator.run(program, memory);
    }
    benchmark::DoNotOptimize(report.network_steps);
  }
  state.counters["net_steps_per_pram_step"] = report.mean_step_network;
  state.counters["combined"] =
      static_cast<double>(report.combined_requests);

  auto& table = bench::Report::instance().table(
      "E7 / Theorem 2.6 + Cor 2.5-2.6: CRCW hot-spot emulation on the star",
      {"n", "procs", "diam", "op", "combining", "steps/pram-step",
       "worst step", "combined reqs", "per diam"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{star.node_count()})
      .cell(std::uint64_t{star.diameter()})
      .cell(std::string(write ? "write" : "read"))
      .cell(std::string(combining ? "yes" : "no"))
      .cell(report.mean_step_network, 1)
      .cell(std::uint64_t{report.max_step_network})
      .cell(report.combined_requests)
      .cell(report.mean_step_network / star.diameter(), 2);
}

void BM_CrcwHotSpotRead(benchmark::State& state) {
  crcw_hotspot_case(state, static_cast<std::uint32_t>(state.range(0)),
                    /*write=*/false, state.range(1) != 0);
}

void BM_CrcwHotSpotWrite(benchmark::State& state) {
  crcw_hotspot_case(state, static_cast<std::uint32_t>(state.range(0)),
                    /*write=*/true, state.range(1) != 0);
}

}  // namespace

BENCHMARK(BM_ErewEmulationStar)->DenseRange(4, 7)->Iterations(1);
BENCHMARK(BM_ErewEmulationShuffle)->DenseRange(3, 5)->Iterations(1);
BENCHMARK(BM_ErewEmulationButterfly)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Iterations(1);
BENCHMARK(BM_CrcwHotSpotRead)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({6, 0})
    ->Args({6, 1})
    ->Iterations(1);
BENCHMARK(BM_CrcwHotSpotWrite)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({6, 0})
    ->Args({6, 1})
    ->Iterations(1);

LEVNET_BENCH_MAIN()
