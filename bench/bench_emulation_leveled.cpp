// E6 (Theorem 2.5, Corollaries 2.3-2.4) + E7 (Theorem 2.6, Corollaries
// 2.5-2.6): PRAM emulation on sub-logarithmic-diameter leveled networks.
//
// Claims measured:
//  * one EREW PRAM step (a permutation of read requests) is emulated in
//    O~(diameter) network steps on the star graph and the n-way shuffle —
//    steps/diameter stays a small constant while N explodes (E6);
//  * CRCW steps (all processors reading or writing one cell) cost about the
//    same *with combining*; without it the module serializes (E7).
//
// Machines are assembled from spec strings (machine/spec.hpp); the trial
// bodies construct program + emulator per seed exactly as before, so all
// measured values are bit-identical to the hand-wired assembly.

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "obs/recorder.hpp"
#include "pram/algorithms/access_patterns.hpp"

namespace {

using namespace levnet;

using bench::u32;

constexpr std::uint32_t kPramSteps = 4;

/// One seeded EREW emulation trial: a fresh permutation program and a fresh
/// emulator stream (per-trial engine + RNG — reentrant across pool threads).
analysis::TrialStats erew_trials(analysis::ScenarioContext& ctx,
                                 const machine::Machine& m) {
  return ctx.trials([&](std::uint64_t seed) {
    pram::PermutationTraffic program(m.processors(), kPramSteps, seed);
    pram::SharedMemory memory;
    // Histogram-only recorder (cadence 0, no trace): read-only hooks feed
    // the latency quantile columns without perturbing the measured run.
    obs::Recorder recorder{obs::RecorderConfig{}};
    return m.run_seeded(seed, program, memory, &recorder);
  });
}

void erew_row(analysis::ScenarioContext& ctx, const machine::Machine& m,
              const analysis::TrialStats& stats) {
  const std::uint32_t diameter = m.route_scale();
  auto& table = ctx.table(
      "E6 / Theorem 2.5 + Cor 2.3-2.4: EREW emulation cost per PRAM step",
      {"network", "procs", "diam", "steps/pram-step", "worst step",
       "per diam", "linkQ", "rehash", "p50(lat)", "p95(lat)", "p99(lat)"});
  table.row()
      .cell(m.name())
      .cell(std::uint64_t{m.processors()})
      .cell(std::uint64_t{diameter})
      .cell(stats.steps.mean, 1)
      .cell(stats.worst_step.max, 0)
      .cell(stats.steps.mean / diameter, 2)
      .cell(stats.max_link_queue.max, 0)
      .cell(stats.rehashes_mean, 1)
      .cell(stats.latency_p50.mean, 1)
      .cell(stats.latency_p95.mean, 1)
      .cell(stats.latency_p99.mean, 1);
}

void crcw_row(analysis::ScenarioContext& ctx, std::uint32_t n, bool write,
              bool combining) {
  const machine::Machine m = machine::Machine::build(
      "star:" + std::to_string(n) + "/two-phase" +
      (combining ? "/crcw-combining" : "/crcw"));
  const analysis::TrialStats stats = ctx.trials([&](std::uint64_t seed) {
    pram::SharedMemory memory;
    obs::Recorder recorder{obs::RecorderConfig{}};
    if (write) {
      pram::HotSpotWriteTraffic program(m.processors(), kPramSteps);
      return m.run_seeded(seed, program, memory, &recorder);
    }
    pram::HotSpotReadTraffic program(m.processors(), kPramSteps, 99);
    return m.run_seeded(seed, program, memory, &recorder);
  });

  auto& table = ctx.table(
      "E7 / Theorem 2.6 + Cor 2.5-2.6: CRCW hot-spot emulation on the star",
      {"n", "procs", "diam", "op", "combining", "steps/pram-step",
       "worst step", "combined reqs", "per diam", "p50(lat)", "p95(lat)",
       "p99(lat)"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{m.processors()})
      .cell(std::uint64_t{m.route_scale()})
      .cell(std::string(write ? "write" : "read"))
      .cell(std::string(combining ? "yes" : "no"))
      .cell(stats.steps.mean, 1)
      .cell(stats.worst_step.max, 0)
      .cell(stats.combined_mean, 1)
      .cell(stats.steps.mean / m.route_scale(), 2)
      .cell(stats.latency_p50.mean, 1)
      .cell(stats.latency_p95.mean, 1)
      .cell(stats.latency_p99.mean, 1);
}

[[maybe_unused]] const analysis::ScenarioRegistrar kErewStar{
    analysis::Scenario{
        .name = "E6/erew-star",
        .experiment = "E6 / Theorem 2.5 on the n-star",
        .sweep = "(n); permutation reads, N = n! processors",
        .points = {{4}, {5}, {6}, {7}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const machine::Machine m = machine::Machine::build(
                  "star:" + std::to_string(ctx.arg(0)) + "/two-phase");
              erew_row(ctx, m, erew_trials(ctx, m));
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kErewShuffle{
    analysis::Scenario{
        .name = "E6/erew-shuffle",
        .experiment = "E6 / Theorem 2.5 on the n-way shuffle",
        .sweep = "(n); permutation reads, N = n^n processors",
        .points = {{3}, {4}, {5}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const machine::Machine m = machine::Machine::build(
                  "nshuffle:" + std::to_string(ctx.arg(0)) + "/two-phase");
              erew_row(ctx, m, erew_trials(ctx, m));
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kErewButterfly{
    analysis::Scenario{
        .name = "E6/erew-butterfly",
        .experiment = "E6 / Theorem 2.5 on the wrapped butterfly (reference)",
        .sweep = "(levels l); radix-2 wrapped butterfly, N = 2^l rows",
        .points = {{4}, {6}, {8}, {10}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const machine::Machine m = machine::Machine::build(
                  "butterfly:" + std::to_string(ctx.arg(0)) + "/two-phase");
              erew_row(ctx, m, erew_trials(ctx, m));
            },
    }};

/// E6b: one scenario per step_threads value (the registry records wall_ms
/// per scenario name, so each variant gets its own "E6/parallel-step@tN"
/// timing key; bench/compare_bench.py groups the @t variants of a base
/// name and prints the speedup ratios). One seed, so the engine's internal
/// shard pool is the only parallelism in the timing window — the simulated
/// columns must come out identical across variants (bit-identical sharding).
void parallel_step_row(analysis::ScenarioContext& ctx,
                       std::uint32_t step_threads) {
  // Full sweep: star:9 = 362,880 processors; smoke: star:7 = 5,040.
  constexpr std::uint32_t kParallelPramSteps = 2;
  const machine::Machine m = machine::Machine::build(
      "star:" + std::to_string(ctx.arg(0)) + "/two-phase/threads:" +
      std::to_string(step_threads));
  const analysis::TrialStats stats = ctx.trials([&](std::uint64_t seed) {
    pram::PermutationTraffic program(m.processors(), kParallelPramSteps,
                                    seed);
    pram::SharedMemory memory;
    return m.run_seeded(seed, program, memory);
  });
  auto& table = ctx.table(
      "E6b: intra-trial parallel stepping (wall_ms per variant in JSON)",
      {"network", "procs", "step-threads", "steps/pram-step", "worst step",
       "per diam"});
  table.row()
      .cell(m.name())
      .cell(std::uint64_t{m.processors()})
      .cell(std::uint64_t{step_threads})
      .cell(stats.steps.mean, 1)
      .cell(stats.worst_step.max, 0)
      .cell(stats.steps.mean / m.route_scale(), 2);
}

[[maybe_unused]] const analysis::ScenarioRegistrar kParallelStepT1{
    analysis::Scenario{
        .name = "E6/parallel-step@t1",
        .experiment = "E6b / serial baseline for the sharded engine",
        .sweep = "(n); permutation reads, engine step_threads = 1",
        .points = {{9}},
        .smoke_points = {{7}},
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) { parallel_step_row(ctx, 1); },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kParallelStepT2{
    analysis::Scenario{
        .name = "E6/parallel-step@t2",
        .experiment = "E6b / sharded engine, 2 threads",
        .sweep = "(n); permutation reads, engine step_threads = 2",
        .points = {{9}},
        .smoke_points = {{7}},
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) { parallel_step_row(ctx, 2); },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kParallelStepT4{
    analysis::Scenario{
        .name = "E6/parallel-step@t4",
        .experiment = "E6b / sharded engine, 4 threads",
        .sweep = "(n); permutation reads, engine step_threads = 4",
        .points = {{9}},
        .smoke_points = {{7}},
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) { parallel_step_row(ctx, 4); },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kParallelStepT8{
    analysis::Scenario{
        .name = "E6/parallel-step@t8",
        .experiment = "E6b / sharded engine, 8 threads",
        .sweep = "(n); permutation reads, engine step_threads = 8",
        .points = {{9}},
        .smoke_points = {{7}},
        .seeds = 1,
        .run =
            [](analysis::ScenarioContext& ctx) { parallel_step_row(ctx, 8); },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kCrcwRead{
    analysis::Scenario{
        .name = "E7/crcw-hotspot-read",
        .experiment = "E7 / Theorem 2.6 + Cor 2.5",
        .sweep = "(n, combining 0/1); all processors read cell 0",
        .points = {{5, 0}, {5, 1}, {6, 0}, {6, 1}},
        .smoke_points = {{5, 0}, {5, 1}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              crcw_row(ctx, u32(ctx.arg(0)), false, ctx.arg(1) != 0);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kCrcwWrite{
    analysis::Scenario{
        .name = "E7/crcw-hotspot-write",
        .experiment = "E7 / Theorem 2.6 + Cor 2.6",
        .sweep = "(n, combining 0/1); all processors add 1 to cell 0 (SUM)",
        .points = {{5, 0}, {5, 1}, {6, 0}, {6, 1}},
        .smoke_points = {{5, 0}, {5, 1}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              crcw_row(ctx, u32(ctx.arg(0)), true, ctx.arg(1) != 0);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
