// E8 (Theorem 3.1, Section 3.2/3.4): routing on the n x n mesh.
//
// Claims measured:
//  * the 3-stage slice-randomized algorithm with furthest-destination-first
//    contention resolution routes permutations in 2n + o(n) steps with
//    queues of size O(log n);
//  * Valiant-Brebner two-phase [19] needs ~3n (its phase-1 detour is a full
//    extra traversal);
//  * greedy XY is fast on random permutations but collapses on bursty
//    h-relations, which the slice randomization absorbs;
//  * a constant node-buffer bound (the O(1)-queue variant) barely changes
//    the finishing time.

#include <benchmark/benchmark.h>

#include "analysis/trials.hpp"
#include "bench_common.hpp"
#include "routing/driver.hpp"
#include "routing/mesh_router.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "topology/mesh.hpp"

namespace {

using namespace levnet;

constexpr std::uint32_t kSeeds = 3;

enum class MeshAlgo { kThreeStage, kValiantBrebner, kGreedyXY };

const char* algo_name(MeshAlgo algo) {
  switch (algo) {
    case MeshAlgo::kThreeStage:
      return "3-stage";
    case MeshAlgo::kValiantBrebner:
      return "valiant-brebner";
    case MeshAlgo::kGreedyXY:
      return "greedy-xy";
  }
  return "?";
}

void mesh_case(benchmark::State& state, std::uint32_t n, MeshAlgo algo,
               std::uint32_t relation_h, std::uint32_t buffer_bound) {
  const topology::Mesh mesh(n, n);
  const routing::MeshThreeStageRouter staged(mesh);
  const routing::ValiantBrebnerMeshRouter valiant(mesh);
  const routing::GreedyXYMeshRouter greedy(mesh);
  const routing::Router& router =
      algo == MeshAlgo::kThreeStage
          ? static_cast<const routing::Router&>(staged)
          : (algo == MeshAlgo::kValiantBrebner
                 ? static_cast<const routing::Router&>(valiant)
                 : static_cast<const routing::Router&>(greedy));
  sim::EngineConfig config;
  // The paper's discipline for its own algorithm; FIFO for baselines.
  if (algo == MeshAlgo::kThreeStage) {
    config.discipline = sim::QueueDiscipline::kFurthestFirst;
  }
  config.node_buffer_bound = buffer_bound;

  const analysis::TrialStats stats = analysis::run_trials(
      [&](std::uint64_t s) {
        support::Rng rng(s);
        const sim::Workload w =
            relation_h <= 1
                ? sim::permutation_workload(mesh.node_count(), rng)
                : sim::h_relation_workload(mesh.node_count(), relation_h,
                                           rng);
        return routing::run_workload(mesh.graph(), router, w, config, rng);
      },
      kSeeds);

  for (auto _ : state) {
    support::Rng rng(55);
    const sim::Workload w = sim::permutation_workload(mesh.node_count(), rng);
    const auto outcome =
        routing::run_workload(mesh.graph(), router, w, config, rng);
    benchmark::DoNotOptimize(outcome.metrics.steps);
  }
  state.counters["steps_mean"] = stats.steps.mean;
  state.counters["steps_per_n"] = stats.steps.mean / n;
  state.counters["node_q_max"] = stats.max_node_queue.max;

  auto& table = bench::Report::instance().table(
      relation_h <= 1
          ? (buffer_bound == 0
                 ? "E8a / Theorem 3.1: mesh permutation routing"
                 : "E8c / O(1)-queue variant: bounded node buffers")
          : "E8b / bursty h-relations: slice randomization vs greedy",
      {"n", "algo", "h", "buf", "steps(mean)", "steps(max)", "steps/n",
       "nodeQ(max)", "ok"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::string(algo_name(algo)))
      .cell(std::uint64_t{relation_h == 0 ? 1 : relation_h})
      .cell(std::uint64_t{buffer_bound})
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.steps.mean / n, 2)
      .cell(stats.max_node_queue.max, 0)
      .cell(std::string(stats.all_complete ? "yes" : "NO"));
}

void BM_MeshThreeStage(benchmark::State& state) {
  mesh_case(state, static_cast<std::uint32_t>(state.range(0)),
            MeshAlgo::kThreeStage, 1, 0);
}

void BM_MeshValiantBrebner(benchmark::State& state) {
  mesh_case(state, static_cast<std::uint32_t>(state.range(0)),
            MeshAlgo::kValiantBrebner, 1, 0);
}

void BM_MeshGreedyXY(benchmark::State& state) {
  mesh_case(state, static_cast<std::uint32_t>(state.range(0)),
            MeshAlgo::kGreedyXY, 1, 0);
}

void BM_MeshRelationStaged(benchmark::State& state) {
  mesh_case(state, static_cast<std::uint32_t>(state.range(0)),
            MeshAlgo::kThreeStage, 8, 0);
}

void BM_MeshRelationGreedy(benchmark::State& state) {
  mesh_case(state, static_cast<std::uint32_t>(state.range(0)),
            MeshAlgo::kGreedyXY, 8, 0);
}

void BM_MeshBoundedBuffers(benchmark::State& state) {
  mesh_case(state, static_cast<std::uint32_t>(state.range(0)),
            MeshAlgo::kThreeStage, 1,
            static_cast<std::uint32_t>(state.range(1)));
}

}  // namespace

BENCHMARK(BM_MeshThreeStage)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Iterations(1);
BENCHMARK(BM_MeshValiantBrebner)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Iterations(1);
BENCHMARK(BM_MeshGreedyXY)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Iterations(1);
BENCHMARK(BM_MeshRelationStaged)->Arg(32)->Arg(64)->Iterations(1);
BENCHMARK(BM_MeshRelationGreedy)->Arg(32)->Arg(64)->Iterations(1);
BENCHMARK(BM_MeshBoundedBuffers)
    ->Args({32, 4})
    ->Args({32, 8})
    ->Args({64, 4})
    ->Args({64, 8})
    ->Iterations(1);

LEVNET_BENCH_MAIN()
