// E8 (Theorem 3.1, Section 3.2/3.4): routing on the n x n mesh.
//
// Claims measured:
//  * the 3-stage slice-randomized algorithm with furthest-destination-first
//    contention resolution routes permutations in 2n + o(n) steps with
//    queues of size O(log n);
//  * Valiant-Brebner two-phase [19] needs ~3n (its phase-1 detour is a full
//    extra traversal);
//  * greedy XY is fast on random permutations but collapses on bursty
//    h-relations, which the slice randomization absorbs;
//  * a constant node-buffer bound (the O(1)-queue variant) barely changes
//    the finishing time.

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "routing/driver.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"

namespace {

using namespace levnet;

using bench::u32;

enum class MeshAlgo : std::int64_t {
  kThreeStage = 0,
  kValiantBrebner = 1,
  kGreedyXY = 2,
};

const char* algo_name(MeshAlgo algo) {
  switch (algo) {
    case MeshAlgo::kThreeStage:
      return "3-stage";
    case MeshAlgo::kValiantBrebner:
      return "valiant-brebner";
    case MeshAlgo::kGreedyXY:
      return "greedy-xy";
  }
  return "?";
}

void mesh_row(analysis::ScenarioContext& ctx, std::uint32_t n, MeshAlgo algo,
              std::uint32_t relation_h, std::uint32_t buffer_bound) {
  // The paper's discipline for its own algorithm; FIFO for baselines.
  std::string spec = "mesh:" + std::to_string(n);
  switch (algo) {
    case MeshAlgo::kThreeStage:
      spec += "/three-stage/erew/furthest-first";
      break;
    case MeshAlgo::kValiantBrebner:
      spec += "/valiant/erew/fifo";
      break;
    case MeshAlgo::kGreedyXY:
      spec += "/xy/erew/fifo";
      break;
  }
  if (buffer_bound != 0) spec += "/buffer=" + std::to_string(buffer_bound);
  const machine::Machine m = machine::Machine::build(spec);

  const analysis::TrialStats stats = ctx.trials([&](std::uint64_t seed) {
    support::Rng rng(seed);
    const sim::Workload w =
        relation_h <= 1
            ? sim::permutation_workload(m.processors(), rng)
            : sim::h_relation_workload(m.processors(), relation_h, rng);
    return routing::run_workload(m.graph(), m.router(), w, m.engine_config(),
                                 rng);
  });

  auto& table = ctx.table(
      relation_h <= 1
          ? (buffer_bound == 0
                 ? "E8a / Theorem 3.1: mesh permutation routing"
                 : "E8c / O(1)-queue variant: bounded node buffers")
          : "E8b / bursty h-relations: slice randomization vs greedy",
      {"n", "algo", "h", "buf", "steps(mean)", "steps(max)", "steps/n",
       "nodeQ(max)", "ok"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::string(algo_name(algo)))
      .cell(std::uint64_t{relation_h == 0 ? 1 : relation_h})
      .cell(std::uint64_t{buffer_bound})
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.steps.mean / n, 2)
      .cell(stats.max_node_queue.max, 0)
      .cell(std::string(stats.all_complete ? "yes" : "NO"));
}

// Permutations, one scenario per algorithm (same table): points are (n, algo).
[[maybe_unused]] const analysis::ScenarioRegistrar kPermutation{
    analysis::Scenario{
        .name = "E8a/mesh-permutation",
        .experiment = "E8a / Theorem 3.1",
        .sweep = "(n, algo 0=3-stage 1=valiant-brebner 2=greedy-xy); "
                 "n x n mesh permutations",
        .points = {{16, 0}, {32, 0}, {64, 0}, {128, 0},
                   {16, 1}, {32, 1}, {64, 1}, {128, 1},
                   {16, 2}, {32, 2}, {64, 2}, {128, 2}},
        .smoke_points = {{16, 0}, {16, 1}, {16, 2}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              mesh_row(ctx, u32(ctx.arg(0)),
                       static_cast<MeshAlgo>(ctx.arg(1)), 1, 0);
            },
    }};

// Bursty 8-relations: where stage-1 randomization earns its keep.
[[maybe_unused]] const analysis::ScenarioRegistrar kRelation{
    analysis::Scenario{
        .name = "E8b/mesh-relation",
        .experiment = "E8b / Theorem 3.1 under h-relations",
        .sweep = "(n, algo); 8-relations, 3-stage vs greedy-xy",
        .points = {{32, 0}, {64, 0}, {32, 2}, {64, 2}},
        .smoke_points = {{32, 0}, {32, 2}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              mesh_row(ctx, u32(ctx.arg(0)),
                       static_cast<MeshAlgo>(ctx.arg(1)), 8, 0);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kBounded{
    analysis::Scenario{
        .name = "E8c/mesh-bounded-buffers",
        .experiment = "E8c / Section 3.4 O(1)-queue variant",
        .sweep = "(n, buffer bound); 3-stage under bounded node buffers",
        .points = {{32, 4}, {32, 8}, {64, 4}, {64, 8}},
        .smoke_points = {{32, 4}},
        .seeds = 3,
        .run =
            [](analysis::ScenarioContext& ctx) {
              mesh_row(ctx, u32(ctx.arg(0)), MeshAlgo::kThreeStage, 1,
                       u32(ctx.arg(1)));
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
