// E9 (Theorem 3.2): EREW PRAM emulation on the n x n mesh in 4n + o(n).
//
// Each PRAM step costs one hashed request round plus one reply round, each
// a 2n + o(n) routing (Theorem 3.1). The sweep fits steps-per-PRAM-step
// against n: the slope is the paper's constant, which must come out <= 4
// (Ranade's generic emulation would have constant ~100 — the paper's
// motivation).

#include <benchmark/benchmark.h>

#include "analysis/trials.hpp"
#include "bench_common.hpp"
#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "routing/mesh_router.hpp"
#include "support/stats.hpp"
#include "topology/mesh.hpp"

namespace {

using namespace levnet;

constexpr std::uint32_t kPramSteps = 3;

struct SweepRow {
  std::uint32_t n;
  double mean_step;
  double worst_step;
};
std::vector<SweepRow>& sweep_rows() {
  static std::vector<SweepRow> rows;
  return rows;
}

void BM_MeshErewEmulation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const topology::Mesh mesh(n, n);
  const routing::MeshThreeStageRouter router(mesh);
  const emulation::EmulationFabric fabric(mesh.graph(), router,
                                          mesh.diameter(), mesh.name());
  emulation::EmulatorConfig config;
  config.discipline = sim::QueueDiscipline::kFurthestFirst;
  emulation::EmulationReport report;
  for (auto _ : state) {
    pram::PermutationTraffic program(mesh.node_count(), kPramSteps, 29);
    emulation::NetworkEmulator emulator(fabric, config);
    pram::SharedMemory memory;
    report = emulator.run(program, memory);
    benchmark::DoNotOptimize(report.network_steps);
  }
  state.counters["steps_per_pram_step"] = report.mean_step_network;
  state.counters["per_n"] = report.mean_step_network / n;
  state.counters["worst_per_n"] =
      static_cast<double>(report.max_step_network) / n;

  auto& table = bench::Report::instance().table(
      "E9 / Theorem 3.2: EREW emulation on the n x n mesh (bound: 4n + o(n))",
      {"n", "procs", "steps/pram-step", "worst step", "per n", "worst per n",
       "linkQ", "nodeQ"});
  table.row()
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{mesh.node_count()})
      .cell(report.mean_step_network, 1)
      .cell(std::uint64_t{report.max_step_network})
      .cell(report.mean_step_network / n, 2)
      .cell(static_cast<double>(report.max_step_network) / n, 2)
      .cell(std::uint64_t{report.max_link_queue})
      .cell(std::uint64_t{report.max_node_queue});
  sweep_rows().push_back(
      {n, report.mean_step_network,
       static_cast<double>(report.max_step_network)});
  // After the largest size, publish the slope fit (the measured constant).
  if (n == 96) {
    std::vector<double> x;
    std::vector<double> y;
    for (const SweepRow& row : sweep_rows()) {
      x.push_back(row.n);
      y.push_back(row.worst_step);
    }
    const support::LinearFit fit = support::fit_line(x, y);
    auto& fit_table = bench::Report::instance().table(
        "E9-fit: worst PRAM-step cost ~ a*n + b (paper bound: a <= 4)",
        {"a (slope)", "b", "r^2"});
    fit_table.row().cell(fit.slope, 3).cell(fit.intercept, 1).cell(
        fit.r_squared, 4);
  }
}

}  // namespace

BENCHMARK(BM_MeshErewEmulation)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Arg(48)
    ->Arg(64)
    ->Arg(96)
    ->Iterations(1);

LEVNET_BENCH_MAIN()
