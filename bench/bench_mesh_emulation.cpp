// E9 (Theorem 3.2): EREW PRAM emulation on the n x n mesh in 4n + o(n).
//
// Each PRAM step costs one hashed request round plus one reply round, each
// a 2n + o(n) routing (Theorem 3.1). The sweep fits steps-per-PRAM-step
// against n: the slope is the paper's constant, which must come out <= 4
// (Ranade's generic emulation would have constant ~100 — the paper's
// motivation).

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "support/stats.hpp"

namespace {

using namespace levnet;

using bench::u32;

constexpr std::uint32_t kPramSteps = 3;

[[maybe_unused]] const analysis::ScenarioRegistrar kMeshErew{
    analysis::Scenario{
        .name = "E9/mesh-erew",
        .experiment = "E9 / Theorem 3.2",
        .sweep = "(n); n x n mesh, 3-stage router, permutation reads",
        .points = {{8}, {16}, {24}, {32}, {48}, {64}, {96}},
        .smoke_points = {{8}, {16}},
        .seeds = 2,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              const machine::Machine m = machine::Machine::build(
                  "mesh:" + std::to_string(n) +
                  "/three-stage/erew/furthest-first");
              const analysis::TrialStats stats =
                  ctx.trials([&](std::uint64_t seed) {
                    pram::PermutationTraffic program(m.processors(),
                                                     kPramSteps, seed);
                    pram::SharedMemory memory;
                    return m.run_seeded(seed, program, memory);
                  });

              auto& table = ctx.table(
                  "E9 / Theorem 3.2: EREW emulation on the n x n mesh "
                  "(bound: 4n + o(n))",
                  {"n", "procs", "steps/pram-step", "worst step", "per n",
                   "worst per n", "linkQ", "nodeQ"});
              table.row()
                  .cell(std::uint64_t{n})
                  .cell(std::uint64_t{m.processors()})
                  .cell(stats.steps.mean, 1)
                  .cell(stats.worst_step.max, 0)
                  .cell(stats.steps.mean / n, 2)
                  .cell(stats.worst_step.max / n, 2)
                  .cell(stats.max_link_queue.max, 0)
                  .cell(stats.max_node_queue.max, 0);
              ctx.record(n, stats);
            },
        // After the sweep, publish the slope fit (the measured constant).
        .finish =
            [](analysis::ScenarioContext& ctx) {
              std::vector<double> x;
              std::vector<double> y;
              for (const auto& [scale, stats] : ctx.recorded()) {
                x.push_back(static_cast<double>(scale));
                y.push_back(stats.worst_step.max);
              }
              const support::LinearFit fit = support::fit_line(x, y);
              auto& fit_table = ctx.table(
                  "E9-fit: worst PRAM-step cost ~ a*n + b (paper bound: "
                  "a <= 4)",
                  {"a (slope)", "b", "r^2"});
              fit_table.row()
                  .cell(fit.slope, 3)
                  .cell(fit.intercept, 1)
                  .cell(fit.r_squared, 4);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
