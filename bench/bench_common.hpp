#pragma once
// Shared scaffolding for the experiment benches.
//
// Every bench binary regenerates one experiment row-set from DESIGN.md's
// index (E1-E13). Wall-clock time is not the measurement — the paper's
// claims are about *simulated network steps* — so each benchmark iteration
// runs one seeded trial and publishes step counts, normalized ratios and
// queue maxima through benchmark counters, while a paper-style summary
// table accumulates rows that main() prints after the google-benchmark
// report.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/table.hpp"

namespace levnet::bench {

/// Singleton collection of summary tables printed at exit.
class Report {
 public:
  static Report& instance() {
    static Report report;
    return report;
  }

  support::Table& table(const std::string& title,
                        std::vector<std::string> header) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& entry : tables_) {
      if (entry.title == title) return *entry.table;
    }
    tables_.push_back(
        {title, std::make_unique<support::Table>(std::move(header))});
    return *tables_.back().table;
  }

  void print(std::ostream& os) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : tables_) {
      os << "\n=== " << entry.title << " ===\n";
      entry.table->print(os);
    }
    os.flush();
  }

  /// Serializes the accumulated tables as JSON so scripted runs
  /// (bench/run_benches.sh, CI) can diff results across PRs.
  void write_json(std::ostream& os, const std::string& bench_name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n  \"bench\": " << quoted(bench_name) << ",\n  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const auto& entry = tables_[t];
      if (t != 0) os << ',';
      os << "\n    {\n      \"title\": " << quoted(entry.title)
         << ",\n      \"header\": ";
      write_string_array(os, entry.table->header());
      os << ",\n      \"rows\": [";
      const auto& rows = entry.table->rows();
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r != 0) os << ',';
        os << "\n        ";
        write_string_array(os, rows[r]);
      }
      os << (rows.empty() ? "]" : "\n      ]") << "\n    }";
    }
    os << (tables_.empty() ? "]" : "\n  ]") << "\n}\n";
    os.flush();
  }

 private:
  struct Entry {
    std::string title;
    std::unique_ptr<support::Table> table;
  };

  static std::string quoted(const std::string& value) {
    std::string out = "\"";
    for (const char c : value) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  static void write_string_array(std::ostream& os,
                                 const std::vector<std::string>& values) {
    os << '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) os << ", ";
      os << quoted(values[i]);
    }
    os << ']';
  }

  mutable std::mutex mutex_;
  std::vector<Entry> tables_;
};

/// Derives the bench's short name from argv[0]: basename minus any
/// "bench_" prefix, e.g. ".../bench_emulation_leveled" -> "emulation_leveled".
inline std::string bench_name_from_argv0(const std::string& argv0) {
  const std::size_t slash = argv0.find_last_of("/\\");
  std::string name =
      slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

/// When LEVNET_BENCH_JSON_DIR is set, writes the accumulated report tables
/// to <dir>/BENCH_<name>.json. Returns false on I/O failure.
inline bool maybe_write_json_report(const std::string& argv0) {
  const char* dir = std::getenv("LEVNET_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return true;
  const std::string name = bench_name_from_argv0(argv0);
  const std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "levnet bench: cannot open " << path << " for writing\n";
    return false;
  }
  Report::instance().write_json(out, name);
  if (!out) {
    std::cerr << "levnet bench: write to " << path << " failed\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace levnet::bench

/// Standard main: run benchmarks, print the accumulated paper tables, then
/// emit BENCH_<name>.json when LEVNET_BENCH_JSON_DIR is set.
#define LEVNET_BENCH_MAIN()                                          \
  int main(int argc, char** argv) {                                  \
    ::benchmark::Initialize(&argc, argv);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))        \
      return 1;                                                      \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    ::levnet::bench::Report::instance().print(std::cout);            \
    return ::levnet::bench::maybe_write_json_report(argv[0]) ? 0 : 1; \
  }
