#pragma once
// Shared scaffolding for the experiment benches.
//
// Every bench binary is a set of Scenario registrations into the
// analysis::Registry (see src/analysis/experiment.hpp) plus the
// LEVNET_BENCH_MAIN() below. Wall-clock time is not the measurement — the
// paper's claims are about *simulated network steps* — so the runner
// executes each scenario's sweep points once, fanning the per-point seeds
// across a thread pool, and the paper-style summary tables are printed
// after the per-scenario timing log.
//
// Common CLI (also in analysis::run_options_usage):
//   --seeds N --threads N --scenario SUBSTR --json DIR --smoke --list
//   [--markdown]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"

// Scenario registrations intentionally set only the fields they use
// (designated initializers over an aggregate with member defaults); GCC 12
// still fires -Wmissing-field-initializers on that, so it is disabled for
// the rest of the TU. Deliberate trade-off: bench TUs are scenario
// registrations plus small helpers, so the lost coverage is negligible —
// do not include this header from library or test code.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace levnet::bench {

/// Narrows a sweep argument (ScenarioContext::arg returns int64) to the
/// uint32 sizes the topologies take.
[[nodiscard]] inline std::uint32_t u32(std::int64_t v) {
  return static_cast<std::uint32_t>(v);
}

/// Derives the bench's short name from argv[0]: basename minus any
/// "bench_" prefix, e.g. ".../bench_emulation_leveled" -> "emulation_leveled".
inline std::string bench_name_from_argv0(const std::string& argv0) {
  const std::size_t slash = argv0.find_last_of("/\\");
  std::string name =
      slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

/// Writes the accumulated report tables to <dir>/BENCH_<name>.json, where
/// <dir> is the --json flag when given, else the LEVNET_BENCH_JSON_DIR
/// environment variable; no-op (returning true) when neither is set.
/// Returns false on I/O failure.
inline bool maybe_write_json_report(const std::string& argv0,
                                    const std::string& json_dir) {
  std::string dir = json_dir;
  if (dir.empty()) {
    const char* env = std::getenv("LEVNET_BENCH_JSON_DIR");
    if (env != nullptr) dir = env;
  }
  if (dir.empty()) return true;
  const std::string name = bench_name_from_argv0(argv0);
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "levnet bench: cannot open " << path << " for writing\n";
    return false;
  }
  analysis::Report::global().write_json(out, name);
  if (!out) {
    std::cerr << "levnet bench: write to " << path << " failed\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

/// Standard main: parse the common CLI, run (or list) the registered
/// scenarios, print the accumulated paper tables, then emit
/// BENCH_<name>.json when LEVNET_BENCH_JSON_DIR is set.
inline int bench_main(int argc, char** argv) {
  analysis::RunOptions options;
  std::string error;
  if (!analysis::parse_run_options(argc, argv, options, error)) {
    std::cerr << "levnet bench: " << error << "\n"
              << analysis::run_options_usage();
    return 1;
  }
  if (options.help) {
    std::cout << analysis::run_options_usage();
    return 0;
  }
  const auto& registry = analysis::Registry::global();
  if (options.list) {
    registry.list(std::cout, options.markdown,
                  bench_name_from_argv0(argv[0]));
    return 0;
  }
  auto& report = analysis::Report::global();
  const std::size_t ran = registry.run(options, report, std::cout);
  if (ran == 0) {
    std::cerr << "levnet bench: no scenario matches '"
              << options.scenario_filter << "' (see --list)\n";
    return 2;
  }
  report.print(std::cout);
  return maybe_write_json_report(argv[0], options.json_dir) ? 0 : 1;
}

}  // namespace levnet::bench

#define LEVNET_BENCH_MAIN()                          \
  int main(int argc, char** argv) {                  \
    return ::levnet::bench::bench_main(argc, argv);  \
  }
