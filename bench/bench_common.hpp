#pragma once
// Shared scaffolding for the experiment benches.
//
// Every bench binary regenerates one experiment row-set from DESIGN.md's
// index (E1-E13). Wall-clock time is not the measurement — the paper's
// claims are about *simulated network steps* — so each benchmark iteration
// runs one seeded trial and publishes step counts, normalized ratios and
// queue maxima through benchmark counters, while a paper-style summary
// table accumulates rows that main() prints after the google-benchmark
// report.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/table.hpp"

namespace levnet::bench {

/// Singleton collection of summary tables printed at exit.
class Report {
 public:
  static Report& instance() {
    static Report report;
    return report;
  }

  support::Table& table(const std::string& title,
                        std::vector<std::string> header) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& entry : tables_) {
      if (entry.title == title) return *entry.table;
    }
    tables_.push_back(
        {title, std::make_unique<support::Table>(std::move(header))});
    return *tables_.back().table;
  }

  void print(std::ostream& os) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : tables_) {
      os << "\n=== " << entry.title << " ===\n";
      entry.table->print(os);
    }
    os.flush();
  }

 private:
  struct Entry {
    std::string title;
    std::unique_ptr<support::Table> table;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> tables_;
};

}  // namespace levnet::bench

/// Standard main: run benchmarks, then print the accumulated paper tables.
#define LEVNET_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                           \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    ::levnet::bench::Report::instance().print(std::cout);     \
    return 0;                                                 \
  }
