// E3 (Theorem 2.3, Section 2.3.5) + E4 (Corollary 2.2): routing on the
// n-way shuffle (N = n^n nodes, diameter n).
//
// Claim: Algorithm 2.3 routes any permutation in O~(n) — optimal, improving
// Valiant's general d-way shuffle bound of Theta(n log n / log log n) —
// and partial n-relations too.

#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "routing/driver.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"

namespace {

using namespace levnet;

using bench::u32;

void shuffle_row(analysis::ScenarioContext& ctx, std::uint32_t d,
                 std::uint32_t n, bool randomized, std::uint32_t relation_h) {
  const std::string router_key = randomized ? "two-phase" : "unique-path";
  const std::string topology =
      d == n ? "nshuffle:" + std::to_string(n)
             : "shuffle:" + std::to_string(d) + "x" + std::to_string(n);
  const machine::Machine m =
      machine::Machine::build(topology + "/" + router_key);

  const analysis::TrialStats stats = ctx.trials([&](std::uint64_t seed) {
    support::Rng rng(seed);
    const sim::Workload w =
        relation_h <= 1
            ? sim::permutation_workload(m.processors(), rng)
            : sim::h_relation_workload(m.processors(), relation_h, rng);
    return routing::run_workload(m.graph(), m.router(), w, {}, rng);
  });

  auto& table = ctx.table(
      relation_h <= 1
          ? "E3 / Theorem 2.3: permutation routing on the d-way shuffle"
          : "E4 / Corollary 2.2: partial n-relation routing on the shuffle",
      {"d", "n", "N=d^n", "router", "h", "steps(mean)", "steps(max)",
       "steps/n", "linkQ(max)", "ok"});
  table.row()
      .cell(std::uint64_t{d})
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{m.processors()})
      .cell(router_key)
      .cell(std::uint64_t{relation_h == 0 ? 1 : relation_h})
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.steps.mean / n, 2)
      .cell(stats.max_link_queue.max, 0)
      .cell(std::string(stats.all_complete ? "yes" : "NO"));
}

[[maybe_unused]] const analysis::ScenarioRegistrar kTwoPhase{
    analysis::Scenario{
        .name = "E3/shuffle-permutation-two-phase",
        .experiment = "E3 / Theorem 2.3",
        .sweep = "(n); the paper's n-way shuffle (d = n), two-phase router",
        .points = {{2}, {3}, {4}, {5}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              shuffle_row(ctx, n, n, true, 1);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kUniquePath{
    analysis::Scenario{
        .name = "E3/shuffle-permutation-unique-path",
        .experiment = "E3 / Theorem 2.3 (baseline)",
        .sweep = "(n); n-way shuffle, deterministic unique-path router",
        .points = {{2}, {3}, {4}, {5}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              shuffle_row(ctx, n, n, false, 1);
            },
    }};

// d fixed, n grows: the general d-way shuffle regime Valiant analyzed.
[[maybe_unused]] const analysis::ScenarioRegistrar kFixedRadix{
    analysis::Scenario{
        .name = "E3/shuffle-fixed-radix",
        .experiment = "E3 / Theorem 2.3 (general d-way regime)",
        .sweep = "(d, n); fixed radix d, growing length n",
        .points = {{2, 6}, {2, 10}, {2, 14}, {4, 4}, {4, 6}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              shuffle_row(ctx, u32(ctx.arg(0)), u32(ctx.arg(1)), true, 1);
            },
    }};

[[maybe_unused]] const analysis::ScenarioRegistrar kNRelation{
    analysis::Scenario{
        .name = "E4/shuffle-n-relation",
        .experiment = "E4 / Corollary 2.2",
        .sweep = "(n); partial n-relations on the n-way shuffle",
        .points = {{2}, {3}, {4}},
        .seeds = 5,
        .run =
            [](analysis::ScenarioContext& ctx) {
              const auto n = u32(ctx.arg(0));
              shuffle_row(ctx, n, n, true, n);
            },
    }};

}  // namespace

LEVNET_BENCH_MAIN()
