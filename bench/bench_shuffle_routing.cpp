// E3 (Theorem 2.3, Section 2.3.5) + E4 (Corollary 2.2): routing on the
// n-way shuffle (N = n^n nodes, diameter n).
//
// Claim: Algorithm 2.3 routes any permutation in O~(n) — optimal, improving
// Valiant's general d-way shuffle bound of Theta(n log n / log log n) —
// and partial n-relations too.

#include <benchmark/benchmark.h>

#include "analysis/trials.hpp"
#include "bench_common.hpp"
#include "routing/driver.hpp"
#include "routing/shuffle_router.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "topology/shuffle.hpp"

namespace {

using namespace levnet;

constexpr std::uint32_t kSeeds = 5;

void shuffle_case(benchmark::State& state, std::uint32_t d, std::uint32_t n,
                  bool randomized, std::uint32_t relation_h) {
  const topology::DWayShuffle net(d, n);
  const routing::ShuffleTwoPhaseRouter two_phase(net);
  const routing::ShuffleUniquePathRouter unique_path(net);
  const routing::Router& router =
      randomized ? static_cast<const routing::Router&>(two_phase)
                 : static_cast<const routing::Router&>(unique_path);

  const analysis::TrialStats stats = analysis::run_trials(
      [&](std::uint64_t s) {
        support::Rng rng(s);
        const sim::Workload w =
            relation_h <= 1
                ? sim::permutation_workload(net.node_count(), rng)
                : sim::h_relation_workload(net.node_count(), relation_h, rng);
        return routing::run_workload(net.graph(), router, w, {}, rng);
      },
      kSeeds);

  for (auto _ : state) {
    support::Rng rng(7);
    const sim::Workload w = sim::permutation_workload(net.node_count(), rng);
    const auto outcome = routing::run_workload(net.graph(), router, w, {}, rng);
    benchmark::DoNotOptimize(outcome.metrics.steps);
  }
  state.counters["steps_mean"] = stats.steps.mean;
  state.counters["steps_per_n"] = stats.steps.mean / n;
  state.counters["max_link_q"] = stats.max_link_queue.max;

  auto& table = bench::Report::instance().table(
      relation_h <= 1
          ? "E3 / Theorem 2.3: permutation routing on the d-way shuffle"
          : "E4 / Corollary 2.2: partial n-relation routing on the shuffle",
      {"d", "n", "N=d^n", "router", "h", "steps(mean)", "steps(max)",
       "steps/n", "linkQ(max)", "ok"});
  table.row()
      .cell(std::uint64_t{d})
      .cell(std::uint64_t{n})
      .cell(std::uint64_t{net.node_count()})
      .cell(std::string(randomized ? "two-phase" : "unique-path"))
      .cell(std::uint64_t{relation_h == 0 ? 1 : relation_h})
      .cell(stats.steps.mean, 1)
      .cell(stats.steps.max, 0)
      .cell(stats.steps.mean / n, 2)
      .cell(stats.max_link_queue.max, 0)
      .cell(std::string(stats.all_complete ? "yes" : "NO"));
}

void BM_ShufflePermutationTwoPhase(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  shuffle_case(state, n, n, true, 1);  // the paper's n-way shuffle
}

void BM_ShufflePermutationUniquePath(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  shuffle_case(state, n, n, false, 1);
}

void BM_ShuffleFixedRadixSweep(benchmark::State& state) {
  // d fixed, n grows: the general d-way shuffle regime Valiant analyzed.
  shuffle_case(state, static_cast<std::uint32_t>(state.range(0)),
               static_cast<std::uint32_t>(state.range(1)), true, 1);
}

void BM_ShuffleNRelation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  shuffle_case(state, n, n, true, n);
}

}  // namespace

BENCHMARK(BM_ShufflePermutationTwoPhase)->DenseRange(2, 5)->Iterations(2);
BENCHMARK(BM_ShufflePermutationUniquePath)->DenseRange(2, 5)->Iterations(2);
BENCHMARK(BM_ShuffleFixedRadixSweep)
    ->Args({2, 6})
    ->Args({2, 10})
    ->Args({2, 14})
    ->Args({4, 4})
    ->Args({4, 6})
    ->Iterations(2);
BENCHMARK(BM_ShuffleNRelation)->DenseRange(2, 4)->Iterations(2);

LEVNET_BENCH_MAIN()
