// Property-style sweeps (parameterized over seeds): invariants that must
// hold for EVERY seed, not just the checked-in ones — link capacity,
// delivery completeness, emulation/reference memory equality, and the
// statistical stability of the routing-time bounds.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "pram/algorithms/histogram.hpp"
#include "pram/reference.hpp"
#include "routing/driver.hpp"
#include "routing/mesh_router.hpp"
#include "routing/star_router.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "topology/mesh.hpp"
#include "topology/star.hpp"

namespace levnet {
namespace {

// ------------------------------------------------- link capacity invariant

/// Wraps a handler and asserts the engine's core rule from Section 2.2:
/// at most one packet crosses any directed link per step. Landings at one
/// node per step are capped by its in-degree, and each (from, step) pair
/// must be unique per link.
class CapacityAuditTraffic final : public sim::TrafficHandler {
 public:
  CapacityAuditTraffic(sim::TrafficHandler& inner,
                       const topology::Graph& graph)
      : inner_(inner), graph_(graph) {}

  void on_packet(sim::Packet& p, sim::NodeId at, std::uint32_t step,
                 support::Rng& rng, std::vector<sim::Forward>& out) override {
    if (p.came_from != topology::kInvalidNode) {
      const topology::EdgeId e = graph_.edge_between(p.came_from, at);
      ASSERT_NE(e, topology::kInvalidEdge);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(e) << 32) | step;
      ASSERT_TRUE(crossings_.insert(key).second)
          << "two packets crossed edge " << e << " in step " << step;
    }
    inner_.on_packet(p, at, step, rng, out);
  }

  std::uint32_t priority(const sim::Packet& p,
                         sim::NodeId at) const override {
    return inner_.priority(p, at);
  }

 private:
  sim::TrafficHandler& inner_;
  const topology::Graph& graph_;
  std::set<std::uint64_t> crossings_;
};

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, LinkCapacityNeverViolatedOnMesh) {
  const topology::Mesh mesh(8, 8);
  const routing::MeshThreeStageRouter router(mesh);
  support::Rng rng(GetParam());
  const sim::Workload w = sim::permutation_workload(mesh.node_count(), rng);
  routing::RouterTraffic inner(router);
  inner.expect_packets(w.size());
  CapacityAuditTraffic audit(inner, mesh.graph());
  sim::SyncEngine engine(mesh.graph(), audit, {});
  std::uint32_t id = 0;
  for (const auto& demand : w) {
    sim::Packet p;
    p.id = id++;
    p.src = demand.source;
    p.dst = demand.destination;
    router.prepare(p, rng);
    const topology::NodeId origin = p.src;
    engine.inject(std::move(p), origin, rng);
  }
  EXPECT_TRUE(engine.run(rng));
  EXPECT_TRUE(inner.all_at_destination());
}

TEST_P(SeedSweep, StarRoutingTimeStaysWithinTheoremBound) {
  // Theorem 2.2's O~(n): across seeds, permutation routing on star(5) must
  // stay under a fixed small multiple of n (failure probability of the
  // theorem's bound is polynomially small; a violation here means a code
  // regression, not bad luck).
  const topology::StarGraph star(5);
  const routing::StarTwoPhaseRouter router(star);
  support::Rng rng(GetParam());
  const sim::Workload w = sim::permutation_workload(star.node_count(), rng);
  const auto outcome = routing::run_workload(star.graph(), router, w, {}, rng);
  ASSERT_TRUE(outcome.complete);
  EXPECT_LE(outcome.metrics.steps, 6 * star.symbols());
}

TEST_P(SeedSweep, EmulationMemoryAlwaysMatchesReference) {
  const topology::Mesh mesh(5, 5);
  const routing::MeshThreeStageRouter router(mesh);
  const emulation::EmulationFabric fabric(mesh.graph(), router,
                                          mesh.diameter(), mesh.name());
  support::Rng rng(GetParam() * 31 + 7);
  std::vector<pram::Word> keys(25);
  for (auto& k : keys) k = static_cast<pram::Word>(rng.below(5));
  pram::HistogramCrcwSum program(keys, 5);

  pram::SharedMemory reference_memory;
  pram::ReferencePram::for_program(program).run(program, reference_memory);
  program.reset();

  emulation::EmulatorConfig config;
  config.combining = (GetParam() % 2) == 0;  // alternate modes across seeds
  config.seed = GetParam();
  emulation::NetworkEmulator emulator(fabric, config);
  pram::SharedMemory emulated;
  emulator.run(program, emulated);
  EXPECT_TRUE(reference_memory == emulated);
  EXPECT_TRUE(program.validate(emulated));
}

TEST_P(SeedSweep, HotSpotCombiningAlwaysAnswersEveryReader) {
  const topology::StarGraph star(4);
  const routing::StarTwoPhaseRouter router(star);
  const emulation::EmulationFabric fabric(star.graph(), router,
                                          star.diameter(), star.name());
  pram::HotSpotReadTraffic program(star.node_count(), 2, 4242);
  emulation::EmulatorConfig config;
  config.combining = true;
  config.seed = GetParam();
  emulation::NetworkEmulator emulator(fabric, config);
  pram::SharedMemory memory;
  const auto report = emulator.run(program, memory);
  EXPECT_TRUE(program.validate(memory));  // every reader saw the sentinel
  EXPECT_GT(report.combined_requests, 0U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<std::uint64_t>(1, 13),
                         [](const auto& suite_info) {
                           return "seed" + std::to_string(suite_info.param);
                         });

// ----------------------------------------------- workload-space properties

class WorkloadSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(WorkloadSweep, PartialPermutationsAlwaysRoute) {
  const auto [seed, density] = GetParam();
  const topology::Mesh mesh(8, 8);
  const routing::MeshThreeStageRouter router(mesh);
  support::Rng rng(seed);
  const sim::Workload w =
      sim::partial_permutation_workload(mesh.node_count(), density, rng);
  const auto outcome = routing::run_workload(mesh.graph(), router, w, {}, rng);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.delivered, w.size());
}

INSTANTIATE_TEST_SUITE_P(
    Densities, WorkloadSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(0.0, 0.25, 0.5, 1.0)),
    [](const auto& suite_info) {
      // Built with += rather than an operator+ chain: GCC 12's -Wrestrict
      // false-fires on `const char* + std::string&&` (GCC PR105329).
      std::string name = "s";
      name += std::to_string(std::get<0>(suite_info.param));
      name += "_d";
      name +=
          std::to_string(static_cast<int>(std::get<1>(suite_info.param) * 100));
      return name;
    });

}  // namespace
}  // namespace levnet
