// Hot-path allocation discipline and reset hygiene.
//
// The packet-pool data plane promises that once a workload has warmed the
// engine (pool, per-link rings, scratch vectors at their high-water
// capacities), steady-state steps never touch the heap. This suite pins
// that with a counting global operator new — a window of engine work is
// bracketed and the count must stay zero. The hook is a plain malloc
// passthrough, so ASan/UBSan builds stay functional; but because defining
// operator new would replace the sanitizer's own instrumented version, the
// counting assertions are compiled out under sanitizers (the functional
// half of every test still runs there).
//
// Also covered: SyncEngine::reset() draining *every* populated queue —
// including edges blocked out of the active list by a bounded-buffer
// deadlock or a step-budget abort — so no packet leaks into the next run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "sim/engine.hpp"
#include "sim/packet.hpp"
#include "sim/traffic.hpp"
#include "support/rng.hpp"
#include "topology/linear_array.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LEVNET_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LEVNET_ALLOC_HOOK 0
#endif
#endif
#ifndef LEVNET_ALLOC_HOOK
#define LEVNET_ALLOC_HOOK 1
#endif

#if LEVNET_ALLOC_HOOK

namespace {
// Counting is windowed: only allocations between AllocationWindow braces
// are charged, so gtest bookkeeping outside the window stays invisible.
bool g_counting = false;
std::size_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // LEVNET_ALLOC_HOOK

namespace levnet::sim {
namespace {

using topology::LinearArray;
using topology::NodeId;

/// RAII window that counts heap allocations (no-op under sanitizers).
class AllocationWindow {
 public:
  AllocationWindow() {
#if LEVNET_ALLOC_HOOK
    g_allocations = 0;
    g_counting = true;
#endif
  }
  ~AllocationWindow() {
#if LEVNET_ALLOC_HOOK
    g_counting = false;
#endif
  }
  [[nodiscard]] std::size_t count() const {
#if LEVNET_ALLOC_HOOK
    return g_allocations;
#else
    return 0;
#endif
  }
};

/// Forwards packets rightward to their destination; counts deliveries
/// without allocating.
class CountingTraffic final : public TrafficHandler {
 public:
  void on_packet(Packet& p, NodeId at, std::uint32_t step, support::Rng& rng,
                 std::vector<Forward>& out) override {
    (void)step;
    (void)rng;
    if (at == p.dst) {
      ++delivered;
      return;
    }
    out.push_back(Forward{at + 1, p.route_state});
  }
  int delivered = 0;
};

/// Bounces every packet to the opposite node of a 2-node line, forever,
/// until `bounce` is turned off (used to manufacture a deadlock).
class BounceTraffic final : public TrafficHandler {
 public:
  void on_packet(Packet& p, NodeId at, std::uint32_t step, support::Rng& rng,
                 std::vector<Forward>& out) override {
    (void)p;
    (void)step;
    (void)rng;
    if (!bounce && at == p.dst) {
      ++delivered;
      return;
    }
    out.push_back(Forward{at == 0 ? NodeId{1} : NodeId{0}, 0});
  }
  bool bounce = true;
  int delivered = 0;
};

void inject_batch(SyncEngine& engine, std::uint32_t count, NodeId dst,
                  support::Rng& rng) {
  for (std::uint32_t i = 0; i < count; ++i) {
    Packet p;
    p.id = i;
    p.src = 0;
    p.dst = dst;
    engine.inject(std::move(p), 0, rng);
  }
}

TEST(HotPathAllocations, SteadyStateStepsAreAllocationFree) {
  const LinearArray line(8);
  CountingTraffic traffic;
  SyncEngine engine(line.graph(), traffic, {});
  support::Rng rng(11);

  // Warm-up run: pool slots, ring buffers and scratch vectors grow to the
  // workload's high-water marks.
  inject_batch(engine, 16, 7, rng);
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(traffic.delivered, 16);
  EXPECT_EQ(engine.in_flight(), 0U);
  engine.reset();

  // Identical second run: every container reuses its warmed capacity, so
  // injection, stepping and draining must not allocate at all.
  AllocationWindow window;
  inject_batch(engine, 16, 7, rng);
  EXPECT_TRUE(engine.run(rng));
#if LEVNET_ALLOC_HOOK
  EXPECT_EQ(window.count(), 0U)
      << "steady-state engine work touched the heap";
#else
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
}

TEST(HotPathAllocations, PriorityDisciplineIsAllocationFreeToo) {
  const LinearArray line(8);
  CountingTraffic traffic;
  EngineConfig config;
  config.discipline = QueueDiscipline::kFurthestFirst;
  SyncEngine engine(line.graph(), traffic, config);
  support::Rng rng(12);

  inject_batch(engine, 16, 7, rng);
  EXPECT_TRUE(engine.run(rng));
  engine.reset();

  AllocationWindow window;
  inject_batch(engine, 16, 7, rng);
  EXPECT_TRUE(engine.run(rng));
#if LEVNET_ALLOC_HOOK
  EXPECT_EQ(window.count(), 0U);
#else
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
}

TEST(EngineReset, DrainsQueuesAfterBoundedBufferDeadlock) {
  // Two packets bouncing between two nodes with a buffer bound of 1 wedge
  // immediately: each link's head node is full, so neither can transmit.
  const LinearArray line(2);
  BounceTraffic traffic;
  EngineConfig config;
  config.node_buffer_bound = 1;
  SyncEngine engine(line.graph(), traffic, config);
  support::Rng rng(13);

  Packet p;
  p.id = 0;
  p.src = 0;
  p.dst = 1;
  engine.inject(std::move(p), 0, rng);
  Packet q;
  q.id = 1;
  q.src = 1;
  q.dst = 0;
  engine.inject(std::move(q), 1, rng);
  EXPECT_FALSE(engine.run(rng));
  EXPECT_TRUE(engine.metrics().deadlocked);
  EXPECT_EQ(engine.in_flight(), 2U);

  // reset() must drain every populated queue, not only the active list.
  engine.reset();
  EXPECT_EQ(engine.in_flight(), 0U);
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(engine.metrics().injected, 0U);

  // A fresh run on the same engine sees none of the wedged packets: if a
  // stale one still sat in queue 0->1 it would pop ahead of `r` and count
  // as a second delivery.
  traffic.bounce = false;
  Packet r;
  r.id = 2;
  r.src = 0;
  r.dst = 1;
  engine.inject(std::move(r), 0, rng);
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(traffic.delivered, 1);
  EXPECT_EQ(engine.metrics().injected, 1U);
  EXPECT_EQ(engine.metrics().consumed, 1U);
  EXPECT_EQ(engine.in_flight(), 0U);
}

TEST(EngineReset, DrainsQueuesAfterStepBudgetAbort) {
  const LinearArray line(10);
  CountingTraffic traffic;
  EngineConfig config;
  config.max_steps = 3;
  SyncEngine engine(line.graph(), traffic, config);
  support::Rng rng(14);

  inject_batch(engine, 4, 9, rng);
  EXPECT_FALSE(engine.run(rng));
  EXPECT_TRUE(engine.metrics().aborted);
  EXPECT_GT(engine.in_flight(), 0U);

  engine.reset();
  EXPECT_EQ(engine.in_flight(), 0U);
  EXPECT_TRUE(engine.idle());

  // The rerun must deliver exactly its own packets — any stale survivor
  // from the aborted run would inflate `delivered`.
  engine.set_max_steps(0);
  traffic.delivered = 0;
  inject_batch(engine, 4, 9, rng);
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(traffic.delivered, 4);
  EXPECT_EQ(engine.metrics().consumed, 4U);
}

TEST(EngineReset, DrainsShardedEngineAfterStepBudgetAbort) {
  // The sharded engine keeps per-shard continuation lists and decision
  // slots between phases; an abort mid-run leaves packets spread over them
  // and the queues. reset() must drain all of it, exactly like the serial
  // engine's PR-3 contract above.
  const LinearArray line(10);
  CountingTraffic traffic;
  EngineConfig config;
  config.max_steps = 3;
  config.step_threads = 8;
  SyncEngine engine(line.graph(), traffic, config);
  support::Rng rng(14);

  inject_batch(engine, 4, 9, rng);
  EXPECT_FALSE(engine.run(rng));
  EXPECT_TRUE(engine.metrics().aborted);
  EXPECT_GT(engine.in_flight(), 0U);

  engine.reset();
  EXPECT_EQ(engine.in_flight(), 0U);
  EXPECT_TRUE(engine.idle());

  engine.set_max_steps(0);
  traffic.delivered = 0;
  inject_batch(engine, 4, 9, rng);
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(traffic.delivered, 4);
  EXPECT_EQ(engine.metrics().consumed, 4U);
}

TEST(PacketLayout, SizeIsLockedByStaticAssert) {
  // The static_assert in sim/packet.hpp is the real guard; this test just
  // keeps the number visible in test output.
  EXPECT_EQ(sizeof(Packet), 56U);
  EXPECT_EQ(alignof(Packet), 8U);
}

}  // namespace
}  // namespace levnet::sim
