// Machine API tests (src/machine/).
//
// Four contracts are pinned here:
//   * spec round-tripping — parse(print(spec)) == spec for every registered
//     topology family, router, mode, discipline and fault/emulator knob,
//     and parse errors name the bad token and list the valid alternatives;
//   * registry integrity — all 9 families build at their smoke sizes, every
//     listed router constructs, every program family instantiates and runs;
//   * bit-equality — a spec-built Machine produces the same EmulationReport
//     and final memory as the equivalent hand-assembled stack (topology +
//     router + fabric + plan + injector + emulator), across 3 topologies x
//     {EREW, CRCW-combining} x {fault-free, faulted}. The low-level
//     constructors the golden suite records against are untouched, so this
//     pins the new path onto the recorded truth;
//   * run_trials — SplitMix64 seed fan-out matching analysis::TrialRunner,
//     bit-identical for 1 vs 8 threads, fault-free and faulted.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "machine/machine.hpp"
#include "machine/registry.hpp"
#include "machine/spec.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "routing/shuffle_router.hpp"
#include "routing/star_router.hpp"
#include "routing/two_phase.hpp"
#include "topology/butterfly.hpp"
#include "topology/shuffle.hpp"
#include "topology/star.hpp"

namespace levnet::machine {
namespace {

using pram::SharedMemory;

// ----------------------------------------------------------- spec parsing

TEST(MachineSpec, ParsesTheReadmeExample) {
  MachineSpec spec;
  std::string error;
  ASSERT_TRUE(parse_spec(
      "star:5/two-phase/crcw-combining/fifo/faults:links=0.05", spec, error))
      << error;
  EXPECT_EQ(spec.topology, "star");
  EXPECT_EQ(spec.param0, 5U);
  EXPECT_EQ(spec.param1, 0U);
  EXPECT_EQ(spec.router, "two-phase");
  EXPECT_EQ(spec.mode, Mode::kCrcwCombining);
  EXPECT_EQ(spec.discipline, sim::QueueDiscipline::kFifo);
  EXPECT_DOUBLE_EQ(spec.faults.links, 0.05);
  EXPECT_TRUE(spec.faults.preserve_connectivity);
}

TEST(MachineSpec, SegmentsAfterTheRouterAreOrderFree) {
  MachineSpec a = parse_spec("mesh:8x16/xy/fifo/crcw/seed=7");
  MachineSpec b = parse_spec("mesh:8x16/xy/seed=7/crcw/fifo");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.param1, 16U);
}

TEST(MachineSpec, RoundTripsEveryTopologyAndRouter) {
  for (const TopologyInfo& info : topology_families()) {
    for (const RouterInfo& router : info.routers) {
      MachineSpec spec;
      spec.topology = std::string(info.key);
      spec.param0 = info.smoke_param0;
      spec.param1 = info.smoke_param1;
      spec.router = std::string(router.key);
      if (router.takes_param) spec.router_param = 3;
      const std::string text = spec.to_string();
      MachineSpec reparsed;
      std::string error;
      ASSERT_TRUE(parse_spec(text, reparsed, error))
          << text << ": " << error;
      EXPECT_EQ(spec, reparsed) << text;
    }
  }
}

TEST(MachineSpec, RoundTripsEveryModeDisciplineAndKnob) {
  const Mode modes[] = {Mode::kErew, Mode::kCrew, Mode::kCrcw,
                        Mode::kCrcwCombining};
  const sim::QueueDiscipline disciplines[] = {
      sim::QueueDiscipline::kFifo, sim::QueueDiscipline::kFurthestFirst,
      sim::QueueDiscipline::kNearestFirst};
  for (const Mode mode : modes) {
    for (const sim::QueueDiscipline discipline : disciplines) {
      MachineSpec spec = parse_spec("star:5/two-phase");
      spec.mode = mode;
      spec.discipline = discipline;
      spec.faults.links = 0.05;
      spec.faults.nodes = 0.01;
      spec.faults.procs = 0.10;
      spec.faults.modules = 0.125;
      spec.faults.onset_epochs = 4;
      spec.faults.preserve_connectivity = false;
      spec.seed = 0xDEADBEEFULL;
      spec.step_budget_factor = 64;
      spec.max_rehash_attempts = 10;
      spec.hash_degree = 3;
      spec.node_buffer_bound = 8;
      const std::string text = spec.to_string();
      MachineSpec reparsed;
      std::string error;
      ASSERT_TRUE(parse_spec(text, reparsed, error)) << text << ": " << error;
      EXPECT_EQ(spec, reparsed) << text;
    }
  }
}

TEST(MachineSpec, ProcsFaultKnobRoundTripsAndCanonicalizes) {
  const MachineSpec spec =
      parse_spec("star:5/two-phase/faults:procs=0.1,links=0.05");
  EXPECT_DOUBLE_EQ(spec.faults.procs, 0.1);
  EXPECT_TRUE(spec.faults.any());
  // Canonical knob order puts links before procs regardless of input order.
  EXPECT_EQ(spec.to_string(),
            "star:5/two-phase/erew/fifo/faults:links=0.05,procs=0.1");
  EXPECT_EQ(parse_spec(spec.to_string()), spec);
  // procs alone arms the fault machinery too.
  EXPECT_TRUE(parse_spec("star:5/two-phase/faults:procs=0.1").faults.any());
}

TEST(MachineSpec, DefaultKnobsAreOmittedFromTheCanonicalForm) {
  const MachineSpec spec = parse_spec("star:5/two-phase");
  EXPECT_EQ(spec.to_string(), "star:5/two-phase/erew/fifo");
}

TEST(MachineSpec, ThreadsTokenRoundTripsAndCanonicalizes) {
  // threads:1 is the default and canonically omitted; any other value
  // (including 0 = hardware concurrency) prints right after the discipline.
  const MachineSpec sharded = parse_spec("star:5/two-phase/threads:8");
  EXPECT_EQ(sharded.step_threads, 8U);
  EXPECT_EQ(sharded.to_string(), "star:5/two-phase/erew/fifo/threads:8");
  EXPECT_EQ(parse_spec(sharded.to_string()), sharded);

  const MachineSpec hardware = parse_spec("star:5/two-phase/threads:0");
  EXPECT_EQ(hardware.step_threads, 0U);
  EXPECT_EQ(hardware.to_string(), "star:5/two-phase/erew/fifo/threads:0");

  EXPECT_EQ(parse_spec("star:5/two-phase/threads:1").to_string(),
            "star:5/two-phase/erew/fifo");

  MachineSpec spec;
  std::string error;
  EXPECT_FALSE(parse_spec("star:5/two-phase/threads:many", spec, error));
  EXPECT_NE(error.find("'many'"), std::string::npos) << error;
}

TEST(MachineSpec, UnknownTopologyNamesTheTokenAndListsValidOnes) {
  MachineSpec spec;
  std::string error;
  EXPECT_FALSE(parse_spec("stra:5/two-phase", spec, error));
  EXPECT_NE(error.find("'stra'"), std::string::npos) << error;
  for (const TopologyInfo& info : topology_families()) {
    EXPECT_NE(error.find(info.key), std::string::npos)
        << "'" << info.key << "' missing from: " << error;
  }
}

TEST(MachineSpec, UnknownRouterNamesTheTokenAndListsTheFamilys) {
  MachineSpec spec;
  std::string error;
  EXPECT_FALSE(parse_spec("star:5/three-stage", spec, error));
  EXPECT_NE(error.find("'three-stage'"), std::string::npos) << error;
  EXPECT_NE(error.find("two-phase"), std::string::npos) << error;
  EXPECT_NE(error.find("greedy"), std::string::npos) << error;
}

TEST(MachineSpec, UnknownSegmentAndKnobErrorsNameTheToken) {
  MachineSpec spec;
  std::string error;
  EXPECT_FALSE(parse_spec("star:5/two-phase/fastest-first", spec, error));
  EXPECT_NE(error.find("'fastest-first'"), std::string::npos) << error;
  EXPECT_NE(error.find("furthest-first"), std::string::npos) << error;

  EXPECT_FALSE(parse_spec("star:5/two-phase/faults:wires=0.1", spec, error));
  EXPECT_NE(error.find("'wires'"), std::string::npos) << error;
  EXPECT_NE(error.find("links"), std::string::npos) << error;

  EXPECT_FALSE(parse_spec("star:5/two-phase/bugdet=64", spec, error));
  EXPECT_NE(error.find("'bugdet'"), std::string::npos) << error;
  EXPECT_NE(error.find("budget"), std::string::npos) << error;
}

TEST(MachineSpec, RejectsOutOfRangeValues) {
  MachineSpec spec;
  std::string error;
  EXPECT_FALSE(parse_spec("star:5/two-phase/faults:links=1.5", spec, error));
  EXPECT_FALSE(parse_spec("star:5/two-phase/seed=banana", spec, error));
  EXPECT_FALSE(parse_spec("star:x/two-phase", spec, error));
  EXPECT_FALSE(parse_spec("", spec, error));
  EXPECT_FALSE(parse_spec("star:5", spec, error));  // router missing
  EXPECT_NE(error.find("router"), std::string::npos) << error;
}

TEST(MachineValidate, RangesAreEnforced) {
  std::string error;
  MachineSpec too_big = parse_spec("star:9/two-phase");
  too_big.param0 = 10;  // 10! nodes: rejected by range, never constructed
  EXPECT_FALSE(Machine::validate(too_big, error));
  EXPECT_NE(error.find("star"), std::string::npos) << error;

  EXPECT_TRUE(Machine::validate(parse_spec("ccc:3/sweep"), error)) << error;
}

// -------------------------------------------------------------- registry

TEST(Registry, AllNineFamiliesBuildAtSmokeSize) {
  EXPECT_EQ(topology_families().size(), 9U);
  for (const TopologyInfo& info : topology_families()) {
    MachineSpec spec;
    spec.topology = std::string(info.key);
    spec.param0 = info.smoke_param0;
    spec.param1 = info.smoke_param1;
    for (const RouterInfo& router : info.routers) {
      spec.router = std::string(router.key);
      Machine m = Machine::build(spec);
      EXPECT_GT(m.processors(), 0U) << spec.to_string();
      EXPECT_GT(m.route_scale(), 0U) << spec.to_string();
      EXPECT_FALSE(m.name().empty());
      // One tiny emulation proves the whole stack is wired.
      pram::PermutationTraffic program(
          std::min(m.processors(), 16U), 1, 7);
      SharedMemory memory;
      const emulation::EmulationReport report =
          m.run_seeded(7, program, memory);
      EXPECT_TRUE(report.complete) << spec.to_string();
      EXPECT_EQ(report.pram_steps, 1U) << spec.to_string();
    }
  }
}

TEST(Registry, EveryProgramFamilyRunsOnAStarMachine) {
  EXPECT_GE(program_families().size(), 12U);
  const Machine m = Machine::build("star:4/two-phase/crcw-combining/fifo");
  for (const ProgramInfo& info : program_families()) {
    std::string error;
    const auto program =
        make_program(info.key, m.processors(), /*seed=*/5, /*steps=*/2, error);
    ASSERT_NE(program, nullptr) << error;
    SharedMemory memory;
    const emulation::EmulationReport report =
        m.run_seeded(5, *program, memory);
    EXPECT_TRUE(report.complete) << info.key;
    EXPECT_TRUE(program->validate(memory)) << info.key;
  }
}

TEST(Registry, ModeAllowsOrdersTheAccessModes) {
  EXPECT_TRUE(mode_allows(Mode::kErew, pram::Mode::kErew));
  EXPECT_FALSE(mode_allows(Mode::kErew, pram::Mode::kCrew));
  EXPECT_FALSE(mode_allows(Mode::kErew, pram::Mode::kCrcw));
  EXPECT_TRUE(mode_allows(Mode::kCrew, pram::Mode::kErew));
  EXPECT_FALSE(mode_allows(Mode::kCrew, pram::Mode::kCrcw));
  EXPECT_TRUE(mode_allows(Mode::kCrcw, pram::Mode::kCrcw));
  EXPECT_TRUE(mode_allows(Mode::kCrcwCombining, pram::Mode::kCrcw));
  EXPECT_TRUE(mode_allows(Mode::kCrcwCombining, pram::Mode::kErew));
}

TEST(MachineSpec, FractionsRoundTripExactly) {
  MachineSpec spec = parse_spec("star:5/two-phase");
  spec.faults.links = 1.0 / 3.0;  // not representable in few decimal digits
  spec.faults.modules = 0.05;
  MachineSpec reparsed;
  std::string error;
  ASSERT_TRUE(parse_spec(spec.to_string(), reparsed, error))
      << spec.to_string() << ": " << error;
  EXPECT_EQ(spec, reparsed) << spec.to_string();
}

TEST(Registry, UnknownProgramKeyListsTheCatalogue) {
  std::string error;
  EXPECT_EQ(make_program("histogrm", 16, 1, 2, error), nullptr);
  EXPECT_NE(error.find("'histogrm'"), std::string::npos) << error;
  EXPECT_NE(error.find("histogram"), std::string::npos) << error;
}

// ------------------------------------------------- spec == hand assembly

bool reports_identical(const emulation::EmulationReport& a,
                       const emulation::EmulationReport& b) {
  return a.pram_steps == b.pram_steps && a.network_steps == b.network_steps &&
         a.max_step_network == b.max_step_network &&
         a.mean_step_network == b.mean_step_network &&
         a.max_link_queue == b.max_link_queue &&
         a.max_node_queue == b.max_node_queue &&
         a.request_packets == b.request_packets &&
         a.reply_packets == b.reply_packets &&
         a.combined_requests == b.combined_requests &&
         a.local_ops == b.local_ops && a.rehashes == b.rehashes &&
         a.step_costs == b.step_costs && a.detour_hops == b.detour_hops &&
         a.dropped_packets == b.dropped_packets &&
         a.fault_rehashes == b.fault_rehashes &&
         a.dead_links == b.dead_links && a.dead_nodes == b.dead_nodes &&
         a.dead_modules == b.dead_modules && a.complete == b.complete;
}

constexpr std::uint64_t kPinSeed = 0xB17'E0AALL;

/// The hand-built twin of a spec: construct topology/router/fabric (and
/// plan/injector when `faulted`) with the public low-level constructors,
/// then run the same program.
template <typename Topology>
std::pair<emulation::EmulationReport, SharedMemory> hand_built_run(
    Topology& topo, const emulation::EmulationFabric& fabric,
    std::uint32_t endpoints, bool combining, bool faulted) {
  faults::FaultSpec fault_spec;
  fault_spec.link_fraction = 0.05;
  fault_spec.module_fraction = 0.10;
  faults::FaultPlan plan;
  std::unique_ptr<faults::FaultInjector> injector;
  if (faulted) {
    plan = faults::FaultPlan::sample(topo.graph(), endpoints, endpoints,
                                     fault_spec, kPinSeed);
    injector = std::make_unique<faults::FaultInjector>(topo.graph_mut(),
                                                       endpoints, plan);
  }
  emulation::EmulatorConfig config;
  config.combining = combining;
  config.seed = kPinSeed;
  config.step_budget_factor = 64;
  config.faults = injector.get();
  emulation::NetworkEmulator emulator(fabric, config);
  pram::PermutationTraffic program(endpoints, 3, kPinSeed);
  SharedMemory memory;
  emulation::EmulationReport report = emulator.run(program, memory);
  return {std::move(report), std::move(memory)};
}

std::pair<emulation::EmulationReport, SharedMemory> spec_built_run(
    const std::string& topology, bool combining, bool faulted) {
  MachineSpec spec = parse_spec(topology + "/two-phase/budget=64");
  if (combining) spec.mode = Mode::kCrcwCombining;
  spec.seed = kPinSeed;
  if (faulted) {
    spec.faults.links = 0.05;
    spec.faults.modules = 0.10;
  }
  Machine m = Machine::build(spec);
  pram::PermutationTraffic program(m.processors(), 3, kPinSeed);
  SharedMemory memory;
  emulation::EmulationReport report = m.run(program, memory);
  return {std::move(report), std::move(memory)};
}

void expect_bit_equal_on_star(bool combining, bool faulted) {
  topology::StarGraph star(5);
  const routing::StarTwoPhaseRouter router(star);
  const emulation::EmulationFabric fabric(star.graph(), router,
                                          star.diameter(), star.name());
  const auto [hand_report, hand_memory] = hand_built_run(
      star, fabric, star.node_count(), combining, faulted);
  const auto [spec_report, spec_memory] =
      spec_built_run("star:5", combining, faulted);
  EXPECT_TRUE(reports_identical(hand_report, spec_report))
      << "star combining=" << combining << " faulted=" << faulted;
  EXPECT_TRUE(hand_memory == spec_memory);
}

void expect_bit_equal_on_shuffle(bool combining, bool faulted) {
  topology::DWayShuffle net = topology::DWayShuffle::n_way(3);
  const routing::ShuffleTwoPhaseRouter router(net);
  const emulation::EmulationFabric fabric(net.graph(), router,
                                          net.route_length(), net.name());
  const auto [hand_report, hand_memory] = hand_built_run(
      net, fabric, net.node_count(), combining, faulted);
  const auto [spec_report, spec_memory] =
      spec_built_run("nshuffle:3", combining, faulted);
  EXPECT_TRUE(reports_identical(hand_report, spec_report))
      << "shuffle combining=" << combining << " faulted=" << faulted;
  EXPECT_TRUE(hand_memory == spec_memory);
}

void expect_bit_equal_on_butterfly(bool combining, bool faulted) {
  topology::WrappedButterfly bf(2, 5);
  const routing::TwoPhaseButterflyRouter router(bf);
  const emulation::EmulationFabric fabric(bf, router);
  const auto [hand_report, hand_memory] =
      hand_built_run(bf, fabric, bf.row_count(), combining, faulted);
  const auto [spec_report, spec_memory] =
      spec_built_run("butterfly:2x5", combining, faulted);
  EXPECT_TRUE(reports_identical(hand_report, spec_report))
      << "butterfly combining=" << combining << " faulted=" << faulted;
  EXPECT_TRUE(hand_memory == spec_memory);
}

TEST(SpecVsHandBuilt, StarIsBitEqual) {
  for (const bool combining : {false, true}) {
    for (const bool faulted : {false, true}) {
      expect_bit_equal_on_star(combining, faulted);
    }
  }
}

TEST(SpecVsHandBuilt, ShuffleIsBitEqual) {
  for (const bool combining : {false, true}) {
    for (const bool faulted : {false, true}) {
      expect_bit_equal_on_shuffle(combining, faulted);
    }
  }
}

TEST(SpecVsHandBuilt, ButterflyIsBitEqual) {
  for (const bool combining : {false, true}) {
    for (const bool faulted : {false, true}) {
      expect_bit_equal_on_butterfly(combining, faulted);
    }
  }
}

// ------------------------------------------------------------ run_trials

TEST(RunTrials, SeedDerivationMatchesTheBenchHarness) {
  // machine::run_trials must fan seeds exactly like ScenarioContext::trials
  // (SplitMix64 of first_seed + index, first_seed = 1), or migrated bench
  // rows would drift from their recorded baselines.
  std::vector<emulation::EmulationReport> reports;
  const analysis::TrialStats stats =
      run_trials(parse_spec("star:4/two-phase"),
                 program_factory("permutation", 2), /*seeds=*/3,
                 /*threads=*/1, &reports);
  ASSERT_EQ(reports.size(), 3U);
  EXPECT_EQ(stats.runs, 3U);

  const Machine m = Machine::build("star:4/two-phase");
  for (std::uint32_t i = 0; i < 3; ++i) {
    const std::uint64_t seed = analysis::TrialRunner::trial_seed(1, i);
    pram::PermutationTraffic program(m.processors(), 2, seed);
    SharedMemory memory;
    const emulation::EmulationReport direct =
        m.run_seeded(seed, program, memory);
    EXPECT_TRUE(reports_identical(direct, reports[i])) << "trial " << i;
  }
}

TEST(RunTrials, FaultFreeIsThreadCountInvariant) {
  const MachineSpec spec = parse_spec("nshuffle:3/two-phase/crcw-combining");
  std::vector<emulation::EmulationReport> one;
  std::vector<emulation::EmulationReport> eight;
  const analysis::TrialStats a = run_trials(
      spec, program_factory("permutation", 2), 6, /*threads=*/1, &one);
  const analysis::TrialStats b = run_trials(
      spec, program_factory("permutation", 2), 6, /*threads=*/8, &eight);
  EXPECT_EQ(a.steps.mean, b.steps.mean);
  EXPECT_EQ(a.worst_step.max, b.worst_step.max);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(reports_identical(one[i], eight[i])) << "trial " << i;
  }
}

}  // namespace
}  // namespace levnet::machine
