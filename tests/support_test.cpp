// Unit tests for the support layer: RNG, modular arithmetic, primality,
// statistics, ring queue, table formatting, bit helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>
#include <vector>

#include "support/arena.hpp"
#include "support/bits.hpp"
#include "support/flat_hash.hpp"
#include "support/modmath.hpp"
#include "support/object_pool.hpp"
#include "support/primes.hpp"
#include "support/ring_queue.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace levnet::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0U);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.range(5, 8);
    EXPECT_GE(v, 5U);
    EXPECT_LE(v, 8U);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4U);  // all four values should appear in 500 draws
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / draws, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng b(21);
  (void)b();  // advance past the split draw
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (child() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, RandomPermutationIsPermutation) {
  Rng rng(5);
  const auto perm = random_permutation(257, rng);
  std::vector<bool> seen(257, false);
  for (const std::uint32_t v : perm) {
    ASSERT_LT(v, 257U);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(6);
  std::vector<int> values{1, 1, 2, 3, 5, 8, 13};
  auto shuffled = values;
  shuffle(shuffled, rng);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(ModMath, MulModMatchesWideMultiply) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t m = rng.range(2, ~std::uint64_t{0} - 1);
    const std::uint64_t a = rng.below(m);
    const std::uint64_t b = rng.below(m);
    const auto expected = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(a) * b % m);
    EXPECT_EQ(mul_mod(a, b, m), expected);
  }
}

TEST(ModMath, MulModM61MatchesGeneric) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.below(kMersenne61);
    const std::uint64_t b = rng.below(kMersenne61);
    EXPECT_EQ(mul_mod_m61(a, b), mul_mod(a, b, kMersenne61));
  }
}

TEST(ModMath, PowModFermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p and a not divisible by p.
  const std::uint64_t p = 1000000007ULL;
  for (std::uint64_t a : {2ULL, 3ULL, 12345ULL, 999999999ULL}) {
    EXPECT_EQ(pow_mod(a, p - 1, p), 1U);
  }
}

TEST(ModMath, AddSubRoundTrip) {
  const std::uint64_t m = 97;
  for (std::uint64_t a = 0; a < m; a += 13) {
    for (std::uint64_t b = 0; b < m; b += 17) {
      EXPECT_EQ(sub_mod(add_mod(a, b, m), b, m), a);
    }
  }
}

TEST(Primes, SmallKnownValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
  EXPECT_TRUE(is_prime(7919));
}

TEST(Primes, LargeKnownValues) {
  EXPECT_TRUE(is_prime(kMersenne61));
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_TRUE(is_prime(1000000000000000003ULL));
  EXPECT_FALSE(is_prime(1000000007ULL * 1000000009ULL % (1ULL << 62)));
}

TEST(Primes, CarmichaelNumbersRejected) {
  // Fermat pseudoprimes that a weak test would accept.
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 2821ULL}) {
    EXPECT_FALSE(is_prime(c)) << c;
  }
}

TEST(Primes, NextPrimeIsPrimeAndMinimal) {
  for (std::uint64_t n : {10ULL, 90ULL, 1000000ULL, 1ULL << 32}) {
    const std::uint64_t p = next_prime(n);
    EXPECT_TRUE(is_prime(p));
    EXPECT_GE(p, n);
    for (std::uint64_t q = n; q < p; ++q) EXPECT_FALSE(is_prime(q));
  }
}

TEST(Stats, RunningStatMoments) {
  RunningStat rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_EQ(rs.count(), 8U);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, SummaryPercentiles) {
  std::vector<double> values(101);
  std::iota(values.begin(), values.end(), 0.0);
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.median, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Stats, FitExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{5, 7, 9, 11, 13};  // y = 2x + 3
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitDegenerateInputs) {
  std::vector<double> x{2.0};
  std::vector<double> y{7.0};
  const LinearFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 7.0);
}

TEST(RingQueue, FifoOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, InterleavedPushPopWrapsCorrectly) {
  RingQueue<int> q;
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) q.push(next_push++);
    for (int i = 0; i < 2; ++i) EXPECT_EQ(q.pop(), next_pop++);
  }
  while (!q.empty()) EXPECT_EQ(q.pop(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(RingQueue, ExtractMiddlePreservesOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 6; ++i) q.push(i);  // 0 1 2 3 4 5
  EXPECT_EQ(q.extract(2), 2);
  EXPECT_EQ(q.extract(0), 0);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
  EXPECT_EQ(q.pop(), 5);
}

TEST(RingQueue, AtIndexesFromFront) {
  RingQueue<int> q;
  q.push(10);
  q.push(20);
  q.push(30);
  (void)q.pop();
  q.push(40);  // queue: 20 30 40, wrapped storage
  EXPECT_EQ(q.at(0), 20);
  EXPECT_EQ(q.at(1), 30);
  EXPECT_EQ(q.at(2), 40);
}

TEST(ObjectPool, RecyclesSlotsLifo) {
  ObjectPool<int> pool;
  const auto a = pool.allocate();
  const auto b = pool.allocate();
  pool.get(a) = 1;
  pool.get(b) = 2;
  EXPECT_EQ(pool.live(), 2U);
  pool.release(a);
  const auto c = pool.allocate();  // LIFO free list hands back a's slot
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool.live(), 2U);
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.live(), 0U);
}

TEST(ObjectPool, ClearKeepsCapacityAndRewinds) {
  ObjectPool<int> pool;
  for (int i = 0; i < 32; ++i) pool.get(pool.allocate()) = i;
  const std::size_t capacity = pool.capacity();
  pool.clear();
  EXPECT_EQ(pool.live(), 0U);
  EXPECT_EQ(pool.capacity(), capacity);
  // Refilling reuses the same slots: ids restart from 0 and capacity is
  // untouched (the allocation-free steady-state contract).
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(pool.allocate(), i);
  EXPECT_EQ(pool.capacity(), capacity);
}

TEST(Arena, PushResetReuse) {
  Arena<int> arena;
  EXPECT_TRUE(arena.empty());
  const auto a = arena.push(5);
  const auto b = arena.push(7);
  EXPECT_EQ(arena[a], 5);
  EXPECT_EQ(arena[b], 7);
  EXPECT_EQ(arena.size(), 2U);
  arena.reset();
  EXPECT_TRUE(arena.empty());
  // Indices restart after reset; old storage is reused in place.
  EXPECT_EQ(arena.push(9), 0U);
  EXPECT_EQ(arena[0], 9);
}

namespace {
struct IdentityHash {
  std::size_t operator()(std::uint64_t k) const noexcept {
    return static_cast<std::size_t>(k);
  }
};
}  // namespace

TEST(FlatMap, InsertFindAndInsertionOrderIteration) {
  FlatMap<std::uint64_t, int, IdentityHash> map;
  for (std::uint64_t k : {9ULL, 3ULL, 7ULL}) {
    auto [value, inserted] = map.find_or_insert(k);
    EXPECT_TRUE(inserted);
    *value = static_cast<int>(k) * 10;
  }
  auto [again, inserted_again] = map.find_or_insert(3);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*again, 30);
  EXPECT_EQ(map.size(), 3U);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 70);
  EXPECT_EQ(map.find(8), nullptr);
  // for_each walks in insertion order, not hash order.
  std::vector<std::uint64_t> keys;
  map.for_each([&keys](const std::uint64_t& k, int&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{9, 3, 7}));
}

TEST(FlatMap, ClearIsEpochBasedAndCapacityPersists) {
  FlatMap<std::uint64_t, int, IdentityHash> map;
  for (std::uint64_t k = 0; k < 6; ++k) *map.find_or_insert(k).first = 1;
  const std::size_t capacity = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0U);
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.find(3), nullptr);  // stale epochs are invisible
  // Many clear cycles (the per-PRAM-step pattern) keep working.
  for (int cycle = 0; cycle < 1000; ++cycle) {
    *map.find_or_insert(42).first = cycle;
    ASSERT_NE(map.find(42), nullptr);
    map.clear();
  }
  EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatMap, GrowsPastInitialCapacityAndKeepsEverything) {
  FlatMap<std::uint64_t, int, IdentityHash> map(16);
  constexpr std::uint64_t kCount = 3000;
  for (std::uint64_t k = 0; k < kCount; ++k) {
    *map.find_or_insert(k * 0x9e3779b9ULL).first = static_cast<int>(k);
  }
  EXPECT_EQ(map.size(), kCount);
  for (std::uint64_t k = 0; k < kCount; ++k) {
    int* value = map.find(k * 0x9e3779b9ULL);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, static_cast<int>(k));
  }
  // Insertion order survives rehashing.
  std::uint64_t expected = 0;
  map.for_each([&expected](const std::uint64_t&, int& v) {
    EXPECT_EQ(v, static_cast<int>(expected));
    ++expected;
  });
  EXPECT_EQ(expected, kCount);
}

TEST(FlatMap, CollidingKeysProbeLinearly) {
  // IdentityHash + same low bits forces collisions in one probe chain.
  FlatMap<std::uint64_t, int, IdentityHash> map(16);
  for (std::uint64_t k = 0; k < 8; ++k) {
    *map.find_or_insert(k << 32).first = static_cast<int>(k);
  }
  for (std::uint64_t k = 0; k < 8; ++k) {
    ASSERT_NE(map.find(k << 32), nullptr);
    EXPECT_EQ(*map.find(k << 32), static_cast<int>(k));
  }
  EXPECT_EQ(map.find(99), nullptr);
}

TEST(FlatMap, GrowthWhileIteratingForEachSeesAStableSnapshot) {
  // for_each visits the entries recorded at call time in insertion order;
  // reads and value mutations during the walk are legal (key lookups do
  // not rehash), and insertions performed *after* a walk — including ones
  // that trigger growth — extend the order without disturbing it.
  FlatMap<std::uint64_t, int, IdentityHash> map(16);
  for (std::uint64_t k = 0; k < 7; ++k) {  // load 7/16: next insert grows
    *map.find_or_insert(k * 0x9e3779b9ULL).first = static_cast<int>(k);
  }
  const std::size_t before = map.capacity();
  std::vector<std::uint64_t> first_walk;
  map.for_each([&](const std::uint64_t& k, int& v) {
    first_walk.push_back(k);
    ASSERT_NE(map.find(k), nullptr);  // lookups mid-walk are fine
    v += 100;                         // value mutation mid-walk is fine
  });
  EXPECT_EQ(first_walk.size(), 7U);
  // Push the table through growth, then walk again: the old prefix (with
  // the mutated values) leads, the new entries follow in insertion order.
  for (std::uint64_t k = 7; k < 40; ++k) {
    *map.find_or_insert(k * 0x9e3779b9ULL).first = static_cast<int>(k);
  }
  EXPECT_GT(map.capacity(), before);
  std::size_t index = 0;
  map.for_each([&](const std::uint64_t& k, int& v) {
    if (index < 7) {
      EXPECT_EQ(k, first_walk[index]);
      EXPECT_EQ(v, static_cast<int>(index) + 100);
    } else {
      EXPECT_EQ(v, static_cast<int>(index));
    }
    ++index;
  });
  EXPECT_EQ(index, 40U);
}

TEST(FlatMap, ClearThenReinsertIdenticalKeys) {
  // The per-PRAM-step pattern at its worst: the same key set re-enters
  // after every O(1) clear. Each cycle must report fresh insertions (no
  // stale epoch can make a key look present), return default-initialized
  // values, and leave capacity untouched.
  FlatMap<std::uint64_t, int, IdentityHash> map(32);
  const std::vector<std::uint64_t> keys{5, 21, 37, 53, 69};  // one chain
  for (int cycle = 0; cycle < 64; ++cycle) {
    for (const std::uint64_t k : keys) {
      auto [value, inserted] = map.find_or_insert(k);
      EXPECT_TRUE(inserted) << "stale epoch leaked key " << k;
      EXPECT_EQ(*value, 0) << "recycled slot leaked a value";
      *value = cycle + 1;
    }
    EXPECT_EQ(map.size(), keys.size());
    for (const std::uint64_t k : keys) {
      ASSERT_NE(map.find(k), nullptr);
      EXPECT_EQ(*map.find(k), cycle + 1);
    }
    map.clear();
    EXPECT_TRUE(map.empty());
    for (const std::uint64_t k : keys) EXPECT_EQ(map.find(k), nullptr);
  }
  EXPECT_EQ(map.capacity(), 32U);
}

TEST(FlatMap, NearCapacityLoadStaysAtHalfAndThenGrows) {
  // The table grows when an insert would push load past 1/2, so exactly
  // capacity/2 entries must fit without growth (pointers stay valid at the
  // boundary) and entry capacity/2 + 1 doubles the table.
  FlatMap<std::uint64_t, int, IdentityHash> map(64);
  ASSERT_EQ(map.capacity(), 64U);
  for (std::uint64_t k = 0; k < 32; ++k) {
    *map.find_or_insert(k * 0x9e3779b9ULL).first = static_cast<int>(k);
  }
  EXPECT_EQ(map.capacity(), 64U);
  EXPECT_EQ(map.size(), 32U);
  *map.find_or_insert(0xdeadULL).first = -1;
  EXPECT_EQ(map.capacity(), 128U);
  EXPECT_EQ(map.size(), 33U);
  for (std::uint64_t k = 0; k < 32; ++k) {
    ASSERT_NE(map.find(k * 0x9e3779b9ULL), nullptr);
    EXPECT_EQ(*map.find(k * 0x9e3779b9ULL), static_cast<int>(k));
  }
  EXPECT_EQ(*map.find(0xdeadULL), -1);
  // Clear after growth: the grown table's epoch machinery still empties.
  map.clear();
  EXPECT_EQ(map.find(0xdeadULL), nullptr);
  EXPECT_EQ(map.capacity(), 128U);
}

TEST(ObjectPool, ReleaseOrderStress) {
  // Random allocate/release interleavings must never hand out a live ref
  // twice, keep live() exact, and cap capacity at the high-water mark.
  ObjectPool<std::uint64_t> pool;
  Rng rng(0xFEED);
  std::set<ObjectPool<std::uint64_t>::Ref> live;
  std::size_t high_water = 0;
  for (int round = 0; round < 5000; ++round) {
    const bool allocate = live.empty() || rng.below(100) < 55;
    if (allocate) {
      const auto ref = pool.allocate();
      EXPECT_TRUE(live.insert(ref).second) << "live ref handed out twice";
      pool.get(ref) = ref * 1000ULL;
      high_water = std::max(high_water, live.size());
    } else {
      // Release a pseudo-random victim, not the most recent — exercises
      // LIFO-free-list recycling under arbitrary release order.
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
      EXPECT_EQ(pool.get(*it), *it * 1000ULL) << "slot clobbered while live";
      pool.release(*it);
      live.erase(it);
    }
    EXPECT_EQ(pool.live(), live.size());
  }
  EXPECT_EQ(pool.capacity(), high_water)
      << "pool grew beyond its high-water mark";
  // Drain in a scrambled order and confirm full reuse afterwards.
  while (!live.empty()) {
    auto it = live.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
    pool.release(*it);
    live.erase(it);
  }
  EXPECT_EQ(pool.live(), 0U);
  const std::size_t capacity = pool.capacity();
  for (std::size_t i = 0; i < capacity; ++i) {
    const auto ref = pool.allocate();
    EXPECT_LT(ref, capacity) << "refill allocated a fresh slot";
  }
  EXPECT_EQ(pool.capacity(), capacity);
}

TEST(Table, AlignsAndCounts) {
  Table t({"net", "steps", "ratio"});
  t.row().cell(std::string("star")).cell(std::uint64_t{42}).cell(3.14159, 2);
  t.row().cell(std::string("mesh")).cell(std::uint64_t{7}).cell(2.0, 2);
  EXPECT_EQ(t.row_count(), 2U);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("star"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Bits, CeilAndFloorLog2) {
  EXPECT_EQ(ceil_log2(1), 0U);
  EXPECT_EQ(ceil_log2(2), 1U);
  EXPECT_EQ(ceil_log2(5), 3U);
  EXPECT_EQ(ceil_log2(8), 3U);
  EXPECT_EQ(ceil_log2(9), 4U);
  EXPECT_EQ(floor_log2(8), 3U);
  EXPECT_EQ(floor_log2(9), 3U);
}

}  // namespace
}  // namespace levnet::support
