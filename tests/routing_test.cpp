// Routing algorithm tests: every router delivers every workload to the
// right place, within the step bounds the theorems promise (with generous
// constants — these are correctness gates, not benchmarks), and the
// engine's one-packet-per-link rule shows up as bounded queues.

#include <gtest/gtest.h>

#include <memory>

#include "routing/driver.hpp"
#include "routing/hypercube_router.hpp"
#include "routing/mesh_router.hpp"
#include "routing/shuffle_router.hpp"
#include "routing/star_router.hpp"
#include "routing/two_phase.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "topology/butterfly.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/shuffle.hpp"
#include "topology/star.hpp"

namespace levnet::routing {
namespace {

using sim::Workload;

RoutingOutcome route_permutation(const topology::Graph& graph,
                                 const Router& router, std::uint32_t endpoints,
                                 std::uint64_t seed,
                                 sim::EngineConfig config = {}) {
  support::Rng rng(seed);
  const Workload w = sim::permutation_workload(endpoints, rng);
  return run_workload(graph, router, w, config, rng);
}

// ---------------------------------------------------------------- butterfly

TEST(TwoPhaseButterfly, PermutationCompletesWithinBound) {
  const topology::WrappedButterfly bf(2, 6);  // 64 endpoints
  const TwoPhaseButterflyRouter router(bf);
  const RoutingOutcome outcome =
      route_permutation(bf.graph(), router, bf.row_count(), 17);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.delivered, bf.row_count());
  // Path length is exactly 2l; allow generous delay slack.
  EXPECT_GE(outcome.metrics.steps, 2 * bf.levels());
  EXPECT_LE(outcome.metrics.steps, 8 * bf.levels());
}

TEST(TwoPhaseButterfly, AllRadixesDeliver) {
  for (std::uint32_t d : {2U, 3U, 4U}) {
    const topology::WrappedButterfly bf(d, 3);
    const TwoPhaseButterflyRouter router(bf);
    const RoutingOutcome outcome =
        route_permutation(bf.graph(), router, bf.row_count(), 23);
    EXPECT_TRUE(outcome.complete) << "radix " << d;
  }
}

TEST(TwoPhaseButterfly, HRelationCompletes) {
  const topology::WrappedButterfly bf(2, 5);
  const TwoPhaseButterflyRouter router(bf);
  support::Rng rng(31);
  const Workload w = sim::h_relation_workload(bf.row_count(), 5, rng);
  const RoutingOutcome outcome =
      run_workload(bf.graph(), router, w, {}, rng);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.delivered, w.size());
}

TEST(UniquePathButterfly, DeterministicPathDelivers) {
  const topology::WrappedButterfly bf(2, 5);
  const UniquePathButterflyRouter router(bf);
  const RoutingOutcome outcome =
      route_permutation(bf.graph(), router, bf.row_count(), 37);
  EXPECT_TRUE(outcome.complete);
}

TEST(TwoPhaseButterfly, DeterministicGivenSeed) {
  const topology::WrappedButterfly bf(2, 5);
  const TwoPhaseButterflyRouter router(bf);
  const RoutingOutcome a =
      route_permutation(bf.graph(), router, bf.row_count(), 41);
  const RoutingOutcome b =
      route_permutation(bf.graph(), router, bf.row_count(), 41);
  EXPECT_EQ(a.metrics.steps, b.metrics.steps);
  EXPECT_EQ(a.metrics.total_hops, b.metrics.total_hops);
  EXPECT_EQ(a.metrics.max_link_queue, b.metrics.max_link_queue);
}

// --------------------------------------------------------------------- star

TEST(StarGreedy, PermutationDelivers) {
  const topology::StarGraph star(5);
  const StarGreedyRouter router(star);
  const RoutingOutcome outcome =
      route_permutation(star.graph(), router, star.node_count(), 43);
  EXPECT_TRUE(outcome.complete);
}

TEST(StarTwoPhase, PermutationCompletesWithinBound) {
  const topology::StarGraph star(6);  // 720 nodes, diameter 7
  const StarTwoPhaseRouter router(star);
  const RoutingOutcome outcome =
      route_permutation(star.graph(), router, star.node_count(), 47);
  EXPECT_TRUE(outcome.complete);
  // Theorem 2.2: O~(n); the two greedy passes walk at most 2 * diameter
  // links, delays add a small multiple.
  EXPECT_LE(outcome.metrics.steps, 8 * star.diameter());
}

TEST(StarTwoPhase, NRelationCompletes) {
  // Corollary 2.1: partial n-relations also finish in O~(n).
  const topology::StarGraph star(5);
  const StarTwoPhaseRouter router(star);
  support::Rng rng(53);
  const Workload w =
      sim::h_relation_workload(star.node_count(), star.symbols(), rng);
  const RoutingOutcome outcome = run_workload(star.graph(), router, w, {}, rng);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.delivered, w.size());
}

TEST(StarRouting, ManyOneDelivers) {
  const topology::StarGraph star(5);
  const StarTwoPhaseRouter router(star);
  support::Rng rng(59);
  const Workload w = sim::many_one_workload(star.node_count(), rng);
  const RoutingOutcome outcome = run_workload(star.graph(), router, w, {}, rng);
  EXPECT_TRUE(outcome.complete);
}

// ------------------------------------------------------------------ shuffle

TEST(ShuffleUniquePath, PermutationDelivers) {
  const topology::DWayShuffle shuffle(4, 4);  // 256 nodes
  const ShuffleUniquePathRouter router(shuffle);
  const RoutingOutcome outcome =
      route_permutation(shuffle.graph(), router, shuffle.node_count(), 61);
  EXPECT_TRUE(outcome.complete);
}

TEST(ShuffleTwoPhase, PermutationCompletesWithinBound) {
  const topology::DWayShuffle shuffle = topology::DWayShuffle::n_way(4);
  const ShuffleTwoPhaseRouter router(shuffle);
  const RoutingOutcome outcome =
      route_permutation(shuffle.graph(), router, shuffle.node_count(), 67);
  EXPECT_TRUE(outcome.complete);
  // Theorem 2.3: O~(n) with path length exactly 2n.
  EXPECT_LE(outcome.metrics.steps, 10 * shuffle.route_length());
}

TEST(ShuffleTwoPhase, ConstantDigitNodesRouteCorrectly) {
  // Nodes 000..0 and 333..3 have self-loop shift links that the router
  // consumes in place; a permutation touching them must still deliver.
  const topology::DWayShuffle shuffle(4, 3);
  const ShuffleTwoPhaseRouter router(shuffle);
  support::Rng rng(71);
  Workload w;
  const std::uint32_t n = shuffle.node_count();
  for (std::uint32_t i = 0; i < n; ++i) w.push_back({i, n - 1 - i});
  const RoutingOutcome outcome =
      run_workload(shuffle.graph(), router, w, {}, rng);
  EXPECT_TRUE(outcome.complete);
}

TEST(ShuffleTwoPhase, HRelationCompletes) {
  const topology::DWayShuffle shuffle = topology::DWayShuffle::n_way(3);
  const ShuffleTwoPhaseRouter router(shuffle);
  support::Rng rng(73);
  const Workload w =
      sim::h_relation_workload(shuffle.node_count(), shuffle.digits(), rng);
  const RoutingOutcome outcome =
      run_workload(shuffle.graph(), router, w, {}, rng);
  EXPECT_TRUE(outcome.complete);
}

// --------------------------------------------------------------------- mesh

TEST(MeshThreeStage, PermutationCompletesWithin2nPlusLowerOrder) {
  const topology::Mesh mesh(16, 16);
  const MeshThreeStageRouter router(mesh);
  sim::EngineConfig config;
  config.discipline = sim::QueueDiscipline::kFurthestFirst;
  const RoutingOutcome outcome =
      route_permutation(mesh.graph(), router, mesh.node_count(), 79, config);
  EXPECT_TRUE(outcome.complete);
  // Theorem 3.1: 2n + o(n). At n = 16 the o(n) slack is still visible, so
  // gate at 3n.
  EXPECT_LE(outcome.metrics.steps, 3 * mesh.rows());
}

TEST(MeshThreeStage, StagesVisitSliceRowFirst) {
  const topology::Mesh mesh(8, 8);
  const MeshThreeStageRouter router(mesh, 2);
  EXPECT_EQ(router.slice_rows(), 2U);
  support::Rng rng(83);
  sim::Packet p;
  p.src = mesh.node_id(5, 1);
  p.dst = mesh.node_id(0, 6);
  router.prepare(p, rng);
  // The random row must be inside the slice of row 5 (rows 4..5).
  const std::uint32_t random_row = mesh.row_of(p.intermediate);
  EXPECT_GE(random_row, 4U);
  EXPECT_LE(random_row, 5U);
}

TEST(MeshValiantBrebner, PermutationDelivers) {
  const topology::Mesh mesh(12, 12);
  const ValiantBrebnerMeshRouter router(mesh);
  const RoutingOutcome outcome =
      route_permutation(mesh.graph(), router, mesh.node_count(), 89);
  EXPECT_TRUE(outcome.complete);
}

TEST(MeshGreedyXY, PermutationDelivers) {
  const topology::Mesh mesh(12, 12);
  const GreedyXYMeshRouter router(mesh);
  const RoutingOutcome outcome =
      route_permutation(mesh.graph(), router, mesh.node_count(), 97);
  EXPECT_TRUE(outcome.complete);
}

TEST(MeshGreedyXY, TransposeDelivers) {
  // Transpose is permutation-legal and greedy XY handles it; the router
  // correctness gate, with the staged router as a cross-check.
  const topology::Mesh mesh(16, 16);
  const Workload w = sim::transpose_workload(16);
  const GreedyXYMeshRouter greedy(mesh);
  support::Rng rng(101);
  const RoutingOutcome outcome = run_workload(mesh.graph(), greedy, w, {}, rng);
  EXPECT_TRUE(outcome.complete);
}

TEST(MeshThreeStage, BurstyRelationsBeatGreedyXY) {
  // Theorem 2.4's regime: h packets per source. Greedy XY sends a source's
  // whole burst down one row channel; stage-1 randomization spreads it
  // across the slice's rows, cutting the row-channel bottleneck — the
  // reason Section 3.4 randomizes within slices.
  const std::uint32_t n = 32;
  const topology::Mesh mesh(n, n);
  support::Rng rng_w(103);
  const Workload w = sim::h_relation_workload(n * n, 8, rng_w);

  const GreedyXYMeshRouter greedy(mesh);
  support::Rng rng_a(7);
  const RoutingOutcome greedy_outcome =
      run_workload(mesh.graph(), greedy, w, {}, rng_a);
  EXPECT_TRUE(greedy_outcome.complete);

  const MeshThreeStageRouter staged(mesh);
  support::Rng rng_b(7);
  sim::EngineConfig config;
  config.discipline = sim::QueueDiscipline::kFurthestFirst;
  const RoutingOutcome staged_outcome =
      run_workload(mesh.graph(), staged, w, config, rng_b);
  EXPECT_TRUE(staged_outcome.complete);

  EXPECT_LT(staged_outcome.metrics.steps, greedy_outcome.metrics.steps);
}

TEST(MeshThreeStage, LocalWorkloadFinishesInLocalTime) {
  // Theorem 3.3 regime: all requests within Manhattan distance d complete
  // in O(d), not O(n).
  const std::uint32_t n = 32;
  const std::uint32_t d = 4;
  const topology::Mesh mesh(n, n);
  const MeshThreeStageRouter router(mesh, /*slice_rows=*/2);
  support::Rng rng(103);
  const Workload w = sim::local_mesh_workload(n, d, rng);
  sim::EngineConfig config;
  config.discipline = sim::QueueDiscipline::kFurthestFirst;
  const RoutingOutcome outcome =
      run_workload(mesh.graph(), router, w, config, rng);
  EXPECT_TRUE(outcome.complete);
  EXPECT_LE(outcome.metrics.steps, 6 * d);  // well below the 2n scale
}

// ---------------------------------------------------------------- hypercube

TEST(HypercubeEcube, PermutationDelivers) {
  const topology::Hypercube cube(6);
  const EcubeRouter router(cube);
  const RoutingOutcome outcome =
      route_permutation(cube.graph(), router, cube.node_count(), 107);
  EXPECT_TRUE(outcome.complete);
}

TEST(HypercubeValiant, PermutationCompletesWithinBound) {
  const topology::Hypercube cube(8);
  const ValiantHypercubeRouter router(cube);
  const RoutingOutcome outcome =
      route_permutation(cube.graph(), router, cube.node_count(), 109);
  EXPECT_TRUE(outcome.complete);
  EXPECT_LE(outcome.metrics.steps, 8 * cube.dim());
}

// ------------------------------------------------- parameterized seed sweep

struct SweepParam {
  const char* network;
  std::uint64_t seed;
};

class RoutingSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RoutingSweep, PermutationAlwaysCompletes) {
  const SweepParam param = GetParam();
  const std::string net = param.network;
  if (net == "star") {
    const topology::StarGraph star(5);
    const StarTwoPhaseRouter router(star);
    EXPECT_TRUE(
        route_permutation(star.graph(), router, star.node_count(), param.seed)
            .complete);
  } else if (net == "shuffle") {
    const topology::DWayShuffle shuffle = topology::DWayShuffle::n_way(3);
    const ShuffleTwoPhaseRouter router(shuffle);
    EXPECT_TRUE(route_permutation(shuffle.graph(), router,
                                  shuffle.node_count(), param.seed)
                    .complete);
  } else if (net == "butterfly") {
    const topology::WrappedButterfly bf(2, 5);
    const TwoPhaseButterflyRouter router(bf);
    EXPECT_TRUE(
        route_permutation(bf.graph(), router, bf.row_count(), param.seed)
            .complete);
  } else {
    const topology::Mesh mesh(10, 10);
    const MeshThreeStageRouter router(mesh);
    EXPECT_TRUE(
        route_permutation(mesh.graph(), router, mesh.node_count(), param.seed)
            .complete);
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (const char* net : {"star", "shuffle", "butterfly", "mesh"}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      params.push_back({net, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, RoutingSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& suite_info) {
                           return std::string(suite_info.param.network) +
                                  "_s" + std::to_string(suite_info.param.seed);
                         });

}  // namespace
}  // namespace levnet::routing
