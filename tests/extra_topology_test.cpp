// Extension topologies: torus and cube-connected cycles, plus their
// routers and emulation integration.

#include <gtest/gtest.h>

#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "pram/algorithms/prefix_sum.hpp"
#include "pram/reference.hpp"
#include "routing/driver.hpp"
#include "routing/extra_routers.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "topology/ccc.hpp"
#include "topology/checks.hpp"
#include "topology/torus.hpp"

namespace levnet::topology {
namespace {

TEST(Torus, StructureAndDiameter) {
  const Torus torus(6, 6);
  EXPECT_EQ(torus.node_count(), 36U);
  EXPECT_TRUE(is_regular(torus.graph(), 4));
  EXPECT_TRUE(is_symmetric(torus.graph()));
  EXPECT_EQ(exact_diameter(torus.graph()), torus.diameter());  // n/2 + n/2
}

TEST(Torus, WrappedDistance) {
  const Torus torus(8, 8);
  EXPECT_EQ(torus.distance(torus.node_id(0, 0), torus.node_id(7, 7)), 2U);
  EXPECT_EQ(torus.distance(torus.node_id(0, 0), torus.node_id(4, 4)), 8U);
  EXPECT_EQ(torus.distance(torus.node_id(1, 2), torus.node_id(1, 2)), 0U);
}

TEST(Torus, StepTowardTakesShortDirection) {
  const Torus torus(8, 8);
  EXPECT_EQ(torus.row_step_toward(0, 7), 7U);  // wrap backward
  EXPECT_EQ(torus.row_step_toward(0, 2), 1U);  // forward
  EXPECT_EQ(torus.col_step_toward(6, 1), 7U);  // wrap forward
}

TEST(Torus, DistanceMatchesBfsEverywhere) {
  const Torus torus(5, 7);
  for (NodeId src : {NodeId{0}, NodeId{17}, NodeId{34}}) {
    const auto bfs = bfs_distances(torus.graph(), src);
    for (NodeId v = 0; v < torus.node_count(); ++v) {
      EXPECT_EQ(torus.distance(src, v), bfs[v]) << "src=" << src << " v=" << v;
    }
  }
}

TEST(Ccc, StructureMatchesDefinition) {
  const CubeConnectedCycles ccc(3);
  EXPECT_EQ(ccc.node_count(), 24U);  // 3 * 2^3
  EXPECT_TRUE(is_regular(ccc.graph(), 3));
  EXPECT_TRUE(is_symmetric(ccc.graph()));
  EXPECT_TRUE(is_connected(ccc.graph()));
}

TEST(Ccc, SweepStepReachesDestinationWithinBound) {
  const CubeConnectedCycles ccc(4);
  support::Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    const auto src = static_cast<NodeId>(rng.below(ccc.node_count()));
    const auto dst = static_cast<NodeId>(rng.below(ccc.node_count()));
    NodeId at = src;
    std::uint32_t hops = 0;
    while (at != dst) {
      const NodeId next = ccc.sweep_step(at, dst);
      ASSERT_NE(next, kInvalidNode);
      // Every hop must follow a real link.
      ASSERT_NE(ccc.graph().edge_between(at, next), kInvalidEdge);
      at = next;
      ++hops;
      ASSERT_LE(hops, ccc.route_bound());
    }
  }
}

TEST(Ccc, DiameterIsThetaK) {
  const CubeConnectedCycles ccc(3);
  const std::uint32_t diameter = exact_diameter(ccc.graph());
  EXPECT_GE(diameter, ccc.k());
  EXPECT_LE(diameter, ccc.route_bound());
}

}  // namespace
}  // namespace levnet::topology

namespace levnet::routing {
namespace {

TEST(TorusRouting, GreedyAndValiantDeliver) {
  const topology::Torus torus(8, 8);
  const TorusGreedyRouter greedy(torus);
  const TorusValiantRouter valiant(torus);
  for (const Router* router :
       {static_cast<const Router*>(&greedy),
        static_cast<const Router*>(&valiant)}) {
    support::Rng rng(17);
    const sim::Workload w =
        sim::permutation_workload(torus.node_count(), rng);
    const RoutingOutcome outcome =
        run_workload(torus.graph(), *router, w, {}, rng);
    EXPECT_TRUE(outcome.complete);
  }
}

TEST(TorusRouting, BeatsMeshScaleOnWrappedDistance) {
  // A torus permutation finishes within ~n (diameter n), comfortably under
  // the mesh's 2n scale.
  const topology::Torus torus(16, 16);
  const TorusValiantRouter router(torus);
  support::Rng rng(19);
  const sim::Workload w = sim::permutation_workload(torus.node_count(), rng);
  const RoutingOutcome outcome =
      run_workload(torus.graph(), router, w, {}, rng);
  EXPECT_TRUE(outcome.complete);
  EXPECT_LE(outcome.metrics.steps, 3 * torus.rows());
}

TEST(CccRouting, SweepAndTwoPhaseDeliver) {
  const topology::CubeConnectedCycles ccc(4);  // 64 nodes
  const CccSweepRouter sweep(ccc);
  const CccTwoPhaseRouter two_phase(ccc);
  for (const Router* router : {static_cast<const Router*>(&sweep),
                               static_cast<const Router*>(&two_phase)}) {
    support::Rng rng(23);
    const sim::Workload w = sim::permutation_workload(ccc.node_count(), rng);
    const RoutingOutcome outcome =
        run_workload(ccc.graph(), *router, w, {}, rng);
    EXPECT_TRUE(outcome.complete);
  }
}

TEST(CccRouting, TwoPhaseWithinRouteBound) {
  const topology::CubeConnectedCycles ccc(5);  // 160 nodes, degree 3
  const CccTwoPhaseRouter router(ccc);
  support::Rng rng(29);
  const sim::Workload w = sim::permutation_workload(ccc.node_count(), rng);
  const RoutingOutcome outcome = run_workload(ccc.graph(), router, w, {}, rng);
  EXPECT_TRUE(outcome.complete);
  EXPECT_LE(outcome.metrics.steps, 8 * ccc.route_bound());
}

}  // namespace
}  // namespace levnet::routing

namespace levnet::emulation {
namespace {

TEST(ExtraFabrics, TorusEmulationMatchesReference) {
  const topology::Torus torus(6, 6);
  const routing::TorusValiantRouter router(torus);
  const EmulationFabric fabric(torus.graph(), router, torus.diameter(),
                               torus.name());
  std::vector<pram::Word> input(36);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<pram::Word>(i * 3 % 13);
  }
  pram::PrefixSumErew program(input);
  pram::SharedMemory reference_memory;
  pram::ReferencePram::for_program(program).run(program, reference_memory);
  program.reset();
  NetworkEmulator emulator(fabric, {});
  pram::SharedMemory emulated;
  const auto report = emulator.run(program, emulated);
  EXPECT_TRUE(reference_memory == emulated);
  EXPECT_TRUE(program.validate(emulated));
  EXPECT_GT(report.network_steps, 0U);
}

TEST(ExtraFabrics, CccEmulationMatchesReference) {
  const topology::CubeConnectedCycles ccc(4);
  const routing::CccTwoPhaseRouter router(ccc);
  const EmulationFabric fabric(ccc.graph(), router, ccc.route_bound(),
                               ccc.name());
  std::vector<pram::Word> input(64);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<pram::Word>((i * 7 + 1) % 10);
  }
  pram::PrefixSumErew program(input);
  pram::SharedMemory reference_memory;
  pram::ReferencePram::for_program(program).run(program, reference_memory);
  program.reset();
  EmulatorConfig config;
  config.combining = true;  // exercise combining on the constant-degree net
  NetworkEmulator emulator(fabric, config);
  pram::SharedMemory emulated;
  const auto report = emulator.run(program, emulated);
  EXPECT_TRUE(reference_memory == emulated);
  EXPECT_TRUE(program.validate(emulated));
  EXPECT_EQ(report.rehashes, 0U);
}

}  // namespace
}  // namespace levnet::emulation
