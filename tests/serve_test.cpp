// Tests for src/serve/: request decode, the warm-machine LRU farm, and
// the session loop (request-order responses, structured errors, batching
// backpressure, drain-on-EOF, and the stats line).
//
// The ServeConcurrency suite name rides the TSan CI filter
// (-R '...|Concurrency|...'): multi-worker sessions and concurrent
// sessions over a shared farm are pinned byte-identical to serial there.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trials.hpp"
#include "machine/machine.hpp"
#include "machine/registry.hpp"
#include "machine/run_io.hpp"
#include "pram/memory.hpp"
#include "serve/farm.hpp"
#include "serve/request.hpp"
#include "serve/session.hpp"
#include "support/thread_pool.hpp"

namespace levnet {
namespace {

constexpr char kSpec[] = "star:5/two-phase/crcw-combining/fifo";

// ------------------------------------------------------------------ decode

TEST(ServeRequestTest, MinimalRequestFillsDefaults) {
  serve::ServeRequest request;
  std::string error;
  ASSERT_TRUE(serve::decode_request("{\"spec\": \"" + std::string(kSpec) +
                                        "\"}",
                                    3, 4, request, error))
      << error;
  EXPECT_EQ(request.seq, 3U);
  EXPECT_EQ(request.program, "permutation");
  EXPECT_EQ(request.seed, request.spec.seed);  // spec's seed knob
  EXPECT_FALSE(request.seed_given);
  EXPECT_EQ(request.steps, 4U);
  EXPECT_TRUE(request.tag.empty());
}

TEST(ServeRequestTest, FullRequestDecodes) {
  serve::ServeRequest request;
  std::string error;
  const std::string line = "{\"spec\": \"" + std::string(kSpec) +
                           "\", \"program\": \"histogram\", \"seed\": 99, "
                           "\"steps\": 2, \"id\": \"alpha\"}";
  ASSERT_TRUE(serve::decode_request(line, 0, 4, request, error)) << error;
  EXPECT_EQ(request.program, "histogram");
  EXPECT_EQ(request.seed, 99U);
  EXPECT_TRUE(request.seed_given);
  EXPECT_EQ(request.steps, 2U);
  EXPECT_EQ(request.tag, "alpha");
}

TEST(ServeRequestTest, RejectsStructuredErrors) {
  serve::ServeRequest request;
  std::string error;
  const auto fails = [&](const std::string& line) {
    error.clear();
    const bool ok = serve::decode_request(line, 0, 4, request, error);
    EXPECT_FALSE(ok) << line;
    EXPECT_FALSE(error.empty()) << line;
    return error;
  };
  EXPECT_NE(fails("not json at all").find("request"), std::string::npos);
  fails("{\"program\": \"histogram\"}");  // missing spec
  EXPECT_NE(fails("{\"spec\": \"" + std::string(kSpec) +
                  "\", \"frobnicate\": 1}")
                .find("unknown request key 'frobnicate'"),
            std::string::npos);
  EXPECT_NE(fails("{\"spec\": \"" + std::string(kSpec) +
                  "\", \"seed\": -1}")
                .find("seed"),
            std::string::npos);
  fails("{\"spec\": \"nope:5/greedy\"}");  // unknown topology
  EXPECT_NE(fails("{\"spec\": \"" + std::string(kSpec) +
                  "\", \"program\": \"florble\"}")
                .find("unknown program family"),
            std::string::npos);
  // Mode gate: logical-or needs crcw, spec is erew.
  EXPECT_NE(fails("{\"spec\": \"star:5/two-phase/erew/fifo\", "
                  "\"program\": \"logical-or\"}")
                .find("needs a crcw machine"),
            std::string::npos);
}

// -------------------------------------------------------------------- farm

machine::MachineSpec spec_with_seed(std::uint64_t seed) {
  machine::MachineSpec spec = machine::parse_spec(kSpec);
  spec.seed = seed;
  return spec;
}

TEST(ServeFarmTest, MissThenHitSharesOneMachine) {
  serve::Farm farm(serve::FarmConfig{4});
  const serve::Farm::Resolved first = farm.resolve(spec_with_seed(1));
  EXPECT_EQ(first.outcome, serve::CacheOutcome::kMiss);
  ASSERT_NE(first.shared, nullptr);
  const serve::Farm::Resolved second = farm.resolve(spec_with_seed(1));
  EXPECT_EQ(second.outcome, serve::CacheOutcome::kHit);
  EXPECT_EQ(first.shared.get(), second.shared.get());
  const serve::Farm::Counters counters = farm.counters();
  EXPECT_EQ(counters.hits, 1U);
  EXPECT_EQ(counters.misses, 1U);
  EXPECT_EQ(counters.evictions, 0U);
  EXPECT_EQ(counters.entries, 1U);
}

TEST(ServeFarmTest, LruEvictionOrderIsDeterministic) {
  serve::Farm farm(serve::FarmConfig{2});
  (void)farm.resolve(spec_with_seed(1));
  (void)farm.resolve(spec_with_seed(2));
  (void)farm.resolve(spec_with_seed(3));  // evicts seed=1 (least recent)
  std::vector<std::string> keys = farm.cached_keys();
  ASSERT_EQ(keys.size(), 2U);
  EXPECT_EQ(keys[0], spec_with_seed(3).to_string());
  EXPECT_EQ(keys[1], spec_with_seed(2).to_string());
  // Touching seed=2 promotes it; the next insert evicts seed=3.
  EXPECT_EQ(farm.resolve(spec_with_seed(2)).outcome,
            serve::CacheOutcome::kHit);
  (void)farm.resolve(spec_with_seed(4));
  keys = farm.cached_keys();
  ASSERT_EQ(keys.size(), 2U);
  EXPECT_EQ(keys[0], spec_with_seed(4).to_string());
  EXPECT_EQ(keys[1], spec_with_seed(2).to_string());
  EXPECT_EQ(farm.counters().evictions, 2U);
  // Seed=1 is gone: resolving it again is a fresh miss.
  EXPECT_EQ(farm.resolve(spec_with_seed(1)).outcome,
            serve::CacheOutcome::kMiss);
}

TEST(ServeFarmTest, CapacityZeroDisablesCaching) {
  serve::Farm farm(serve::FarmConfig{0});
  EXPECT_EQ(farm.resolve(spec_with_seed(1)).outcome,
            serve::CacheOutcome::kMiss);
  EXPECT_EQ(farm.resolve(spec_with_seed(1)).outcome,
            serve::CacheOutcome::kMiss);
  const serve::Farm::Counters counters = farm.counters();
  EXPECT_EQ(counters.misses, 2U);
  EXPECT_EQ(counters.entries, 0U);
  EXPECT_EQ(counters.evictions, 0U);
}

TEST(ServeFarmTest, FaultedSpecsAreUncacheableAndPrivate) {
  serve::Farm farm(serve::FarmConfig{4});
  machine::MachineSpec spec = machine::parse_spec(
      "star:5/two-phase/crcw/fifo/faults:links=0.05/budget=64/rehash=10");
  const serve::Farm::Resolved resolved = farm.resolve(spec);
  EXPECT_EQ(resolved.outcome, serve::CacheOutcome::kUncacheable);
  EXPECT_EQ(resolved.shared, nullptr);
  ASSERT_NE(resolved.owned, nullptr);
  const serve::Farm::Counters counters = farm.counters();
  EXPECT_EQ(counters.uncacheable, 1U);
  EXPECT_EQ(counters.misses, 0U);
  EXPECT_EQ(counters.entries, 0U);  // never cached
}

// ----------------------------------------------------------------- session

/// Serves `payload` through a fresh farm; returns the full output text.
std::string serve_text(const std::string& payload, std::size_t queue_depth,
                       unsigned workers, serve::SessionStats* stats = nullptr,
                       std::size_t cache_capacity = 8) {
  serve::Farm farm(serve::FarmConfig{cache_capacity});
  serve::SessionConfig config;
  config.queue_depth = queue_depth;
  config.workers = workers;
  serve::Session session(farm, config);
  std::istringstream in(payload);
  std::ostringstream out;
  const serve::SessionStats result = session.serve(in, out);
  if (stats != nullptr) *stats = result;
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ServeSessionTest, EveryProgramFamilyRoundTrips) {
  // crcw-combining admits every registered family's mode requirement.
  std::ostringstream payload;
  std::size_t count = 0;
  for (const machine::ProgramInfo& info : machine::program_families()) {
    payload << "{\"spec\": \"" << kSpec << "\", \"program\": \"" << info.key
            << "\", \"seed\": 5, \"steps\": 2, \"id\": \"" << info.key
            << "\"}\n";
    ++count;
  }
  ASSERT_GE(count, 12U);
  serve::SessionStats stats;
  const std::string output = serve_text(payload.str(), 4, 1, &stats);
  EXPECT_EQ(stats.requests, count);
  EXPECT_EQ(stats.ok, count);
  EXPECT_EQ(stats.errors, 0U);
  const std::vector<std::string> lines = split_lines(output);
  ASSERT_EQ(lines.size(), count + 1);  // + stats line
  std::size_t i = 0;
  for (const machine::ProgramInfo& info : machine::program_families()) {
    EXPECT_NE(lines[i].find("\"status\": \"ok\""), std::string::npos)
        << lines[i];
    EXPECT_NE(lines[i].find("\"id\": \"" + std::string(info.key) + "\""),
              std::string::npos)
        << "response order must match request order: " << lines[i];
    EXPECT_NE(lines[i].find("\"complete\": true"), std::string::npos)
        << lines[i];
    ++i;
  }
}

TEST(ServeSessionTest, MalformedRequestsYieldErrorLinesAndStreamSurvives) {
  const std::string payload =
      "{\"spec\": \"" + std::string(kSpec) + "\", \"id\": \"a\"}\n" +
      "{\"bad json\n" +
      "{\"spec\": \"nope:1/x\"}\n" +
      "{\"spec\": \"" + std::string(kSpec) + "\", \"id\": \"b\"}\n";
  serve::SessionStats stats;
  const std::string output = serve_text(payload, 8, 1, &stats);
  EXPECT_EQ(stats.requests, 4U);
  EXPECT_EQ(stats.ok, 2U);
  EXPECT_EQ(stats.errors, 2U);
  const std::vector<std::string> lines = split_lines(output);
  ASSERT_EQ(lines.size(), 5U);
  EXPECT_NE(lines[0].find("\"seq\": 0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\": \"error\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"status\": \"error\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"seq\": 3"), std::string::npos);
  EXPECT_NE(lines[3].find("\"id\": \"b\""), std::string::npos);
}

TEST(ServeSessionTest, QueueDepthBoundsBatches) {
  std::ostringstream payload;
  for (int i = 0; i < 6; ++i) {
    payload << "{\"spec\": \"" << kSpec << "\", \"seed\": " << i
            << ", \"steps\": 1}\n";
  }
  // Depth 1: every request is its own batch — the backpressure floor.
  serve::SessionStats depth_one;
  (void)serve_text(payload.str(), 1, 1, &depth_one);
  EXPECT_EQ(depth_one.batches, 6U);
  EXPECT_EQ(depth_one.peak_batch, 1U);
  // Depth 8 over a fully-buffered stream: one batch of 6.
  serve::SessionStats depth_eight;
  (void)serve_text(payload.str(), 8, 1, &depth_eight);
  EXPECT_EQ(depth_eight.batches, 1U);
  EXPECT_EQ(depth_eight.peak_batch, 6U);
  // Depth 4 splits the same stream 4 + 2.
  serve::SessionStats depth_four;
  (void)serve_text(payload.str(), 4, 1, &depth_four);
  EXPECT_EQ(depth_four.batches, 2U);
  EXPECT_EQ(depth_four.peak_batch, 4U);
}

TEST(ServeSessionTest, DrainOnEofEmitsStatsLine) {
  const std::string payload =
      "{\"spec\": \"" + std::string(kSpec) + "\", \"steps\": 1}\n";
  const std::string output = serve_text(payload, 4, 1);
  const std::vector<std::string> lines = split_lines(output);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_EQ(lines[1].rfind("{\"status\": \"stats\", \"requests\": 1, ", 0),
            0U)
      << lines[1];
  EXPECT_NE(lines[1].find("\"cache_hits\": 0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"cache_misses\": 1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"cache_capacity\": 8"), std::string::npos);
}

TEST(ServeSessionTest, ReportBytesMatchRunSeeded) {
  // The response's report object must be byte-identical to a direct
  // run_seeded through the shared writer — the same bytes levnet_run
  // emits for this (spec, program, seed).
  const std::uint64_t seed =
      analysis::TrialRunner::trial_seed(machine::parse_spec(kSpec).seed, 0);
  const std::string payload = "{\"spec\": \"" + std::string(kSpec) +
                              "\", \"program\": \"histogram\", \"seed\": " +
                              std::to_string(seed) + ", \"steps\": 2}\n";
  const std::string output = serve_text(payload, 4, 1);

  const machine::Machine machine = machine::Machine::build(kSpec);
  std::string error;
  const std::unique_ptr<pram::PramProgram> program = machine::make_program(
      "histogram", machine.processors(), seed, 2, error);
  ASSERT_NE(program, nullptr) << error;
  pram::SharedMemory memory;
  const emulation::EmulationReport report =
      machine.run_seeded(seed, *program, memory);
  std::ostringstream expected;
  expected << "\"report\": {";
  machine::write_report_fields(expected, report);
  expected << "}";
  EXPECT_NE(output.find(expected.str()), std::string::npos)
      << "serve report payload diverged from run_seeded:\n"
      << output;
}

TEST(ServeSessionTest, FaultedRequestStampsSeedIntoSpec) {
  const std::string faulted =
      "star:5/two-phase/crcw/fifo/faults:links=0.05/budget=64/rehash=10";
  const std::string payload = "{\"spec\": \"" + faulted +
                              "\", \"seed\": 42, \"steps\": 2}\n";
  const std::string output = serve_text(payload, 4, 1);
  EXPECT_NE(output.find("\"cache\": \"uncacheable\""), std::string::npos);

  // Reference: plan + stream derive together from the request seed.
  machine::MachineSpec spec = machine::parse_spec(faulted);
  spec.seed = 42;
  machine::Machine machine = machine::Machine::build(spec);
  std::string error;
  const std::unique_ptr<pram::PramProgram> program = machine::make_program(
      "permutation", machine.processors(), 42, 2, error);
  ASSERT_NE(program, nullptr) << error;
  pram::SharedMemory memory;
  const emulation::EmulationReport report = machine.run(*program, memory);
  std::ostringstream expected;
  expected << "\"report\": {";
  machine::write_report_fields(expected, report);
  expected << "}";
  EXPECT_NE(output.find(expected.str()), std::string::npos) << output;
}

TEST(ServeSessionTest, ObsTokensAttachProbeCounters) {
  const std::string payload = "{\"spec\": \"" + std::string(kSpec) +
                              "/obs:1\", \"steps\": 1}\n";
  const std::string output = serve_text(payload, 4, 1);
  EXPECT_NE(output.find("\"counters\": {"), std::string::npos) << output;
  EXPECT_NE(output.find("\"injections\": "), std::string::npos);
  // Without obs tokens no counters object is attached.
  const std::string plain = serve_text(
      "{\"spec\": \"" + std::string(kSpec) + "\", \"steps\": 1}\n", 4, 1);
  EXPECT_EQ(plain.find("\"counters\""), std::string::npos);
}

// -------------------------------------------------------------- concurrency

/// A mixed payload exercising both cache paths and several programs.
std::string mixed_payload() {
  std::ostringstream payload;
  const char* programs[] = {"permutation", "histogram", "prefix-sum"};
  for (int i = 0; i < 24; ++i) {
    payload << "{\"spec\": \"" << kSpec
            << (i % 2 == 0 ? "" : "/furthest-first") << "\", \"program\": \""
            << programs[i % 3] << "\", \"seed\": " << 7 + i % 4
            << ", \"steps\": 2, \"id\": \"r" << i << "\"}\n";
  }
  return payload.str();
}

TEST(ServeConcurrencySession, EightWorkersByteIdenticalToSerial) {
  const std::string payload = mixed_payload();
  serve::SessionStats serial_stats;
  const std::string serial = serve_text(payload, 8, 1, &serial_stats);
  serve::SessionStats pooled_stats;
  const std::string pooled = serve_text(payload, 8, 8, &pooled_stats);
  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(serial_stats.ok, pooled_stats.ok);
  EXPECT_EQ(serial_stats.batches, pooled_stats.batches);
}

/// Response lines only: the trailing stats line snapshots farm-global
/// cache counters, which depend on client interleaving by design.
std::string response_lines(const std::string& output) {
  std::string joined;
  for (const std::string& line : split_lines(output)) {
    if (line.rfind("{\"status\": \"stats\"", 0) == 0) continue;
    joined += line;
    joined += '\n';
  }
  return joined;
}

TEST(ServeConcurrencyFarm, ConcurrentSessionsOverSharedFarmBitIdentical) {
  // 8 clients replay the same payload against one farm; every client's
  // response lines must equal the single-client reference byte for byte.
  const std::string payload = mixed_payload();

  // Reference: single session, pre-warmed farm so every line is a hit and
  // the cache field is stable across the concurrent replay too.
  serve::Farm warm(serve::FarmConfig{8});
  {
    serve::SessionConfig config;
    config.queue_depth = 8;
    config.workers = 1;
    serve::Session session(warm, config);
    std::istringstream in(payload);
    std::ostringstream out;
    (void)session.serve(in, out);
  }
  std::string reference;
  {
    serve::SessionConfig config;
    config.queue_depth = 8;
    config.workers = 1;
    serve::Session session(warm, config);
    std::istringstream in(payload);
    std::ostringstream out;
    (void)session.serve(in, out);
    reference = response_lines(out.str());
  }

  std::vector<std::string> outputs(8);
  support::ThreadPool pool(8);
  pool.parallel_for(outputs.size(), [&](std::size_t i) {
    serve::SessionConfig config;
    config.queue_depth = 8;
    config.workers = 1;
    serve::Session session(warm, config);
    std::istringstream in(payload);
    std::ostringstream out;
    (void)session.serve(in, out);
    outputs[i] = response_lines(out.str());
  });
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i], reference) << "client " << i << " diverged";
  }
}

}  // namespace
}  // namespace levnet
