// Golden-equivalence suite for the simulation hot path.
//
// The packet-pool / flat-state refactor must not change *any* observable of
// an emulation run: the RNG stream, the per-link service order, every
// EmulationReport counter (including the per-step cost vector) and the
// final shared memory are all required to stay bit-identical. This suite
// pins that contract against fixtures recorded from the pre-refactor tree:
// 3 topologies x {EREW, CRCW-combining} x {FIFO, furthest-first}, each with
// a read-heavy and a write-heavy program.
//
// Fixtures live in tests/golden/emulation_golden.txt. To regenerate after
// an *intentional* behaviour change (and only then), run:
//
//   LEVNET_GOLDEN_REGEN=1 ./golden_emulation_test
//
// and commit the rewritten file together with an explanation of why the
// service order was allowed to move.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "pram/algorithms/histogram.hpp"
#include "pram/algorithms/prefix_sum.hpp"
#include "routing/mesh_router.hpp"
#include "routing/shuffle_router.hpp"
#include "routing/star_router.hpp"
#include "support/rng.hpp"
#include "topology/mesh.hpp"
#include "topology/shuffle.hpp"
#include "topology/star.hpp"

#ifndef LEVNET_TEST_DATA_DIR
#error "LEVNET_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace levnet::emulation {
namespace {

using pram::Addr;
using pram::ProcId;
using pram::SharedMemory;
using pram::Word;

std::vector<Word> random_words(std::size_t n, std::uint64_t seed,
                               std::uint64_t bound = 1000) {
  support::Rng rng(seed);
  std::vector<Word> v(n);
  for (auto& w : v) w = static_cast<Word>(rng.below(bound));
  return v;
}

/// Order-independent fingerprint of the final memory: FNV-1a over the
/// (addr, value) pairs in ascending address order (the deterministic
/// sorted_cells() surface, never raw unordered_map iteration).
std::uint64_t memory_fingerprint(const SharedMemory& memory) {
  const auto sorted = memory.sorted_cells();
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (v >> (8 * byte)) & 0xffU;
      hash *= 0x100000001b3ULL;
    }
  };
  for (const auto& [addr, value] : sorted) {
    mix(addr);
    mix(static_cast<std::uint64_t>(value));
  }
  return hash;
}

/// Everything a run observably produces, in fixture form.
struct GoldenRecord {
  std::uint64_t pram_steps = 0;
  std::uint64_t network_steps = 0;
  std::uint64_t max_step_network = 0;
  std::uint64_t max_link_queue = 0;
  std::uint64_t max_node_queue = 0;
  std::uint64_t request_packets = 0;
  std::uint64_t reply_packets = 0;
  std::uint64_t combined_requests = 0;
  std::uint64_t local_ops = 0;
  std::uint64_t rehashes = 0;
  std::uint64_t memory_cells = 0;
  std::uint64_t memory_hash = 0;
  std::vector<std::uint64_t> step_costs;

  bool operator==(const GoldenRecord&) const = default;
};

GoldenRecord record_of(const EmulationReport& report,
                       const SharedMemory& memory) {
  GoldenRecord r;
  r.pram_steps = report.pram_steps;
  r.network_steps = report.network_steps;
  r.max_step_network = report.max_step_network;
  r.max_link_queue = report.max_link_queue;
  r.max_node_queue = report.max_node_queue;
  r.request_packets = report.request_packets;
  r.reply_packets = report.reply_packets;
  r.combined_requests = report.combined_requests;
  r.local_ops = report.local_ops;
  r.rehashes = report.rehashes;
  r.memory_cells = memory.nonzero_cells();
  r.memory_hash = memory_fingerprint(memory);
  r.step_costs.assign(report.step_costs.begin(), report.step_costs.end());
  return r;
}

constexpr char kFixturePath[] =
    LEVNET_TEST_DATA_DIR "/golden/emulation_golden.txt";

std::map<std::string, GoldenRecord> load_fixtures() {
  std::map<std::string, GoldenRecord> fixtures;
  std::ifstream in(kFixturePath);
  if (!in) return fixtures;
  std::string line;
  std::string config;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "config") {
      fields >> config;
      fixtures[config] = GoldenRecord{};
      continue;
    }
    GoldenRecord& r = fixtures[config];
    if (key == "pram_steps") fields >> r.pram_steps;
    else if (key == "network_steps") fields >> r.network_steps;
    else if (key == "max_step_network") fields >> r.max_step_network;
    else if (key == "max_link_queue") fields >> r.max_link_queue;
    else if (key == "max_node_queue") fields >> r.max_node_queue;
    else if (key == "request_packets") fields >> r.request_packets;
    else if (key == "reply_packets") fields >> r.reply_packets;
    else if (key == "combined_requests") fields >> r.combined_requests;
    else if (key == "local_ops") fields >> r.local_ops;
    else if (key == "rehashes") fields >> r.rehashes;
    else if (key == "memory_cells") fields >> r.memory_cells;
    else if (key == "memory_hash") fields >> std::hex >> r.memory_hash;
    else if (key == "step_costs") {
      std::uint64_t cost = 0;
      while (fields >> cost) r.step_costs.push_back(cost);
    } else {
      ADD_FAILURE() << "unknown fixture key '" << key << "'";
    }
  }
  return fixtures;
}

void write_fixtures(const std::map<std::string, GoldenRecord>& fixtures) {
  std::ofstream out(kFixturePath);
  ASSERT_TRUE(out) << "cannot write " << kFixturePath
                   << " (does tests/golden/ exist?)";
  out << "# Recorded emulation observables; see golden_emulation_test.cpp.\n"
      << "# Regenerate with LEVNET_GOLDEN_REGEN=1 only for intentional\n"
      << "# service-order changes.\n";
  for (const auto& [config, r] : fixtures) {
    out << "\nconfig " << config << "\n"
        << "pram_steps " << r.pram_steps << "\n"
        << "network_steps " << r.network_steps << "\n"
        << "max_step_network " << r.max_step_network << "\n"
        << "max_link_queue " << r.max_link_queue << "\n"
        << "max_node_queue " << r.max_node_queue << "\n"
        << "request_packets " << r.request_packets << "\n"
        << "reply_packets " << r.reply_packets << "\n"
        << "combined_requests " << r.combined_requests << "\n"
        << "local_ops " << r.local_ops << "\n"
        << "rehashes " << r.rehashes << "\n"
        << "memory_cells " << r.memory_cells << "\n"
        << "memory_hash " << std::hex << r.memory_hash << std::dec << "\n"
        << "step_costs";
    for (const std::uint64_t cost : r.step_costs) out << ' ' << cost;
    out << "\n";
  }
}

// ------------------------------------------------------------- run matrix

/// Owns a topology + router + fabric triple for one grid point.
struct Fabric {
  virtual ~Fabric() = default;
  virtual const EmulationFabric& fabric() const = 0;
};

struct StarFabric final : Fabric {
  explicit StarFabric(std::uint32_t n)
      : star(n),
        router(star),
        fab(star.graph(), router, star.diameter(), star.name()) {}
  topology::StarGraph star;
  routing::StarTwoPhaseRouter router;
  EmulationFabric fab;
  const EmulationFabric& fabric() const override { return fab; }
};

struct ShuffleFabric final : Fabric {
  explicit ShuffleFabric(std::uint32_t n)
      : shuffle(topology::DWayShuffle::n_way(n)),
        router(shuffle),
        fab(shuffle.graph(), router, shuffle.route_length(), shuffle.name()) {}
  topology::DWayShuffle shuffle;
  routing::ShuffleTwoPhaseRouter router;
  EmulationFabric fab;
  const EmulationFabric& fabric() const override { return fab; }
};

struct MeshFabric final : Fabric {
  explicit MeshFabric(std::uint32_t n)
      : mesh(n, n),
        router(mesh),
        fab(mesh.graph(), router, mesh.diameter(), mesh.name()) {}
  topology::Mesh mesh;
  routing::MeshThreeStageRouter router;
  EmulationFabric fab;
  const EmulationFabric& fabric() const override { return fab; }
};

std::unique_ptr<Fabric> make_fabric(const std::string& name) {
  if (name == "star5") return std::make_unique<StarFabric>(5);
  if (name == "shuffle3") return std::make_unique<ShuffleFabric>(3);
  if (name == "mesh6") return std::make_unique<MeshFabric>(6);
  return nullptr;
}

std::unique_ptr<pram::PramProgram> make_program(const std::string& name,
                                                ProcId processors) {
  if (name == "perm") {
    return std::make_unique<pram::PermutationTraffic>(processors, 4, 0xA11CE);
  }
  if (name == "prefix") {
    const ProcId procs = std::min<ProcId>(24, processors);
    return std::make_unique<pram::PrefixSumErew>(random_words(procs, 41));
  }
  if (name == "hotspot") {
    return std::make_unique<pram::HotSpotReadTraffic>(processors, 3, 777);
  }
  if (name == "histogram") {
    const ProcId procs = std::min<ProcId>(20, processors / 2);
    return std::make_unique<pram::HistogramCrcwSum>(random_words(procs, 42, 4),
                                                    4);
  }
  return nullptr;
}

struct GridPoint {
  const char* topology;
  const char* mode;        // "erew" or "crcw" (combining on)
  const char* discipline;  // "fifo" or "furthest"
  const char* program;
};

std::vector<GridPoint> grid() {
  std::vector<GridPoint> points;
  for (const char* topo : {"star5", "shuffle3", "mesh6"}) {
    for (const char* disc : {"fifo", "furthest"}) {
      for (const char* program : {"perm", "prefix"}) {
        points.push_back({topo, "erew", disc, program});
      }
      for (const char* program : {"hotspot", "histogram"}) {
        points.push_back({topo, "crcw", disc, program});
      }
    }
  }
  return points;
}

std::string config_name(const GridPoint& point) {
  return std::string(point.topology) + "/" + point.mode + "/" +
         point.discipline + "/" + point.program;
}

GoldenRecord run_point(const GridPoint& point, std::uint32_t step_threads = 1) {
  const auto fabric = make_fabric(point.topology);
  EXPECT_NE(fabric, nullptr);
  const auto program =
      make_program(point.program, fabric->fabric().processors());
  EXPECT_NE(program, nullptr);

  EmulatorConfig config;
  config.combining = std::string(point.mode) == "crcw";
  config.discipline = std::string(point.discipline) == "furthest"
                          ? sim::QueueDiscipline::kFurthestFirst
                          : sim::QueueDiscipline::kFifo;
  config.seed = 0x901de2ULL;
  config.step_threads = step_threads;
  NetworkEmulator emulator(fabric->fabric(), config);
  SharedMemory memory;
  const EmulationReport report = emulator.run(*program, memory);
  EXPECT_TRUE(program->validate(memory)) << config_name(point);
  return record_of(report, memory);
}

/// Printable diff for the fixture comparison below.
void PrintTo(const GoldenRecord& r, std::ostream* os) {
  *os << "{steps=" << r.network_steps << " worst=" << r.max_step_network
      << " linkQ=" << r.max_link_queue << " nodeQ=" << r.max_node_queue
      << " req=" << r.request_packets << " rep=" << r.reply_packets
      << " comb=" << r.combined_requests << " local=" << r.local_ops
      << " rehash=" << r.rehashes << " cells=" << r.memory_cells << " hash=0x"
      << std::hex << r.memory_hash << std::dec << " costs=[";
  for (std::size_t i = 0; i < r.step_costs.size(); ++i) {
    *os << (i != 0 ? " " : "") << r.step_costs[i];
  }
  *os << "]}";
}

TEST(GoldenEmulation, BitIdenticalToRecordedFixtures) {
  const bool regen = std::getenv("LEVNET_GOLDEN_REGEN") != nullptr;
  const auto fixtures = load_fixtures();
  std::map<std::string, GoldenRecord> actual;
  for (const GridPoint& point : grid()) {
    actual[config_name(point)] = run_point(point);
  }
  if (regen) {
    write_fixtures(actual);
    GTEST_SKIP() << "fixtures regenerated at " << kFixturePath;
  }
  ASSERT_FALSE(fixtures.empty())
      << "no fixtures at " << kFixturePath
      << "; run once with LEVNET_GOLDEN_REGEN=1 and commit the file";
  EXPECT_EQ(fixtures.size(), actual.size());
  for (const auto& [config, want] : fixtures) {
    const auto it = actual.find(config);
    if (it == actual.end()) {
      ADD_FAILURE() << "fixture '" << config << "' has no matching run";
      continue;
    }
    const GoldenRecord& got = it->second;
    EXPECT_EQ(want, got) << "service order drifted for " << config;
  }
}

// The intra-trial sharding contract: step_threads must be a pure speed
// knob. Every grid point (3 topologies x {EREW, CRCW-combining} x {FIFO,
// furthest-first} x read/write-heavy programs) is run serial and sharded
// over 8 threads, and every observable — report counters, per-step costs,
// the sorted_cells() memory fingerprint — must match bit for bit. The
// suite name matches the TSan CI job's test filter, so the sharded runs
// also execute under the race detector.
TEST(GoldenEmulationSharded, BitIdenticalAcrossStepThreads) {
  for (const GridPoint& point : grid()) {
    const GoldenRecord serial = run_point(point);
    const GoldenRecord sharded = run_point(point, 8);
    EXPECT_EQ(serial, sharded)
        << "step_threads=8 drifted for " << config_name(point);
  }
}

}  // namespace
}  // namespace levnet::emulation
