// Parallel determinism suite for the experiment pipeline: the ThreadPool,
// the TrialRunner (results must be bit-identical for 1, 2 and 8 threads,
// for routing and emulation trials alike), and the Experiment registry
// (reports must not depend on scenario registration order), plus the
// common bench CLI parser.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "analysis/trials.hpp"
#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "pram/memory.hpp"
#include "routing/driver.hpp"
#include "routing/star_router.hpp"
#include "routing/two_phase.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "topology/butterfly.hpp"
#include "topology/star.hpp"

namespace {

using namespace levnet;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1U, 2U, 8U}) {
    support::ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  support::ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  support::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950U);
  }
}

TEST(ThreadPoolTest, PropagatesTheFirstException) {
  for (const unsigned threads : {1U, 4U}) {
    support::ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](std::size_t i) {
                            if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool must still be usable after a failed job.
    std::atomic<int> count{0};
    pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
  }
}

// --------------------------------------------------------------- TrialRunner

bool summaries_identical(const support::Summary& a,
                         const support::Summary& b) {
  return a.count == b.count && a.mean == b.mean && a.stddev == b.stddev &&
         a.min == b.min && a.median == b.median && a.p95 == b.p95 &&
         a.max == b.max;
}

bool stats_identical(const analysis::TrialStats& a,
                     const analysis::TrialStats& b) {
  return summaries_identical(a.steps, b.steps) &&
         summaries_identical(a.worst_step, b.worst_step) &&
         summaries_identical(a.max_link_queue, b.max_link_queue) &&
         summaries_identical(a.max_node_queue, b.max_node_queue) &&
         summaries_identical(a.mean_delay, b.mean_delay) &&
         a.combined_mean == b.combined_mean &&
         a.rehashes_mean == b.rehashes_mean &&
         a.local_ops_mean == b.local_ops_mean &&
         a.all_complete == b.all_complete && a.runs == b.runs;
}

analysis::TrialStats routing_trials(unsigned threads) {
  const topology::WrappedButterfly bf(2, 6);
  const routing::TwoPhaseButterflyRouter router(bf);
  support::ThreadPool pool(threads);
  const analysis::TrialRunner runner(pool);
  return runner.run(
      [&](std::uint64_t seed) -> analysis::TrialMeasurement {
        support::Rng rng(seed);
        const sim::Workload w = sim::permutation_workload(bf.row_count(), rng);
        return routing::run_workload(bf.graph(), router, w, {}, rng);
      },
      /*seeds=*/8);
}

analysis::TrialStats emulation_trials(unsigned threads) {
  const topology::StarGraph star(5);
  const routing::StarTwoPhaseRouter router(star);
  const emulation::EmulationFabric fabric(star.graph(), router,
                                          star.diameter(), star.name());
  support::ThreadPool pool(threads);
  const analysis::TrialRunner runner(pool);
  return runner.run(
      [&](std::uint64_t seed) -> analysis::TrialMeasurement {
        pram::PermutationTraffic program(star.node_count(), 2, seed);
        emulation::EmulatorConfig config;
        config.seed = seed;
        emulation::NetworkEmulator emulator(fabric, config);
        pram::SharedMemory memory;
        return emulator.run(program, memory);
      },
      /*seeds=*/8);
}

TEST(TrialRunnerTest, RoutingTrialsAreBitIdenticalAcrossThreadCounts) {
  const analysis::TrialStats one = routing_trials(1);
  const analysis::TrialStats two = routing_trials(2);
  const analysis::TrialStats eight = routing_trials(8);
  EXPECT_TRUE(stats_identical(one, two));
  EXPECT_TRUE(stats_identical(one, eight));
  EXPECT_EQ(one.runs, 8U);
  EXPECT_TRUE(one.all_complete);
}

TEST(TrialRunnerTest, EmulationTrialsAreBitIdenticalAcrossThreadCounts) {
  const analysis::TrialStats one = emulation_trials(1);
  const analysis::TrialStats two = emulation_trials(2);
  const analysis::TrialStats eight = emulation_trials(8);
  EXPECT_TRUE(stats_identical(one, two));
  EXPECT_TRUE(stats_identical(one, eight));
  EXPECT_GT(one.steps.mean, 0.0);
}

TEST(TrialRunnerTest, SeedStreamsAreSplitmixDerived) {
  // Consecutive labels must not map to consecutive raw seeds.
  const std::uint64_t s0 = analysis::TrialRunner::trial_seed(1, 0);
  const std::uint64_t s1 = analysis::TrialRunner::trial_seed(1, 1);
  EXPECT_NE(s0 + 1, s1);
  std::uint64_t state = 1;
  EXPECT_EQ(s0, support::splitmix64(state));
}

TEST(TrialRunnerTest, CollectReturnsResultsInSeedOrder) {
  support::ThreadPool pool(4);
  const analysis::TrialRunner runner(pool);
  const auto seeds =
      runner.collect(16, 7, [](std::uint64_t seed) { return seed; });
  ASSERT_EQ(seeds.size(), 16U);
  for (std::uint32_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], analysis::TrialRunner::trial_seed(7, i));
  }
}

// ------------------------------------------------------------------ Registry

analysis::Scenario make_scenario(const std::string& name,
                                 std::uint32_t base) {
  analysis::Scenario scenario;
  scenario.name = name;
  scenario.experiment = "test";
  scenario.sweep = "(x)";
  scenario.points = {{1}, {2}, {3}};
  scenario.smoke_points = {{1}};
  scenario.seeds = 4;
  scenario.run = [base](analysis::ScenarioContext& ctx) {
    const auto x = static_cast<std::uint32_t>(ctx.arg(0));
    const topology::WrappedButterfly bf(2, 3 + x % 2);
    const routing::TwoPhaseButterflyRouter router(bf);
    const analysis::TrialStats stats = ctx.trials([&](std::uint64_t seed) {
      support::Rng rng(seed + base);
      const sim::Workload w = sim::permutation_workload(bf.row_count(), rng);
      return routing::run_workload(bf.graph(), router, w, {}, rng);
    });
    ctx.table("shared table", {"scenario", "x", "steps", "seeds"})
        .row()
        .cell(ctx.scenario().name)
        .cell(std::uint64_t{x})
        .cell(stats.steps.mean, 2)
        .cell(std::uint64_t{ctx.seeds()});
  };
  return scenario;
}

std::vector<analysis::Report::TableDump> run_ordered(
    const std::vector<std::string>& order, const analysis::RunOptions& opts) {
  analysis::Registry registry;
  for (const std::string& name : order) {
    // Distinct trial streams per scenario (base differs by name suffix).
    registry.add(make_scenario(name, name.back()));
  }
  analysis::Report report;
  std::ostringstream log;
  EXPECT_EQ(registry.run(opts, report, log), order.size());
  return report.dump();
}

TEST(RegistryTest, ReportIsIndependentOfRegistrationOrder) {
  const analysis::RunOptions opts;
  const auto sorted = run_ordered({"a-first", "b-mid", "c-last"}, opts);
  const auto shuffled = run_ordered({"c-last", "a-first", "b-mid"}, opts);
  const auto reversed = run_ordered({"c-last", "b-mid", "a-first"}, opts);
  EXPECT_EQ(sorted, shuffled);
  EXPECT_EQ(sorted, reversed);
  ASSERT_EQ(sorted.size(), 1U);
  EXPECT_EQ(sorted[0].rows.size(), 9U);  // 3 scenarios x 3 points
}

TEST(RegistryTest, ReportIsIndependentOfThreadCount) {
  analysis::RunOptions one;
  one.threads = 1;
  analysis::RunOptions eight;
  eight.threads = 8;
  EXPECT_EQ(run_ordered({"a", "b"}, one), run_ordered({"a", "b"}, eight));
}

TEST(RegistryTest, FilterSelectsBySubstring) {
  analysis::Registry registry;
  registry.add(make_scenario("E1/alpha", 1));
  registry.add(make_scenario("E2/beta", 2));
  analysis::RunOptions opts;
  opts.scenario_filter = "beta";
  analysis::Report report;
  std::ostringstream log;
  EXPECT_EQ(registry.run(opts, report, log), 1U);
  const auto dump = report.dump();
  ASSERT_EQ(dump.size(), 1U);
  for (const auto& row : dump[0].rows) EXPECT_EQ(row[0], "E2/beta");
}

TEST(RegistryTest, SmokeModeShrinksPointsAndSeeds) {
  analysis::Registry registry;
  registry.add(make_scenario("smoke-me", 3));
  analysis::RunOptions opts;
  opts.smoke = true;
  analysis::Report report;
  std::ostringstream log;
  EXPECT_EQ(registry.run(opts, report, log), 1U);
  const auto dump = report.dump();
  ASSERT_EQ(dump.size(), 1U);
  ASSERT_EQ(dump[0].rows.size(), 1U);  // only the smoke point
  EXPECT_EQ(dump[0].rows[0][3], "2");  // seeds capped at 2
}

TEST(RegistryTest, FinishSeesRecordedSweep) {
  analysis::Registry registry;
  analysis::Scenario scenario;
  scenario.name = "with-finish";
  scenario.points = {{2}, {4}};
  scenario.seeds = 2;
  scenario.run = [](analysis::ScenarioContext& ctx) {
    analysis::TrialStats stats;
    stats.steps = support::summarize(
        std::vector<double>{static_cast<double>(ctx.arg(0))});
    ctx.record(static_cast<std::uint64_t>(ctx.arg(0)), stats);
  };
  scenario.finish = [](analysis::ScenarioContext& ctx) {
    ASSERT_EQ(ctx.recorded().size(), 2U);
    ctx.table("fit", {"points"})
        .row()
        .cell(std::uint64_t{ctx.recorded().size()});
  };
  registry.add(std::move(scenario));
  analysis::Report report;
  std::ostringstream log;
  EXPECT_EQ(registry.run({}, report, log), 1U);
  const auto dump = report.dump();
  ASSERT_EQ(dump.size(), 1U);
  EXPECT_EQ(dump[0].title, "fit");
}

TEST(RegistryTest, RunRecordsPerScenarioWallClock) {
  analysis::Registry registry;
  registry.add(make_scenario("timed-a", 1));
  registry.add(make_scenario("timed-b", 2));
  analysis::Report report;
  std::ostringstream log;
  EXPECT_EQ(registry.run({}, report, log), 2U);
  const auto wall = report.wall_ms();
  ASSERT_EQ(wall.size(), 2U);
  EXPECT_EQ(wall[0].first, "timed-a");  // name-sorted run order
  EXPECT_EQ(wall[1].first, "timed-b");
  for (const auto& [name, ms] : wall) EXPECT_GE(ms, 0.0);
}

TEST(ReportTest, WallClockSerializesAndOverwrites) {
  analysis::Report report;
  report.set_wall_ms("E1/x", 12.5);
  report.set_wall_ms("E2/y", 3.0);
  report.set_wall_ms("E1/x", 14.0);  // re-run overwrites, no duplicate
  const auto wall = report.wall_ms();
  ASSERT_EQ(wall.size(), 2U);
  EXPECT_DOUBLE_EQ(wall[0].second, 14.0);
  std::ostringstream json;
  report.write_json(json, "demo");
  EXPECT_NE(json.str().find("\"wall_ms\": {"), std::string::npos);
  EXPECT_NE(json.str().find("\"E1/x\": 14.000"), std::string::npos);
  EXPECT_NE(json.str().find("\"E2/y\": 3.000"), std::string::npos);
  report.clear();
  EXPECT_TRUE(report.wall_ms().empty());
}

// ----------------------------------------------------------------- CLI parse

TEST(RunOptionsTest, ParsesTheCommonFlags) {
  const char* argv[] = {"bench", "--seeds", "9",        "--threads", "3",
                        "--scenario", "E1", "--smoke"};
  analysis::RunOptions opts;
  std::string error;
  ASSERT_TRUE(parse_run_options(8, argv, opts, error)) << error;
  EXPECT_EQ(opts.seeds, 9U);
  EXPECT_EQ(opts.threads, 3U);
  EXPECT_EQ(opts.scenario_filter, "E1");
  EXPECT_TRUE(opts.smoke);
  EXPECT_FALSE(opts.list);
}

TEST(RunOptionsTest, RejectsUnknownAndMalformedArguments) {
  analysis::RunOptions opts;
  std::string error;
  {
    const char* argv[] = {"bench", "--frobnicate"};
    EXPECT_FALSE(analysis::parse_run_options(2, argv, opts, error));
    EXPECT_NE(error.find("--frobnicate"), std::string::npos);
  }
  {
    const char* argv[] = {"bench", "--seeds", "zero"};
    EXPECT_FALSE(analysis::parse_run_options(3, argv, opts, error));
  }
  {
    const char* argv[] = {"bench", "--seeds"};
    EXPECT_FALSE(analysis::parse_run_options(2, argv, opts, error));
  }
}

}  // namespace
