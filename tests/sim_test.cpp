// Engine semantics: unit-time links, one packet per directed edge per step,
// queue disciplines, fan-out, bounded buffers, metrics — the machine model
// of Section 2.2 that every theorem is stated over.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/packet.hpp"
#include "sim/traffic.hpp"
#include "support/rng.hpp"
#include "topology/linear_array.hpp"
#include "topology/mesh.hpp"

namespace levnet::sim {
namespace {

using topology::kInvalidNode;
using topology::LinearArray;
using topology::NodeId;

/// Walks each packet rightward along a linear array to its dst; delivery
/// records the step.
class RightwardTraffic final : public TrafficHandler {
 public:
  void on_packet(Packet& p, NodeId at, std::uint32_t step, support::Rng& rng,
                 std::vector<Forward>& out) override {
    (void)rng;
    if (at == p.dst) {
      deliveries.push_back({p.id, step});
      return;
    }
    out.push_back(Forward{at + 1, p.route_state});
  }

  std::uint32_t priority(const Packet& p, NodeId at) const override {
    return p.dst > at ? p.dst - at : 0;  // furthest destination first
  }

  struct Delivery {
    std::uint32_t id;
    std::uint32_t step;
  };
  std::vector<Delivery> deliveries;
};

TEST(Engine, SinglePacketTravelsOneLinkPerStep) {
  const LinearArray line(6);
  RightwardTraffic traffic;
  SyncEngine engine(line.graph(), traffic, {});
  support::Rng rng(1);
  Packet p;
  p.id = 0;
  p.src = 0;
  p.dst = 5;
  engine.inject(std::move(p), 0, rng);
  EXPECT_TRUE(engine.run(rng));
  ASSERT_EQ(traffic.deliveries.size(), 1U);
  EXPECT_EQ(traffic.deliveries[0].step, 5U);  // distance 5 -> 5 steps
  EXPECT_EQ(engine.metrics().steps, 5U);
  EXPECT_EQ(engine.metrics().total_hops, 5U);
  EXPECT_EQ(engine.metrics().total_delay, 0U);
}

TEST(Engine, ContendingPacketsSerializeOnSharedLink) {
  // Two packets at node 0 both need link 0->1 in the same step; one packet
  // per directed link per step means the second waits one step.
  const LinearArray line(4);
  RightwardTraffic traffic;
  SyncEngine engine(line.graph(), traffic, {});
  support::Rng rng(2);
  Packet a;
  a.id = 0;
  a.src = 0;
  a.dst = 2;
  Packet b;
  b.id = 1;
  b.src = 0;
  b.dst = 3;
  engine.inject(std::move(a), 0, rng);
  engine.inject(std::move(b), 0, rng);
  EXPECT_TRUE(engine.run(rng));
  ASSERT_EQ(traffic.deliveries.size(), 2U);
  // Packet a (FIFO first): 2 hops, no delay -> step 2. Packet b: 3 hops
  // plus one step queued behind a on link 0->1 -> step 4.
  EXPECT_EQ(traffic.deliveries[0].step, 2U);
  EXPECT_EQ(traffic.deliveries[1].step, 4U);
  EXPECT_EQ(engine.metrics().total_delay, 1U);
  EXPECT_EQ(engine.metrics().max_link_queue, 2U);
}

TEST(Engine, FifoPreservesQueueOrder) {
  const LinearArray line(3);
  RightwardTraffic traffic;
  SyncEngine engine(line.graph(), traffic, {});
  support::Rng rng(3);
  // Three packets at node 0, all to node 2; FIFO serves them in id order.
  for (std::uint32_t i = 0; i < 3; ++i) {
    Packet p;
    p.id = i;
    p.src = 0;
    p.dst = 2;
    engine.inject(std::move(p), 0, rng);
  }
  EXPECT_TRUE(engine.run(rng));
  ASSERT_EQ(traffic.deliveries.size(), 3U);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(traffic.deliveries[i].id, i);
  }
}

TEST(Engine, FurthestFirstOvertakes) {
  const LinearArray line(5);
  RightwardTraffic traffic;
  EngineConfig config;
  config.discipline = QueueDiscipline::kFurthestFirst;
  SyncEngine engine(line.graph(), traffic, config);
  support::Rng rng(4);
  Packet near;
  near.id = 0;
  near.src = 0;
  near.dst = 1;  // short trip, enqueued first
  Packet far;
  far.id = 1;
  far.src = 0;
  far.dst = 4;  // long trip, should be served first
  engine.inject(std::move(near), 0, rng);
  engine.inject(std::move(far), 0, rng);
  EXPECT_TRUE(engine.run(rng));
  ASSERT_EQ(traffic.deliveries.size(), 2U);
  // The far packet crossed 0->1 first, so the near one (1 hop) arrives at
  // step 2 instead of step 1, and the far one is never delayed.
  ASSERT_EQ(traffic.deliveries[0].id, 0U);
  EXPECT_EQ(traffic.deliveries[0].step, 2U);
  EXPECT_EQ(traffic.deliveries[1].step, 4U);
  EXPECT_EQ(engine.metrics().total_delay, 1U);
}

TEST(Engine, NearestFirstServesShortTripsFirst) {
  const LinearArray line(5);
  RightwardTraffic traffic;
  EngineConfig config;
  config.discipline = QueueDiscipline::kNearestFirst;
  SyncEngine engine(line.graph(), traffic, config);
  support::Rng rng(5);
  Packet far;
  far.id = 0;
  far.src = 0;
  far.dst = 4;
  Packet near;
  near.id = 1;
  near.src = 0;
  near.dst = 1;
  engine.inject(std::move(far), 0, rng);
  engine.inject(std::move(near), 0, rng);
  EXPECT_TRUE(engine.run(rng));
  ASSERT_EQ(traffic.deliveries.size(), 2U);
  EXPECT_EQ(traffic.deliveries[0].id, 1U);
}

TEST(Engine, MaxStepsAborts) {
  const LinearArray line(10);
  RightwardTraffic traffic;
  EngineConfig config;
  config.max_steps = 3;
  SyncEngine engine(line.graph(), traffic, config);
  support::Rng rng(6);
  Packet p;
  p.id = 0;
  p.src = 0;
  p.dst = 9;
  engine.inject(std::move(p), 0, rng);
  EXPECT_FALSE(engine.run(rng));
  EXPECT_TRUE(engine.metrics().aborted);
  EXPECT_TRUE(traffic.deliveries.empty());
}

TEST(Engine, ResetClearsStateForReuse) {
  const LinearArray line(4);
  RightwardTraffic traffic;
  SyncEngine engine(line.graph(), traffic, {});
  support::Rng rng(7);
  Packet p;
  p.id = 0;
  p.src = 0;
  p.dst = 3;
  engine.inject(std::move(p), 0, rng);
  EXPECT_TRUE(engine.run(rng));
  engine.reset();
  EXPECT_EQ(engine.now(), 0U);
  EXPECT_EQ(engine.metrics().steps, 0U);
  Packet q;
  q.id = 1;
  q.src = 0;
  q.dst = 2;
  engine.inject(std::move(q), 0, rng);
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(engine.metrics().steps, 2U);
}

/// Fans a packet out to all neighbors at the first node, then delivers.
class FanOutTraffic final : public TrafficHandler {
 public:
  void on_packet(Packet& p, NodeId at, std::uint32_t step, support::Rng& rng,
                 std::vector<Forward>& out) override {
    (void)rng;
    (void)step;
    if (p.route_state == 1) {
      ++arrivals;
      return;
    }
    p.route_state = 0;
    // Copy to every neighbor; each copy carries route_state 1.
    if (at == p.src) {
      out.push_back(Forward{at + 1, 1});
      if (at > 0) out.push_back(Forward{at - 1, 1});
    }
  }
  int arrivals = 0;
};

TEST(Engine, FanOutCreatesIndependentCopies) {
  const LinearArray line(3);
  FanOutTraffic traffic;
  SyncEngine engine(line.graph(), traffic, {});
  support::Rng rng(8);
  Packet p;
  p.id = 0;
  p.src = 1;
  p.dst = 1;
  engine.inject(std::move(p), 1, rng);
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(traffic.arrivals, 2);  // one copy to node 0, one to node 2
  EXPECT_EQ(engine.metrics().consumed, 2U);
}

TEST(Engine, BoundedBuffersBlockTransmission) {
  // Five packets at node 0 heading right; with node_buffer_bound = 1 the
  // downstream node accepts one packet at a time, so progress serializes
  // but still completes (monotone flow cannot deadlock).
  const LinearArray line(3);
  RightwardTraffic traffic;
  EngineConfig config;
  config.node_buffer_bound = 1;
  SyncEngine engine(line.graph(), traffic, config);
  support::Rng rng(9);
  for (std::uint32_t i = 0; i < 5; ++i) {
    Packet p;
    p.id = i;
    p.src = 0;
    p.dst = 2;
    engine.inject(std::move(p), 0, rng);
  }
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(traffic.deliveries.size(), 5U);
  EXPECT_LE(engine.metrics().max_node_queue, 5U);
}

TEST(Metrics, NodeQueueTracksAggregateLoad) {
  const LinearArray line(3);
  RightwardTraffic traffic;
  SyncEngine engine(line.graph(), traffic, {});
  support::Rng rng(10);
  for (std::uint32_t i = 0; i < 4; ++i) {
    Packet p;
    p.id = i;
    p.src = 0;
    p.dst = 2;
    engine.inject(std::move(p), 0, rng);
  }
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(engine.metrics().max_node_queue, 4U);
  EXPECT_EQ(engine.metrics().max_link_queue, 4U);
}

}  // namespace
}  // namespace levnet::sim
