// Fault-injection subsystem tests (src/faults/).
//
// Three layers are pinned here:
//   * the plan/injector mechanics — deterministic sampling, endpoint
//     protection, connectivity preservation, epoch replay, the graph
//     liveness mask and the survivor remap;
//   * the engine's degraded mode — forwards detour around dead links via
//     TrafficHandler::on_fault, stranded queues are evacuated, drops are
//     counted, and a zero-fault overlay is perfectly inert;
//   * end-to-end degraded emulation — PRAM programs (prefix sum,
//     histogram, odd-even sort) still produce reference-identical final
//     memory under <=10% dead links/modules/processors on multiple
//     topologies, EREW and CRCW-combining, with fault trials bit-identical
//     across thread counts. Processor faults are compound (endpoint node +
//     co-located module + program slot) and survivors adopt the dead slots
//     through a seed-derived remap. Degraded machines are assembled from MachineSpecs
//     (machine/machine.hpp): the spec seed derives plan and emulator
//     stream together, and machine::run_trials owns the per-seed
//     construction that a mutable liveness overlay demands.
//   * the lifetime footgun — NetworkEmulator CHECK-rejects a FaultInjector
//     bound to a different topology::Graph than the fabric's.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/trials.hpp"
#include "emulation/emulator.hpp"
#include "emulation/fabric.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "hashing/exclusion.hpp"
#include "machine/machine.hpp"
#include "machine/spec.hpp"
#include "pram/algorithms/access_patterns.hpp"
#include "pram/algorithms/histogram.hpp"
#include "pram/algorithms/prefix_sum.hpp"
#include "pram/algorithms/sorting.hpp"
#include "pram/reference.hpp"
#include "routing/star_router.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"
#include "topology/butterfly.hpp"
#include "topology/linear_array.hpp"
#include "topology/shuffle.hpp"
#include "topology/star.hpp"

namespace levnet::faults {
namespace {

using pram::SharedMemory;
using pram::Word;
using topology::EdgeId;
using topology::NodeId;

std::vector<Word> random_words(std::size_t n, std::uint64_t seed,
                               std::uint64_t bound = 1000) {
  support::Rng rng(seed);
  std::vector<Word> v(n);
  for (auto& w : v) w = static_cast<Word>(rng.below(bound));
  return v;
}

std::size_t count_kind(const FaultPlan& plan, FaultKind kind) {
  std::size_t n = 0;
  for (const FaultEvent& e : plan.events()) n += e.kind == kind ? 1 : 0;
  return n;
}

// ------------------------------------------------------------ plan layer

TEST(FaultPlan, SamplingIsDeterministicInSeedAndSpec) {
  const topology::StarGraph star(5);
  FaultSpec spec;
  spec.link_fraction = 0.10;
  spec.module_fraction = 0.10;
  const FaultPlan a =
      FaultPlan::sample(star.graph(), star.node_count(), star.node_count(),
                        spec, 42);
  const FaultPlan b =
      FaultPlan::sample(star.graph(), star.node_count(), star.node_count(),
                        spec, 42);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].id, b.events()[i].id);
    EXPECT_EQ(a.events()[i].epoch, b.events()[i].epoch);
  }
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(count_kind(a, FaultKind::kNode), 0U);  // fraction 0
  // ~10% of the 240 physical links and of the 120 modules.
  EXPECT_EQ(count_kind(a, FaultKind::kLink) + a.skipped_for_connectivity(),
            24U);
  EXPECT_EQ(count_kind(a, FaultKind::kModule), 12U);

  const FaultPlan other =
      FaultPlan::sample(star.graph(), star.node_count(), star.node_count(),
                        spec, 43);
  bool identical = other.events().size() == a.events().size();
  for (std::size_t i = 0; identical && i < a.events().size(); ++i) {
    identical = a.events()[i].id == other.events()[i].id;
  }
  EXPECT_FALSE(identical) << "different seeds drew the same plan";
}

TEST(FaultPlan, NodeFaultsSpareEndpointsAndKeepThemConnected) {
  topology::WrappedButterfly bf(2, 4);  // 16 rows x 4 columns
  const std::uint32_t endpoints = bf.row_count();
  FaultSpec spec;
  spec.node_fraction = 0.20;
  spec.link_fraction = 0.10;
  const FaultPlan plan =
      FaultPlan::sample(bf.graph(), endpoints, endpoints, spec, 7);
  EXPECT_GT(count_kind(plan, FaultKind::kNode), 0U);
  for (const FaultEvent& e : plan.events()) {
    if (e.kind == FaultKind::kNode) {
      EXPECT_GE(e.id, endpoints);
    }
  }

  // Apply everything and verify all endpoints still reach each other.
  FaultInjector injector(bf.graph_mut(), endpoints, plan);
  injector.advance_to(~0U);
  const topology::Graph& g = bf.graph();
  std::vector<std::uint8_t> seen(g.node_count(), 0);
  std::vector<NodeId> queue{0};
  seen[0] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (std::uint32_t k = 0; k < g.out_degree(u); ++k) {
      const EdgeId e = g.out_edge(u, k);
      if (!g.edge_live(e)) continue;
      const NodeId v = g.edge_head(e);
      if (!seen[v]) {
        seen[v] = 1;
        queue.push_back(v);
      }
    }
  }
  for (NodeId v = 0; v < endpoints; ++v) {
    EXPECT_TRUE(seen[v]) << "endpoint " << v << " cut off";
  }
}

TEST(FaultPlan, ConnectivityGuardRejectsEveryCutOfALine) {
  // On a line every link is a bridge between endpoints, so a
  // connectivity-preserving plan must reject every candidate.
  const topology::LinearArray line(16);
  FaultSpec spec;
  spec.link_fraction = 0.5;
  const FaultPlan plan =
      FaultPlan::sample(line.graph(), line.node_count(), line.node_count(),
                        spec, 3);
  EXPECT_EQ(count_kind(plan, FaultKind::kLink), 0U);
  EXPECT_EQ(plan.skipped_for_connectivity(), 15U);  // every physical link
}

TEST(FaultPlan, ProcSamplingIsDeterministicAndKillsOnlyProcessors) {
  const topology::StarGraph star(5);
  FaultSpec spec;
  spec.proc_fraction = 0.25;
  spec.module_fraction = 0.10;
  const FaultPlan a = FaultPlan::sample(star.graph(), star.node_count(),
                                        star.node_count(), spec, 42);
  const FaultPlan b = FaultPlan::sample(star.graph(), star.node_count(),
                                        star.node_count(), spec, 42);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].id, b.events()[i].id);
    EXPECT_EQ(a.events()[i].epoch, b.events()[i].epoch);
  }
  // 25% of the 120 processors, met exactly (the guard found enough
  // acceptable kills on the richly-connected star), every victim an
  // endpoint id, and proc kills sorted ahead of everything else so the
  // injector sees the implied node/module deaths before later kinds land.
  EXPECT_EQ(count_kind(a, FaultKind::kProc), 30U);
  EXPECT_EQ(a.events().front().kind, FaultKind::kProc);
  std::vector<std::uint8_t> proc_dead(star.node_count(), 0);
  for (const FaultEvent& e : a.events()) {
    if (e.kind == FaultKind::kProc) {
      EXPECT_LT(e.id, star.node_count());
      proc_dead[e.id] = 1;
    }
  }
  // The module quota is still ~10% of all modules, but never names a
  // module that already died with its co-located processor.
  EXPECT_EQ(count_kind(a, FaultKind::kModule), 12U);
  for (const FaultEvent& e : a.events()) {
    if (e.kind == FaultKind::kModule) {
      EXPECT_EQ(proc_dead[e.id], 0);
    }
  }
}

TEST(FaultPlan, ProcFaultsLeaveSurvivorEndpointsConnected) {
  topology::WrappedButterfly bf(2, 4);
  const std::uint32_t endpoints = bf.row_count();
  FaultSpec spec;
  spec.proc_fraction = 0.25;
  spec.link_fraction = 0.05;
  const FaultPlan plan =
      FaultPlan::sample(bf.graph(), endpoints, endpoints, spec, 9);
  EXPECT_GT(count_kind(plan, FaultKind::kProc), 0U);

  FaultInjector injector(bf.graph_mut(), endpoints, plan);
  injector.advance_to(~0U);
  const topology::Graph& g = bf.graph();
  // BFS from the first live endpoint over the degraded graph: every
  // surviving endpoint must still be reachable; dead ones owe nothing and
  // must have taken all their incident links down with them.
  NodeId root = topology::kInvalidNode;
  for (NodeId v = 0; v < endpoints; ++v) {
    if (g.node_live(v)) {
      root = v;
      break;
    }
  }
  ASSERT_NE(root, topology::kInvalidNode);
  std::vector<std::uint8_t> seen(g.node_count(), 0);
  std::vector<NodeId> queue{root};
  seen[root] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (std::uint32_t k = 0; k < g.out_degree(u); ++k) {
      const EdgeId e = g.out_edge(u, k);
      if (!g.edge_live(e)) continue;
      const NodeId v = g.edge_head(e);
      if (!seen[v]) {
        seen[v] = 1;
        queue.push_back(v);
      }
    }
  }
  for (NodeId v = 0; v < endpoints; ++v) {
    if (g.node_live(v)) {
      EXPECT_TRUE(seen[v]) << "survivor endpoint " << v << " cut off";
    } else {
      EXPECT_EQ(g.live_out_degree(v), 0U)
          << "dead proc " << v << " kept a live link";
    }
  }
}

TEST(FaultPlanDeathTest, ImpossibleProcQuotaDiesWithANamedError) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // On a line only the two current end processors are ever killable and a
  // rejected interior candidate is never retried, so a 90% quota is out of
  // reach. Under procs= that under-fill is a configuration error with a
  // named message, not a silently smaller plan.
  const topology::LinearArray line(16);
  FaultSpec spec;
  spec.proc_fraction = 0.9;
  EXPECT_DEATH(
      {
        (void)FaultPlan::sample(line.graph(), line.node_count(),
                                line.node_count(), spec, 3);
      },
      "procs= fraction unsatisfiable");
}

TEST(FaultPlanDeathTest, ProcAndLinkQuotasJointlyUnsatisfiableDieNamed) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Every surviving link of a line is a bridge, so after the processor
  // kill the guard rejects every link candidate. Link-only plans under-fill
  // silently (pinned above); with procs= in play the conflict is named.
  const topology::LinearArray line(8);
  FaultSpec spec;
  spec.proc_fraction = 0.2;  // one endpoint dies
  spec.link_fraction = 0.5;
  EXPECT_DEATH(
      {
        (void)FaultPlan::sample(line.graph(), line.node_count(),
                                line.node_count(), spec, 3);
      },
      "jointly unsatisfiable");
}

TEST(GraphLiveness, MaskSemantics) {
  topology::StarGraph star(4);
  topology::Graph& g = star.graph_mut();
  EXPECT_FALSE(g.has_faults());
  ASSERT_GT(g.edge_count(), 0U);
  const EdgeId e = 0;
  const EdgeId rev = g.reverse_edge(e);
  ASSERT_NE(rev, topology::kInvalidEdge);
  g.kill_link(e);
  EXPECT_TRUE(g.has_faults());
  EXPECT_FALSE(g.edge_live(e));
  EXPECT_FALSE(g.edge_live(rev));
  EXPECT_EQ(g.dead_edge_count(), 2U);

  const NodeId victim = g.edge_head(e) == 0 ? g.edge_tail(e) : g.edge_head(e);
  const std::uint32_t before = g.live_out_degree(victim);
  g.kill_node(victim);
  EXPECT_FALSE(g.node_live(victim));
  EXPECT_EQ(g.live_out_degree(victim), 0U);
  EXPECT_GT(before, 0U);
  // Every edge into the dead node died too.
  for (EdgeId edge = 0; edge < g.edge_count(); ++edge) {
    if (g.edge_head(edge) == victim || g.edge_tail(edge) == victim) {
      EXPECT_FALSE(g.edge_live(edge));
    }
  }

  g.revive_all();
  EXPECT_FALSE(g.has_faults());
  EXPECT_TRUE(g.edge_live(e));
  EXPECT_TRUE(g.node_live(victim));
  EXPECT_EQ(g.dead_edge_count(), 0U);
  EXPECT_EQ(g.dead_node_count(), 0U);
}

TEST(ExclusionRemap, RedirectsDeadBucketsOntoSurvivors) {
  std::vector<std::uint8_t> live(10, 1);
  live[2] = live[7] = live[9] = 0;
  const hashing::ExclusionRemap remap = hashing::ExclusionRemap::build(live, 5);
  EXPECT_FALSE(remap.identity());
  EXPECT_EQ(remap.excluded(), 3U);
  for (std::uint32_t b = 0; b < live.size(); ++b) {
    const std::uint32_t target = remap(b);
    EXPECT_TRUE(live[target]) << "bucket " << b << " remapped to dead "
                              << target;
    if (live[b]) {
      EXPECT_EQ(target, b);
    }
  }
  const hashing::ExclusionRemap again = hashing::ExclusionRemap::build(live, 5);
  for (std::uint32_t b = 0; b < live.size(); ++b) EXPECT_EQ(remap(b), again(b));

  const hashing::ExclusionRemap identity =
      hashing::ExclusionRemap::build(std::vector<std::uint8_t>(4, 1), 5);
  EXPECT_TRUE(identity.identity());
  EXPECT_EQ(identity(3), 3U);
}

TEST(FaultInjector, EpochAdvanceAndReplay) {
  topology::StarGraph star(4);
  FaultSpec spec;
  spec.link_fraction = 0.15;
  spec.module_fraction = 0.2;
  spec.onset_epochs = 3;
  const FaultPlan plan = FaultPlan::sample(
      star.graph(), star.node_count(), star.node_count(), spec, 11);
  ASSERT_FALSE(plan.empty());

  FaultInjector injector(star.graph_mut(), star.node_count(), plan);
  std::uint32_t applied_total = 0;
  for (std::uint32_t epoch = 0; epoch < spec.onset_epochs; ++epoch) {
    const FaultInjector::Applied applied = injector.advance_to(epoch);
    applied_total += applied.links + applied.nodes + applied.modules;
  }
  EXPECT_EQ(applied_total, plan.events().size());
  const std::uint32_t links_first = injector.dead_links();
  const std::uint32_t modules_first = injector.dead_modules();
  EXPECT_GT(links_first + modules_first, 0U);
  // Every dead module remaps to a live one.
  for (std::uint32_t m = 0; m < star.node_count(); ++m) {
    EXPECT_TRUE(injector.module_live(injector.remap_module(m)));
  }

  injector.reset();
  EXPECT_FALSE(star.graph().has_faults());
  EXPECT_EQ(injector.dead_links(), 0U);
  injector.advance_to(spec.onset_epochs);
  EXPECT_EQ(injector.dead_links(), links_first);
  EXPECT_EQ(injector.dead_modules(), modules_first);
}

TEST(FaultInjector, ProcDeathIsCompoundAndSurvivorsAdoptDeterministically) {
  topology::StarGraph star(4);
  FaultSpec spec;
  spec.proc_fraction = 0.3;
  const FaultPlan plan = FaultPlan::sample(
      star.graph(), star.node_count(), star.node_count(), spec, 17);
  const std::size_t dead = count_kind(plan, FaultKind::kProc);
  ASSERT_GT(dead, 0U);

  FaultInjector injector(star.graph_mut(), star.node_count(), plan);
  injector.advance_to(~0U);
  EXPECT_EQ(injector.dead_procs(), dead);
  std::vector<std::uint32_t> adoption(star.node_count());
  for (std::uint32_t p = 0; p < star.node_count(); ++p) {
    const std::uint32_t host = injector.adopt_proc(p);
    adoption[p] = host;
    EXPECT_TRUE(injector.proc_live(host))
        << "slot " << p << " adopted by dead " << host;
    if (injector.proc_live(p)) {
      EXPECT_EQ(host, p);  // live processors keep their own slot
    } else {
      EXPECT_NE(host, p);
      // The compound fault: the endpoint node and the co-located module
      // died with the processor.
      EXPECT_FALSE(star.graph().node_live(p));
      EXPECT_FALSE(injector.module_live(p));
    }
  }

  injector.reset();
  EXPECT_EQ(injector.dead_procs(), 0U);
  for (std::uint32_t p = 0; p < star.node_count(); ++p) {
    EXPECT_TRUE(injector.proc_live(p));
    EXPECT_EQ(injector.adopt_proc(p), p);
  }
  injector.advance_to(~0U);
  for (std::uint32_t p = 0; p < star.node_count(); ++p) {
    EXPECT_EQ(injector.adopt_proc(p), adoption[p]) << "replay diverged";
  }
}

// ----------------------------------------------------- engine fault hook

/// Three-node clique handler: data packets walk 0 -> 1 -> 2 unless a fault
/// forces the scenic route 1 -> 0 -> 2.
struct DetourHandler final : sim::TrafficHandler {
  bool offer_detour = false;
  bool rerouted = false;

  void on_packet(sim::Packet& p, NodeId at, std::uint32_t, support::Rng&,
                 std::vector<sim::Forward>& out) override {
    if (at == p.dst) return;  // consumed
    const NodeId next = (rerouted && at == 0) ? p.dst
                        : at == 0             ? 1
                                              : p.dst;
    out.push_back(sim::Forward{next, 0});
  }

  NodeId on_fault(sim::Packet&, NodeId, NodeId, support::Rng&) override {
    if (!offer_detour) return topology::kInvalidNode;
    rerouted = true;
    return 0;  // back up, then go direct
  }
};

topology::Graph clique3() {
  return topology::Graph::from_edges(
      3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}});
}

TEST(EngineFaults, StrandedQueueIsDroppedWithoutADetour) {
  topology::Graph g = clique3();
  DetourHandler handler;
  sim::SyncEngine engine(g, handler, {});
  support::Rng rng(1);

  sim::Packet p;
  p.src = 0;
  p.dst = 2;
  engine.inject(p, 0, rng);
  ASSERT_EQ(engine.step(rng), 1U);  // crossed 0->1; now queued on 1->2
  g.kill_link(g.edge_between(1, 2));
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(engine.metrics().dropped, 1U);
  EXPECT_EQ(engine.metrics().detours, 0U);
  EXPECT_EQ(engine.in_flight(), 0U);  // dropped packets release their slot
}

TEST(EngineFaults, StrandedQueueEvacuatesThroughOnFault) {
  topology::Graph g = clique3();
  DetourHandler handler;
  handler.offer_detour = true;
  sim::SyncEngine engine(g, handler, {});
  support::Rng rng(1);

  sim::Packet p;
  p.src = 0;
  p.dst = 2;
  engine.inject(p, 0, rng);
  ASSERT_EQ(engine.step(rng), 1U);
  g.kill_link(g.edge_between(1, 2));
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(engine.metrics().dropped, 0U);
  EXPECT_EQ(engine.metrics().detours, 1U);
  EXPECT_EQ(engine.metrics().consumed, 1U);
}

TEST(EngineFaults, FreshForwardsDetourAroundADeadLink) {
  topology::Graph g = clique3();
  g.kill_link(g.edge_between(1, 2));  // dead before anything moves
  DetourHandler handler;
  handler.offer_detour = true;
  sim::SyncEngine engine(g, handler, {});
  support::Rng rng(1);

  sim::Packet p;
  p.src = 0;
  p.dst = 2;
  engine.inject(p, 0, rng);  // 0 -> 1 is live; the forward out of 1 detours
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(engine.metrics().detours, 1U);
  EXPECT_EQ(engine.metrics().dropped, 0U);
  EXPECT_EQ(engine.metrics().consumed, 1U);
}

TEST(EngineFaults, ProcessorNodeDeathWithPacketsInFlightStaysConsistent) {
  // A processor endpoint dies while a packet sits queued on its outgoing
  // link. The handler offers detours, but every edge incident to the dead
  // node is gone, so try_detour can never negotiate an escape: the packet
  // is dropped (and counted), its slot released, and the engine runs to
  // quiescence instead of wedging on a dead queue.
  topology::Graph g = clique3();
  DetourHandler handler;
  handler.offer_detour = true;
  sim::SyncEngine engine(g, handler, {});
  support::Rng rng(1);

  sim::Packet p;
  p.src = 0;
  p.dst = 2;
  engine.inject(p, 0, rng);
  ASSERT_EQ(engine.step(rng), 1U);  // crossed 0->1; now queued on 1->2
  g.kill_node(1);                   // the node hosting the queue dies
  EXPECT_TRUE(engine.run(rng));
  EXPECT_EQ(engine.metrics().dropped, 1U);
  EXPECT_EQ(engine.metrics().consumed, 0U);
  EXPECT_EQ(engine.in_flight(), 0U);
}

// ----------------------------------------------- degraded-mode emulation

/// Spec for a degraded machine: the fault fractions ride the spec, the
/// seed derives plan and emulator stream together, and the rehash escape
/// hatch is live (budget=64 — transient detour storms can blow a step
/// budget, and a fresh hash plus a doubled budget is the paper's way out).
machine::MachineSpec degraded_spec(const std::string& topology, double links,
                                   double nodes, double modules,
                                   bool combining, std::uint64_t seed,
                                   double procs = 0.0) {
  machine::MachineSpec spec =
      machine::parse_spec(topology + "/two-phase/budget=64");
  if (combining) spec.mode = machine::Mode::kCrcwCombining;
  spec.faults.links = links;
  spec.faults.nodes = nodes;
  spec.faults.modules = modules;
  spec.faults.procs = procs;
  spec.seed = seed;
  return spec;
}

machine::MachineSpec ten_percent_links_and_modules(const std::string& topology,
                                                   bool combining,
                                                   std::uint64_t seed) {
  return degraded_spec(topology, 0.10, 0.0, 0.10, combining, seed);
}

machine::MachineSpec ten_percent_procs(const std::string& topology,
                                       bool combining, std::uint64_t seed) {
  return degraded_spec(topology, 0.0, 0.0, 0.0, combining, seed, 0.10);
}

/// Reference run, then a degraded emulation of the same program on the
/// spec-built machine; final memory must match bit for bit and the run
/// must complete.
void expect_degraded_matches(pram::PramProgram& program,
                             const machine::MachineSpec& spec) {
  SharedMemory reference_memory;
  pram::ReferencePram::for_program(program).run(program, reference_memory);
  program.reset();

  machine::Machine m = machine::Machine::build(spec);
  SharedMemory memory;
  const emulation::EmulationReport report = m.run(program, memory);

  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.dropped_packets, 0U);  // connectivity-preserving plan
  EXPECT_TRUE(reference_memory == memory) << "degraded memory mismatch";
  EXPECT_TRUE(program.validate(memory));
}

TEST(DegradedEmulation, PrefixSumOnStarUnderLinkAndModuleFaults) {
  pram::PrefixSumErew program(random_words(24, 41));
  expect_degraded_matches(program,
                          ten_percent_links_and_modules("star:5", false, 0xFA01));
}

TEST(DegradedEmulation, OddEvenSortOnStarUnderLinkAndModuleFaults) {
  pram::OddEvenSortErew program(random_words(16, 99));
  expect_degraded_matches(program,
                          ten_percent_links_and_modules("star:5", false, 0xFA02));
}

TEST(DegradedEmulation, HistogramCrcwOnStarUnderLinkAndModuleFaults) {
  pram::HistogramCrcwSum program(random_words(20, 42, 4), 4);
  expect_degraded_matches(program,
                          ten_percent_links_and_modules("star:5", true, 0xFA03));
}

TEST(DegradedEmulation, PrefixSumOnShuffleUnderLinkAndModuleFaults) {
  pram::PrefixSumErew program(random_words(24, 41));
  expect_degraded_matches(
      program, ten_percent_links_and_modules("nshuffle:3", false, 0xFA04));
}

TEST(DegradedEmulation, OddEvenSortOnShuffleUnderLinkAndModuleFaults) {
  pram::OddEvenSortErew program(random_words(16, 98));
  expect_degraded_matches(
      program, ten_percent_links_and_modules("nshuffle:3", false, 0xFA05));
}

TEST(DegradedEmulation, HistogramCrcwOnShuffleUnderLinkAndModuleFaults) {
  pram::HistogramCrcwSum program(random_words(20, 43, 4), 4);
  expect_degraded_matches(
      program, ten_percent_links_and_modules("nshuffle:3", true, 0xFA06));
}

TEST(DegradedEmulation, ButterflySurvivesInteriorNodeFaults) {
  // Interior switches only (endpoints protected).
  const machine::MachineSpec spec =
      degraded_spec("butterfly:4", 0.05, 0.10, 0.0, false, 0xFA07);
  machine::Machine m = machine::Machine::build(spec);
  ASSERT_NE(m.injector(), nullptr);
  EXPECT_GT(count_kind(m.injector()->plan(), FaultKind::kNode), 0U);
  pram::PrefixSumErew program(random_words(16, 40));
  expect_degraded_matches(program, spec);
}

TEST(DegradedEmulation, PrefixSumOnStarUnderProcFaults) {
  pram::PrefixSumErew program(random_words(24, 45));
  expect_degraded_matches(program, ten_percent_procs("star:5", false, 0xFA10));
}

TEST(DegradedEmulation, OddEvenSortOnShuffleUnderProcFaults) {
  pram::OddEvenSortErew program(random_words(16, 97));
  expect_degraded_matches(program,
                          ten_percent_procs("nshuffle:3", false, 0xFA11));
}

TEST(DegradedEmulation, HistogramCrcwOnButterflyUnderProcFaults) {
  // 16 values: butterfly:4 has 16 processor rows.
  pram::HistogramCrcwSum program(random_words(16, 44, 4), 4);
  expect_degraded_matches(program,
                          ten_percent_procs("butterfly:4", true, 0xFA12));
}

TEST(DegradedEmulation, ProcLinkAndModuleFaultsComposeOnStar) {
  const machine::MachineSpec spec =
      degraded_spec("star:5", 0.05, 0.0, 0.10, false, 0xFA13, 0.10);
  machine::Machine m = machine::Machine::build(spec);
  ASSERT_NE(m.injector(), nullptr);
  EXPECT_GT(count_kind(m.injector()->plan(), FaultKind::kProc), 0U);
  EXPECT_GT(count_kind(m.injector()->plan(), FaultKind::kLink), 0U);
  EXPECT_GT(count_kind(m.injector()->plan(), FaultKind::kModule), 0U);
  pram::PrefixSumErew program(random_words(24, 46));
  expect_degraded_matches(program, spec);
}

TEST(DegradedEmulation, SurvivorsAdoptDeadSlotsAndReportTheOverhead) {
  const machine::MachineSpec spec = ten_percent_procs("star:4", false, 0xFA14);
  pram::PrefixSumErew program(random_words(24, 47));
  expect_degraded_matches(program, spec);

  machine::Machine m = machine::Machine::build(spec);
  pram::PrefixSumErew replay(random_words(24, 47));
  const emulation::EmulationReport report = m.run(replay);
  EXPECT_GT(report.dead_procs, 0U);
  // Static faults are live from the first PRAM step, so the adopted-slot
  // integral is exactly dead slots x steps.
  EXPECT_EQ(report.adopted_slot_steps,
            std::uint64_t{report.dead_procs} * report.pram_steps);
}

TEST(DegradedEmulation, TimeTriggeredFaultsLandAcrossEpochs) {
  machine::MachineSpec spec =
      ten_percent_links_and_modules("star:5", false, 0xFA08);
  spec.faults.onset_epochs = 4;  // faults fall during the program
  pram::PrefixSumErew program(random_words(24, 44));
  expect_degraded_matches(program, spec);

  machine::Machine m = machine::Machine::build(spec);
  pram::PrefixSumErew replay(random_words(24, 44));
  (void)m.run(replay);
  const FaultInjector* injector = m.injector();
  ASSERT_NE(injector, nullptr);
  EXPECT_EQ(m.injector()->dead_links() + m.injector()->dead_modules() +
                m.injector()->dead_nodes(),
            injector->plan().events().size());
}

TEST(DegradedEmulation, OnsetProcDeathsLandMidProgram) {
  machine::MachineSpec spec = ten_percent_procs("star:5", false, 0xFA15);
  spec.faults.onset_epochs = 4;  // processors die while the program runs
  pram::PrefixSumErew program(random_words(24, 48));
  expect_degraded_matches(program, spec);

  machine::Machine m = machine::Machine::build(spec);
  ASSERT_NE(m.injector(), nullptr);
  bool staggered = false;
  for (const FaultEvent& e : m.injector()->plan().events()) {
    staggered = staggered || (e.kind == FaultKind::kProc && e.epoch > 0);
  }
  ASSERT_TRUE(staggered) << "every proc death drew epoch 0";
  pram::PrefixSumErew replay(random_words(24, 48));
  const emulation::EmulationReport report = m.run(replay);
  EXPECT_GT(report.dead_procs, 0U);
  EXPECT_GT(report.adopted_slot_steps, 0U);
  // At least one death landed after the first epoch, so the adoption
  // integral is strictly below every-slot-dead-from-step-one.
  EXPECT_LT(report.adopted_slot_steps,
            std::uint64_t{report.dead_procs} * report.pram_steps);
}

// The faults-lifetime footgun, closed: an injector bound to any graph
// other than the fabric's would silently corrupt the liveness overlay, so
// the emulator must refuse the binding outright — even for an empty plan.
TEST(DegradedEmulationDeathTest, EmulatorRejectsInjectorOnDifferentGraph) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  topology::StarGraph fabric_star(4);
  topology::StarGraph other_star(4);  // same shape, different instance
  const routing::StarTwoPhaseRouter router(fabric_star);
  const emulation::EmulationFabric fab(fabric_star.graph(), router,
                                       fabric_star.diameter(),
                                       fabric_star.name());
  const FaultPlan plan;  // empty: the binding is wrong regardless of events
  FaultInjector injector(other_star.graph_mut(), other_star.node_count(),
                         plan);
  emulation::EmulatorConfig config;
  config.faults = &injector;
  EXPECT_DEATH(
      { emulation::NetworkEmulator emulator(fab, config); },
      "bound to the fabric's graph");
}

TEST(DegradedEmulation, EmptyPlanIsBitIdenticalToNoInjector) {
  // The golden suite pins fault-free behaviour against recorded fixtures;
  // this pins the stronger claim that *attaching* an empty plan changes
  // nothing either.
  const auto run = [](bool attach_injector) {
    topology::StarGraph star(5);
    routing::StarTwoPhaseRouter router(star);
    emulation::EmulationFabric fab(star.graph(), router, star.diameter(),
                                   star.name());
    FaultPlan plan;  // empty
    FaultInjector injector(star.graph_mut(), star.node_count(), plan);
    pram::PermutationTraffic program(star.node_count(), 3, 0xA11CE);
    emulation::EmulatorConfig config;
    config.seed = 0x901de2;
    config.combining = true;
    if (attach_injector) config.faults = &injector;
    emulation::NetworkEmulator emulator(fab, config);
    SharedMemory memory;
    const emulation::EmulationReport report = emulator.run(program, memory);
    return std::make_pair(report, memory);
  };
  const auto [with, mem_with] = run(true);
  const auto [without, mem_without] = run(false);
  EXPECT_EQ(with.network_steps, without.network_steps);
  EXPECT_EQ(with.step_costs, without.step_costs);
  EXPECT_EQ(with.request_packets, without.request_packets);
  EXPECT_EQ(with.reply_packets, without.reply_packets);
  EXPECT_EQ(with.combined_requests, without.combined_requests);
  EXPECT_EQ(with.rehashes, without.rehashes);
  EXPECT_EQ(with.detour_hops, 0U);
  EXPECT_EQ(with.dropped_packets, 0U);
  EXPECT_EQ(with.fault_rehashes, 0U);
  EXPECT_TRUE(with.complete && without.complete);
  EXPECT_TRUE(mem_with == mem_without);
}

// ------------------------------------------------ thread-count identity

bool summaries_identical(const support::Summary& a,
                         const support::Summary& b) {
  return a.count == b.count && a.mean == b.mean && a.stddev == b.stddev &&
         a.min == b.min && a.median == b.median && a.p95 == b.p95 &&
         a.max == b.max;
}

bool stats_identical(const analysis::TrialStats& a,
                     const analysis::TrialStats& b) {
  return summaries_identical(a.steps, b.steps) &&
         summaries_identical(a.worst_step, b.worst_step) &&
         summaries_identical(a.max_link_queue, b.max_link_queue) &&
         summaries_identical(a.max_node_queue, b.max_node_queue) &&
         a.combined_mean == b.combined_mean &&
         a.rehashes_mean == b.rehashes_mean &&
         a.detours_mean == b.detours_mean &&
         a.dropped_mean == b.dropped_mean &&
         a.fault_rehashes_mean == b.fault_rehashes_mean &&
         a.adopted_slot_steps_mean == b.adopted_slot_steps_mean &&
         a.all_complete == b.all_complete &&
         a.complete_runs == b.complete_runs && a.runs == b.runs;
}

analysis::TrialStats fault_trials(unsigned threads) {
  // machine::run_trials owns the per-seed construction a faulted spec
  // demands (the trial seed is stamped into the spec, so plan and stream
  // are derived together; nothing mutable is shared across workers).
  const machine::MachineSpec spec =
      ten_percent_links_and_modules("star:5", false, /*seed=*/0);
  return machine::run_trials(spec, machine::program_factory("permutation", 2),
                             /*seeds=*/8, threads);
}

TEST(DegradedEmulation, FaultTrialsAreBitIdenticalAcrossThreadCounts) {
  const analysis::TrialStats one = fault_trials(1);
  const analysis::TrialStats eight = fault_trials(8);
  EXPECT_TRUE(stats_identical(one, eight));
  EXPECT_TRUE(one.all_complete);
  EXPECT_GT(one.detours_mean, 0.0) << "10% link faults caused no detours?";
}

analysis::TrialStats proc_fault_trials(unsigned threads) {
  machine::MachineSpec spec = ten_percent_procs("star:5", false, /*seed=*/0);
  spec.faults.links = 0.05;  // adoption composed with link detours
  return machine::run_trials(spec, machine::program_factory("permutation", 2),
                             /*seeds=*/8, threads);
}

TEST(DegradedEmulation, ProcFaultTrialsAreBitIdenticalAcrossThreadCounts) {
  const analysis::TrialStats one = proc_fault_trials(1);
  const analysis::TrialStats eight = proc_fault_trials(8);
  EXPECT_TRUE(stats_identical(one, eight));
  EXPECT_TRUE(one.all_complete);
  EXPECT_GT(one.adopted_slot_steps_mean, 0.0)
      << "10% proc faults adopted no slots?";
}

}  // namespace
}  // namespace levnet::faults
